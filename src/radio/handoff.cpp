#include "radio/handoff.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace wild5g::radio {

A3HandoffEngine::A3HandoffEngine(std::vector<CellSite> cells,
                                 HandoffConfig config, Rng rng)
    : cells_(std::move(cells)), config_(config), rng_(rng) {
  require(!cells_.empty(), "A3HandoffEngine: no cells");
  require(config_.hysteresis_db >= 0.0 && config_.time_to_trigger_ms >= 0.0,
          "A3HandoffEngine: invalid config");
  shadowing_db_.assign(cells_.size(), 0.0);
  for (auto& s : shadowing_db_) {
    s = rng_.normal(0.0, config_.shadowing_sigma_db);
  }
}

double A3HandoffEngine::cell_rsrp_dbm(std::size_t index,
                                      double ue_position_m) const {
  const auto& cell = cells_[index];
  const double distance = std::abs(ue_position_m - cell.position_m);
  return rsrp_dbm(cell.band, std::max(5.0, distance),
                  -shadowing_db_[index]);
}

void A3HandoffEngine::evolve_shadowing(double dt_s) {
  const double decay = std::exp(-dt_s / config_.shadowing_tau_s);
  const double noise = config_.shadowing_sigma_db *
                       std::sqrt(std::max(0.0, 1.0 - decay * decay));
  for (auto& s : shadowing_db_) {
    s = s * decay + rng_.normal(0.0, noise);
  }
}

A3HandoffEngine::StepResult A3HandoffEngine::step(double dt_s,
                                                  double ue_position_m) {
  require(dt_s > 0.0, "A3HandoffEngine::step: dt must be positive");
  now_s_ += dt_s;
  evolve_shadowing(dt_s);

  const auto serving_index = static_cast<std::size_t>(serving_);
  const double serving_rsrp = cell_rsrp_dbm(serving_index, ue_position_m);

  // Strongest neighbor.
  int best = -1;
  double best_rsrp = -1e18;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (i == serving_index) continue;
    const double rsrp = cell_rsrp_dbm(i, ue_position_m);
    if (rsrp > best_rsrp) {
      best_rsrp = rsrp;
      best = static_cast<int>(i);
    }
  }

  StepResult result;
  result.serving_rsrp_dbm = serving_rsrp;

  // A3 entering condition: neighbor > serving + hysteresis.
  if (best >= 0 && best_rsrp > serving_rsrp + config_.hysteresis_db) {
    if (candidate_ != best) {
      candidate_ = best;
      candidate_since_s_ = now_s_;
    }
    if ((now_s_ - candidate_since_s_) * 1000.0 >=
        config_.time_to_trigger_ms) {
      events_.push_back({now_s_, serving_, best});
      serving_ = best;
      candidate_ = -1;
      ++handoff_count_;
      result.handed_off = true;
    }
  } else {
    candidate_ = -1;  // leaving condition: report stops
  }
  result.serving_cell = serving_;
  return result;
}

int A3HandoffEngine::pingpong_count(double window_s) const {
  int count = 0;
  for (std::size_t i = 1; i < events_.size(); ++i) {
    if (events_[i].to == events_[i - 1].from &&
        events_[i].t_s - events_[i - 1].t_s <= window_s) {
      ++count;
    }
  }
  return count;
}

}  // namespace wild5g::radio
