#include "radio/handoff.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace wild5g::radio {

A3HandoffEngine::A3HandoffEngine(std::vector<CellSite> cells,
                                 HandoffConfig config, Rng rng,
                                 int initial_serving)
    : cells_(std::move(cells)), config_(config), rng_(rng) {
  require(!cells_.empty(), "A3HandoffEngine: no cells");
  require(config_.hysteresis_db >= 0.0 && config_.time_to_trigger_ms >= 0.0,
          "A3HandoffEngine: invalid config");
  require(initial_serving >= 0 &&
              static_cast<std::size_t>(initial_serving) < cells_.size(),
          "A3HandoffEngine: initial_serving out of range");
  serving_ = initial_serving;
  shadowing_db_.assign(cells_.size(), 0.0);
  for (auto& s : shadowing_db_) {
    s = rng_.normal(0.0, config_.shadowing_sigma_db);
  }
}

double A3HandoffEngine::cell_rsrp_dbm(std::size_t index,
                                      double ue_position_m) const {
  const auto& cell = cells_[index];
  const double distance = std::abs(ue_position_m - cell.position_m);
  return rsrp_dbm(cell.band, std::max(5.0, distance),
                  -shadowing_db_[index]);
}

void A3HandoffEngine::evolve_shadowing(double dt_s) {
  const double decay = std::exp(-dt_s / config_.shadowing_tau_s);
  const double noise = config_.shadowing_sigma_db *
                       std::sqrt(std::max(0.0, 1.0 - decay * decay));
  for (auto& s : shadowing_db_) {
    s = s * decay + rng_.normal(0.0, noise);
  }
}

A3HandoffEngine::StepResult A3HandoffEngine::step(double dt_s,
                                                  double ue_position_m) {
  require(dt_s > 0.0, "A3HandoffEngine::step: dt must be positive");
  now_s_ += dt_s;
  evolve_shadowing(dt_s);

  const auto serving_index = static_cast<std::size_t>(serving_);
  const double serving_rsrp = cell_rsrp_dbm(serving_index, ue_position_m);

  // Strongest neighbor; strict comparison in index order, so exact ties
  // resolve to the lowest index deterministically.
  int best = -1;
  double best_rsrp = -1e18;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (i == serving_index) continue;
    const double rsrp = cell_rsrp_dbm(i, ue_position_m);
    if (rsrp > best_rsrp) {
      best_rsrp = rsrp;
      best = static_cast<int>(i);
    }
  }

  StepResult result;
  result.serving_rsrp_dbm = serving_rsrp;

  // A3 entering condition, strict: neighbor > serving + hysteresis. A
  // neighbor exactly hysteresis_db stronger does not start the timer.
  if (best >= 0 && best_rsrp > serving_rsrp + config_.hysteresis_db) {
    if (candidate_ != best) {
      // Timer (re)starts on the step that first observes this candidate;
      // dwell accumulates per step so the exactly-at-TTT boundary is hit
      // exactly instead of drowning in now-vs-then cancellation error.
      candidate_ = best;
      candidate_held_ms_ = 0.0;
    } else {
      candidate_held_ms_ += dt_s * 1000.0;
    }
    if (candidate_held_ms_ >= config_.time_to_trigger_ms) {
      events_.push_back({now_s_, serving_, best});
      serving_ = best;
      candidate_ = -1;
      candidate_held_ms_ = 0.0;
      ++handoff_count_;
      result.handed_off = true;
    }
  } else {
    candidate_ = -1;  // leaving condition: report stops
    candidate_held_ms_ = 0.0;
  }
  result.serving_cell = serving_;
  return result;
}

int A3HandoffEngine::pingpong_count(double window_s) const {
  int count = 0;
  for (std::size_t i = 1; i < events_.size(); ++i) {
    if (events_[i].to == events_[i - 1].from &&
        events_[i].t_s - events_[i - 1].t_s <= window_s) {
      ++count;
    }
  }
  return count;
}

}  // namespace wild5g::radio
