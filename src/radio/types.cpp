#include "radio/types.h"

namespace wild5g::radio {

std::string to_string(RadioTech tech) {
  switch (tech) {
    case RadioTech::kLte: return "4G/LTE";
    case RadioTech::kNr: return "5G-NR";
  }
  return "?";
}

std::string to_string(Band band) {
  switch (band) {
    case Band::kLte: return "LTE";
    case Band::kNrLowBand: return "low-band";
    case Band::kNrMidBand: return "mid-band";
    case Band::kNrMmWave: return "mmWave";
  }
  return "?";
}

std::string to_string(DeploymentMode mode) {
  switch (mode) {
    case DeploymentMode::kNsa: return "NSA";
    case DeploymentMode::kSa: return "SA";
  }
  return "?";
}

std::string to_string(Direction direction) {
  switch (direction) {
    case Direction::kDownlink: return "downlink";
    case Direction::kUplink: return "uplink";
  }
  return "?";
}

std::string to_string(Carrier carrier) {
  switch (carrier) {
    case Carrier::kVerizon: return "Verizon";
    case Carrier::kTMobile: return "T-Mobile";
  }
  return "?";
}

std::string to_string(const NetworkConfig& config) {
  if (config.band == Band::kLte) {
    return to_string(config.carrier) + " 4G";
  }
  return to_string(config.carrier) + " " + to_string(config.mode) + " 5G (" +
         to_string(config.band) + ")";
}

}  // namespace wild5g::radio
