// wild5g/radio: per-cell scheduler model — PRB/airtime allocation across
// the UEs attached to one cell.
//
// The paper's campaigns measure one UE against an effectively unloaded
// network; at metro scale the dominant throughput factor is how the cell's
// radio resources are split across its attached users (the Mid-Band 5G
// measurement study finds cell load, not signal strength, explains most of
// the production throughput variance). CellScheduler is that split:
//
//  - Attach/detach bookkeeping: slot-addressed, O(1), fully deterministic
//    (a LIFO free list, no hashing), so a campaign can move thousands of
//    UEs between cells — composing with radio::A3HandoffEngine — without
//    perturbing the byte-identical-at-any-thread-count contract.
//  - Airtime allocation: full-buffer equal-airtime round robin. With `n`
//    active UEs each gets (1 - background_load) / n of the frame;
//    `background_load` models traffic the campaign does not simulate
//    per-UE (the busy-hour dial of the load-sweep figure).
//  - PRB view: the same split expressed in physical resource blocks, for
//    tables and tests (equal airtime == equal PRBs under full-buffer
//    traffic).
//  - Throughput: per-UE goodput = loaded_link_capacity_mbps(...) at the
//    cell's utilization (interference rise) times the UE's airtime share.
//    Strictly non-increasing in both load and the number of sharers.
//
// Everything here is arithmetic over explicit inputs — no Rng, no clocks —
// so a scheduler query from inside a parallel_map task is race-free and
// draw-free by construction.
#pragma once

#include <cstddef>
#include <vector>

#include "radio/channel.h"
#include "radio/types.h"
#include "radio/ue.h"

namespace wild5g::radio {

struct CellSchedulerConfig {
  Band band = Band::kNrLowBand;
  /// Airtime fraction in [0, 1) consumed by traffic the campaign does not
  /// model per-UE; the remainder is shared equally by the active UEs.
  double background_load = 0.0;
  /// Physical resource blocks per component carrier; 0 derives the count
  /// from the band's carrier bandwidth and customary subcarrier spacing.
  int total_prbs = 0;
};

class CellScheduler {
 public:
  explicit CellScheduler(CellSchedulerConfig config);

  // --- attach/detach bookkeeping -----------------------------------------
  /// Attaches one UE and returns its slot id (reused LIFO after detach).
  [[nodiscard]] int attach();
  /// Detaches the UE in `slot`; detaching a free slot is an error.
  void detach(int slot);
  [[nodiscard]] int attached_count() const { return attached_; }
  [[nodiscard]] bool is_attached(int slot) const;

  // --- allocation model ---------------------------------------------------
  [[nodiscard]] const CellSchedulerConfig& config() const { return config_; }
  [[nodiscard]] int total_prbs() const { return total_prbs_; }
  /// Airtime fraction granted to one of `active_ues` active UEs:
  /// (1 - background_load) / max(1, active_ues).
  [[nodiscard]] double airtime_share(int active_ues) const;
  /// The same share in whole PRBs (floor; the remainder PRBs cycle).
  [[nodiscard]] int prbs_per_ue(int active_ues) const;
  /// Cell utilization in [0, 1] driving the interference rise: background
  /// plus the full non-background frame whenever anyone is active
  /// (full-buffer UEs drain every granted slot).
  [[nodiscard]] double utilization(int active_ues) const;
  /// Transport-layer goodput for one of `active_ues` full-buffer UEs
  /// camped on `network` at `rsrp`: the loaded whole-cell capacity times
  /// this UE's airtime share. active_ues counts the querying UE itself.
  [[nodiscard]] double ue_throughput_mbps(const NetworkConfig& network,
                                          const UeProfile& ue,
                                          Direction direction, double rsrp,
                                          int active_ues) const;

 private:
  CellSchedulerConfig config_;
  int total_prbs_ = 0;
  int attached_ = 0;
  std::vector<bool> slot_used_;
  std::vector<int> free_slots_;  // LIFO, deterministic reuse order
};

}  // namespace wild5g::radio
