// wild5g/radio: measurement-based (A3-event) handoff engine.
//
// The drive simulation in mobility/ uses calibrated geometric handoff
// statistics; this engine implements the underlying 3GPP mechanism — a
// neighbor must be `hysteresis_db` stronger than the serving cell for a
// continuous `time_to_trigger_ms` before the UE hands over. It exposes the
// knobs carriers tune (and the ping-pong pathology the paper's LTE layers
// exhibit), which the ablation bench sweeps.
#pragma once

#include <vector>

#include "core/rng.h"
#include "radio/channel.h"
#include "radio/types.h"

namespace wild5g::radio {

struct HandoffConfig {
  double hysteresis_db = 3.0;       // A3 offset
  double time_to_trigger_ms = 320.0;
  double shadowing_sigma_db = 4.0;  // per-cell shadowing
  double shadowing_tau_s = 5.0;
};

/// One cell site on a 1-D route.
struct CellSite {
  int id = 0;
  double position_m = 0.0;
  Band band = Band::kLte;
};

/// Evaluates A3 events for a UE moving along a 1-D route among `cells`.
class A3HandoffEngine {
 public:
  /// `cells` must be non-empty; all cells share `band` characteristics.
  A3HandoffEngine(std::vector<CellSite> cells, HandoffConfig config,
                  Rng rng);

  struct StepResult {
    int serving_cell = 0;
    double serving_rsrp_dbm = 0.0;
    bool handed_off = false;
  };

  /// Advances by dt_s with the UE at `ue_position_m`.
  StepResult step(double dt_s, double ue_position_m);

  [[nodiscard]] int handoff_count() const { return handoff_count_; }
  /// Handoffs that returned to the previous cell within `window_s`.
  [[nodiscard]] int pingpong_count(double window_s = 5.0) const;
  [[nodiscard]] int serving_cell() const { return serving_; }

 private:
  struct HandoffEvent {
    double t_s;
    int from;
    int to;
  };

  std::vector<CellSite> cells_;
  HandoffConfig config_;
  Rng rng_;
  std::vector<double> shadowing_db_;  // per-cell OU state
  double now_s_ = 0.0;
  int serving_ = 0;
  int candidate_ = -1;
  double candidate_since_s_ = 0.0;
  int handoff_count_ = 0;
  std::vector<HandoffEvent> events_;

  [[nodiscard]] double cell_rsrp_dbm(std::size_t index,
                                     double ue_position_m) const;
  void evolve_shadowing(double dt_s);
};

}  // namespace wild5g::radio
