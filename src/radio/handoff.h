// wild5g/radio: measurement-based (A3-event) handoff engine.
//
// The drive simulation in mobility/ uses calibrated geometric handoff
// statistics; this engine implements the underlying 3GPP mechanism — a
// neighbor must be `hysteresis_db` stronger than the serving cell for a
// continuous `time_to_trigger_ms` before the UE hands over. It exposes the
// knobs carriers tune (and the ping-pong pathology the paper's LTE layers
// exhibit), which the ablation bench sweeps and the metro multi-UE
// campaigns drive at scale (thousands of co-moving UEs hit the boundary
// conditions below constantly, so their semantics are pinned exactly).
//
// Boundary semantics (regression-tested in tests/test_radio_handoff.cpp):
//  - Entering condition is STRICT: neighbor > serving + hysteresis_db.
//    A neighbor exactly `hysteresis_db` stronger does NOT start the timer
//    (3GPP TS 38.331 A3 uses a strict inequality; ties therefore never
//    flap, which is what keeps exactly-tied cells handoff-free at
//    hysteresis 0).
//  - Time-to-trigger is INCLUSIVE and measured as dwell time accumulated
//    step by step (sum of dt, not a difference of absolute clocks — the
//    subtraction form loses the boundary case to floating-point
//    cancellation once now >> dt): the handoff fires on the first step
//    where the condition has held for >= time_to_trigger_ms, counting from
//    the step that first observed it. time_to_trigger_ms == 0 fires on the
//    observing step itself.
//  - The strongest neighbor is chosen with a strict comparison in index
//    order, so exactly-tied candidate neighbors resolve to the lowest cell
//    index deterministically.
//  - A single-cell deployment never hands off (there is no neighbor).
#pragma once

#include <vector>

#include "core/rng.h"
#include "radio/channel.h"
#include "radio/types.h"

namespace wild5g::radio {

struct HandoffConfig {
  double hysteresis_db = 3.0;       // A3 offset
  double time_to_trigger_ms = 320.0;
  double shadowing_sigma_db = 4.0;  // per-cell shadowing
  double shadowing_tau_s = 5.0;
};

/// One cell site on a 1-D route.
struct CellSite {
  int id = 0;
  double position_m = 0.0;
  Band band = Band::kLte;
};

/// One completed handoff, in campaign time.
struct HandoffEvent {
  double t_s = 0.0;
  int from = 0;
  int to = 0;
};

/// Evaluates A3 events for a UE moving along a 1-D route among `cells`.
class A3HandoffEngine {
 public:
  /// `cells` must be non-empty; all cells share `band` characteristics.
  /// `initial_serving` is the index the UE starts camped on (multi-UE
  /// campaigns attach each UE to its nearest cell instead of index 0).
  A3HandoffEngine(std::vector<CellSite> cells, HandoffConfig config,
                  Rng rng, int initial_serving = 0);

  struct StepResult {
    int serving_cell = 0;
    double serving_rsrp_dbm = 0.0;
    bool handed_off = false;
  };

  /// Advances by dt_s with the UE at `ue_position_m`.
  StepResult step(double dt_s, double ue_position_m);

  [[nodiscard]] int handoff_count() const { return handoff_count_; }
  /// Handoffs that returned to the previous cell within `window_s`.
  [[nodiscard]] int pingpong_count(double window_s = 5.0) const;
  [[nodiscard]] int serving_cell() const { return serving_; }
  /// Every completed handoff in order; the metro campaign driver bins
  /// these into per-step storm counts.
  [[nodiscard]] const std::vector<HandoffEvent>& events() const {
    return events_;
  }

 private:
  std::vector<CellSite> cells_;
  HandoffConfig config_;
  Rng rng_;
  std::vector<double> shadowing_db_;  // per-cell OU state
  double now_s_ = 0.0;
  int serving_ = 0;
  int candidate_ = -1;
  double candidate_held_ms_ = 0.0;  // dwell time of the current candidate
  int handoff_count_ = 0;
  std::vector<HandoffEvent> events_;

  [[nodiscard]] double cell_rsrp_dbm(std::size_t index,
                                     double ue_position_m) const;
  void evolve_shadowing(double dt_s);
};

}  // namespace wild5g::radio
