// wild5g/radio: user-equipment (smartphone) capability profiles.
//
// The paper's three phones differ mainly in modem carrier-aggregation
// capability and achievable peak rates (Appendix A.1): S20U's X55 modem does
// 8CC downlink / 2CC uplink on mmWave (>3 Gbps), PX5's X52 and S10's X50 do
// 4CC/1CC (~2-2.2 Gbps).
#pragma once

#include <string>

namespace wild5g::radio {

struct UeProfile {
  std::string name;
  std::string modem;
  int mmwave_dl_component_carriers = 4;
  int mmwave_ul_component_carriers = 1;
  double max_dl_mbps = 2200.0;  // device-side processing ceiling
  double max_ul_mbps = 150.0;
  bool rooted = false;  // rooted devices allow packet capture / kernel tuning
};

/// Google Pixel 5 (Qualcomm X52, 4CC DL / 1CC UL, ~2.2 Gbps peak; rooted in
/// the study for tcpdump and kernel tuning).
[[nodiscard]] UeProfile pixel5();

/// Samsung Galaxy S20 Ultra 5G (Qualcomm X55, 8CC DL / 2CC UL, >3 Gbps).
[[nodiscard]] UeProfile galaxy_s20u();

/// Samsung Galaxy S10 5G (Qualcomm X50, 4CC DL / 1CC UL, ~2 Gbps).
[[nodiscard]] UeProfile galaxy_s10();

}  // namespace wild5g::radio
