#include "radio/ue.h"

namespace wild5g::radio {

UeProfile pixel5() {
  return {
      .name = "PX5",
      .modem = "Snapdragon X52",
      .mmwave_dl_component_carriers = 4,
      .mmwave_ul_component_carriers = 1,
      .max_dl_mbps = 2200.0,
      .max_ul_mbps = 140.0,
      .rooted = true,
  };
}

UeProfile galaxy_s20u() {
  return {
      .name = "S20U",
      .modem = "Snapdragon X55",
      .mmwave_dl_component_carriers = 8,
      .mmwave_ul_component_carriers = 2,
      .max_dl_mbps = 3500.0,
      .max_ul_mbps = 240.0,
      .rooted = false,
  };
}

UeProfile galaxy_s10() {
  return {
      .name = "S10",
      .modem = "Snapdragon X50",
      .mmwave_dl_component_carriers = 4,
      .mmwave_ul_component_carriers = 1,
      .max_dl_mbps = 2000.0,
      .max_ul_mbps = 130.0,
      .rooted = true,
  };
}

}  // namespace wild5g::radio
