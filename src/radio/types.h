// wild5g/radio: basic radio-domain vocabulary shared across the library.
#pragma once

#include <string>

namespace wild5g::radio {

/// Radio access technology of the serving leg.
enum class RadioTech { kLte, kNr };

/// Frequency band classes studied in the paper.
///  - kLte:      legacy 4G bands
///  - kNrLowBand: sub-1 GHz NR (Verizon n5 via DSS, T-Mobile n71 @600 MHz)
///  - kNrMidBand: 2.5 GHz NR (n41; present for completeness, not the focus)
///  - kNrMmWave: 28/39 GHz NR (n260/n261)
enum class Band { kLte, kNrLowBand, kNrMidBand, kNrMmWave };

/// 5G deployment architecture (Sec. 1): NSA anchors control plane on LTE,
/// SA runs a standalone 5G core and enables RRC_INACTIVE.
enum class DeploymentMode { kNsa, kSa };

/// Transfer direction.
enum class Direction { kDownlink, kUplink };

/// The two commercial carriers of the study.
enum class Carrier { kVerizon, kTMobile };

/// A concrete service a UE can camp on: carrier + band + deployment mode.
struct NetworkConfig {
  Carrier carrier = Carrier::kVerizon;
  Band band = Band::kNrMmWave;
  DeploymentMode mode = DeploymentMode::kNsa;

  friend bool operator==(const NetworkConfig&, const NetworkConfig&) = default;
};

[[nodiscard]] std::string to_string(RadioTech tech);
[[nodiscard]] std::string to_string(Band band);
[[nodiscard]] std::string to_string(DeploymentMode mode);
[[nodiscard]] std::string to_string(Direction direction);
[[nodiscard]] std::string to_string(Carrier carrier);
[[nodiscard]] std::string to_string(const NetworkConfig& config);

/// True when the band is an NR (5G) band.
[[nodiscard]] constexpr bool is_nr(Band band) { return band != Band::kLte; }

}  // namespace wild5g::radio
