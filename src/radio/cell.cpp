#include "radio/cell.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace wild5g::radio {

namespace {

// Customary subcarrier spacing per band (3GPP numerology): 15 kHz for LTE
// and NR low band, 30 kHz for NR mid band, 120 kHz for mmWave.
double subcarrier_spacing_khz(Band band) {
  switch (band) {
    case Band::kNrMmWave: return 120.0;
    case Band::kNrMidBand: return 30.0;
    case Band::kNrLowBand:
    case Band::kLte: return 15.0;
  }
  return 15.0;
}

// PRBs per component carrier: 12 subcarriers each, ~10% of the carrier
// reserved for guard bands. Lands on the familiar grid sizes (100 PRBs for
// 20 MHz LTE, 273-ish for 100 MHz mid band, 66 for 100 MHz mmWave).
int derive_total_prbs(Band band) {
  const double bandwidth_khz = band_params(band).cc_bandwidth_mhz * 1000.0;
  const double prb_khz = 12.0 * subcarrier_spacing_khz(band);
  return static_cast<int>(std::floor(bandwidth_khz * 0.9 / prb_khz));
}

}  // namespace

CellScheduler::CellScheduler(CellSchedulerConfig config) : config_(config) {
  require(config_.background_load >= 0.0 && config_.background_load < 1.0,
          "CellScheduler: background_load out of [0, 1)");
  require(config_.total_prbs >= 0,
          "CellScheduler: total_prbs must be non-negative");
  total_prbs_ =
      config_.total_prbs > 0 ? config_.total_prbs : derive_total_prbs(config_.band);
}

int CellScheduler::attach() {
  int slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slot_used_[static_cast<std::size_t>(slot)] = true;
  } else {
    slot = static_cast<int>(slot_used_.size());
    slot_used_.push_back(true);
  }
  ++attached_;
  return slot;
}

void CellScheduler::detach(int slot) {
  require(is_attached(slot), "CellScheduler::detach: slot not attached");
  slot_used_[static_cast<std::size_t>(slot)] = false;
  free_slots_.push_back(slot);
  --attached_;
}

bool CellScheduler::is_attached(int slot) const {
  return slot >= 0 && static_cast<std::size_t>(slot) < slot_used_.size() &&
         slot_used_[static_cast<std::size_t>(slot)];
}

double CellScheduler::airtime_share(int active_ues) const {
  require(active_ues >= 0, "CellScheduler: active_ues must be non-negative");
  return (1.0 - config_.background_load) /
         static_cast<double>(std::max(1, active_ues));
}

int CellScheduler::prbs_per_ue(int active_ues) const {
  return static_cast<int>(
      std::floor(static_cast<double>(total_prbs_) * airtime_share(active_ues)));
}

double CellScheduler::utilization(int active_ues) const {
  require(active_ues >= 0, "CellScheduler: active_ues must be non-negative");
  // Full-buffer UEs drain every slot they are granted: any active UE takes
  // the whole non-background frame, so utilization saturates at 1 the
  // moment the cell serves anyone. With nobody active only the background
  // traffic loads the cell — and at background 0 that is exactly 0.0, which
  // keeps unloaded campaigns bit-identical.
  return active_ues > 0 ? 1.0 : config_.background_load;
}

double CellScheduler::ue_throughput_mbps(const NetworkConfig& network,
                                         const UeProfile& ue,
                                         Direction direction, double rsrp,
                                         int active_ues) const {
  require(active_ues >= 1,
          "CellScheduler::ue_throughput_mbps: querying UE must be active");
  const double cell_capacity = loaded_link_capacity_mbps(
      network, ue, direction, rsrp, utilization(active_ues));
  return cell_capacity * airtime_share(active_ues);
}

}  // namespace wild5g::radio
