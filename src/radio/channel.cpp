#include "radio/channel.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace wild5g::radio {

namespace {

// Carrier-aggregation scheduling efficiency: each extra component carrier
// adds slightly less than linear capacity (scheduler + beam-management
// overhead grows with CC count). Calibrated so S20U(8CC) ~3.4 Gbps and
// PX5/S10(4CC) ~2.0 Gbps on mmWave, matching Appendix A.1.
double aggregation_efficiency(int cc_count) {
  return 1.0 - 0.03 * static_cast<double>(cc_count - 1);
}

// Component carriers used for a transfer on this band by this UE.
int cc_count(Band band, const UeProfile& ue, Direction direction) {
  switch (band) {
    case Band::kNrMmWave:
      return direction == Direction::kDownlink
                 ? ue.mmwave_dl_component_carriers
                 : ue.mmwave_ul_component_carriers;
    case Band::kLte:
      return direction == Direction::kDownlink ? 3 : 1;  // typical LTE CA
    case Band::kNrLowBand:
    case Band::kNrMidBand:
      return 1;  // no NR CA on low/mid band in the study's deployments
  }
  return 1;
}

// Nominal LTE-anchor contribution to an NSA low-band EN-DC split bearer at
// perfect signal, scaled down with signal quality.
constexpr double kNsaAnchorDlMbps = 110.0;
constexpr double kNsaAnchorUlMbps = 35.0;

// SA low-band derate (Sec. 3.2: SA achieves about half of NSA; downlink gets
// there naturally by losing the anchor, uplink additionally suffers from
// coverage-driven power control and the immature SA core).
constexpr double kSaUplinkDerate = 0.8;

}  // namespace

const BandParams& band_params(Band band) {
  static const BandParams kMmWave{
      .carrier_freq_ghz = 28.0,
      .cc_bandwidth_mhz = 100.0,
      .pathloss_const_db = 61.4,
      .pathloss_slope_db = 20.0,
      .tx_eirp_dbm = 60.0,
      .rsrp_ref_offset_db = 33.0,
      .noise_floor_dbm = -100.0,
      .cell_radius_m = 200.0,
      .access_latency_ms = 5.6,
      .dl_se_cap_bps_hz = 7.8,
      .ul_se_cap_bps_hz = 1.6,
      .overhead = 0.70,
  };
  static const BandParams kLowBand{
      .carrier_freq_ghz = 0.7,
      .cc_bandwidth_mhz = 20.0,
      .pathloss_const_db = 32.0,
      .pathloss_slope_db = 22.0,
      .tx_eirp_dbm = 46.0,
      .rsrp_ref_offset_db = 27.0,
      .noise_floor_dbm = -112.0,
      .cell_radius_m = 5000.0,
      .access_latency_ms = 12.4,
      .dl_se_cap_bps_hz = 6.0,
      .ul_se_cap_bps_hz = 4.5,
      .overhead = 0.70,
  };
  static const BandParams kMidBand{
      .carrier_freq_ghz = 2.5,
      .cc_bandwidth_mhz = 100.0,
      .pathloss_const_db = 36.0,
      .pathloss_slope_db = 23.0,
      .tx_eirp_dbm = 48.0,
      .rsrp_ref_offset_db = 27.0,
      .noise_floor_dbm = -108.0,
      .cell_radius_m = 1500.0,
      .access_latency_ms = 9.0,
      .dl_se_cap_bps_hz = 6.5,
      .ul_se_cap_bps_hz = 2.5,
      .overhead = 0.70,
  };
  static const BandParams kLte{
      .carrier_freq_ghz = 2.1,
      .cc_bandwidth_mhz = 20.0,
      .pathloss_const_db = 34.0,
      .pathloss_slope_db = 23.0,
      .tx_eirp_dbm = 46.0,
      .rsrp_ref_offset_db = 27.0,
      .noise_floor_dbm = -110.0,
      .cell_radius_m = 2500.0,
      .access_latency_ms = 19.0,
      .dl_se_cap_bps_hz = 5.2,
      .ul_se_cap_bps_hz = 2.6,
      .overhead = 0.65,
  };
  switch (band) {
    case Band::kNrMmWave: return kMmWave;
    case Band::kNrLowBand: return kLowBand;
    case Band::kNrMidBand: return kMidBand;
    case Band::kLte: return kLte;
  }
  return kLte;
}

double path_loss_db(Band band, double distance_m) {
  const auto& params = band_params(band);
  const double d = std::max(1.0, distance_m);
  return params.pathloss_const_db +
         params.pathloss_slope_db * std::log10(d);
}

double rsrp_dbm(Band band, double distance_m, double extra_loss_db) {
  const auto& params = band_params(band);
  const double raw = params.tx_eirp_dbm - path_loss_db(band, distance_m) -
                     params.rsrp_ref_offset_db - extra_loss_db;
  return std::clamp(raw, -140.0, -60.0);
}

double snr_db(Band band, double rsrp) {
  return rsrp - band_params(band).noise_floor_dbm;
}

double interference_rise_db(double cell_load) {
  require(cell_load >= 0.0 && cell_load <= 1.0,
          "interference_rise_db: cell_load out of [0, 1]");
  // Noise-rise dimensioning curve: interference grows linearly with the
  // surrounding utilization; kFullLoadFactor = 3 puts the full-load rise at
  // 10*log10(4) ~ 6 dB. log10(1) == 0 exactly, so zero load adds exactly
  // 0.0 dB and the unloaded SNR (hence every committed golden) is
  // bit-identical to the pre-load model.
  constexpr double kFullLoadFactor = 3.0;
  return 10.0 * std::log10(1.0 + kFullLoadFactor * cell_load);
}

double snr_db(Band band, double rsrp, double cell_load) {
  return rsrp -
         (band_params(band).noise_floor_dbm + interference_rise_db(cell_load));
}

double link_capacity_mbps(const NetworkConfig& config, const UeProfile& ue,
                          Direction direction, double rsrp) {
  return loaded_link_capacity_mbps(config, ue, direction, rsrp, 0.0);
}

double loaded_link_capacity_mbps(const NetworkConfig& config,
                                 const UeProfile& ue, Direction direction,
                                 double rsrp, double cell_load) {
  const auto& params = band_params(config.band);
  const double snr_linear =
      std::pow(10.0, snr_db(config.band, rsrp, cell_load) / 10.0);
  const double se_cap = direction == Direction::kDownlink
                            ? params.dl_se_cap_bps_hz
                            : params.ul_se_cap_bps_hz;
  // Shannon capacity shaped by the band's modulation ceiling; the ceiling
  // also defines the "signal quality" factor used for the NSA anchor share.
  const double shannon = std::log2(1.0 + snr_linear);
  const double se = std::min(se_cap, std::max(0.0, shannon) *
                                         (se_cap / params.dl_se_cap_bps_hz));
  const int ccs = cc_count(config.band, ue, direction);
  double capacity = params.cc_bandwidth_mhz * static_cast<double>(ccs) * se *
                    params.overhead * aggregation_efficiency(ccs);

  const double quality = std::clamp(se / se_cap, 0.0, 1.0);
  if (config.band == Band::kNrLowBand &&
      config.mode == DeploymentMode::kNsa) {
    // EN-DC split bearer: the LTE anchor carries part of the data plane.
    const double anchor = direction == Direction::kDownlink
                              ? kNsaAnchorDlMbps
                              : kNsaAnchorUlMbps;
    capacity += anchor * quality;
  }
  if (is_nr(config.band) && config.mode == DeploymentMode::kSa &&
      direction == Direction::kUplink) {
    capacity *= kSaUplinkDerate;
  }

  const double ue_cap = direction == Direction::kDownlink ? ue.max_dl_mbps
                                                          : ue.max_ul_mbps;
  return std::max(0.0, std::min(capacity, ue_cap));
}

double access_latency_ms(const NetworkConfig& config) {
  return band_params(config.band).access_latency_ms;
}

ChannelProcessConfig default_channel_process(Band band) {
  ChannelProcessConfig config;
  config.band = band;
  switch (band) {
    case Band::kNrMmWave:
      config.mean_distance_m = 120.0;
      config.distance_jitter_m = 60.0;
      config.shadowing_sigma_db = 5.0;
      config.shadowing_tau_s = 6.0;
      config.blockage_rate_per_s = 0.04;  // ~2.4 obstructions per minute
      config.blockage_mean_duration_s = 3.0;
      config.blockage_loss_db = 25.0;
      break;
    case Band::kNrMidBand:
      config.mean_distance_m = 700.0;
      config.distance_jitter_m = 300.0;
      config.shadowing_sigma_db = 4.0;
      config.shadowing_tau_s = 10.0;
      break;
    case Band::kNrLowBand:
      config.mean_distance_m = 2200.0;
      config.distance_jitter_m = 900.0;
      config.shadowing_sigma_db = 3.0;
      config.shadowing_tau_s = 15.0;
      break;
    case Band::kLte:
      config.mean_distance_m = 1100.0;
      config.distance_jitter_m = 450.0;
      config.shadowing_sigma_db = 3.0;
      config.shadowing_tau_s = 15.0;
      break;
  }
  return config;
}

ChannelProcess::ChannelProcess(ChannelProcessConfig config, Rng rng)
    : config_(config), rng_(rng) {
  require(config_.mean_distance_m > 0.0,
          "ChannelProcess: mean_distance_m must be positive");
  require(config_.cell_load >= 0.0 && config_.cell_load <= 1.0,
          "ChannelProcess: cell_load out of [0, 1]");
  refresh_sample();
}

ChannelSample ChannelProcess::step(double dt_s) {
  require(dt_s > 0.0, "ChannelProcess::step: dt must be positive");

  // Ornstein-Uhlenbeck updates for slow distance wander and shadowing.
  auto ou_step = [&](double value, double sigma, double tau) {
    const double decay = std::exp(-dt_s / tau);
    const double noise =
        sigma * std::sqrt(std::max(0.0, 1.0 - decay * decay));
    return value * decay + rng_.normal(0.0, noise);
  };
  distance_offset_m_ =
      ou_step(distance_offset_m_, config_.distance_jitter_m,
              config_.distance_tau_s);
  shadowing_db_ = ou_step(shadowing_db_, config_.shadowing_sigma_db,
                          config_.shadowing_tau_s);

  // Blockage: memoryless arrivals, exponential durations. Deep (building)
  // and partial (foliage/vehicle/body) obstructions run independently.
  if (blockage_remaining_s_ > 0.0) {
    blockage_remaining_s_ -= dt_s;
  } else if (config_.blockage_rate_per_s > 0.0 &&
             rng_.bernoulli(std::min(1.0, config_.blockage_rate_per_s * dt_s))) {
    blockage_remaining_s_ =
        rng_.exponential(config_.blockage_mean_duration_s);
  }
  if (partial_remaining_s_ > 0.0) {
    partial_remaining_s_ -= dt_s;
  } else if (config_.partial_rate_per_s > 0.0 &&
             rng_.bernoulli(std::min(1.0, config_.partial_rate_per_s * dt_s))) {
    partial_remaining_s_ =
        rng_.exponential(config_.partial_mean_duration_s);
  }

  refresh_sample();
  return current_;
}

void ChannelProcess::refresh_sample() {
  const double distance =
      std::max(5.0, config_.mean_distance_m + distance_offset_m_);
  const bool blocked = blockage_remaining_s_ > 0.0;
  const double extra =
      shadowing_db_ + (blocked ? config_.blockage_loss_db : 0.0) +
      (partial_remaining_s_ > 0.0 ? config_.partial_loss_db : 0.0);
  current_ = {
      .rsrp_dbm = rsrp_dbm(config_.band, distance, extra),
      .extra_loss_db = extra,
      .blocked = blocked,
      .cell_load = config_.cell_load,
  };
}

}  // namespace wild5g::radio
