// wild5g/radio: physical-layer channel model.
//
// Maps band + geometry to RSRP, and RSRP + UE capability to achievable link
// capacity. Constants are calibrated so that the simulated networks land on
// the paper's measured operating points:
//   - Verizon NSA mmWave: ~3 Gbps DL / ~220 Mbps UL on S20U (8CC), ~2-2.2 Gbps
//     on PX5/S10 (4CC); NR-SS-RSRP in the -110..-75 dBm range (Figs. 3,4,13).
//   - Low-band NSA (n71/n5-DSS): ~200 Mbps DL / ~100 Mbps UL; SA roughly half
//     of NSA (no carrier aggregation, immature core) (Figs. 6,7).
//   - LTE: ~150-200 Mbps DL / ~40 Mbps UL.
//   - Access latency: mmWave lowest; low-band +6-8 ms; LTE +6-15 ms (Fig. 2).
#pragma once

#include "core/rng.h"
#include "radio/types.h"
#include "radio/ue.h"

namespace wild5g::radio {

/// Static per-band radio parameters.
struct BandParams {
  double carrier_freq_ghz = 0.0;
  double cc_bandwidth_mhz = 0.0;   // bandwidth of one component carrier
  double pathloss_const_db = 0.0;  // PL(d) = const + slope*log10(d_m)
  double pathloss_slope_db = 0.0;
  double tx_eirp_dbm = 0.0;        // effective incl. beamforming gain
  double rsrp_ref_offset_db = 0.0; // wideband power -> per-RE RSRP
  double noise_floor_dbm = 0.0;    // effective (incl. interference margin)
  double cell_radius_m = 0.0;      // usable coverage radius
  double access_latency_ms = 0.0;  // radio+core contribution to RTT
  double dl_se_cap_bps_hz = 0.0;   // spectral-efficiency ceiling, downlink
  double ul_se_cap_bps_hz = 0.0;   // ceiling, uplink (power-limited)
  double overhead = 0.0;           // PHY -> transport goodput factor
};

/// Band parameter table (single source of truth).
[[nodiscard]] const BandParams& band_params(Band band);

/// Log-distance path loss in dB at `distance_m` (>= 1 m enforced).
[[nodiscard]] double path_loss_db(Band band, double distance_m);

/// NR-SS-RSRP (or LTE RSRP) in dBm at `distance_m` with `extra_loss_db` of
/// blockage/shadowing, clamped to the reportable [-140, -60] range.
[[nodiscard]] double rsrp_dbm(Band band, double distance_m,
                              double extra_loss_db = 0.0);

/// Effective SNR in dB for capacity purposes.
[[nodiscard]] double snr_db(Band band, double rsrp);

/// Interference-driven rise of the effective noise floor (dB) when the
/// surrounding network runs at `cell_load` utilization in [0, 1]. Exactly
/// 0.0 at zero load (the unloaded path is bit-identical to the pre-load
/// model); ~6 dB at full load, the classic UMTS/NR dimensioning figure.
[[nodiscard]] double interference_rise_db(double cell_load);

/// SNR with the serving/neighbor cells at `cell_load` utilization.
[[nodiscard]] double snr_db(Band band, double rsrp, double cell_load);

/// Achievable transport-layer capacity in Mbps for one UE camped on
/// `config`, at the given signal strength. Models component-carrier
/// aggregation (per UE modem), the EN-DC split bearer for NSA low-band
/// (NR + LTE anchor share the data plane), the SA derate the paper observed
/// ("half the performance of NSA", Sec. 3.2), and the UE processing ceiling.
[[nodiscard]] double link_capacity_mbps(const NetworkConfig& config,
                                        const UeProfile& ue,
                                        Direction direction, double rsrp);

/// Achievable capacity with the network at `cell_load` utilization in
/// [0, 1]: the interference rise degrades SNR, so capacity is strictly
/// non-increasing in load. `cell_load == 0.0` is bit-identical to
/// link_capacity_mbps (the unloaded campaigns' goldens depend on that).
/// This is the whole-cell number; radio::CellScheduler divides it across
/// the attached UEs' airtime shares.
[[nodiscard]] double loaded_link_capacity_mbps(const NetworkConfig& config,
                                               const UeProfile& ue,
                                               Direction direction,
                                               double rsrp,
                                               double cell_load);

/// Radio access latency (air interface + carrier core) component of RTT.
[[nodiscard]] double access_latency_ms(const NetworkConfig& config);

/// One sample of the time-varying channel.
struct ChannelSample {
  double rsrp_dbm = 0.0;
  double extra_loss_db = 0.0;  // shadowing + blockage actually applied
  bool blocked = false;        // inside an obstruction event
  /// Serving-cell utilization the sample was taken under; throughput
  /// sampling feeds it to loaded_link_capacity_mbps. 0 for the unloaded
  /// single-UE campaigns (their draw sequences and outputs are unchanged).
  double cell_load = 0.0;
};

/// Configuration of the stochastic channel evolution used for walking
/// campaigns and trace generation. Shadowing follows an Ornstein-Uhlenbeck
/// process; mmWave additionally suffers Poisson blockage events with large
/// attenuation (Sec. 4.4: signal "fluctuates frequently and wildly").
struct ChannelProcessConfig {
  Band band = Band::kNrMmWave;
  double mean_distance_m = 120.0;
  double distance_jitter_m = 60.0;   // slow wandering around the mean
  double distance_tau_s = 30.0;
  double shadowing_sigma_db = 4.0;
  double shadowing_tau_s = 8.0;
  double blockage_rate_per_s = 0.0;  // Poisson arrival rate of obstructions
  double blockage_mean_duration_s = 2.0;
  double blockage_loss_db = 25.0;
  /// Secondary, partial obstructions (foliage, vehicles, body): shallower
  /// and more frequent than the deep building blockages.
  double partial_rate_per_s = 0.0;
  double partial_mean_duration_s = 4.0;
  double partial_loss_db = 12.0;
  /// First-class cell load: utilization in [0, 1] of the serving cell the
  /// process is camped on. Copied into every ChannelSample (no extra
  /// draws), where throughput sampling picks it up; 0 preserves the
  /// unloaded campaigns byte for byte.
  double cell_load = 0.0;
};

/// Default stochastic configs per band (blockage only for mmWave).
[[nodiscard]] ChannelProcessConfig default_channel_process(Band band);

/// Evolves RSRP over time; deterministic in the seed of the supplied Rng.
class ChannelProcess {
 public:
  ChannelProcess(ChannelProcessConfig config, Rng rng);

  /// Advances the channel by dt_s and returns the new sample.
  ChannelSample step(double dt_s);

  /// Most recent sample without advancing.
  [[nodiscard]] const ChannelSample& current() const { return current_; }

 private:
  ChannelProcessConfig config_;
  Rng rng_;
  double distance_offset_m_ = 0.0;  // OU around mean_distance
  double shadowing_db_ = 0.0;       // OU around 0
  double blockage_remaining_s_ = 0.0;
  double partial_remaining_s_ = 0.0;
  ChannelSample current_;

  void refresh_sample();
};

}  // namespace wild5g::radio
