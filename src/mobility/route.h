// wild5g/mobility: movement profiles for the walking and driving campaigns.
#pragma once

#include <vector>

#include "core/rng.h"

namespace wild5g::mobility {

/// A 1-D route traversed over time. Position is measured in meters from the
/// route start; speed is piecewise constant between waypoints.
class Route {
 public:
  /// One leg of the journey at a constant speed.
  struct Leg {
    double speed_mps = 0.0;
    double duration_s = 0.0;
  };

  explicit Route(std::vector<Leg> legs);

  /// Position along the route at time t (clamped to the journey's end).
  [[nodiscard]] double position_m(double t_s) const;

  /// Total journey duration.
  [[nodiscard]] double duration_s() const { return total_duration_s_; }

  /// Total distance covered.
  [[nodiscard]] double length_m() const { return total_length_m_; }

 private:
  std::vector<Leg> legs_;
  double total_duration_s_ = 0.0;
  double total_length_m_ = 0.0;
};

/// The paper's walking loop: ~1.6 km covered in ~20 minutes (Sec. 4.1).
[[nodiscard]] Route walking_loop();

/// The paper's 10 km driving route through downtown and freeway segments
/// with speeds from 0 to 100 kph, ~600 s end to end (Sec. 3.3). Stop-and-go
/// segment lengths are randomized from `rng` but total distance/duration are
/// preserved.
[[nodiscard]] Route driving_route(Rng& rng);

}  // namespace wild5g::mobility
