#include "mobility/drive.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "core/error.h"

namespace wild5g::mobility {

std::string to_string(BandSetting setting) {
  switch (setting) {
    case BandSetting::kSaOnly: return "SA-5G only";
    case BandSetting::kNsaPlusLte: return "NSA-5G + LTE";
    case BandSetting::kLteOnly: return "LTE only";
    case BandSetting::kSaPlusLte: return "SA-5G + LTE";
    case BandSetting::kAllBands: return "All Bands";
  }
  return "?";
}

std::string to_string(ActiveRadio radio) {
  switch (radio) {
    case ActiveRadio::kLte: return "4G";
    case ActiveRadio::kNsa5g: return "NSA-5G";
    case ActiveRadio::kSa5g: return "SA-5G";
  }
  return "?";
}

int DriveResult::vertical_handoffs() const {
  return static_cast<int>(
      std::count_if(handoffs.begin(), handoffs.end(),
                    [](const HandoffEvent& h) { return h.vertical; }));
}

int DriveResult::horizontal_handoffs() const {
  return total_handoffs() - vertical_handoffs();
}

double DriveResult::time_fraction(ActiveRadio radio) const {
  if (segments.empty()) return 0.0;
  double on = 0.0;
  double total = 0.0;
  for (const auto& seg : segments) {
    total += seg.end_s - seg.start_s;
    if (seg.radio == radio) on += seg.end_s - seg.start_s;
  }
  return total > 0.0 ? on / total : 0.0;
}

namespace {

/// Alternating on/off coverage patches along the route, in meters.
class CoverageMap {
 public:
  /// Builds patches with exponential on/off lengths; starts "on".
  CoverageMap(double route_length_m, double on_mean_m, double off_mean_m,
              Rng& rng) {
    double at = 0.0;
    bool on = true;
    boundaries_.push_back(0.0);
    while (at < route_length_m) {
      const double len =
          std::max(20.0, rng.exponential(on ? on_mean_m : off_mean_m));
      at += len;
      boundaries_.push_back(at);
      on = !on;
    }
  }

  /// Always-on coverage.
  CoverageMap() : boundaries_{0.0} {}

  [[nodiscard]] bool covered(double pos_m) const {
    // Segment index parity: even -> on.
    const auto it =
        std::upper_bound(boundaries_.begin(), boundaries_.end(), pos_m);
    const auto index = static_cast<std::size_t>(
        std::distance(boundaries_.begin(), it) - 1);
    return index % 2 == 0;
  }

 private:
  std::vector<double> boundaries_;
};

/// Evenly spaced towers (with positional jitter) along the route.
class TowerLine {
 public:
  TowerLine(double route_length_m, double spacing_m, Rng& rng) {
    double at = rng.uniform(0.0, spacing_m);
    while (at < route_length_m + spacing_m) {
      towers_.push_back(at + rng.normal(0.0, spacing_m * 0.08));
      at += spacing_m;
    }
    std::sort(towers_.begin(), towers_.end());
  }

  /// Index of the nearest tower.
  [[nodiscard]] int serving(double pos_m) const {
    const auto it =
        std::lower_bound(towers_.begin(), towers_.end(), pos_m);
    if (it == towers_.begin()) return 0;
    if (it == towers_.end()) return static_cast<int>(towers_.size()) - 1;
    const auto right = static_cast<int>(std::distance(towers_.begin(), it));
    const int left = right - 1;
    return (pos_m - towers_[static_cast<std::size_t>(left)] <=
            towers_[static_cast<std::size_t>(right)] - pos_m)
               ? left
               : right;
  }

 private:
  std::vector<double> towers_;
};

}  // namespace

DriveResult simulate_drive(BandSetting setting, const Route& route,
                           const DriveConfig& config, Rng& rng) {
  require(config.step_s > 0.0, "simulate_drive: step must be positive");
  const double length = route.length_m();

  TowerLine n71_towers(length, config.n71_tower_spacing_m, rng);
  TowerLine lte_towers(length, config.lte_tower_spacing_m, rng);

  // Coverage of the optional legs, per setting.
  CoverageMap nsa_leg;  // EN-DC secondary-cell availability
  CoverageMap sa_leg;   // SA service availability (holes only w/ LTE fallback)
  const bool has_nsa = setting == BandSetting::kNsaPlusLte ||
                       setting == BandSetting::kAllBands;
  const bool has_sa = setting == BandSetting::kSaOnly ||
                      setting == BandSetting::kSaPlusLte ||
                      setting == BandSetting::kAllBands;
  const bool has_lte = setting != BandSetting::kSaOnly;
  if (has_nsa) {
    const bool all = setting == BandSetting::kAllBands;
    nsa_leg = CoverageMap(length, all ? config.nsa_all_on_mean_m
                                      : config.nsa_on_mean_m,
                          all ? config.nsa_all_off_mean_m
                              : config.nsa_off_mean_m,
                          rng);
  }
  if (has_sa && setting != BandSetting::kSaOnly) {
    sa_leg = CoverageMap(length, config.sa_on_mean_m, config.sa_off_mean_m,
                         rng);
  }
  // kSaOnly: low-band SA coverage is omnipresent (default CoverageMap = on).

  auto radio_at = [&](double pos) -> ActiveRadio {
    if (has_nsa && nsa_leg.covered(pos)) return ActiveRadio::kNsa5g;
    if (has_sa && sa_leg.covered(pos)) return ActiveRadio::kSa5g;
    if (has_lte) return ActiveRadio::kLte;
    return ActiveRadio::kSa5g;  // SA-only fallback (always covered)
  };
  auto tower_at = [&](ActiveRadio radio, double pos) {
    return radio == ActiveRadio::kLte ? lte_towers.serving(pos)
                                      : n71_towers.serving(pos);
  };

  DriveResult result;
  result.setting = setting;

  ActiveRadio radio = radio_at(0.0);
  int tower = tower_at(radio, 0.0);
  double segment_start = 0.0;

  // Pending ping-pong toggles: (fire time, tower index to force).
  std::deque<std::pair<double, int>> pingpong;

  const double end_s = route.duration_s();
  for (double t = config.step_s; t <= end_s + 1e-9; t += config.step_s) {
    const double pos = route.position_m(t);
    const ActiveRadio new_radio = radio_at(pos);

    if (new_radio != radio) {
      result.handoffs.push_back({t, radio, new_radio, /*vertical=*/true});
      result.segments.push_back({segment_start, t, radio});
      segment_start = t;
      radio = new_radio;
      tower = tower_at(radio, pos);
      pingpong.clear();
      continue;
    }

    // Scheduled ping-pong toggle fires as a horizontal handoff.
    if (!pingpong.empty() && t >= pingpong.front().first) {
      const int forced = pingpong.front().second;
      pingpong.pop_front();
      if (forced != tower) {
        result.handoffs.push_back({t, radio, radio, /*vertical=*/false});
        tower = forced;
      }
      continue;
    }

    const int new_tower = tower_at(radio, pos);
    if (new_tower != tower) {
      result.handoffs.push_back({t, radio, radio, /*vertical=*/false});
      const int old_tower = tower;
      tower = new_tower;
      // LTE edge ping-pong: briefly bounce back to the previous tower.
      if (radio == ActiveRadio::kLte &&
          rng.bernoulli(config.lte_pingpong_probability)) {
        pingpong.emplace_back(t + 1.5, old_tower);
        pingpong.emplace_back(t + 3.0, new_tower);
      }
    }
  }
  result.segments.push_back({segment_start, end_s, radio});
  return result;
}

}  // namespace wild5g::mobility
