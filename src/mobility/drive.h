// wild5g/mobility: the Sec. 3.3 drive-test handoff experiment.
//
// Reproduces Fig. 9: a 10 km drive under five radio-band configurations
// (selected on the phone via Samsung's service menu in the paper), counting
// horizontal handoffs (tower changes) and vertical handoffs (radio
// technology changes). The key mechanisms modeled:
//  - n71 low-band towers have a large footprint -> few horizontal handoffs.
//  - LTE towers are denser and load-balance aggressively -> more handoffs
//    plus occasional ping-pong around cell edges.
//  - the NSA NR leg is an EN-DC secondary cell that is added/released
//    frequently along the route -> ~90 vertical handoffs in NSA mode.
//  - SA coverage is near-continuous -> very few handoffs overall.
#pragma once

#include <string>
#include <vector>

#include "core/rng.h"
#include "mobility/route.h"

namespace wild5g::mobility {

/// The five band-enable settings of Fig. 9.
enum class BandSetting {
  kSaOnly,      // (i)   SA-n71 band only
  kNsaPlusLte,  // (ii)  NSA-n71 and LTE bands
  kLteOnly,     // (iii) LTE bands only
  kSaPlusLte,   // (iv)  SA-n71 and LTE bands
  kAllBands,    // (v)   default setting
};

/// Radio the UE is actively using for data at an instant.
enum class ActiveRadio { kLte, kNsa5g, kSa5g };

[[nodiscard]] std::string to_string(BandSetting setting);
[[nodiscard]] std::string to_string(ActiveRadio radio);

/// One handoff occurrence.
struct HandoffEvent {
  double t_s = 0.0;
  ActiveRadio from = ActiveRadio::kLte;
  ActiveRadio to = ActiveRadio::kLte;
  bool vertical = false;  // radio-technology change vs tower change
};

/// One constant-radio segment of the Fig. 9 timeline bars.
struct RadioSegment {
  double start_s = 0.0;
  double end_s = 0.0;
  ActiveRadio radio = ActiveRadio::kLte;
};

struct DriveResult {
  BandSetting setting{};
  std::vector<RadioSegment> segments;
  std::vector<HandoffEvent> handoffs;

  [[nodiscard]] int total_handoffs() const {
    return static_cast<int>(handoffs.size());
  }
  [[nodiscard]] int vertical_handoffs() const;
  [[nodiscard]] int horizontal_handoffs() const;
  /// Fraction of drive time spent on each radio.
  [[nodiscard]] double time_fraction(ActiveRadio radio) const;
};

/// Tunable geometry of the drive environment.
struct DriveConfig {
  double step_s = 0.1;           // simulation step
  double n71_tower_spacing_m = 770.0;   // ~13 crossings over 10 km
  double lte_tower_spacing_m = 480.0;   // ~21 crossings over 10 km
  double lte_pingpong_probability = 0.18;  // extra toggle at a cell edge
  // EN-DC secondary-cell patchiness in NSA-only mode (downtown flapping).
  double nsa_on_mean_m = 120.0;
  double nsa_off_mean_m = 105.0;
  // With all bands enabled the EN-DC anchor is steadier.
  double nsa_all_on_mean_m = 280.0;
  double nsa_all_off_mean_m = 200.0;
  // SA coverage holes when LTE is also enabled (UE falls back).
  double sa_on_mean_m = 800.0;
  double sa_off_mean_m = 120.0;
};

/// Simulates one drive of `route` under `setting`; deterministic in `rng`.
[[nodiscard]] DriveResult simulate_drive(BandSetting setting,
                                         const Route& route,
                                         const DriveConfig& config, Rng& rng);

}  // namespace wild5g::mobility
