#include "mobility/route.h"

#include "core/error.h"

namespace wild5g::mobility {

Route::Route(std::vector<Leg> legs) : legs_(std::move(legs)) {
  require(!legs_.empty(), "Route: needs at least one leg");
  for (const auto& leg : legs_) {
    require(leg.speed_mps >= 0.0 && leg.duration_s > 0.0,
            "Route: invalid leg");
    total_duration_s_ += leg.duration_s;
    total_length_m_ += leg.speed_mps * leg.duration_s;
  }
}

double Route::position_m(double t_s) const {
  require(t_s >= 0.0, "Route::position_m: negative time");
  double pos = 0.0;
  double t = t_s;
  for (const auto& leg : legs_) {
    if (t <= leg.duration_s) return pos + leg.speed_mps * t;
    pos += leg.speed_mps * leg.duration_s;
    t -= leg.duration_s;
  }
  return total_length_m_;
}

Route walking_loop() {
  // 1.6 km in 20 minutes -> ~1.33 m/s steady walk.
  return Route({{1.6 * 1000.0 / (20.0 * 60.0), 20.0 * 60.0}});
}

Route driving_route(Rng& rng) {
  // Three phases with fixed time budgets that together land on the paper's
  // 10 km / 600 s journey: downtown stop-and-go, arterial, then freeway.
  // Within each phase the micro-structure is randomized, then the phase's
  // speeds are scaled (by a factor close to 1) to hit its distance target,
  // so speeds always stay inside the 0-100 kph envelope.
  std::vector<Route::Leg> legs;

  // Appends a phase and returns its generated legs' index range.
  auto add_phase = [&](double time_budget_s, double distance_target_m,
                       double speed_lo, double speed_hi, double stop_lo,
                       double stop_hi, double go_lo, double go_hi,
                       bool with_stops) {
    const std::size_t first = legs.size();
    double t = 0.0;
    double dist = 0.0;
    while (t < time_budget_s - 1.0) {
      if (with_stops && rng.bernoulli(0.5)) {
        const double stop = std::min(rng.uniform(stop_lo, stop_hi),
                                     time_budget_s - t);
        legs.push_back({0.0, stop});
        t += stop;
        if (t >= time_budget_s - 1.0) break;
      }
      const double speed = rng.uniform(speed_lo, speed_hi);
      const double go = std::min(rng.uniform(go_lo, go_hi),
                                 time_budget_s - t);
      legs.push_back({speed, go});
      t += go;
      dist += speed * go;
    }
    // Scale this phase's speeds onto the distance target (factor ~1).
    if (dist > 0.0) {
      const double scale = distance_target_m / dist;
      for (std::size_t i = first; i < legs.size(); ++i) {
        legs[i].speed_mps *= scale;
      }
    }
  };

  // Downtown: 180 s, 900 m, 6-10 m/s bursts between lights.
  add_phase(180.0, 900.0, 6.0, 10.0, 5.0, 18.0, 10.0, 25.0, true);
  // Arterial: 150 s, 1950 m, 11-15 m/s.
  add_phase(150.0, 1950.0, 11.0, 15.0, 0.0, 0.0, 20.0, 45.0, false);
  // Freeway: 270 s, 7150 m, 24-28 m/s (86-100 kph).
  add_phase(270.0, 7150.0, 24.0, 28.0, 0.0, 0.0, 20.0, 40.0, false);

  // Final exact normalization; both residual factors are within a few
  // percent of 1, so the 0-100 kph envelope is preserved.
  double duration = 0.0;
  double length = 0.0;
  for (const auto& leg : legs) {
    duration += leg.duration_s;
    length += leg.speed_mps * leg.duration_s;
  }
  const double time_scale = 600.0 / duration;
  const double dist_scale = 10000.0 / length;
  for (auto& leg : legs) {
    leg.duration_s *= time_scale;
    leg.speed_mps *= dist_scale / time_scale;
  }
  return Route(std::move(legs));
}

}  // namespace wild5g::mobility
