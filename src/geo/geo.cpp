#include "geo/geo.h"

#include <cmath>
#include <numbers>

namespace wild5g::geo {

namespace {
constexpr double kEarthRadiusKm = 6371.0;

double deg_to_rad(double deg) { return deg * std::numbers::pi / 180.0; }
}  // namespace

double haversine_km(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = deg_to_rad(a.lat_deg);
  const double lat2 = deg_to_rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg_to_rad(b.lon_deg - a.lon_deg);
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

Place minneapolis() { return {"Minneapolis, MN", {44.9778, -93.2650}}; }
Place ann_arbor() { return {"Ann Arbor, MI", {42.2808, -83.7430}}; }

std::span<const Place> metro_cities() {
  static const std::vector<Place> kCities = {
      {"Minneapolis, MN", {44.9778, -93.2650}},
      {"Chicago, IL", {41.8781, -87.6298}},
      {"Kansas City, MO", {39.0997, -94.5786}},
      {"Denver, CO", {39.7392, -104.9903}},
      {"Detroit, MI", {42.3314, -83.0458}},
      {"St. Louis, MO", {38.6270, -90.1994}},
      {"Dallas, TX", {32.7767, -96.7970}},
      {"Houston, TX", {29.7604, -95.3698}},
      {"Atlanta, GA", {33.7490, -84.3880}},
      {"New York, NY", {40.7128, -74.0060}},
      {"Boston, MA", {42.3601, -71.0589}},
      {"Washington, DC", {38.9072, -77.0369}},
      {"Charlotte, NC", {35.2271, -80.8431}},
      {"Miami, FL", {25.7617, -80.1918}},
      {"Nashville, TN", {36.1627, -86.7816}},
      {"Phoenix, AZ", {33.4484, -112.0740}},
      {"Salt Lake City, UT", {40.7608, -111.8910}},
      {"Las Vegas, NV", {36.1699, -115.1398}},
      {"Los Angeles, CA", {34.0522, -118.2437}},
      {"San Francisco, CA", {37.7749, -122.4194}},
      {"Seattle, WA", {47.6062, -122.3321}},
      {"Portland, OR", {45.5152, -122.6784}},
      {"Philadelphia, PA", {39.9526, -75.1652}},
      {"Pittsburgh, PA", {40.4406, -79.9959}},
      {"Cleveland, OH", {41.4993, -81.6944}},
      {"Omaha, NE", {41.2565, -95.9345}},
      {"New Orleans, LA", {29.9511, -90.0715}},
      {"San Antonio, TX", {29.4241, -98.4936}},
      {"Tampa, FL", {27.9506, -82.4572}},
      {"San Diego, CA", {32.7157, -117.1611}},
  };
  return kCities;
}

std::span<const AzureRegion> azure_regions() {
  // Quoted distances are the Fig. 8 x-axis annotations for a Minneapolis UE.
  static const std::vector<AzureRegion> kRegions = {
      {"Central", {41.5868, -93.6250}, 374.0},        // Des Moines, IA
      {"North Central", {41.8781, -87.6298}, 563.0},  // Chicago, IL
      {"East", {36.6676, -78.3875}, 1393.0},          // Boydton, VA
      {"West Central", {41.1400, -104.8202}, 1444.0}, // Cheyenne, WY
      {"East2", {36.8529, -75.9780}, 1539.0},         // Virginia Beach, VA
      {"South Central", {29.4241, -98.4936}, 1779.0}, // San Antonio, TX
      {"West2", {47.2343, -119.8526}, 2044.0},        // Quincy, WA
      {"West", {37.3541, -121.9552}, 2532.0},         // Santa Clara, CA
  };
  return kRegions;
}

}  // namespace wild5g::geo
