// wild5g/geo: geographic primitives and the location catalogs used by the
// measurement campaigns (UE cities, speedtest server cities, Azure regions).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace wild5g::geo {

/// A WGS84 latitude/longitude pair in degrees.
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

/// Great-circle distance between two points in kilometers (haversine).
[[nodiscard]] double haversine_km(const GeoPoint& a, const GeoPoint& b);

/// A named location (city or datacenter site).
struct Place {
  std::string name;
  GeoPoint point;
};

/// The two UE cities of the study.
[[nodiscard]] Place minneapolis();
[[nodiscard]] Place ann_arbor();

/// Major US metropolitan areas where carriers host speedtest servers
/// (paper Sec. 3.1: "mainly located in major metropolitan U.S. cities").
[[nodiscard]] std::span<const Place> metro_cities();

/// One Azure region of the Fig. 8 campaign. `quoted_distance_km` is the
/// UE-server distance the paper reports for a Minneapolis UE; coordinates are
/// the region's actual datacenter metro and agree with the quote to ~10%.
struct AzureRegion {
  std::string name;
  GeoPoint point;
  double quoted_distance_km = 0.0;
};

/// All US Azure regions of Fig. 8, ordered by quoted UE-server distance.
[[nodiscard]] std::span<const AzureRegion> azure_regions();

}  // namespace wild5g::geo
