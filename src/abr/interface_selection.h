// wild5g/abr: 5G-aware video streaming (Sec. 5.4).
//
// The scheme: stream over mmWave 5G by default; when the predicted 5G
// throughput drops below 4G's typical rate, fall back to the (stable) 4G
// interface; return to 5G once the playback buffer recovers past a
// threshold. Interface switches pay the 4G<->5G switch delay (Sec. 4.2)
// unless the no-overhead idealization is requested. Energy is scored with
// the device power rails, reproducing Fig. 18c and Table 4.
#pragma once

#include <string>
#include <vector>

#include "abr/algorithms.h"
#include "abr/session.h"
#include "power/power_model.h"

namespace wild5g::abr {

enum class Interface { k5g, k4g };

struct InterfaceSelectionConfig {
  double buffer_high_s = 10.0;      // buffer level to return to 5G
  double low_threshold_mbps = 20.0; // ~4G average throughput
  double switch_delay_s = 1.5;      // interface switch blackout
  /// Re-probe 5G after this long on 4G even if the buffer has not recovered
  /// (4G can only sustain the lowest track, so waiting on the buffer alone
  /// can strand the session on 4G after a transient 5G outage).
  double max_4g_dwell_s = 16.0;
  bool model_switch_overhead = true;
  /// Energy accounting assumptions.
  double rsrp_5g_dbm = -80.0;
  double rsrp_4g_dbm = -85.0;
  double switch_energy_j = 2.2;     // Table 2 switch power x delay
};

/// Bandwidth source that can be retargeted between a 5G and a 4G trace,
/// with a blackout window during switches. Records switch events so the
/// active interface at any time can be reconstructed for energy accounting.
class SwitchableSource final : public BandwidthSource {
 public:
  SwitchableSource(const traces::Trace& trace_5g,
                   const traces::Trace& trace_4g);

  [[nodiscard]] double mbps_at(double t_s) const override;

  void request_switch(Interface to, double now_s, double delay_s);
  [[nodiscard]] Interface active() const { return active_; }
  [[nodiscard]] int switch_count() const { return switch_count_; }
  /// Interface in effect at time t (destination during a blackout).
  [[nodiscard]] Interface interface_at(double t_s) const;

 private:
  struct SwitchEvent {
    double at_s;
    Interface to;
  };
  const traces::Trace* trace_5g_;
  const traces::Trace* trace_4g_;
  Interface active_ = Interface::k5g;
  double blackout_until_s_ = 0.0;
  int switch_count_ = 0;
  std::vector<SwitchEvent> events_;
};

struct InterfaceRunResult {
  SessionResult session;
  int switch_count = 0;
  std::vector<Interface> per_second_interface;
  double energy_j = 0.0;
};

/// Streams one video with the 5G-aware MPC over the trace pair.
[[nodiscard]] InterfaceRunResult stream_5g_aware(
    const VideoProfile& video, const traces::Trace& trace_5g,
    const traces::Trace& trace_4g, const SessionOptions& options,
    const InterfaceSelectionConfig& config,
    const power::DevicePowerProfile& device);

/// Baseline: plain fastMPC pinned to the 5G interface, scored with the same
/// energy model.
[[nodiscard]] InterfaceRunResult stream_5g_only(
    const VideoProfile& video, const traces::Trace& trace_5g,
    const SessionOptions& options, const InterfaceSelectionConfig& config,
    const power::DevicePowerProfile& device);

/// Radio energy of a finished session given the interface in effect each
/// second (all-5G when `per_second_interface` is empty).
[[nodiscard]] double session_energy_j(
    const SessionResult& session,
    const std::vector<Interface>& per_second_interface,
    const InterfaceSelectionConfig& config,
    const power::DevicePowerProfile& device);

}  // namespace wild5g::abr
