#include "abr/pensieve_like.h"

#include <algorithm>

#include "abr/algorithms.h"
#include "core/error.h"

namespace wild5g::abr {

namespace {

/// Wraps an algorithm and logs (features, action) pairs for distillation.
class RecordingAlgorithm final : public AbrAlgorithm,
                                 public SourceAwareAlgorithm {
 public:
  RecordingAlgorithm(ModelPredictiveAbr& oracle, ml::Dataset& sink,
                     std::vector<double> (*featurize)(const AbrContext&))
      : oracle_(&oracle), sink_(&sink), featurize_(featurize) {}

  [[nodiscard]] std::string name() const override { return "recorder"; }
  [[nodiscard]] int choose_track(const AbrContext& context) override {
    const int action = oracle_->choose_track(context);
    sink_->add(featurize_(context), static_cast<double>(action));
    return action;
  }
  void on_session_start(const BandwidthSource& source) override {
    oracle_->on_session_start(source);
  }
  void reset() override { oracle_->reset(); }

 private:
  ModelPredictiveAbr* oracle_;
  ml::Dataset* sink_;
  std::vector<double> (*featurize_)(const AbrContext&);
};

}  // namespace

PensieveLikeAbr::PensieveLikeAbr()
    : policy_([] {
        ml::TreeConfig config;
        config.max_depth = 10;
        config.min_samples_leaf = 4;
        config.min_samples_split = 8;
        return ml::DecisionTreeClassifier(config);
      }()) {}

std::vector<double> PensieveLikeAbr::features(const AbrContext& context) {
  const double top = context.video->top_mbps();
  const double last_tput =
      context.past_chunk_mbps.empty() ? 0.0
                                      : context.past_chunk_mbps.back() / top;
  const double hm5 =
      recent_harmonic_mean(context.past_chunk_mbps, 5,
                           context.video->track_mbps.front()) /
      top;
  const double buffer_norm = context.buffer_s / context.max_buffer_s;
  const double last_track_norm =
      context.last_track < 0
          ? 0.0
          : static_cast<double>(context.last_track) /
                static_cast<double>(context.video->track_count() - 1);
  const double remaining =
      static_cast<double>(context.chunk_count - context.next_chunk) /
      static_cast<double>(context.chunk_count);
  return {last_tput, hm5, buffer_norm, last_track_norm, remaining};
}

void PensieveLikeAbr::train(const VideoProfile& video,
                            const std::vector<traces::Trace>& training_traces,
                            const SessionOptions& options, Rng& /*rng*/) {
  require(!training_traces.empty(), "PensieveLikeAbr::train: no traces");
  ml::Dataset data;
  data.feature_names = {"last_tput", "hm5_tput", "buffer", "last_track",
                        "remaining"};

  OraclePredictor oracle_predictor(video.chunk_s);
  ModelPredictiveAbr oracle(ModelPredictiveAbr::Variant::kFast,
                            oracle_predictor);
  RecordingAlgorithm recorder(oracle, data, &PensieveLikeAbr::features);
  (void)evaluate_on_traces(video, training_traces, recorder, options);

  require(data.size() >= 200, "PensieveLikeAbr::train: too few decisions");
  policy_.fit(data);
}

int PensieveLikeAbr::choose_track(const AbrContext& context) {
  require(policy_.is_fitted(), "PensieveLikeAbr: not trained");
  const auto f = features(context);
  return std::clamp(policy_.predict(f), 0, context.video->track_count() - 1);
}

}  // namespace wild5g::abr
