// wild5g/abr: video encoding ladders (Sec. 5.1).
//
// Six tracks with a ~1.5x encoded-bitrate ratio between adjacent tracks.
// The top track matches the median throughput of the trace population:
// 160 Mbps for the 5G ladder, 20 Mbps for 4G.
#pragma once

#include <vector>

namespace wild5g::abr {

struct VideoProfile {
  double chunk_s = 4.0;
  std::vector<double> track_mbps;  // ascending

  [[nodiscard]] int track_count() const {
    return static_cast<int>(track_mbps.size());
  }
  [[nodiscard]] double top_mbps() const { return track_mbps.back(); }
  [[nodiscard]] double bitrate(int track) const;
};

/// The 5G ladder: top track 160 Mbps, ratio ~1.5, six tracks.
[[nodiscard]] VideoProfile video_ladder_5g(double chunk_s = 4.0);

/// The 4G ladder: top track 20 Mbps, ratio ~1.5, six tracks.
[[nodiscard]] VideoProfile video_ladder_4g(double chunk_s = 4.0);

/// Generic ladder with `tracks` tracks ending at `top_mbps`.
[[nodiscard]] VideoProfile make_ladder(double top_mbps, int tracks,
                                       double chunk_s, double ratio = 1.5);

}  // namespace wild5g::abr
