#include "abr/interface_selection.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace wild5g::abr {

SwitchableSource::SwitchableSource(const traces::Trace& trace_5g,
                                   const traces::Trace& trace_4g)
    : trace_5g_(&trace_5g), trace_4g_(&trace_4g) {
  events_.push_back({0.0, Interface::k5g});
}

double SwitchableSource::mbps_at(double t_s) const {
  if (t_s < blackout_until_s_) return 0.0;  // mid-switch: no interface up
  return active_ == Interface::k5g ? trace_5g_->at(t_s) : trace_4g_->at(t_s);
}

void SwitchableSource::request_switch(Interface to, double now_s,
                                      double delay_s) {
  if (to == active_) return;
  active_ = to;
  blackout_until_s_ = now_s + std::max(0.0, delay_s);
  ++switch_count_;
  events_.push_back({now_s, to});
}

Interface SwitchableSource::interface_at(double t_s) const {
  Interface current = Interface::k5g;
  for (const auto& event : events_) {
    if (event.at_s <= t_s) current = event.to;
  }
  return current;
}

namespace {

/// MPC wrapper implementing the switching policy at chunk boundaries.
class FiveGAwareMpc final : public AbrAlgorithm, public SourceAwareAlgorithm {
 public:
  FiveGAwareMpc(ModelPredictiveAbr& inner, SwitchableSource& source,
                const InterfaceSelectionConfig& config)
      : inner_(&inner), source_(&source), config_(&config) {}

  [[nodiscard]] std::string name() const override { return "5G-aware MPC"; }

  [[nodiscard]] int choose_track(const AbrContext& context) override {
    const double delay =
        config_->model_switch_overhead ? config_->switch_delay_s : 0.0;
    if (source_->active() == Interface::k5g) {
      // Require two consecutive slow chunks: deep outages persist for tens
      // of seconds (they will show twice), while transient partial dips
      // recover before a switch could pay for its blackout.
      const auto& past = context.past_chunk_mbps;
      const bool two_low =
          past.size() >= 2 &&
          past[past.size() - 1] < config_->low_threshold_mbps &&
          past[past.size() - 2] < config_->low_threshold_mbps;
      if (two_low) {
        source_->request_switch(Interface::k4g, context.now_s, delay);
        on_4g_since_s_ = context.now_s;
      }
    } else if (context.buffer_s >= config_->buffer_high_s ||
               context.now_s - on_4g_since_s_ >= config_->max_4g_dwell_s) {
      source_->request_switch(Interface::k5g, context.now_s, delay);
    }
    return inner_->choose_track(context);
  }

  void on_session_start(const BandwidthSource& source) override {
    inner_->on_session_start(source);
  }
  void reset() override { inner_->reset(); }

 private:
  ModelPredictiveAbr* inner_;
  SwitchableSource* source_;
  const InterfaceSelectionConfig* config_;
  double on_4g_since_s_ = 0.0;
};

}  // namespace

double session_energy_j(const SessionResult& session,
                        const std::vector<Interface>& per_second_interface,
                        const InterfaceSelectionConfig& config,
                        const power::DevicePowerProfile& device) {
  double energy_j = 0.0;
  for (std::size_t s = 0; s < session.per_second_dl_mbps.size(); ++s) {
    const Interface iface = per_second_interface.empty()
                                ? Interface::k5g
                                : per_second_interface[std::min(
                                      s, per_second_interface.size() - 1)];
    const bool on_5g = iface == Interface::k5g;
    const double dl = session.per_second_dl_mbps[s];
    const double power_mw = device.transfer_power_mw(
        on_5g ? power::RailKey::kNsaMmWave : power::RailKey::k4g, dl,
        dl * 0.03, on_5g ? config.rsrp_5g_dbm : config.rsrp_4g_dbm);
    energy_j += power_mw / 1000.0;
  }
  return energy_j;
}

InterfaceRunResult stream_5g_aware(const VideoProfile& video,
                                   const traces::Trace& trace_5g,
                                   const traces::Trace& trace_4g,
                                   const SessionOptions& options,
                                   const InterfaceSelectionConfig& config,
                                   const power::DevicePowerProfile& device) {
  SwitchableSource source(trace_5g, trace_4g);
  HarmonicMeanPredictor predictor;
  ModelPredictiveAbr mpc(ModelPredictiveAbr::Variant::kFast, predictor);
  FiveGAwareMpc aware(mpc, source, config);
  aware.on_session_start(source);

  InterfaceRunResult result;
  result.session = stream(video, source, aware, options);
  result.switch_count = source.switch_count();

  const auto seconds = result.session.per_second_dl_mbps.size();
  result.per_second_interface.reserve(seconds);
  for (std::size_t s = 0; s < seconds; ++s) {
    result.per_second_interface.push_back(
        source.interface_at(static_cast<double>(s) + 0.5));
  }
  result.energy_j =
      session_energy_j(result.session, result.per_second_interface, config,
                       device) +
      (config.model_switch_overhead
           ? config.switch_energy_j * result.switch_count
           : 0.0);
  return result;
}

InterfaceRunResult stream_5g_only(const VideoProfile& video,
                                  const traces::Trace& trace_5g,
                                  const SessionOptions& options,
                                  const InterfaceSelectionConfig& config,
                                  const power::DevicePowerProfile& device) {
  TraceSource source(trace_5g);
  HarmonicMeanPredictor predictor;
  ModelPredictiveAbr mpc(ModelPredictiveAbr::Variant::kFast, predictor);
  mpc.on_session_start(source);

  InterfaceRunResult result;
  result.session = stream(video, source, mpc, options);
  result.energy_j = session_energy_j(result.session, {}, config, device);
  return result;
}

}  // namespace wild5g::abr
