// wild5g/abr: a learning-based ABR standing in for Pensieve [38].
//
// Substitution note (see DESIGN.md): the original Pensieve is an A3C neural
// policy trained on (mostly 4G-scale) throughput traces. We reproduce the
// property the paper actually measures — a learned policy whose training
// distribution lacks 5G dynamics misjudges mmWave swings and stalls badly —
// by distilling the ground-truth-MPC oracle into a decision-tree policy over
// normalized state features, trained on 4G-character traces. On 4G it is
// near-oracle (as Pensieve was); on mmWave 5G its out-of-distribution
// aggressiveness produces the paper's stall blow-up.
#pragma once

#include <string>
#include <vector>

#include "abr/session.h"
#include "core/rng.h"
#include "ml/decision_tree.h"

namespace wild5g::abr {

class PensieveLikeAbr final : public AbrAlgorithm {
 public:
  PensieveLikeAbr();

  /// Distills the oracle policy on `training_traces` (run with the ladder
  /// normalized to the training population, as Pensieve's reward was).
  void train(const VideoProfile& video,
             const std::vector<traces::Trace>& training_traces,
             const SessionOptions& options, Rng& rng);

  [[nodiscard]] std::string name() const override { return "Pensieve"; }
  [[nodiscard]] int choose_track(const AbrContext& context) override;
  [[nodiscard]] bool is_trained() const { return policy_.is_fitted(); }

 private:
  ml::DecisionTreeClassifier policy_;

  /// Scale-free state features so the policy transfers across ladders
  /// (throughputs normalized by the ladder's top bitrate).
  [[nodiscard]] static std::vector<double> features(
      const AbrContext& context);
};

}  // namespace wild5g::abr
