// wild5g/abr: the seven ABR algorithms evaluated in Sec. 5.2.
//
//   Buffer-based:      BBA [32], BOLA [56]
//   Throughput-based:  RB (simple rate-based), FESTIVE [33]
//   Control-theoretic: fastMPC, robustMPC [62]
//   Learning-based:    PensieveLike (see pensieve_like.h)
#pragma once

#include <deque>
#include <string>

#include "abr/predictor.h"
#include "abr/session.h"

namespace wild5g::abr {

/// Simple rate-based: highest track whose bitrate fits the recent harmonic
/// mean throughput. No safety margin — the aggressive baseline.
class RateBasedAbr final : public AbrAlgorithm {
 public:
  explicit RateBasedAbr(int window = 3) : window_(window) {}
  [[nodiscard]] std::string name() const override { return "RB"; }
  [[nodiscard]] int choose_track(const AbrContext& context) override;

 private:
  int window_;
};

/// Buffer-Based Adaptation (BBA-0): bitrate is a linear function of buffer
/// occupancy between a reservoir and a cushion.
class BbaAbr final : public AbrAlgorithm {
 public:
  BbaAbr(double reservoir_s = 5.0, double cushion_fraction = 0.9)
      : reservoir_s_(reservoir_s), cushion_fraction_(cushion_fraction) {}
  [[nodiscard]] std::string name() const override { return "BBA"; }
  [[nodiscard]] int choose_track(const AbrContext& context) override;

 private:
  double reservoir_s_;
  double cushion_fraction_;
};

/// BOLA (basic): Lyapunov utility maximization over buffer level.
class BolaAbr final : public AbrAlgorithm {
 public:
  explicit BolaAbr(double gp = 5.0) : gp_(gp) {}
  [[nodiscard]] std::string name() const override { return "BOLA"; }
  [[nodiscard]] int choose_track(const AbrContext& context) override;

 private:
  double gp_;
};

/// FESTIVE: conservative harmonic-mean estimate with gradual (one-level)
/// switching and a stability brake.
class FestiveAbr final : public AbrAlgorithm {
 public:
  FestiveAbr(int window = 20, double safety = 0.85)
      : window_(window), safety_(safety) {}
  [[nodiscard]] std::string name() const override { return "FESTIVE"; }
  [[nodiscard]] int choose_track(const AbrContext& context) override;
  void reset() override { recent_switches_.clear(); }

 private:
  int window_;
  double safety_;
  std::deque<bool> recent_switches_;
};

/// MPC family: maximizes the linear QoE over a receding horizon using a
/// plug-in throughput predictor. kFast trusts the prediction; kRobust
/// discounts it by the recent maximum prediction error (robustMPC).
class ModelPredictiveAbr final : public AbrAlgorithm,
                                 public SourceAwareAlgorithm {
 public:
  enum class Variant { kFast, kRobust };

  ModelPredictiveAbr(Variant variant, ThroughputPredictor& predictor,
                     int horizon = 5);

  /// Horizon (in chunks) that keeps the paper's ~20 s lookahead across
  /// chunk lengths (5 chunks at 4 s; more chunks for shorter chunks).
  [[nodiscard]] static int horizon_for_chunk_length(double chunk_s);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int choose_track(const AbrContext& context) override;
  void on_session_start(const BandwidthSource& source) override {
    predictor_->on_session_start(source);
  }
  void reset() override;

  /// The raw (undiscounted) prediction made for the last decision.
  [[nodiscard]] double last_prediction_mbps() const {
    return last_prediction_mbps_;
  }

 private:
  Variant variant_;
  ThroughputPredictor* predictor_;
  int horizon_;
  std::deque<double> relative_errors_;
  double last_prediction_mbps_ = -1.0;

  [[nodiscard]] double plan_qoe(const AbrContext& context, int first_track,
                                double predicted_mbps) const;
};

}  // namespace wild5g::abr
