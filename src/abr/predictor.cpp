#include "abr/predictor.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "core/stats.h"

namespace wild5g::abr {

double recent_harmonic_mean(std::span<const double> past, int window,
                            double fallback_mbps) {
  if (past.empty()) return fallback_mbps;
  const auto count =
      std::min<std::size_t>(past.size(), static_cast<std::size_t>(window));
  double inv_sum = 0.0;
  for (std::size_t i = past.size() - count; i < past.size(); ++i) {
    inv_sum += 1.0 / std::max(0.01, past[i]);
  }
  return static_cast<double>(count) / inv_sum;
}

double HarmonicMeanPredictor::predict_mbps(const AbrContext& context) {
  // Before any history exists, assume the lowest track is sustainable.
  const double fallback = context.video->track_mbps.front();
  return recent_harmonic_mean(context.past_chunk_mbps, window_, fallback);
}

double OraclePredictor::predict_mbps(const AbrContext& context) {
  require(source_ != nullptr,
          "OraclePredictor: on_session_start was not called");
  constexpr double kStep = 0.25;
  double sum = 0.0;
  int samples = 0;
  for (double t = context.now_s; t < context.now_s + horizon_s_; t += kStep) {
    sum += source_->mbps_at(t);
    ++samples;
  }
  return std::max(0.05, sum / std::max(1, samples));
}

GbdtPredictor::GbdtPredictor(int window, double horizon_s)
    : window_(window), horizon_s_(horizon_s) {
  require(window_ >= 1 && horizon_s_ > 0.0, "GbdtPredictor: invalid config");
  ml::GbdtConfig config;
  config.tree_count = 120;
  config.learning_rate = 0.1;
  config.tree.max_depth = 4;
  model_ = ml::GradientBoostedRegressor(config);
}

std::vector<double> GbdtPredictor::features_from(
    std::span<const double> past) const {
  std::vector<double> features(static_cast<std::size_t>(window_), 0.0);
  // Right-align history; pad the far past with the oldest known value.
  // Log space, matching training.
  const double pad = past.empty() ? 0.05 : past.front();
  for (int i = 0; i < window_; ++i) {
    const int source_index =
        static_cast<int>(past.size()) - window_ + i;
    const double raw =
        source_index >= 0 ? past[static_cast<std::size_t>(source_index)]
                          : pad;
    features[static_cast<std::size_t>(i)] = std::log2(std::max(0.05, raw));
  }
  return features;
}

void GbdtPredictor::train(const std::vector<traces::Trace>& traces,
                          Rng& rng) {
  require(!traces.empty(), "GbdtPredictor::train: no traces");
  ml::Dataset data;
  data.feature_names.resize(static_cast<std::size_t>(window_));
  for (int i = 0; i < window_; ++i) {
    data.feature_names[static_cast<std::size_t>(i)] =
        "tput_t-" + std::to_string(window_ - i);
  }
  // Aggregate each trace into chunk-length means first so training samples
  // live on the same scale as the per-chunk throughputs the predictor sees
  // at decision time.
  const auto horizon = static_cast<std::size_t>(
      std::max(1.0, std::round(horizon_s_)));
  for (const auto& trace : traces) {
    std::vector<double> agg;
    for (std::size_t at = 0; at + horizon <= trace.mbps.size();
         at += horizon) {
      double sum = 0.0;
      for (std::size_t j = 0; j < horizon; ++j) sum += trace.mbps[at + j];
      agg.push_back(sum / static_cast<double>(horizon));
    }
    if (agg.size() < static_cast<std::size_t>(window_) + 1) continue;
    for (std::size_t at = static_cast<std::size_t>(window_);
         at < agg.size();
         at += 1 + static_cast<std::size_t>(rng.uniform_int(0, 1))) {
      // Train in log space: squared error on raw Mbps would be dominated by
      // the multi-Gbps region, leaving the low-rate region — where rate
      // adaptation lives or dies — essentially unfit.
      std::vector<double> features;
      features.reserve(static_cast<std::size_t>(window_));
      for (std::size_t j = at - static_cast<std::size_t>(window_); j < at;
           ++j) {
        features.push_back(std::log2(std::max(0.05, agg[j])));
      }
      data.add(std::move(features), std::log2(std::max(0.05, agg[at])));
    }
  }
  require(data.size() >= 100, "GbdtPredictor::train: too few windows");
  model_.fit(data);
}

double GbdtPredictor::predict_mbps(const AbrContext& context) {
  require(model_.is_fitted(), "GbdtPredictor: not trained");
  if (context.past_chunk_mbps.empty()) {
    return context.video->track_mbps.front();
  }
  const auto features = features_from(context.past_chunk_mbps);
  const double raw_log2 = model_.predict(features);
  // EMA smoothing in log space: tree ensembles are piecewise-constant, and
  // un-smoothed step changes between adjacent leaves would churn the MPC's
  // track choice (paying the smoothness penalty for no QoE gain). Downward
  // moves pass through unsmoothed so collapses are never under-reacted to.
  if (!has_smoothed_ || raw_log2 < smoothed_log2_) {
    smoothed_log2_ = raw_log2;
    has_smoothed_ = true;
  } else {
    smoothed_log2_ = 0.5 * smoothed_log2_ + 0.5 * raw_log2;
  }
  return std::max(0.05, std::exp2(smoothed_log2_));
}

void GbdtPredictor::on_session_start(const BandwidthSource& /*source*/) {
  has_smoothed_ = false;
  smoothed_log2_ = 0.0;
}

}  // namespace wild5g::abr
