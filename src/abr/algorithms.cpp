#include "abr/algorithms.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.h"

namespace wild5g::abr {

namespace {

/// Highest track with bitrate <= budget; 0 when none fit.
int highest_track_within(const VideoProfile& video, double budget_mbps) {
  int track = 0;
  for (int i = 0; i < video.track_count(); ++i) {
    if (video.bitrate(i) <= budget_mbps) track = i;
  }
  return track;
}

}  // namespace

int RateBasedAbr::choose_track(const AbrContext& context) {
  const double estimate = recent_harmonic_mean(
      context.past_chunk_mbps, window_, context.video->track_mbps.front());
  return highest_track_within(*context.video, estimate);
}

int BbaAbr::choose_track(const AbrContext& context) {
  const auto& video = *context.video;
  const double cushion_top = context.max_buffer_s * cushion_fraction_;
  if (context.buffer_s <= reservoir_s_) return 0;
  if (context.buffer_s >= cushion_top) return video.track_count() - 1;
  const double fraction = (context.buffer_s - reservoir_s_) /
                          (cushion_top - reservoir_s_);
  return static_cast<int>(fraction *
                          static_cast<double>(video.track_count() - 1));
}

int BolaAbr::choose_track(const AbrContext& context) {
  const auto& video = *context.video;
  const double r_min = video.track_mbps.front();
  const double u_top = std::log(video.top_mbps() / r_min);
  const double q_max = context.max_buffer_s / video.chunk_s;
  const double v = (q_max - 1.0) / (u_top + gp_);
  const double q = context.buffer_s / video.chunk_s;

  int best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (int k = 0; k < video.track_count(); ++k) {
    const double u = std::log(video.bitrate(k) / r_min);
    const double score = (v * (u + gp_) - q) / video.bitrate(k);
    if (score > best_score) {
      best_score = score;
      best = k;
    }
  }
  return best;
}

int FestiveAbr::choose_track(const AbrContext& context) {
  const auto& video = *context.video;
  const double estimate = recent_harmonic_mean(
      context.past_chunk_mbps, window_, video.track_mbps.front());
  const int reference = highest_track_within(video, safety_ * estimate);
  const int last = context.last_track < 0 ? 0 : context.last_track;

  // Gradual switching: at most one level per chunk.
  int candidate = std::clamp(reference, last - 1, last + 1);

  // Stability brake: if we switched a lot recently, hold.
  const int recent_switch_count = static_cast<int>(
      std::count(recent_switches_.begin(), recent_switches_.end(), true));
  if (recent_switch_count >= 3 && candidate != last) candidate = last;

  recent_switches_.push_back(candidate != last);
  if (recent_switches_.size() > 10) recent_switches_.pop_front();
  return candidate;
}

ModelPredictiveAbr::ModelPredictiveAbr(Variant variant,
                                       ThroughputPredictor& predictor,
                                       int horizon)
    : variant_(variant), predictor_(&predictor), horizon_(horizon) {
  require(horizon_ >= 1 && horizon_ <= 12,
          "ModelPredictiveAbr: horizon out of range");
}

int ModelPredictiveAbr::horizon_for_chunk_length(double chunk_s) {
  require(chunk_s > 0.0, "horizon_for_chunk_length: bad chunk length");
  return std::clamp(static_cast<int>(std::round(20.0 / chunk_s)), 5, 12);
}

std::string ModelPredictiveAbr::name() const {
  return variant_ == Variant::kFast ? "fastMPC" : "robustMPC";
}

void ModelPredictiveAbr::reset() {
  relative_errors_.clear();
  last_prediction_mbps_ = -1.0;
}

double ModelPredictiveAbr::plan_qoe(const AbrContext& context, int first_track,
                                    double predicted_mbps) const {
  const auto& video = *context.video;
  const double rebuffer_penalty = video.top_mbps();
  const int steps =
      std::min(horizon_, context.chunk_count - context.next_chunk);

  // Depth-first enumeration over track sequences with the first fixed.
  double best = -std::numeric_limits<double>::infinity();
  struct Frame {
    int depth;
    double buffer;
    double prev_bitrate;
    double qoe;
    int next_track;
  };
  std::vector<Frame> stack;
  const double last_bitrate = context.last_track >= 0
                                  ? video.bitrate(context.last_track)
                                  : video.bitrate(first_track);
  stack.push_back({0, context.buffer_s, last_bitrate, 0.0, first_track});

  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();

    const double bitrate = video.bitrate(frame.next_track);
    const double download_s = bitrate * video.chunk_s / predicted_mbps;
    const double stall = std::max(0.0, download_s - frame.buffer);
    double buffer = std::max(0.0, frame.buffer - download_s) + video.chunk_s;
    buffer = std::min(buffer, context.max_buffer_s);
    const double qoe = frame.qoe + bitrate - rebuffer_penalty * stall -
                       std::abs(bitrate - frame.prev_bitrate);

    if (frame.depth + 1 >= steps) {
      best = std::max(best, qoe);
      continue;
    }
    // Prune: beyond the first step only consider one-level moves. Optimal
    // plans are near-monotone in track, and the pruning keeps long horizons
    // (needed for short chunks) tractable.
    const int lo = std::max(0, frame.next_track - 1);
    const int hi = std::min(video.track_count() - 1, frame.next_track + 1);
    for (int track = lo; track <= hi; ++track) {
      stack.push_back({frame.depth + 1, buffer, bitrate, qoe, track});
    }
  }
  return best;
}

int ModelPredictiveAbr::choose_track(const AbrContext& context) {
  // Update the prediction-error history with the realized throughput.
  if (last_prediction_mbps_ > 0.0 && !context.past_chunk_mbps.empty()) {
    const double actual = context.past_chunk_mbps.back();
    const double err =
        std::abs(last_prediction_mbps_ - actual) / std::max(0.01, actual);
    // Cap at 100%: one outage prediction miss should halve the estimate,
    // not zero it for the next five chunks.
    relative_errors_.push_back(std::min(err, 0.7));
    if (relative_errors_.size() > 5) relative_errors_.pop_front();
  }

  double predicted = std::max(0.05, predictor_->predict_mbps(context));
  last_prediction_mbps_ = predicted;
  if (variant_ == Variant::kRobust && !relative_errors_.empty()) {
    const double max_err =
        *std::max_element(relative_errors_.begin(), relative_errors_.end());
    predicted /= 1.0 + max_err;
  }

  int best_track = 0;
  double best_qoe = -std::numeric_limits<double>::infinity();
  for (int track = 0; track < context.video->track_count(); ++track) {
    const double qoe = plan_qoe(context, track, predicted);
    if (qoe > best_qoe) {
      best_qoe = qoe;
      best_track = track;
    }
  }
  return best_track;
}

}  // namespace wild5g::abr
