#include "abr/video.h"

#include <algorithm>

#include "core/error.h"

namespace wild5g::abr {

double VideoProfile::bitrate(int track) const {
  require(track >= 0 && track < track_count(),
          "VideoProfile::bitrate: track out of range");
  return track_mbps[static_cast<std::size_t>(track)];
}

VideoProfile make_ladder(double top_mbps, int tracks, double chunk_s,
                         double ratio) {
  require(top_mbps > 0.0 && tracks >= 2 && chunk_s > 0.0 && ratio > 1.0,
          "make_ladder: invalid parameters");
  VideoProfile profile;
  profile.chunk_s = chunk_s;
  profile.track_mbps.resize(static_cast<std::size_t>(tracks));
  double rate = top_mbps;
  for (int i = tracks - 1; i >= 0; --i) {
    profile.track_mbps[static_cast<std::size_t>(i)] = rate;
    rate /= ratio;
  }
  return profile;
}

VideoProfile video_ladder_5g(double chunk_s) {
  return make_ladder(160.0, 6, chunk_s);
}

VideoProfile video_ladder_4g(double chunk_s) {
  return make_ladder(20.0, 6, chunk_s);
}

}  // namespace wild5g::abr
