// wild5g/abr: throughput predictors for MPC-style ABR (Sec. 5.3, Fig. 18a).
//
// Three predictors are compared in the paper: the harmonic mean of recent
// chunks (fastMPC's default), a gradient-boosted-tree predictor after
// Lumos5G (MPC_GDBT), and the ground-truth future throughput (truthMPC,
// the oracle upper bound).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "abr/session.h"
#include "core/rng.h"
#include "ml/gbdt.h"

namespace wild5g::abr {

/// Mixin for algorithms/predictors that need the session's bandwidth source
/// (only the oracle does; everything causal ignores it).
class SourceAwareAlgorithm {
 public:
  virtual ~SourceAwareAlgorithm() = default;
  virtual void on_session_start(const BandwidthSource& source) = 0;
};

class ThroughputPredictor {
 public:
  virtual ~ThroughputPredictor() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual void on_session_start(const BandwidthSource& /*source*/) {}
  /// Predicted average throughput (Mbps) over the next chunk download.
  [[nodiscard]] virtual double predict_mbps(const AbrContext& context) = 0;
};

/// Harmonic mean of the last `window` chunk throughputs.
class HarmonicMeanPredictor final : public ThroughputPredictor {
 public:
  explicit HarmonicMeanPredictor(int window = 5) : window_(window) {}
  [[nodiscard]] std::string name() const override { return "harmonic-mean"; }
  [[nodiscard]] double predict_mbps(const AbrContext& context) override;

 private:
  int window_;
};

/// Oracle: true mean bandwidth over the next `horizon_s` of the trace.
class OraclePredictor final : public ThroughputPredictor {
 public:
  explicit OraclePredictor(double horizon_s = 4.0) : horizon_s_(horizon_s) {}
  [[nodiscard]] std::string name() const override { return "ground-truth"; }
  void on_session_start(const BandwidthSource& source) override {
    source_ = &source;
  }
  [[nodiscard]] double predict_mbps(const AbrContext& context) override;

 private:
  double horizon_s_;
  const BandwidthSource* source_ = nullptr;
};

/// Gradient-boosted-tree predictor trained on throughput traces: features
/// are the last `window` one-second samples, the target is the mean
/// bandwidth over the following `horizon_s` seconds.
class GbdtPredictor final : public ThroughputPredictor {
 public:
  explicit GbdtPredictor(int window = 5, double horizon_s = 4.0);

  /// Trains on sliding windows drawn from `traces`.
  void train(const std::vector<traces::Trace>& traces, Rng& rng);

  [[nodiscard]] std::string name() const override { return "gbdt"; }
  void on_session_start(const BandwidthSource& source) override;
  [[nodiscard]] double predict_mbps(const AbrContext& context) override;
  [[nodiscard]] bool is_trained() const { return model_.is_fitted(); }

 private:
  int window_;
  double horizon_s_;
  ml::GradientBoostedRegressor model_;
  double smoothed_log2_ = 0.0;  // EMA over predictions (anti-jitter)
  bool has_smoothed_ = false;

  [[nodiscard]] std::vector<double> features_from(
      std::span<const double> past) const;
};

/// Shared helper: last-`window` harmonic mean with sane fallbacks when the
/// history is short.
[[nodiscard]] double recent_harmonic_mean(std::span<const double> past,
                                          int window, double fallback_mbps);

}  // namespace wild5g::abr
