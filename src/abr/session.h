// wild5g/abr: trace-driven DASH streaming engine (Sec. 5.1's testbed).
//
// Plays a ladder over a bandwidth source chunk by chunk: the ABR algorithm
// picks a track per chunk, downloads drain the trace's bandwidth, the
// playback buffer absorbs variation, and stalls accrue when it empties.
// Produces the paper's QoE metrics: normalized bitrate, time spent on stall,
// and the MPC-style linear QoE reward.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "abr/video.h"
#include "faults/injector.h"
#include "traces/traces.h"

namespace wild5g::abr {

/// Bandwidth seen by the client over time.
class BandwidthSource {
 public:
  virtual ~BandwidthSource() = default;
  /// Instantaneous available bandwidth at time t.
  [[nodiscard]] virtual double mbps_at(double t_s) const = 0;
};

/// A throughput trace as a bandwidth source.
class TraceSource final : public BandwidthSource {
 public:
  explicit TraceSource(const traces::Trace& trace) : trace_(&trace) {}
  [[nodiscard]] double mbps_at(double t_s) const override {
    return trace_->at(t_s);
  }

 private:
  const traces::Trace* trace_;
};

class ThroughputPredictor;

/// Decision context handed to an ABR algorithm for one chunk.
struct AbrContext {
  const VideoProfile* video = nullptr;
  int next_chunk = 0;
  int chunk_count = 0;
  double buffer_s = 0.0;
  double max_buffer_s = 30.0;
  int last_track = -1;  // -1 before the first chunk
  /// Measured per-chunk download throughput so far, oldest first.
  std::span<const double> past_chunk_mbps;
  /// Optional plug-in predictor (MPC variants); may be null.
  ThroughputPredictor* predictor = nullptr;
  double now_s = 0.0;
};

/// Rate-adaptation policy interface.
class AbrAlgorithm {
 public:
  virtual ~AbrAlgorithm() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Track index in [0, video->track_count()) for context.next_chunk.
  [[nodiscard]] virtual int choose_track(const AbrContext& context) = 0;
  /// Clears per-session state (prediction-error history etc.).
  virtual void reset() {}
};

/// Per-chunk log entry.
struct ChunkRecord {
  int index = 0;
  int track = 0;            // track of the finally delivered chunk
  double bitrate_mbps = 0.0;
  double download_s = 0.0;  // wall time incl. abandoned attempts
  double throughput_mbps = 0.0;
  double stall_s = 0.0;
  double buffer_after_s = 0.0;
  int abandoned_attempts = 0;
};

struct SessionOptions {
  double max_buffer_s = 30.0;
  int chunk_count = 60;  // 60 x 4 s = 4-minute video by default
  /// Segment abandonment: a download taking longer than
  /// `abandon_multiplier x chunk_s` with under 80% fetched is aborted and
  /// the ABR re-decides with the fresh (collapsed) throughput sample. Off
  /// by default: the paper's Sec. 5.3 observations ("one chunk download
  /// decision ... causes 5-10 seconds of rebuffering", "cannot be rolled
  /// back") show the evaluated players did not abandon effectively. The
  /// 5G-aware interface-selection scheme (Sec. 5.4) enables it as its
  /// progress-monitoring component.
  bool allow_abandonment = false;
  double abandon_multiplier = 1.8;
  int max_abandonments = 3;
  /// Player buffering policy (dash.js-like): playback starts once
  /// `startup_buffer_s` of media is queued, and after a rebuffer event it
  /// resumes only when the buffer recovers past `resume_buffer_s`.
  double startup_buffer_s = 8.0;
  double resume_buffer_s = 4.0;
  /// MPC QoE weights: reward = sum(bitrate) - rebuffer_penalty * stall_s
  /// - smoothness * sum(|delta bitrate|). rebuffer_penalty defaults to the
  /// ladder's top bitrate (set <0 to request that default).
  double qoe_rebuffer_penalty = -1.0;
  double qoe_smoothness = 1.0;
  /// Optional fault injector (not owned; null = no faults). Chunk stalls,
  /// NR->LTE fallback and radio outages scale the bandwidth the session
  /// sees sample by sample; the player degrades gracefully (downloads slow
  /// down, the buffer drains, stalls accrue as rebuffer time) instead of
  /// failing — matching how a real DASH player rides out dead air.
  const faults::Injector* faults = nullptr;
};

struct SessionResult {
  std::vector<ChunkRecord> chunks;
  double startup_delay_s = 0.0;
  double total_stall_s = 0.0;
  double played_s = 0.0;
  double avg_bitrate_mbps = 0.0;
  double qoe = 0.0;

  /// Per-second downlink throughput actually consumed (for energy models).
  std::vector<double> per_second_dl_mbps;

  [[nodiscard]] double stall_percent() const {
    const double wall = played_s + total_stall_s;
    return wall > 0.0 ? 100.0 * total_stall_s / wall : 0.0;
  }
  [[nodiscard]] double normalized_bitrate(const VideoProfile& video) const {
    return avg_bitrate_mbps / video.top_mbps();
  }
  [[nodiscard]] double normalized_qoe(const VideoProfile& video,
                                      const SessionOptions& options) const {
    return qoe / (video.top_mbps() * options.chunk_count);
  }
};

/// Streams `options.chunk_count` chunks of `video` over `source` with
/// `algorithm` deciding tracks. Deterministic given deterministic inputs.
[[nodiscard]] SessionResult stream(const VideoProfile& video,
                                   const BandwidthSource& source,
                                   AbrAlgorithm& algorithm,
                                   const SessionOptions& options);

/// Average of a metric across sessions run on every trace in a set.
struct AggregateQoe {
  double mean_normalized_bitrate = 0.0;
  double mean_stall_percent = 0.0;
  double mean_normalized_qoe = 0.0;
  double mean_stall_s = 0.0;
};

[[nodiscard]] AggregateQoe evaluate_on_traces(
    const VideoProfile& video, const std::vector<traces::Trace>& traces,
    AbrAlgorithm& algorithm, const SessionOptions& options);

}  // namespace wild5g::abr
