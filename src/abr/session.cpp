#include "abr/session.h"

#include <algorithm>
#include <cmath>

#include "abr/predictor.h"
#include "core/error.h"

namespace wild5g::abr {

namespace {
// A live radio link never delivers exactly zero for long; this floor also
// guarantees download progress when a trace bottoms out during blockage.
constexpr double kMinBandwidthMbps = 0.05;
}  // namespace

SessionResult stream(const VideoProfile& video, const BandwidthSource& source,
                     AbrAlgorithm& algorithm, const SessionOptions& options) {
  WILD5G_REQUIRE(video.track_count() >= 1, "stream: empty ladder");
  WILD5G_REQUIRE(options.chunk_count >= 1, "stream: no chunks");
  const double rebuffer_penalty = options.qoe_rebuffer_penalty < 0.0
                                      ? video.top_mbps()
                                      : options.qoe_rebuffer_penalty;

  algorithm.reset();
  SessionResult result;
  std::vector<double> past_mbps;

  double t = 0.0;
  double buffer = 0.0;
  int last_track = -1;
  // Player state: media time only advances while kPlaying; the player
  // queues `startup_buffer_s` before starting and, after a rebuffer, waits
  // for `resume_buffer_s` before resuming.
  enum class PlayState { kStartup, kPlaying, kRebuffering };
  PlayState play_state = PlayState::kStartup;
  const double startup_target =
      std::min(options.startup_buffer_s,
               static_cast<double>(options.chunk_count) * video.chunk_s);
  const double resume_target =
      std::min(options.resume_buffer_s, options.max_buffer_s);

  auto record_consumption = [&](double from_s, double mbits) {
    // Attribute consumed megabits to integral-second buckets.
    auto second = static_cast<std::size_t>(from_s);
    if (result.per_second_dl_mbps.size() <= second) {
      result.per_second_dl_mbps.resize(second + 1, 0.0);
    }
    result.per_second_dl_mbps[second] += mbits;
  };

  for (int chunk = 0; chunk < options.chunk_count; ++chunk) {
    const double chunk_start_t = t;
    int abandoned = 0;
    int track = 0;
    double final_attempt_tput = 0.0;

    // One or more download attempts; an attempt that crawls past the
    // abandonment deadline is aborted and the ABR re-decides.
    while (true) {
      AbrContext context;
      context.video = &video;
      context.next_chunk = chunk;
      context.chunk_count = options.chunk_count;
      context.buffer_s =
          play_state == PlayState::kPlaying
              ? std::max(0.0, buffer - (t - chunk_start_t))
              : buffer;
      context.max_buffer_s = options.max_buffer_s;
      context.last_track = last_track;
      context.past_chunk_mbps = past_mbps;
      context.now_s = t;

      track = std::clamp(algorithm.choose_track(context), 0,
                         video.track_count() - 1);
      const double bitrate = video.bitrate(track);
      const double total_mbits = bitrate * video.chunk_s;
      double remaining_mbits = total_mbits;

      const bool may_abandon = options.allow_abandonment &&
                               abandoned < options.max_abandonments;
      const double deadline =
          t + options.abandon_multiplier * video.chunk_s;
      const double attempt_start = t;
      bool aborted = false;
      while (remaining_mbits > 1e-12) {
        if (may_abandon && t >= deadline &&
            remaining_mbits > 0.2 * total_mbits) {
          aborted = true;
          break;
        }
        // Fault shaping multiplies the trace sample before the progress
        // floor: a full outage pins the link at the floor rate, so the
        // download crawls (stalls accrue) but the session always finishes.
        const double fault_scale =
            options.faults != nullptr ? options.faults->bandwidth_scale_at(t)
                                      : 1.0;
        const double bw =
            std::max(kMinBandwidthMbps, source.mbps_at(t) * fault_scale);
        const double slice_end = std::floor(t) + 1.0;
        const double slice = slice_end - t;
        const double slice_mbits = bw * slice;
        if (slice_mbits >= remaining_mbits) {
          const double used = remaining_mbits / bw;
          record_consumption(t, remaining_mbits);
          t += used;
          remaining_mbits = 0.0;
        } else {
          record_consumption(t, slice_mbits);
          remaining_mbits -= slice_mbits;
          t = slice_end;
        }
      }
      const double attempt_s = t - attempt_start;
      final_attempt_tput = (total_mbits - remaining_mbits) /
                           std::max(1e-9, attempt_s);
      if (!aborted) break;
      // Aborted: surface the collapsed throughput so the re-decision (and
      // any interface-selection wrapper) sees it immediately.
      ++abandoned;
      past_mbps.push_back(std::max(kMinBandwidthMbps, final_attempt_tput));
      last_track = track;
    }

    const double download_s = t - chunk_start_t;
    const double bitrate = video.bitrate(track);

    ChunkRecord record;
    record.index = chunk;
    record.track = track;
    record.bitrate_mbps = bitrate;
    record.download_s = download_s;
    record.throughput_mbps = final_attempt_tput;
    record.abandoned_attempts = abandoned;

    switch (play_state) {
      case PlayState::kStartup:
        result.startup_delay_s += download_s;
        break;
      case PlayState::kRebuffering:
        record.stall_s = download_s;
        result.total_stall_s += download_s;
        break;
      case PlayState::kPlaying:
        if (download_s > buffer) {
          record.stall_s = download_s - buffer;
          result.total_stall_s += record.stall_s;
          buffer = 0.0;
          play_state = PlayState::kRebuffering;
        } else {
          buffer -= download_s;
        }
        break;
    }
    buffer += video.chunk_s;
    if (play_state == PlayState::kStartup && buffer >= startup_target) {
      play_state = PlayState::kPlaying;
    } else if (play_state == PlayState::kRebuffering &&
               buffer >= resume_target) {
      play_state = PlayState::kPlaying;
    }
    if (buffer > options.max_buffer_s) {
      // Client throttles: wait until there is room for the next chunk.
      t += buffer - options.max_buffer_s;
      buffer = options.max_buffer_s;
    }
    record.buffer_after_s = buffer;

    past_mbps.push_back(record.throughput_mbps);
    result.chunks.push_back(record);
    last_track = track;
  }

  result.played_s = static_cast<double>(options.chunk_count) * video.chunk_s;
  double bitrate_sum = 0.0;
  double smoothness = 0.0;
  for (std::size_t i = 0; i < result.chunks.size(); ++i) {
    bitrate_sum += result.chunks[i].bitrate_mbps;
    if (i > 0) {
      smoothness += std::abs(result.chunks[i].bitrate_mbps -
                             result.chunks[i - 1].bitrate_mbps);
    }
  }
  result.avg_bitrate_mbps =
      bitrate_sum / static_cast<double>(result.chunks.size());
  result.qoe = bitrate_sum - rebuffer_penalty * result.total_stall_s -
               options.qoe_smoothness * smoothness;
  return result;
}

AggregateQoe evaluate_on_traces(const VideoProfile& video,
                                const std::vector<traces::Trace>& traces,
                                AbrAlgorithm& algorithm,
                                const SessionOptions& options) {
  require(!traces.empty(), "evaluate_on_traces: no traces");
  AggregateQoe aggregate;
  for (const auto& trace : traces) {
    TraceSource source(trace);
    if (auto* aware = dynamic_cast<SourceAwareAlgorithm*>(&algorithm)) {
      aware->on_session_start(source);
    }
    const auto result = stream(video, source, algorithm, options);
    aggregate.mean_normalized_bitrate += result.normalized_bitrate(video);
    aggregate.mean_stall_percent += result.stall_percent();
    aggregate.mean_normalized_qoe += result.normalized_qoe(video, options);
    aggregate.mean_stall_s += result.total_stall_s;
  }
  const auto n = static_cast<double>(traces.size());
  aggregate.mean_normalized_bitrate /= n;
  aggregate.mean_stall_percent /= n;
  aggregate.mean_normalized_qoe /= n;
  aggregate.mean_stall_s /= n;
  return aggregate;
}

}  // namespace wild5g::abr
