#include "sim/simulator.h"

#include "core/error.h"

namespace wild5g::sim {

EventId Simulator::schedule_at(double at_ms, Handler handler) {
  WILD5G_REQUIRE(at_ms >= now_ms_, "Simulator::schedule_at: time in the past");
  WILD5G_REQUIRE(static_cast<bool>(handler),
                 "Simulator::schedule_at: null handler");
  const EventId id = next_id_++;
  queue_.push(Event{at_ms, next_seq_++, id});
  handlers_.emplace(id, std::move(handler));
  return id;
}

EventId Simulator::schedule_in(double delay_ms, Handler handler) {
  WILD5G_REQUIRE(delay_ms >= 0.0, "Simulator::schedule_in: negative delay");
  return schedule_at(now_ms_ + delay_ms, std::move(handler));
}

void Simulator::cancel(EventId id) { handlers_.erase(id); }

bool Simulator::pop_next(Event& out) {
  while (!queue_.empty()) {
    const Event top = queue_.top();
    queue_.pop();
    if (handlers_.contains(top.id)) {
      out = top;
      return true;
    }
    // Cancelled: skip silently.
  }
  return false;
}

void Simulator::run() {
  Event event{};
  while (pop_next(event)) {
    now_ms_ = event.at_ms;
    auto it = handlers_.find(event.id);
    Handler handler = std::move(it->second);
    // Erase before invoking: the running handler must not be cancellable
    // (self-cancel is a no-op) and must not block re-use of its id slot.
    handlers_.erase(it);
    handler();
  }
}

void Simulator::run_until(double until_ms) {
  WILD5G_REQUIRE(until_ms >= now_ms_, "Simulator::run_until: time in the past");
  Event event{};
  while (!queue_.empty() && queue_.top().at_ms <= until_ms) {
    if (!pop_next(event)) break;
    if (event.at_ms > until_ms) {
      // Event popped past the horizon: put it back (seq preserved, so its
      // FIFO rank among simultaneous events survives the round-trip) and
      // stop.
      queue_.push(event);
      break;
    }
    now_ms_ = event.at_ms;
    auto it = handlers_.find(event.id);
    Handler handler = std::move(it->second);
    handlers_.erase(it);
    handler();
  }
  // Contract: the clock always lands exactly on the horizon, even when the
  // queue drained early — callers tile timelines with consecutive
  // run_until calls and anchor schedule_in offsets at window boundaries.
  now_ms_ = until_ms;
}

}  // namespace wild5g::sim
