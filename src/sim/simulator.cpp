#include "sim/simulator.h"

namespace wild5g::sim {

namespace {

constexpr std::uint32_t slot_of(EventId id) {
  return static_cast<std::uint32_t>(id);
}
constexpr std::uint32_t generation_of(EventId id) {
  return static_cast<std::uint32_t>(id >> 32);
}
constexpr EventId make_id(std::uint32_t generation, std::uint32_t slot) {
  return (static_cast<EventId>(generation) << 32) | slot;
}

}  // namespace

Simulator::~Simulator() {
  // Destroy payloads of never-fired events; the arena frees its chunks.
  for (Slot& slot : slots_) {
    if (slot.node != nullptr && slot.node->destroy != nullptr) {
      slot.node->destroy(payload_of(slot.node));
    }
  }
}

EventId Simulator::enqueue(double at_ms, Node* node) {
  std::uint32_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.node = node;
  ++live_;
  const EventId id = make_id(slot.generation, index);
  queue_.push(Event{at_ms, next_seq_++, id});
  return id;
}

Simulator::Slot* Simulator::live_slot(EventId id) {
  const std::uint32_t index = slot_of(id);
  if (index >= slots_.size()) return nullptr;
  Slot& slot = slots_[index];
  if (slot.node == nullptr || slot.generation != generation_of(id)) {
    return nullptr;
  }
  return &slot;
}

void Simulator::release_node(Node* node) {
  if (node->destroy != nullptr) node->destroy(payload_of(node));
  arena_.recycle(node, node->bytes);
}

void Simulator::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.node = nullptr;
  ++slot.generation;  // stale ids (and a wrapped 0) can never match again
  free_slots_.push_back(index);
  --live_;
}

void Simulator::cancel(EventId id) {
  Slot* slot = live_slot(id);
  if (slot == nullptr) return;
  release_node(slot->node);
  release_slot(slot_of(id));
  // The queue entry stays behind; pop_next() skips it by generation check.
}

bool Simulator::pop_next(Event& out) {
  while (!queue_.empty()) {
    const Event top = queue_.top();
    queue_.pop();
    if (live_slot(top.id) != nullptr) {
      out = top;
      return true;
    }
    // Cancelled: skip silently.
  }
  return false;
}

void Simulator::dispatch(const Event& event) {
  Slot* slot = live_slot(event.id);
  Node* node = slot->node;
  // Release before invoking: the running handler must not be cancellable
  // (self-cancel is a no-op) and must not count as pending.
  release_slot(slot_of(event.id));
  // The node itself survives the call — the handler executes from arena
  // memory — and is recycled afterwards even if it throws.
  struct NodeGuard {
    Simulator* simulator;
    Node* node;
    ~NodeGuard() { simulator->release_node(node); }
  } guard{this, node};
  node->invoke(payload_of(node));
}

void Simulator::run() {
  Event event{};
  while (pop_next(event)) {
    now_ms_ = event.at_ms;
    dispatch(event);
  }
}

void Simulator::run_until(double until_ms) {
  WILD5G_REQUIRE(until_ms >= now_ms_, "Simulator::run_until: time in the past");
  Event event{};
  while (!queue_.empty() && queue_.top().at_ms <= until_ms) {
    if (!pop_next(event)) break;
    if (event.at_ms > until_ms) {
      // Event popped past the horizon: put it back (seq preserved, so its
      // FIFO rank among simultaneous events survives the round-trip) and
      // stop.
      queue_.push(event);
      break;
    }
    now_ms_ = event.at_ms;
    dispatch(event);
  }
  // Contract: the clock always lands exactly on the horizon, even when the
  // queue drained early — callers tile timelines with consecutive
  // run_until calls and anchor schedule_in offsets at window boundaries.
  now_ms_ = until_ms;
}

}  // namespace wild5g::sim
