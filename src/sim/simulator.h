// wild5g/sim: a minimal deterministic discrete-event simulator.
//
// Drives the RRC-probe experiments and any component that needs timers
// (inactivity timers, DRX cycles, chunk downloads). Events scheduled for the
// same instant fire in scheduling order, so runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace wild5g::sim {

/// Opaque handle for a scheduled event, usable to cancel it.
using EventId = std::uint64_t;

class Simulator {
 public:
  using Handler = std::function<void()>;

  /// Current simulated time in milliseconds.
  [[nodiscard]] double now_ms() const { return now_ms_; }

  /// Schedules `handler` at absolute simulated time `at_ms` (>= now).
  EventId schedule_at(double at_ms, Handler handler);

  /// Schedules `handler` `delay_ms` from now (delay >= 0).
  EventId schedule_in(double delay_ms, Handler handler);

  /// Cancels a pending event. Cancelling an already-fired or unknown event
  /// is a no-op (timers race with the activity that restarts them). This
  /// extends to the dispatch path: a handler that cancels *itself* (its own
  /// id) or another event scheduled for the same instant is also a no-op /
  /// takes effect respectively — the running handler's entry is removed from
  /// the registry before invocation, so self-cancel finds nothing, and a
  /// same-instant victim simply never fires.
  void cancel(EventId id);

  /// Runs until the event queue drains.
  void run();

  /// Runs until simulated time reaches `until_ms` (events at exactly
  /// `until_ms` still fire) or the queue drains, whichever is first.
  /// Postcondition: now_ms() == until_ms in *both* cases — when the queue
  /// drains early the clock still advances to the horizon, so back-to-back
  /// run_until calls tile a timeline without gaps and schedule_in offsets
  /// after a drained window are anchored at the window's end, not at the
  /// last event. (Events cancelled-but-unpopped do not hold the clock back
  /// either; they are skipped without dispatching.)
  void run_until(double until_ms);

  /// Number of scheduled-but-not-yet-fired (and not cancelled) events.
  [[nodiscard]] std::size_t pending_count() const { return handlers_.size(); }

 private:
  struct Event {
    double at_ms;
    std::uint64_t seq;  // tie-break: FIFO for simultaneous events
    EventId id;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at_ms != b.at_ms) return a.at_ms > b.at_ms;
      return a.seq > b.seq;
    }
  };

  /// Pops the next live event; returns false when the queue is empty.
  bool pop_next(Event& out);

  double now_ms_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_map<EventId, Handler> handlers_;
};

}  // namespace wild5g::sim
