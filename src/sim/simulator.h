// wild5g/sim: a minimal deterministic discrete-event simulator.
//
// Drives the RRC-probe experiments and any component that needs timers
// (inactivity timers, DRX cycles, chunk downloads). Events scheduled for the
// same instant fire in scheduling order, so runs are fully deterministic.
//
// Hot-path layout: handlers are stored as type-erased nodes in a core::Arena
// (bump chunks + size-class free lists) and looked up through a
// generation-checked slot table, so steady-state schedule/fire/cancel churn
// performs zero heap allocations and no hashing. A handler whose captures
// fit the node is stored inline in arena memory; std::function only appears
// if a caller passes one explicitly.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/arena.h"
#include "core/error.h"

namespace wild5g::sim {

/// Opaque handle for a scheduled event, usable to cancel it. Encodes
/// (generation, slot); 0 is never a live event, so value-initialized ids
/// are safe to cancel.
using EventId = std::uint64_t;

class Simulator {
 public:
  /// Callers may still traffic in std::function; any callable works.
  using Handler = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  /// Current simulated time in milliseconds.
  [[nodiscard]] double now_ms() const { return now_ms_; }

  /// Schedules `handler` at absolute simulated time `at_ms` (>= now). The
  /// callable is moved into an arena-backed node; callables convertible to
  /// bool (function pointers, std::function) are null-checked here.
  template <typename F,
            typename = std::enable_if_t<std::is_invocable_v<std::decay_t<F>&>>>
  EventId schedule_at(double at_ms, F&& handler) {
    WILD5G_REQUIRE(at_ms >= now_ms_,
                   "Simulator::schedule_at: time in the past");
    using Fn = std::decay_t<F>;
    if constexpr (std::is_constructible_v<bool, const Fn&>) {
      WILD5G_REQUIRE(static_cast<bool>(handler),
                     "Simulator::schedule_at: null handler");
    }
    Node* node = static_cast<Node*>(
        arena_.allocate(kPayloadOffset + sizeof(Fn)));
    node->invoke = [](void* payload) { (*static_cast<Fn*>(payload))(); };
    if constexpr (std::is_trivially_destructible_v<Fn>) {
      node->destroy = nullptr;
    } else {
      node->destroy = [](void* payload) { static_cast<Fn*>(payload)->~Fn(); };
    }
    node->bytes = static_cast<std::uint32_t>(kPayloadOffset + sizeof(Fn));
    ::new (payload_of(node)) Fn(std::forward<F>(handler));
    return enqueue(at_ms, node);
  }

  /// nullptr is not a handler; kept as an overload so the error is thrown
  /// at schedule time rather than failing to compile in a template context.
  EventId schedule_at(double at_ms, std::nullptr_t) {
    WILD5G_REQUIRE(at_ms >= now_ms_,
                   "Simulator::schedule_at: time in the past");
    WILD5G_REQUIRE(false, "Simulator::schedule_at: null handler");
    return 0;
  }

  /// Schedules `handler` `delay_ms` from now (delay >= 0).
  template <typename F>
  EventId schedule_in(double delay_ms, F&& handler) {
    WILD5G_REQUIRE(delay_ms >= 0.0, "Simulator::schedule_in: negative delay");
    return schedule_at(now_ms_ + delay_ms, std::forward<F>(handler));
  }

  /// Cancels a pending event. Cancelling an already-fired or unknown event
  /// is a no-op (timers race with the activity that restarts them). This
  /// extends to the dispatch path: a handler that cancels *itself* (its own
  /// id) or another event scheduled for the same instant is also a no-op /
  /// takes effect respectively — the running handler's slot is released
  /// before invocation, so self-cancel finds nothing, and a same-instant
  /// victim simply never fires.
  void cancel(EventId id);

  /// Runs until the event queue drains.
  void run();

  /// Runs until simulated time reaches `until_ms` (events at exactly
  /// `until_ms` still fire) or the queue drains, whichever is first.
  /// Postcondition: now_ms() == until_ms in *both* cases — when the queue
  /// drains early the clock still advances to the horizon, so back-to-back
  /// run_until calls tile a timeline without gaps and schedule_in offsets
  /// after a drained window are anchored at the window's end, not at the
  /// last event. (Events cancelled-but-unpopped do not hold the clock back
  /// either; they are skipped without dispatching.)
  void run_until(double until_ms);

  /// Number of scheduled-but-not-yet-fired (and not cancelled) events.
  [[nodiscard]] std::size_t pending_count() const { return live_; }

  /// Heap bytes retained by the event arena; event churn must reach a
  /// steady state here (asserted by tests), never grow per event.
  [[nodiscard]] std::size_t arena_bytes_reserved() const {
    return arena_.bytes_reserved();
  }

 private:
  /// Type-erased handler node living in the arena; the callable's bytes
  /// start at kPayloadOffset so any fundamental alignment works.
  struct Node {
    void (*invoke)(void* payload);
    void (*destroy)(void* payload);  // nullptr when trivially destructible
    std::uint32_t bytes;             // whole block size, for recycle()
  };
  static constexpr std::size_t kPayloadOffset = 32;
  static_assert(sizeof(Node) <= kPayloadOffset);
  static_assert(kPayloadOffset % Arena::kQuantum == 0,
                "payload must keep the arena's alignment");

  static void* payload_of(Node* node) {
    return reinterpret_cast<unsigned char*>(node) + kPayloadOffset;
  }

  /// Handler registry slot; a slot is live while `node` is set, and its
  /// generation advances on every release so stale EventIds miss.
  struct Slot {
    Node* node = nullptr;
    std::uint32_t generation = 1;
  };

  struct Event {
    double at_ms;
    std::uint64_t seq;  // tie-break: FIFO for simultaneous events
    EventId id;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at_ms != b.at_ms) return a.at_ms > b.at_ms;
      return a.seq > b.seq;
    }
  };

  EventId enqueue(double at_ms, Node* node);
  /// The slot for a live id, or nullptr (fired/cancelled/unknown).
  [[nodiscard]] Slot* live_slot(EventId id);
  /// Destroys the payload and recycles the node's arena block.
  void release_node(Node* node);
  /// Frees the slot for reuse and bumps its generation.
  void release_slot(std::uint32_t index);
  /// Pops the next live event; returns false when the queue is empty.
  bool pop_next(Event& out);
  /// Fires `event`: releases the slot (self-cancel is a no-op), invokes the
  /// handler in place, then recycles the node even on unwind.
  void dispatch(const Event& event);

  double now_ms_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  Arena arena_;
};

}  // namespace wild5g::sim
