// wild5g/power: 5 kHz power-waveform synthesis (the simulated Monsoon feed).
//
// Turns an RRC state timeline (with per-segment throughput and a signal
// trajectory) into the high-rate radio power waveform a hardware power
// monitor would record: transfer power from the device rails, DRX on/off
// cycling in the tails, paging spikes in IDLE, and promotion bursts.
//
// Hot-path layout: synthesis is batched per RRC-state segment, not per
// tick. A first pass builds an SoA segment plan (sample-index runs plus
// hoisted per-segment constants: promotion level, rail transfer power under
// constant signal, DRX on/sleep levels), a second pass renders each run,
// and a third pass applies measurement noise as one stream in tick order.
// Traces are bit-identical to the original per-tick evaluation; the
// per-table equivalence digests in tests/test_power_waveform_equiv.cpp pin
// that equivalence against the pre-batching implementation.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/rng.h"
#include "power/power_model.h"
#include "rrc/rrc_config.h"
#include "rrc/state_machine.h"

namespace wild5g::power {

/// A sampled power trace (what the Monsoon monitor records).
struct PowerTrace {
  double sample_rate_hz = 5000.0;
  std::vector<double> samples_mw;

  [[nodiscard]] double duration_s() const {
    return static_cast<double>(samples_mw.size()) / sample_rate_hz;
  }
  /// Integrated energy over the whole trace.
  [[nodiscard]] double energy_j() const;
  [[nodiscard]] double average_mw() const;
  /// Average power over [from_s, to_s).
  [[nodiscard]] double average_mw(double from_s, double to_s) const;
};

/// Synthesizes the radio power waveform for one network + device.
class WaveformSynthesizer {
 public:
  /// `rsrp_at(t_ms)` supplies the signal trajectory; pass nullptr for a
  /// constant good-signal campaign. Must be a pure function of t_ms: the
  /// batched renderer only evaluates it for samples whose power depends on
  /// signal (transfer segments), in time order within each segment.
  using RsrpFn = std::function<double(double t_ms)>;

  WaveformSynthesizer(rrc::RrcProfile profile, DevicePowerProfile device,
                      double sample_rate_hz = 5000.0);

  /// Renders `timeline` (from rrc::build_timeline) into a power trace.
  [[nodiscard]] PowerTrace synthesize(
      std::span<const rrc::StateSegment> timeline, Rng& rng,
      const RsrpFn& rsrp_at = nullptr) const;

  [[nodiscard]] const rrc::RrcProfile& profile() const { return profile_; }

 private:
  rrc::RrcProfile profile_;
  DevicePowerProfile device_;
  RailKey rail_;
  double sample_rate_hz_;
};

}  // namespace wild5g::power
