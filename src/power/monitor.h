// wild5g/power: hardware and software power monitors (Sec. 4.6).
//
// The Monsoon monitor reads the true waveform at 5 kHz. The software monitor
// reads Android's battery current/voltage sysfs nodes at 1 or 10 Hz; it
// systematically underestimates power (Table 9) and its polling itself costs
// energy (Table 3). The calibration path (Fig. 16) learns the inverse
// mapping with a decision-tree regressor.
#pragma once

#include <vector>

#include "core/rng.h"
#include "ml/decision_tree.h"
#include "power/waveform.h"

namespace wild5g::power {

/// The Monsoon hardware monitor: faithful view of the synthesized waveform.
class MonsoonMonitor {
 public:
  /// Per-second average power, the granularity used for model fitting.
  [[nodiscard]] static std::vector<double> per_second_mw(
      const PowerTrace& waveform);
};

struct SoftwareMonitorConfig {
  double sample_rate_hz = 1.0;  // 1 or 10 in the paper
  /// Multiplicative reading bias (sysfs current sensors under-report).
  double bias = 0.86;
  /// Per-reading relative noise.
  double noise = 0.05;
};

/// Returns the paper's measured monitoring-overhead power for a software
/// sampling rate (Table 3: +654 mW @1 Hz, +1111 mW @10 Hz over idle).
[[nodiscard]] double software_monitor_overhead_mw(double sample_rate_hz);

/// Default software-monitor reading bias at a sampling rate (Table 9:
/// readings land at ~86% of truth @1 Hz and ~92% @10 Hz).
[[nodiscard]] SoftwareMonitorConfig default_software_monitor(
    double sample_rate_hz);

/// The Android battery-API monitor.
class SoftwareMonitor {
 public:
  explicit SoftwareMonitor(SoftwareMonitorConfig config) : config_(config) {}

  /// Instantaneous (biased, noisy) readings taken from the waveform at the
  /// configured rate.
  [[nodiscard]] std::vector<double> readings_mw(const PowerTrace& waveform,
                                                Rng& rng) const;

  /// Per-second power estimate: mean of the readings within each second.
  /// At 1 Hz this is a single aliased instant; at 10 Hz it approaches the
  /// true per-second mean (before bias).
  [[nodiscard]] std::vector<double> per_second_mw(const PowerTrace& waveform,
                                                  Rng& rng) const;

  [[nodiscard]] const SoftwareMonitorConfig& config() const { return config_; }

 private:
  SoftwareMonitorConfig config_;
};

/// DTR-based calibration from software per-second readings to hardware
/// per-second truth.
class SoftwareCalibration {
 public:
  /// Learns reading -> truth from aligned per-second series.
  void fit(std::span<const double> software_mw,
           std::span<const double> hardware_mw);

  [[nodiscard]] double calibrate(double software_reading_mw) const;
  [[nodiscard]] std::vector<double> calibrate_all(
      std::span<const double> software_mw) const;

  [[nodiscard]] bool is_fitted() const { return tree_.is_fitted(); }

 private:
  ml::DecisionTreeRegressor tree_{[] {
    ml::TreeConfig config;
    config.max_depth = 10;
    config.min_samples_leaf = 3;
    config.min_samples_split = 6;
    return config;
  }()};
};

}  // namespace wild5g::power
