// wild5g/power: ground-truth radio power model (Sec. 4.3-4.4).
//
// Data-transfer power follows the paper's measured linear throughput-power
// rails P = slope * T + base per (device, network, direction), with slopes
// taken verbatim from Table 8 and bases calibrated to reproduce the measured
// crossover points (Fig. 11: DL 187/189 Mbps, UL 40/123 Mbps on S20U;
// Fig. 26: DL 213 Mbps, UL 44 Mbps on S10). Poor signal strength inflates
// transfer power (retransmissions + PA headroom), reproducing the
// RSRP-efficiency relationship of Figs. 13-14.
#pragma once

#include <optional>
#include <string>

#include "radio/types.h"

namespace wild5g::power {

/// Network key for a power rail (deployment modes that share power behavior
/// are collapsed).
enum class RailKey { k4g, kNsaLowBand, kNsaMmWave, kSaLowBand };

[[nodiscard]] std::string to_string(RailKey key);

/// Maps a concrete network config to its power-rail key.
[[nodiscard]] RailKey rail_key(const radio::NetworkConfig& config);

/// One linear throughput-power rail: P(T) = slope * T + base (mW, Mbps).
struct PowerRail {
  double slope_mw_per_mbps = 0.0;
  double base_mw = 0.0;

  [[nodiscard]] double power_mw(double throughput_mbps) const {
    return base_mw + slope_mw_per_mbps * throughput_mbps;
  }
};

/// Throughput at which rails `a` and `b` consume equal power; nullopt when
/// parallel or the crossover is negative.
[[nodiscard]] std::optional<double> crossover_mbps(const PowerRail& a,
                                                   const PowerRail& b);

/// Energy efficiency in microjoules per bit at a constant throughput.
[[nodiscard]] double efficiency_uj_per_bit(double power_mw,
                                           double throughput_mbps);

/// Per-device radio power characteristics.
class DevicePowerProfile {
 public:
  /// The rails measured on the Galaxy S20 Ultra (Minneapolis campaigns):
  /// 4G, NSA low-band, NSA mmWave, and SA low-band.
  [[nodiscard]] static DevicePowerProfile s20u();

  /// The rails measured on the Galaxy S10 (Ann Arbor campaigns): 4G and
  /// NSA mmWave only.
  [[nodiscard]] static DevicePowerProfile s10();

  [[nodiscard]] const std::string& device_name() const { return name_; }

  /// True when this device has a measured rail for `key`.
  [[nodiscard]] bool has_rail(RailKey key) const;

  /// The rail for (network, direction); throws for unmeasured networks.
  [[nodiscard]] const PowerRail& rail(RailKey key,
                                      radio::Direction direction) const;

  /// Reference ("good") RSRP per rail; below it transfer power inflates.
  [[nodiscard]] double good_rsrp_dbm(RailKey key) const;

  /// Instantaneous radio power during data transfer, combining downlink and
  /// uplink activity at the given signal strength. The base (rail intercept)
  /// is paid once; slopes apply per direction; the signal penalty scales the
  /// throughput-dependent component by up to +60% at cell-edge RSRP.
  [[nodiscard]] double transfer_power_mw(RailKey key, double dl_mbps,
                                         double ul_mbps,
                                         double rsrp_dbm) const;

 private:
  struct RailPair {
    PowerRail downlink;
    PowerRail uplink;
    double good_rsrp_dbm = -80.0;
    double edge_rsrp_dbm = -115.0;
    bool present = false;
  };

  std::string name_;
  RailPair rails_[4];

  [[nodiscard]] const RailPair& pair(RailKey key) const;
  [[nodiscard]] RailPair& pair(RailKey key);
};

/// Fractional transfer-power inflation at a given RSRP: 0 at/above
/// `good_rsrp`, growing linearly to `max_penalty` at `edge_rsrp`.
[[nodiscard]] double signal_penalty(double rsrp_dbm, double good_rsrp_dbm,
                                    double edge_rsrp_dbm,
                                    double max_penalty = 0.6);

}  // namespace wild5g::power
