// wild5g/power: data-driven power-model construction (Sec. 4.5).
//
// Fits decision-tree regression power models from walking-campaign data
// under three feature sets — throughput+signal (the paper's contribution),
// throughput-only (prior work [31]), signal-only (prior work [24, 42]) — and
// evaluates them by MAPE, reproducing Fig. 15. Fitted models also serve as
// the energy estimators used by the video (Sec. 5) and web (Sec. 6) studies.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/rng.h"
#include "ml/decision_tree.h"
#include "power/campaign.h"

namespace wild5g::power {

/// Feature sets compared in Fig. 15.
enum class FeatureSet { kThroughputAndSignal, kThroughputOnly, kSignalOnly };

[[nodiscard]] std::string to_string(FeatureSet features);

/// A fitted network power model for one device/carrier/network setting.
class PowerModelFit {
 public:
  PowerModelFit(FeatureSet features, ml::TreeConfig tree_config = [] {
    ml::TreeConfig config;
    config.max_depth = 12;
    config.min_samples_leaf = 4;
    config.min_samples_split = 8;
    return config;
  }());

  /// Trains on a 70/30 split of the campaign and records the held-out MAPE.
  void fit(std::span<const CampaignSample> samples, Rng& rng,
           double train_fraction = 0.7);

  /// Predicted radio power at an operating point.
  [[nodiscard]] double predict_mw(double dl_mbps, double ul_mbps,
                                  double rsrp_dbm) const;

  /// Energy estimate for a usage timeline (used to score real applications,
  /// Sec. 4.5 "Validation on Real Applications").
  struct UsageSlot {
    double dl_mbps = 0.0;
    double ul_mbps = 0.0;
    double rsrp_dbm = -80.0;
    double duration_s = 1.0;
  };
  [[nodiscard]] double estimate_energy_j(
      std::span<const UsageSlot> usage) const;

  [[nodiscard]] double test_mape_percent() const { return test_mape_; }
  [[nodiscard]] FeatureSet features() const { return features_; }
  [[nodiscard]] bool is_fitted() const { return tree_.is_fitted(); }

 private:
  FeatureSet features_;
  ml::DecisionTreeRegressor tree_;
  double test_mape_ = 0.0;

  [[nodiscard]] std::vector<double> feature_row(double dl_mbps,
                                                double ul_mbps,
                                                double rsrp_dbm) const;
  [[nodiscard]] std::vector<std::string> feature_names() const;
};

}  // namespace wild5g::power
