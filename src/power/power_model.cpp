#include "power/power_model.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace wild5g::power {

std::string to_string(RailKey key) {
  switch (key) {
    case RailKey::k4g: return "4G/LTE";
    case RailKey::kNsaLowBand: return "5G NSA Low-Band";
    case RailKey::kNsaMmWave: return "5G NSA mmWave";
    case RailKey::kSaLowBand: return "5G SA Low-Band";
  }
  return "?";
}

RailKey rail_key(const radio::NetworkConfig& config) {
  if (config.band == radio::Band::kLte) return RailKey::k4g;
  if (config.band == radio::Band::kNrMmWave) return RailKey::kNsaMmWave;
  return config.mode == radio::DeploymentMode::kSa ? RailKey::kSaLowBand
                                                   : RailKey::kNsaLowBand;
}

std::optional<double> crossover_mbps(const PowerRail& a, const PowerRail& b) {
  const double slope_gap = a.slope_mw_per_mbps - b.slope_mw_per_mbps;
  if (std::abs(slope_gap) < 1e-12) return std::nullopt;
  const double at = (b.base_mw - a.base_mw) / slope_gap;
  if (at < 0.0) return std::nullopt;
  return at;
}

double efficiency_uj_per_bit(double power_mw, double throughput_mbps) {
  require(throughput_mbps > 0.0,
          "efficiency_uj_per_bit: throughput must be positive");
  // P[mW] / (T[Mbps] * 1000) = (P*1e-3 W) / (T*1e6 bit/s) * 1e6 uJ/J.
  return power_mw / (throughput_mbps * 1000.0);
}

double signal_penalty(double rsrp_dbm, double good_rsrp_dbm,
                      double edge_rsrp_dbm, double max_penalty) {
  if (rsrp_dbm >= good_rsrp_dbm) return 0.0;
  const double span = good_rsrp_dbm - edge_rsrp_dbm;
  const double depth = std::min(span, good_rsrp_dbm - rsrp_dbm);
  return max_penalty * depth / span;
}

namespace {
constexpr std::size_t index_of(RailKey key) {
  return static_cast<std::size_t>(key);
}
}  // namespace

const DevicePowerProfile::RailPair& DevicePowerProfile::pair(
    RailKey key) const {
  const auto& p = rails_[index_of(key)];
  require(p.present, "DevicePowerProfile: no rail measured for " +
                         to_string(key) + " on " + name_);
  return p;
}

DevicePowerProfile::RailPair& DevicePowerProfile::pair(RailKey key) {
  return rails_[index_of(key)];
}

bool DevicePowerProfile::has_rail(RailKey key) const {
  return rails_[index_of(key)].present;
}

const PowerRail& DevicePowerProfile::rail(RailKey key,
                                          radio::Direction direction) const {
  const auto& p = pair(key);
  return direction == radio::Direction::kDownlink ? p.downlink : p.uplink;
}

double DevicePowerProfile::good_rsrp_dbm(RailKey key) const {
  return pair(key).good_rsrp_dbm;
}

double DevicePowerProfile::transfer_power_mw(RailKey key, double dl_mbps,
                                             double ul_mbps,
                                             double rsrp_dbm) const {
  require(dl_mbps >= 0.0 && ul_mbps >= 0.0,
          "transfer_power_mw: negative throughput");
  const auto& p = pair(key);
  const double penalty =
      signal_penalty(rsrp_dbm, p.good_rsrp_dbm, p.edge_rsrp_dbm);
  // The intercept (RF chain + modem active) is paid once; weak signal also
  // raises it moderately (PA bias, denser reference-signal processing).
  const double base =
      std::max(p.downlink.base_mw, p.uplink.base_mw) * (1.0 + 0.25 * penalty);
  const double variable = (p.downlink.slope_mw_per_mbps * dl_mbps +
                           p.uplink.slope_mw_per_mbps * ul_mbps) *
                          (1.0 + penalty);
  return base + variable;
}

DevicePowerProfile DevicePowerProfile::s20u() {
  DevicePowerProfile profile;
  profile.name_ = "S20U";
  // Slopes: Table 8. Bases: solve the Fig. 11 crossovers
  //   DL: mmWave x 4G at 187 Mbps, mmWave x LB at 189 Mbps
  //   UL: mmWave x 4G at 40 Mbps,  mmWave x LB at 123 Mbps
  // anchored at a 4G intercept of 800 mW DL / 700 mW UL.
  auto& lte = profile.pair(RailKey::k4g);
  lte = {.downlink = {14.55, 800.0},
         .uplink = {80.21, 700.0},
         .good_rsrp_dbm = -85.0,
         .edge_rsrp_dbm = -115.0,
         .present = true};
  auto& mm = profile.pair(RailKey::kNsaMmWave);
  mm = {.downlink = {1.81, 800.0 + (14.55 - 1.81) * 187.0},   // 3182.4
        .uplink = {9.42, 700.0 + (80.21 - 9.42) * 40.0},      // 3531.6
        .good_rsrp_dbm = -80.0,
        .edge_rsrp_dbm = -110.0,
        .present = true};
  auto& lb = profile.pair(RailKey::kNsaLowBand);
  lb = {.downlink = {13.52, mm.downlink.base_mw - (13.52 - 1.81) * 189.0},
        .uplink = {29.15, mm.uplink.base_mw - (29.15 - 9.42) * 123.0},
        .good_rsrp_dbm = -90.0,
        .edge_rsrp_dbm = -120.0,
        .present = true};
  // SA low-band: no Table-8 slope; same silicon as NSA low-band but no
  // dual-connectivity anchor, hence a slightly lower intercept.
  auto& sa = profile.pair(RailKey::kSaLowBand);
  sa = {.downlink = {13.52, lb.downlink.base_mw * 0.9},
        .uplink = {29.15, lb.uplink.base_mw * 0.9},
        .good_rsrp_dbm = -90.0,
        .edge_rsrp_dbm = -120.0,
        .present = true};
  return profile;
}

DevicePowerProfile DevicePowerProfile::s10() {
  DevicePowerProfile profile;
  profile.name_ = "S10";
  // Slopes: Table 8. Crossovers: Fig. 26 (DL 213 Mbps, UL 44 Mbps).
  auto& lte = profile.pair(RailKey::k4g);
  lte = {.downlink = {13.38, 750.0},
         .uplink = {57.99, 650.0},
         .good_rsrp_dbm = -85.0,
         .edge_rsrp_dbm = -115.0,
         .present = true};
  auto& mm = profile.pair(RailKey::kNsaMmWave);
  mm = {.downlink = {2.06, 750.0 + (13.38 - 2.06) * 213.0},   // 3161.2
        .uplink = {5.27, 650.0 + (57.99 - 5.27) * 44.0},      // 2969.7
        .good_rsrp_dbm = -80.0,
        .edge_rsrp_dbm = -110.0,
        .present = true};
  return profile;
}

}  // namespace wild5g::power
