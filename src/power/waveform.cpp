#include "power/waveform.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/error.h"

namespace wild5g::power {

double PowerTrace::energy_j() const {
  // mW * s = mJ; report joules.
  const double sum_mw =
      std::accumulate(samples_mw.begin(), samples_mw.end(), 0.0);
  return sum_mw / sample_rate_hz / 1000.0;
}

double PowerTrace::average_mw() const {
  require(!samples_mw.empty(), "PowerTrace::average_mw: empty trace");
  return std::accumulate(samples_mw.begin(), samples_mw.end(), 0.0) /
         static_cast<double>(samples_mw.size());
}

double PowerTrace::average_mw(double from_s, double to_s) const {
  require(from_s < to_s, "PowerTrace::average_mw: empty window");
  const auto from = static_cast<std::size_t>(from_s * sample_rate_hz);
  const auto to = std::min(
      samples_mw.size(), static_cast<std::size_t>(to_s * sample_rate_hz));
  require(from < to, "PowerTrace::average_mw: window outside trace");
  double sum = 0.0;
  for (std::size_t i = from; i < to; ++i) sum += samples_mw[i];
  return sum / static_cast<double>(to - from);
}

WaveformSynthesizer::WaveformSynthesizer(rrc::RrcProfile profile,
                                         DevicePowerProfile device,
                                         double sample_rate_hz)
    : profile_(std::move(profile)),
      device_(std::move(device)),
      rail_(rail_key(profile_.config.network)),
      sample_rate_hz_(sample_rate_hz) {
  require(sample_rate_hz_ > 0.0,
          "WaveformSynthesizer: sample rate must be positive");
  require(device_.has_rail(rail_),
          "WaveformSynthesizer: device has no rail for this network");
}

namespace {

/// DRX square wave averaging to `mean_mw`: `on_fraction` of each cycle at an
/// elevated level, the remainder in light sleep.
double drx_wave_mw(double t_ms, double cycle_ms, double mean_mw,
                   double on_fraction, double sleep_ratio) {
  if (cycle_ms <= 0.0) return mean_mw;
  const double phase = std::fmod(t_ms, cycle_ms) / cycle_ms;
  // on_fraction*on + (1-on_fraction)*sleep = mean, sleep = sleep_ratio*mean.
  const double sleep = sleep_ratio * mean_mw;
  const double on =
      (mean_mw - (1.0 - on_fraction) * sleep) / on_fraction;
  return phase < on_fraction ? on : sleep;
}

}  // namespace

double WaveformSynthesizer::instantaneous_mw(const rrc::StateSegment& segment,
                                             double t_ms,
                                             double rsrp_dbm) const {
  const auto& cfg = profile_.config;
  const auto& pw = profile_.power;
  if (segment.promoting) {
    // Signaling burst; NSA additionally pays the 4G->5G switch (Table 2).
    return std::max(pw.promotion_mw,
                    cfg.is_nsa_5g() ? pw.switch_mw : pw.promotion_mw);
  }
  if (segment.transferring) {
    return device_.transfer_power_mw(rail_, segment.dl_mbps, segment.ul_mbps,
                                     rsrp_dbm);
  }
  switch (segment.state) {
    case rrc::RrcState::kConnected:
      return drx_wave_mw(t_ms, cfg.long_drx_cycle_ms, pw.tail_mw, 0.2, 0.35);
    case rrc::RrcState::kConnectedAnchor:
      return drx_wave_mw(t_ms, cfg.long_drx_cycle_ms, pw.anchor_tail_mw, 0.2,
                         0.35);
    case rrc::RrcState::kInactive:
      return drx_wave_mw(t_ms, 320.0, pw.inactive_mw, 0.1, 0.45);
    case rrc::RrcState::kIdle:
      return drx_wave_mw(t_ms, cfg.idle_drx_cycle_ms, pw.idle_mw, 0.05, 0.6);
  }
  return pw.idle_mw;
}

PowerTrace WaveformSynthesizer::synthesize(
    std::span<const rrc::StateSegment> timeline, Rng& rng,
    const RsrpFn& rsrp_at) const {
  require(!timeline.empty(), "WaveformSynthesizer: empty timeline");
  PowerTrace trace;
  trace.sample_rate_hz = sample_rate_hz_;
  const double horizon_ms = timeline.back().end_ms;
  const double dt_ms = 1000.0 / sample_rate_hz_;
  const auto sample_count =
      static_cast<std::size_t>(std::llround(horizon_ms / dt_ms));
  trace.samples_mw.reserve(sample_count);

  std::size_t seg = 0;
  for (std::size_t i = 0; i < sample_count; ++i) {
    const double t = static_cast<double>(i) * dt_ms;
    while (seg + 1 < timeline.size() && t >= timeline[seg].end_ms) ++seg;
    const double rsrp =
        rsrp_at ? rsrp_at(t) : device_.good_rsrp_dbm(rail_);
    const double clean = instantaneous_mw(timeline[seg], t, rsrp);
    // Measurement + conversion noise: ~2% multiplicative, 4 mW floor.
    const double noisy = clean * (1.0 + rng.normal(0.0, 0.02)) +
                         rng.normal(0.0, 4.0);
    trace.samples_mw.push_back(std::max(0.0, noisy));
  }
  return trace;
}

}  // namespace wild5g::power
