#include "power/waveform.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/error.h"

namespace wild5g::power {

double PowerTrace::energy_j() const {
  // mW * s = mJ; report joules.
  const double sum_mw =
      std::accumulate(samples_mw.begin(), samples_mw.end(), 0.0);
  return sum_mw / sample_rate_hz / 1000.0;
}

double PowerTrace::average_mw() const {
  require(!samples_mw.empty(), "PowerTrace::average_mw: empty trace");
  return std::accumulate(samples_mw.begin(), samples_mw.end(), 0.0) /
         static_cast<double>(samples_mw.size());
}

double PowerTrace::average_mw(double from_s, double to_s) const {
  require(from_s < to_s, "PowerTrace::average_mw: empty window");
  const auto from = static_cast<std::size_t>(from_s * sample_rate_hz);
  const auto to = std::min(
      samples_mw.size(), static_cast<std::size_t>(to_s * sample_rate_hz));
  require(from < to, "PowerTrace::average_mw: window outside trace");
  double sum = 0.0;
  for (std::size_t i = from; i < to; ++i) sum += samples_mw[i];
  return sum / static_cast<double>(to - from);
}

WaveformSynthesizer::WaveformSynthesizer(rrc::RrcProfile profile,
                                         DevicePowerProfile device,
                                         double sample_rate_hz)
    : profile_(std::move(profile)),
      device_(std::move(device)),
      rail_(rail_key(profile_.config.network)),
      sample_rate_hz_(sample_rate_hz) {
  require(sample_rate_hz_ > 0.0,
          "WaveformSynthesizer: sample rate must be positive");
  require(device_.has_rail(rail_),
          "WaveformSynthesizer: device has no rail for this network");
}

namespace {

/// How one planned run of samples is rendered.
enum class FillKind : std::uint8_t {
  kConstant,     // promotion burst, or transfer under constant signal
  kTransfer,     // transfer under an rsrp trajectory: per-tick rail eval
  kDrx,          // square-wave cycling between a hoisted on/sleep pair
};

/// SoA segment plan: one entry per maximal run of samples sharing a
/// timeline segment. Per-tick work drops to an fmod (DRX) or a rail
/// evaluation (trajectory transfers); everything else is hoisted here.
struct SegmentPlan {
  std::vector<std::size_t> begin;     // first sample index of the run
  std::vector<std::size_t> end;       // one past the last sample index
  std::vector<FillKind> kind;
  std::vector<double> const_mw;       // kConstant level
  std::vector<double> on_mw;          // kDrx elevated level
  std::vector<double> sleep_mw;       // kDrx light-sleep level
  std::vector<double> cycle_ms;       // kDrx cycle length
  std::vector<double> on_fraction;    // kDrx duty cycle
  std::vector<std::size_t> segment;   // timeline index (kTransfer rail eval)

  void push(std::size_t b, std::size_t e, FillKind k, std::size_t seg) {
    begin.push_back(b);
    end.push_back(e);
    kind.push_back(k);
    const_mw.push_back(0.0);
    on_mw.push_back(0.0);
    sleep_mw.push_back(0.0);
    cycle_ms.push_back(0.0);
    on_fraction.push_back(0.0);
    segment.push_back(seg);
  }
};

/// DRX square wave averaging to `mean_mw`: `on_fraction` of each cycle at an
/// elevated level, the remainder in light sleep. Solves
/// on_fraction*on + (1-on_fraction)*sleep = mean with sleep = ratio*mean —
/// a pure function of the segment, hoisted out of the sample loop.
struct DrxLevels {
  double on;
  double sleep;
};
DrxLevels drx_levels(double mean_mw, double on_fraction, double sleep_ratio) {
  const double sleep = sleep_ratio * mean_mw;
  const double on = (mean_mw - (1.0 - on_fraction) * sleep) / on_fraction;
  return {on, sleep};
}

/// First sample index in [lo, hi] whose timestamp i*dt_ms reaches `end_ms`.
/// Uses the exact predicate the per-tick scan used, so run boundaries are
/// bit-identical to the old code's segment advances; i*dt_ms is monotone in
/// i, so binary search is sound.
std::size_t boundary_after(double end_ms, double dt_ms, std::size_t lo,
                           std::size_t hi) {
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (static_cast<double>(mid) * dt_ms >= end_ms) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace

PowerTrace WaveformSynthesizer::synthesize(
    std::span<const rrc::StateSegment> timeline, Rng& rng,
    const RsrpFn& rsrp_at) const {
  require(!timeline.empty(), "WaveformSynthesizer: empty timeline");
  PowerTrace trace;
  trace.sample_rate_hz = sample_rate_hz_;
  const double horizon_ms = timeline.back().end_ms;
  const double dt_ms = 1000.0 / sample_rate_hz_;
  const auto sample_count =
      static_cast<std::size_t>(std::llround(horizon_ms / dt_ms));

  const auto& cfg = profile_.config;
  const auto& pw = profile_.power;

  // Pass 1: segment plan. Walk the timeline once, mapping each segment to
  // its run of sample indices and hoisting every per-segment constant.
  SegmentPlan plan;
  std::size_t seg = 0;
  std::size_t i = 0;
  while (i < sample_count) {
    const double t = static_cast<double>(i) * dt_ms;
    while (seg + 1 < timeline.size() && t >= timeline[seg].end_ms) ++seg;
    const std::size_t run_end =
        seg + 1 < timeline.size()
            ? boundary_after(timeline[seg].end_ms, dt_ms, i + 1, sample_count)
            : sample_count;
    const rrc::StateSegment& segment = timeline[seg];
    if (segment.promoting) {
      // Signaling burst; NSA additionally pays the 4G->5G switch (Table 2).
      plan.push(i, run_end, FillKind::kConstant, seg);
      plan.const_mw.back() = std::max(
          pw.promotion_mw, cfg.is_nsa_5g() ? pw.switch_mw : pw.promotion_mw);
    } else if (segment.transferring) {
      if (rsrp_at) {
        plan.push(i, run_end, FillKind::kTransfer, seg);
      } else {
        // Constant-signal campaign: the rail evaluation is a pure function
        // of the segment, so it runs once here instead of once per tick.
        plan.push(i, run_end, FillKind::kConstant, seg);
        plan.const_mw.back() = device_.transfer_power_mw(
            rail_, segment.dl_mbps, segment.ul_mbps,
            device_.good_rsrp_dbm(rail_));
      }
    } else {
      double mean_mw = pw.idle_mw;
      double cycle = cfg.idle_drx_cycle_ms;
      double on_fraction = 0.05;
      double sleep_ratio = 0.6;
      switch (segment.state) {
        case rrc::RrcState::kConnected:
          mean_mw = pw.tail_mw;
          cycle = cfg.long_drx_cycle_ms;
          on_fraction = 0.2;
          sleep_ratio = 0.35;
          break;
        case rrc::RrcState::kConnectedAnchor:
          mean_mw = pw.anchor_tail_mw;
          cycle = cfg.long_drx_cycle_ms;
          on_fraction = 0.2;
          sleep_ratio = 0.35;
          break;
        case rrc::RrcState::kInactive:
          mean_mw = pw.inactive_mw;
          cycle = 320.0;
          on_fraction = 0.1;
          sleep_ratio = 0.45;
          break;
        case rrc::RrcState::kIdle:
          break;
      }
      if (cycle <= 0.0) {
        plan.push(i, run_end, FillKind::kConstant, seg);
        plan.const_mw.back() = mean_mw;
      } else {
        plan.push(i, run_end, FillKind::kDrx, seg);
        const DrxLevels levels = drx_levels(mean_mw, on_fraction, sleep_ratio);
        plan.on_mw.back() = levels.on;
        plan.sleep_mw.back() = levels.sleep;
        plan.cycle_ms.back() = cycle;
        plan.on_fraction.back() = on_fraction;
      }
    }
    i = run_end;
  }

  // Pass 2: render clean power, one batched run at a time.
  std::vector<double>& samples = trace.samples_mw;
  samples.resize(sample_count);
  for (std::size_t run = 0; run < plan.begin.size(); ++run) {
    const std::size_t b = plan.begin[run];
    const std::size_t e = plan.end[run];
    switch (plan.kind[run]) {
      case FillKind::kConstant:
        std::fill(samples.begin() + static_cast<std::ptrdiff_t>(b),
                  samples.begin() + static_cast<std::ptrdiff_t>(e),
                  plan.const_mw[run]);
        break;
      case FillKind::kTransfer: {
        const rrc::StateSegment& segment = timeline[plan.segment[run]];
        for (std::size_t s = b; s < e; ++s) {
          const double t = static_cast<double>(s) * dt_ms;
          samples[s] = device_.transfer_power_mw(
              rail_, segment.dl_mbps, segment.ul_mbps, rsrp_at(t));
        }
        break;
      }
      case FillKind::kDrx: {
        const double cycle = plan.cycle_ms[run];
        const double on_fraction = plan.on_fraction[run];
        const double on = plan.on_mw[run];
        const double sleep = plan.sleep_mw[run];
        for (std::size_t s = b; s < e; ++s) {
          const double t = static_cast<double>(s) * dt_ms;
          const double phase = std::fmod(t, cycle) / cycle;
          samples[s] = phase < on_fraction ? on : sleep;
        }
        break;
      }
    }
  }

  // Pass 3: measurement + conversion noise, ~2% multiplicative with a 4 mW
  // floor. One stream in tick order, two draws per tick — the exact draw
  // sequence of the per-tick path, so traces are bit-identical to it.
  for (std::size_t s = 0; s < sample_count; ++s) {
    const double clean = samples[s];
    const double noisy = clean * (1.0 + rng.normal(0.0, 0.02)) +
                         rng.normal(0.0, 4.0);
    samples[s] = std::max(0.0, noisy);
  }
  return trace;
}

}  // namespace wild5g::power
