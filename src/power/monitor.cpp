#include "power/monitor.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace wild5g::power {

std::vector<double> MonsoonMonitor::per_second_mw(const PowerTrace& waveform) {
  require(!waveform.samples_mw.empty(), "MonsoonMonitor: empty waveform");
  const auto per_second =
      static_cast<std::size_t>(waveform.sample_rate_hz);
  require(per_second > 0, "MonsoonMonitor: sub-1Hz waveform");
  std::vector<double> out;
  for (std::size_t start = 0; start + per_second <= waveform.samples_mw.size();
       start += per_second) {
    double sum = 0.0;
    for (std::size_t i = start; i < start + per_second; ++i) {
      sum += waveform.samples_mw[i];
    }
    out.push_back(sum / static_cast<double>(per_second));
  }
  return out;
}

double software_monitor_overhead_mw(double sample_rate_hz) {
  // Table 3: idle 2014.3 mW, monitor on @1 Hz 2668.5 mW, @10 Hz 3125.7 mW.
  // Interpolate logarithmically between the two measured rates.
  if (sample_rate_hz <= 0.0) return 0.0;
  constexpr double kAt1Hz = 2668.5 - 2014.3;
  constexpr double kAt10Hz = 3125.7 - 2014.3;
  const double log_rate = std::clamp(std::log10(sample_rate_hz), 0.0, 1.0);
  return kAt1Hz + (kAt10Hz - kAt1Hz) * log_rate;
}

SoftwareMonitorConfig default_software_monitor(double sample_rate_hz) {
  SoftwareMonitorConfig config;
  config.sample_rate_hz = sample_rate_hz;
  // Table 9: SW/HW ratio ~0.81-0.92 @1 Hz, ~0.90-0.95 @10 Hz.
  config.bias = sample_rate_hz >= 10.0 ? 0.92 : 0.86;
  config.noise = sample_rate_hz >= 10.0 ? 0.04 : 0.05;
  return config;
}

std::vector<double> SoftwareMonitor::readings_mw(const PowerTrace& waveform,
                                                 Rng& rng) const {
  require(config_.sample_rate_hz > 0.0, "SoftwareMonitor: bad rate");
  std::vector<double> readings;
  const double step_s = 1.0 / config_.sample_rate_hz;
  for (double t = 0.0; t < waveform.duration_s(); t += step_s) {
    // Poller scheduling jitter: without it, fixed-phase sampling aliases
    // against DRX square waves and biases the readings.
    const double jittered = t + rng.uniform(0.0, step_s);
    const auto index = std::min(
        waveform.samples_mw.size() - 1,
        static_cast<std::size_t>(jittered * waveform.sample_rate_hz));
    const double instant = waveform.samples_mw[index];
    readings.push_back(
        std::max(0.0, instant * config_.bias *
                          (1.0 + rng.normal(0.0, config_.noise))));
  }
  return readings;
}

std::vector<double> SoftwareMonitor::per_second_mw(const PowerTrace& waveform,
                                                   Rng& rng) const {
  const auto readings = readings_mw(waveform, rng);
  const auto per_second = static_cast<std::size_t>(
      std::max(1.0, config_.sample_rate_hz));
  std::vector<double> out;
  for (std::size_t start = 0; start + per_second <= readings.size();
       start += per_second) {
    double sum = 0.0;
    for (std::size_t i = start; i < start + per_second; ++i) {
      sum += readings[i];
    }
    out.push_back(sum / static_cast<double>(per_second));
  }
  return out;
}

void SoftwareCalibration::fit(std::span<const double> software_mw,
                              std::span<const double> hardware_mw) {
  require(software_mw.size() == hardware_mw.size(),
          "SoftwareCalibration::fit: size mismatch");
  require(software_mw.size() >= 20,
          "SoftwareCalibration::fit: need >= 20 aligned seconds");
  ml::Dataset data;
  data.feature_names = {"sw_power_mw"};
  for (std::size_t i = 0; i < software_mw.size(); ++i) {
    data.add({software_mw[i]}, hardware_mw[i]);
  }
  tree_.fit(data);
}

double SoftwareCalibration::calibrate(double software_reading_mw) const {
  require(tree_.is_fitted(), "SoftwareCalibration: not fitted");
  const double features[] = {software_reading_mw};
  return tree_.predict(features);
}

std::vector<double> SoftwareCalibration::calibrate_all(
    std::span<const double> software_mw) const {
  std::vector<double> out;
  out.reserve(software_mw.size());
  for (double reading : software_mw) out.push_back(calibrate(reading));
  return out;
}

}  // namespace wild5g::power
