#include "power/fitting.h"

#include "core/error.h"
#include "core/stats.h"

namespace wild5g::power {

std::string to_string(FeatureSet features) {
  switch (features) {
    case FeatureSet::kThroughputAndSignal: return "TH+SS";
    case FeatureSet::kThroughputOnly: return "TH";
    case FeatureSet::kSignalOnly: return "SS";
  }
  return "?";
}

PowerModelFit::PowerModelFit(FeatureSet features, ml::TreeConfig tree_config)
    : features_(features), tree_(tree_config) {}

std::vector<std::string> PowerModelFit::feature_names() const {
  switch (features_) {
    case FeatureSet::kThroughputAndSignal:
      return {"dl_mbps", "ul_mbps", "rsrp_dbm"};
    case FeatureSet::kThroughputOnly:
      return {"dl_mbps", "ul_mbps"};
    case FeatureSet::kSignalOnly:
      return {"rsrp_dbm"};
  }
  return {};
}

std::vector<double> PowerModelFit::feature_row(double dl_mbps, double ul_mbps,
                                               double rsrp_dbm) const {
  switch (features_) {
    case FeatureSet::kThroughputAndSignal:
      return {dl_mbps, ul_mbps, rsrp_dbm};
    case FeatureSet::kThroughputOnly:
      return {dl_mbps, ul_mbps};
    case FeatureSet::kSignalOnly:
      return {rsrp_dbm};
  }
  return {};
}

void PowerModelFit::fit(std::span<const CampaignSample> samples, Rng& rng,
                        double train_fraction) {
  require(samples.size() >= 50, "PowerModelFit::fit: campaign too small");
  ml::Dataset data;
  data.feature_names = feature_names();
  for (const auto& sample : samples) {
    data.add(feature_row(sample.dl_mbps, sample.ul_mbps, sample.rsrp_dbm),
             sample.power_mw);
  }
  const auto split = ml::train_test_split(data, train_fraction, rng);
  tree_.fit(split.train);
  const auto predicted = tree_.predict_all(split.test);
  test_mape_ = stats::mape_percent(split.test.targets, predicted);
}

double PowerModelFit::predict_mw(double dl_mbps, double ul_mbps,
                                 double rsrp_dbm) const {
  require(tree_.is_fitted(), "PowerModelFit: not fitted");
  return tree_.predict(feature_row(dl_mbps, ul_mbps, rsrp_dbm));
}

double PowerModelFit::estimate_energy_j(
    std::span<const UsageSlot> usage) const {
  double energy_j = 0.0;
  for (const auto& slot : usage) {
    require(slot.duration_s >= 0.0, "estimate_energy_j: negative duration");
    energy_j += predict_mw(slot.dl_mbps, slot.ul_mbps, slot.rsrp_dbm) / 1000.0 *
                slot.duration_s;
  }
  return energy_j;
}

}  // namespace wild5g::power
