// wild5g/power: in-the-wild walking campaigns (Sec. 4.1, "Data Collection
// Methodology") — the joint network/power traces used to study the
// power-RSRP-throughput relationship (Figs. 13-14) and to train the power
// models (Fig. 15).
#pragma once

#include <vector>

#include "core/rng.h"
#include "power/power_model.h"
#include "radio/channel.h"
#include "radio/types.h"
#include "radio/ue.h"

namespace wild5g::power {

/// One logged instant of a walking trace (10 Hz logger in the paper).
struct CampaignSample {
  double t_s = 0.0;
  double rsrp_dbm = 0.0;
  double dl_mbps = 0.0;
  double ul_mbps = 0.0;
  double power_mw = 0.0;  // hardware-measured radio power
};

struct WalkingCampaignConfig {
  radio::NetworkConfig network;
  radio::UeProfile ue;
  double duration_s = 1200.0;    // the 20-minute loop
  double log_period_s = 0.1;     // 10 Hz network logging
  double mean_utilization = 0.9; // bulk transfer fills most of the capacity
  double uplink_ratio = 0.03;    // ack traffic share
};

/// Simulates one walking loop: the channel wanders (shadowing/blockage per
/// band), the bulk transfer tracks the varying capacity, and the device's
/// power rails produce the measured power. Deterministic in `rng`.
[[nodiscard]] std::vector<CampaignSample> run_walking_campaign(
    const WalkingCampaignConfig& config, const DevicePowerProfile& device,
    Rng& rng);

struct ControlledSweepConfig {
  radio::NetworkConfig network;
  radio::UeProfile ue;
  int throughput_steps = 20;     // iPerf3 target rates, 0..capacity
  double seconds_per_step = 5.0; // dwell per target (10 Hz logging)
  double rsrp_dbm = -78.0;       // stationary LoS to the panel
};

/// The paper's controlled experiments (Sec. 4.1): stationary LoS, UDP at
/// fixed target throughputs swept from idle to link capacity. Covers the
/// low-throughput/good-signal region walking campaigns miss; the paper's
/// power models train on both.
[[nodiscard]] std::vector<CampaignSample> run_controlled_sweep(
    const ControlledSweepConfig& config, const DevicePowerProfile& device,
    Rng& rng);

}  // namespace wild5g::power
