#include "power/campaign.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace wild5g::power {

std::vector<CampaignSample> run_walking_campaign(
    const WalkingCampaignConfig& config, const DevicePowerProfile& device,
    Rng& rng) {
  require(config.duration_s > 0.0 && config.log_period_s > 0.0,
          "run_walking_campaign: invalid durations");
  const RailKey rail = rail_key(config.network);
  require(device.has_rail(rail),
          "run_walking_campaign: device lacks this network's rail");

  radio::ChannelProcess channel(
      radio::default_channel_process(config.network.band), rng.fork(1));
  Rng noise = rng.fork(2);

  std::vector<CampaignSample> samples;
  samples.reserve(
      static_cast<std::size_t>(config.duration_s / config.log_period_s));

  // Link utilization wanders slowly around the mean (application pacing,
  // server share, cross traffic).
  double utilization = config.mean_utilization;
  for (double t = 0.0; t < config.duration_s; t += config.log_period_s) {
    const auto sample = channel.step(config.log_period_s);
    // Unconstrained walk over (0.05, 1]: campaigns cover idle-ish seconds
    // too, so fitted models have support at low throughput (the Sec. 4.5
    // app-validation workloads spend much of their time there).
    utilization = std::clamp(
        utilization + noise.normal(0.0, 0.012), 0.05, 1.0);
    const double capacity = radio::link_capacity_mbps(
        config.network, config.ue, radio::Direction::kDownlink,
        sample.rsrp_dbm);
    const double dl = capacity * utilization;
    const double ul = dl * config.uplink_ratio;
    const double clean =
        device.transfer_power_mw(rail, dl, ul, sample.rsrp_dbm);
    const double power =
        std::max(0.0, clean * (1.0 + noise.normal(0.0, 0.03)));
    samples.push_back({t, sample.rsrp_dbm, dl, ul, power});
  }
  return samples;
}

std::vector<CampaignSample> run_controlled_sweep(
    const ControlledSweepConfig& config, const DevicePowerProfile& device,
    Rng& rng) {
  require(config.throughput_steps >= 2 && config.seconds_per_step > 0.0,
          "run_controlled_sweep: invalid config");
  const RailKey rail = rail_key(config.network);
  require(device.has_rail(rail),
          "run_controlled_sweep: device lacks this network's rail");
  const double capacity = radio::link_capacity_mbps(
      config.network, config.ue, radio::Direction::kDownlink,
      config.rsrp_dbm);

  std::vector<CampaignSample> samples;
  double t = 0.0;
  for (int step = 0; step < config.throughput_steps; ++step) {
    // Quadratic spacing: dense targets at low rates, where applications
    // spend most of their time and where energy-per-bit changes fastest.
    const double fraction = static_cast<double>(step) /
                            static_cast<double>(config.throughput_steps - 1);
    const double target = capacity * fraction * fraction;
    for (double dwell = 0.0; dwell < config.seconds_per_step; dwell += 0.1) {
      const double rsrp = config.rsrp_dbm + rng.normal(0.0, 1.0);
      const double dl = std::max(0.0, target * rng.uniform(0.97, 1.0));
      const double ul = dl * 0.02;
      const double power = std::max(
          0.0, device.transfer_power_mw(rail, dl, ul, rsrp) *
                   (1.0 + rng.normal(0.0, 0.03)));
      samples.push_back({t, rsrp, dl, ul, power});
      t += 0.1;
    }
  }
  return samples;
}

}  // namespace wild5g::power
