// wild5g/traces: CSV serialization for throughput traces and campaign logs.
//
// The paper's artifact ships its datasets as CSV; these routines let users
// export generated populations in the same spirit (and re-import them, so
// an exported dataset round-trips exactly at the stored precision).
//
// Two read modes:
//  - strict (default): any malformed row throws wild5g::Error. Generated
//    datasets are trusted; silent repair there would hide writer bugs.
//  - lenient: pass a TraceReadStats* and malformed rows (bad field count,
//    unparseable or non-finite numbers, broken index contiguity) are
//    skipped and counted instead of thrown. This is the graceful-degradation
//    path for field data and for the fault-injection chaos suite, which
//    deliberately corrupts records on disk (see corrupt_traces_csv).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "power/campaign.h"
#include "traces/traces.h"

namespace wild5g::faults {
class Injector;
}

namespace wild5g::traces {

/// Tallies from a lenient read. A strict read never populates one.
struct TraceReadStats {
  std::size_t skipped_records = 0;
};

/// Writes traces in long form: header `trace_id,interval_s,index,mbps`,
/// one row per sample.
void write_traces_csv(std::ostream& out, const std::vector<Trace>& traces);

/// Reads the long-form CSV back. Strict when `stats` is null (throws
/// wild5g::Error on malformed input); lenient when non-null (malformed rows
/// are skipped and counted in stats->skipped_records). The header row is
/// always strict: a wrong header means the wrong file, not a bad record.
[[nodiscard]] std::vector<Trace> read_traces_csv(
    std::istream& in, TraceReadStats* stats = nullptr);

/// File-path conveniences.
void save_traces_csv(const std::string& path,
                     const std::vector<Trace>& traces);
[[nodiscard]] std::vector<Trace> load_traces_csv(
    const std::string& path, TraceReadStats* stats = nullptr);

/// Walking-campaign log: header `t_s,rsrp_dbm,dl_mbps,ul_mbps,power_mw`.
/// Same strict/lenient contract as read_traces_csv.
void write_campaign_csv(std::ostream& out,
                        const std::vector<power::CampaignSample>& samples);
[[nodiscard]] std::vector<power::CampaignSample> read_campaign_csv(
    std::istream& in, TraceReadStats* stats = nullptr);

/// Serializes `traces`, then deterministically mangles the data rows whose
/// record index the injector's trace_corrupt windows select (record i sits
/// at t = i in window space). Used by the chaos suite to produce on-disk
/// corruption that lenient readers must survive. Returns the corrupted CSV
/// text and the number of rows mangled via `corrupted_out` (optional).
[[nodiscard]] std::string corrupt_traces_csv(
    const std::vector<Trace>& traces, const faults::Injector& injector,
    std::size_t* corrupted_out = nullptr);

}  // namespace wild5g::traces
