// wild5g/traces: CSV serialization for throughput traces and campaign logs.
//
// The paper's artifact ships its datasets as CSV; these routines let users
// export generated populations in the same spirit (and re-import them, so
// an exported dataset round-trips exactly at the stored precision).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "power/campaign.h"
#include "traces/traces.h"

namespace wild5g::traces {

/// Writes traces in long form: header `trace_id,interval_s,index,mbps`,
/// one row per sample.
void write_traces_csv(std::ostream& out, const std::vector<Trace>& traces);

/// Reads the long-form CSV back. Throws wild5g::Error on malformed input.
[[nodiscard]] std::vector<Trace> read_traces_csv(std::istream& in);

/// File-path conveniences.
void save_traces_csv(const std::string& path,
                     const std::vector<Trace>& traces);
[[nodiscard]] std::vector<Trace> load_traces_csv(const std::string& path);

/// Walking-campaign log: header `t_s,rsrp_dbm,dl_mbps,ul_mbps,power_mw`.
void write_campaign_csv(std::ostream& out,
                        const std::vector<power::CampaignSample>& samples);
[[nodiscard]] std::vector<power::CampaignSample> read_campaign_csv(
    std::istream& in);

}  // namespace wild5g::traces
