#include "traces/trace_io.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "core/error.h"

namespace wild5g::traces {

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, ',')) fields.push_back(field);
  return fields;
}

double parse_double(const std::string& field, const std::string& what) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(field, &consumed);
    require(consumed == field.size(), "trailing characters");
    // "nan"/"inf" satisfy stod but would silently poison every downstream
    // aggregate; surface them as the malformed input they are.
    require(std::isfinite(value), "non-finite value");
    return value;
  } catch (const std::exception&) {
    throw Error("trace_io: malformed " + what + " field '" + field + "'");
  }
}

double check_finite(double value, const char* what) {
  require(std::isfinite(value),
          std::string("trace_io: cannot serialize non-finite ") + what);
  return value;
}

}  // namespace

void write_traces_csv(std::ostream& out, const std::vector<Trace>& traces) {
  out << "trace_id,interval_s,index,mbps\n";
  out << std::setprecision(10);
  for (const auto& trace : traces) {
    for (std::size_t i = 0; i < trace.mbps.size(); ++i) {
      out << trace.id << ',' << check_finite(trace.interval_s, "interval")
          << ',' << i << ',' << check_finite(trace.mbps[i], "mbps") << '\n';
    }
  }
}

std::vector<Trace> read_traces_csv(std::istream& in) {
  std::string line;
  require(static_cast<bool>(std::getline(in, line)),
          "trace_io: empty input");
  require(line == "trace_id,interval_s,index,mbps",
          "trace_io: unexpected trace header '" + line + "'");

  std::vector<Trace> traces;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = split_csv_line(line);
    require(fields.size() == 4, "trace_io: expected 4 fields, got " +
                                    std::to_string(fields.size()));
    if (traces.empty() || traces.back().id != fields[0]) {
      Trace trace;
      trace.id = fields[0];
      trace.interval_s = parse_double(fields[1], "interval");
      traces.push_back(std::move(trace));
    }
    const auto index =
        static_cast<std::size_t>(parse_double(fields[2], "index"));
    require(index == traces.back().mbps.size(),
            "trace_io: non-contiguous sample index in trace " + fields[0]);
    traces.back().mbps.push_back(parse_double(fields[3], "mbps"));
  }
  return traces;
}

void save_traces_csv(const std::string& path,
                     const std::vector<Trace>& traces) {
  std::ofstream out(path);
  require(out.good(), "trace_io: cannot open '" + path + "' for writing");
  write_traces_csv(out, traces);
}

std::vector<Trace> load_traces_csv(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "trace_io: cannot open '" + path + "' for reading");
  return read_traces_csv(in);
}

void write_campaign_csv(std::ostream& out,
                        const std::vector<power::CampaignSample>& samples) {
  out << "t_s,rsrp_dbm,dl_mbps,ul_mbps,power_mw\n";
  out << std::setprecision(10);
  for (const auto& s : samples) {
    out << check_finite(s.t_s, "t_s") << ','
        << check_finite(s.rsrp_dbm, "rsrp_dbm") << ','
        << check_finite(s.dl_mbps, "dl_mbps") << ','
        << check_finite(s.ul_mbps, "ul_mbps") << ','
        << check_finite(s.power_mw, "power_mw") << '\n';
  }
}

std::vector<power::CampaignSample> read_campaign_csv(std::istream& in) {
  std::string line;
  require(static_cast<bool>(std::getline(in, line)),
          "trace_io: empty input");
  require(line == "t_s,rsrp_dbm,dl_mbps,ul_mbps,power_mw",
          "trace_io: unexpected campaign header '" + line + "'");
  std::vector<power::CampaignSample> samples;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = split_csv_line(line);
    require(fields.size() == 5, "trace_io: expected 5 fields, got " +
                                    std::to_string(fields.size()));
    samples.push_back({parse_double(fields[0], "t_s"),
                       parse_double(fields[1], "rsrp"),
                       parse_double(fields[2], "dl"),
                       parse_double(fields[3], "ul"),
                       parse_double(fields[4], "power")});
  }
  return samples;
}

}  // namespace wild5g::traces
