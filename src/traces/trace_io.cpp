#include "traces/trace_io.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "core/error.h"
#include "faults/injector.h"

namespace wild5g::traces {

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, ',')) fields.push_back(field);
  return fields;
}

double parse_double(const std::string& field, const std::string& what) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(field, &consumed);
    require(consumed == field.size(), "trailing characters");
    // "nan"/"inf" satisfy stod but would silently poison every downstream
    // aggregate; surface them as the malformed input they are.
    require(std::isfinite(value), "non-finite value");
    return value;
  } catch (const std::exception&) {
    throw Error("trace_io: malformed " + what + " field '" + field + "'");
  }
}

double check_finite(double value, const char* what) {
  WILD5G_REQUIRE(std::isfinite(value),
                 std::string("trace_io: cannot serialize non-finite ") + what);
  return value;
}

/// Lenient-mode wrapper: runs `parse_row` (which throws on any malformed
/// row); strict mode propagates, lenient mode counts and drops the row.
template <typename ParseRow>
void consume_row(TraceReadStats* stats, ParseRow&& parse_row) {
  if (stats == nullptr) {
    parse_row();
    return;
  }
  try {
    parse_row();
  } catch (const Error&) {
    ++stats->skipped_records;
  }
}

}  // namespace

void write_traces_csv(std::ostream& out, const std::vector<Trace>& traces) {
  out << "trace_id,interval_s,index,mbps\n";
  out << std::setprecision(10);
  for (const auto& trace : traces) {
    for (std::size_t i = 0; i < trace.mbps.size(); ++i) {
      out << trace.id << ',' << check_finite(trace.interval_s, "interval")
          << ',' << i << ',' << check_finite(trace.mbps[i], "mbps") << '\n';
    }
  }
}

std::vector<Trace> read_traces_csv(std::istream& in, TraceReadStats* stats) {
  std::string line;
  require(static_cast<bool>(std::getline(in, line)),
          "trace_io: empty input");
  require(line == "trace_id,interval_s,index,mbps",
          "trace_io: unexpected trace header '" + line + "'");

  std::vector<Trace> traces;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    consume_row(stats, [&] {
      const auto fields = split_csv_line(line);
      require(fields.size() == 4, "trace_io: expected 4 fields, got " +
                                      std::to_string(fields.size()));
      // Parse every field before mutating `traces`, so a row rejected in
      // lenient mode leaves no half-applied state (e.g. an empty trace
      // created for a row whose mbps field turns out to be garbage).
      const double interval = parse_double(fields[1], "interval");
      const auto index =
          static_cast<std::size_t>(parse_double(fields[2], "index"));
      const double mbps = parse_double(fields[3], "mbps");
      const bool new_trace = traces.empty() || traces.back().id != fields[0];
      require(index == (new_trace ? 0 : traces.back().mbps.size()),
              "trace_io: non-contiguous sample index in trace " + fields[0]);
      if (new_trace) {
        Trace trace;
        trace.id = fields[0];
        trace.interval_s = interval;
        traces.push_back(std::move(trace));
      }
      traces.back().mbps.push_back(mbps);
    });
  }
  return traces;
}

void save_traces_csv(const std::string& path,
                     const std::vector<Trace>& traces) {
  std::ofstream out(path);
  require(out.good(), "trace_io: cannot open '" + path + "' for writing");
  write_traces_csv(out, traces);
}

std::vector<Trace> load_traces_csv(const std::string& path,
                                   TraceReadStats* stats) {
  std::ifstream in(path);
  require(in.good(), "trace_io: cannot open '" + path + "' for reading");
  return read_traces_csv(in, stats);
}

void write_campaign_csv(std::ostream& out,
                        const std::vector<power::CampaignSample>& samples) {
  out << "t_s,rsrp_dbm,dl_mbps,ul_mbps,power_mw\n";
  out << std::setprecision(10);
  for (const auto& s : samples) {
    out << check_finite(s.t_s, "t_s") << ','
        << check_finite(s.rsrp_dbm, "rsrp_dbm") << ','
        << check_finite(s.dl_mbps, "dl_mbps") << ','
        << check_finite(s.ul_mbps, "ul_mbps") << ','
        << check_finite(s.power_mw, "power_mw") << '\n';
  }
}

std::vector<power::CampaignSample> read_campaign_csv(std::istream& in,
                                                     TraceReadStats* stats) {
  std::string line;
  require(static_cast<bool>(std::getline(in, line)),
          "trace_io: empty input");
  require(line == "t_s,rsrp_dbm,dl_mbps,ul_mbps,power_mw",
          "trace_io: unexpected campaign header '" + line + "'");
  std::vector<power::CampaignSample> samples;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    consume_row(stats, [&] {
      const auto fields = split_csv_line(line);
      require(fields.size() == 5, "trace_io: expected 5 fields, got " +
                                      std::to_string(fields.size()));
      samples.push_back({parse_double(fields[0], "t_s"),
                         parse_double(fields[1], "rsrp"),
                         parse_double(fields[2], "dl"),
                         parse_double(fields[3], "ul"),
                         parse_double(fields[4], "power")});
    });
  }
  return samples;
}

std::string corrupt_traces_csv(const std::vector<Trace>& traces,
                               const faults::Injector& injector,
                               std::size_t* corrupted_out) {
  std::ostringstream clean;
  write_traces_csv(clean, traces);
  std::istringstream in(clean.str());

  std::ostringstream out;
  std::string line;
  std::getline(in, line);  // Header stays intact: corruption targets records.
  out << line << '\n';

  std::size_t corrupted = 0;
  std::uint64_t record = 0;
  while (std::getline(in, line)) {
    if (injector.corrupt_record(record)) {
      // Truncate mid-field: keeps the trace_id prefix plausible while
      // guaranteeing the numeric tail no longer parses.
      out << line.substr(0, line.size() / 2) << "#corrupt\n";
      ++corrupted;
    } else {
      out << line << '\n';
    }
    ++record;
  }
  if (corrupted_out != nullptr) *corrupted_out = corrupted;
  return out.str();
}

}  // namespace wild5g::traces
