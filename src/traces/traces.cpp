#include "traces/traces.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "core/stats.h"
#include "radio/ue.h"

namespace wild5g::traces {

double Trace::at(double t_s) const {
  WILD5G_REQUIRE(!mbps.empty(), "Trace::at: empty trace");
  WILD5G_REQUIRE(t_s >= 0.0, "Trace::at: negative time");
  const auto index = std::min(
      mbps.size() - 1, static_cast<std::size_t>(t_s / interval_s));
  return mbps[index];
}

double Trace::mean() const { return stats::mean(mbps); }
double Trace::median() const { return stats::median(mbps); }

TraceSetConfig lumos5g_mmwave_config() {
  return {.count = 121, .duration_s = 320.0, .target_median_mbps = 160.0,
          .is_5g = true};
}

TraceSetConfig lumos5g_lte_config() {
  return {.count = 175, .duration_s = 320.0, .target_median_mbps = 20.0,
          .is_5g = false};
}

namespace {

/// Raw (unscaled) mmWave trace: capacity under a walking channel with heavy
/// blockage, so the population has the dataset's signature heavy swings and
/// near-zero outages.
std::vector<double> raw_mmwave_trace(double duration_s, Rng& rng) {
  auto config = radio::default_channel_process(radio::Band::kNrMmWave);
  // Deep NLoS outages are rare but long (the collection loops stay inside
  // mmWave coverage, so most of the trace is serviceable).
  config.blockage_rate_per_s = 0.006;
  config.blockage_mean_duration_s = 15.0;
  config.blockage_loss_db = 40.0;  // NLoS: collapses capacity to ~nothing
  // Partial dips (foliage, vehicles, the user's own body): throughput drops
  // to tens of Mbps — above the lowest track, so adaptation quality (and
  // chunk granularity, Fig. 18b) decides whether they stall.
  config.partial_rate_per_s = 0.05;
  config.partial_mean_duration_s = 6.0;
  config.partial_loss_db = 22.0;
  config.distance_jitter_m = 80.0;
  // mmWave throughput moves in persistent multi-second steps (beam and
  // reflection-path changes), not per-second jitter: strong shadowing with
  // a short correlation time. Second-scale persistence is what lets
  // fine-grained (1 s chunk) adaptation win in Sec. 5.3.
  config.shadowing_sigma_db = 7.0;
  config.shadowing_tau_s = 4.0;
  config.mean_distance_m = rng.uniform(90.0, 170.0);
  radio::ChannelProcess channel(config, rng.fork(11));
  const radio::NetworkConfig network{radio::Carrier::kVerizon,
                                     radio::Band::kNrMmWave,
                                     radio::DeploymentMode::kNsa};
  const auto ue = radio::galaxy_s20u();

  std::vector<double> mbps;
  double share = rng.uniform(0.55, 0.95);  // cell load share for this run
  for (double t = 0.0; t < duration_s; t += 1.0) {
    const auto sample = channel.step(1.0);
    share = std::clamp(share + rng.normal(0.0, 0.008), 0.3, 1.0);
    const double cap = radio::link_capacity_mbps(
        network, ue, radio::Direction::kDownlink, sample.rsrp_dbm);
    mbps.push_back(std::max(0.0, cap * share));
  }
  return mbps;
}

/// Raw 4G trace: mean-reverting with moderate fluctuation (cell load, small
/// fades) but no outages — stable relative to mmWave, not flat.
std::vector<double> raw_lte_trace(double duration_s, Rng& rng) {
  const double mean = rng.uniform(0.8, 1.25);
  double value = mean;
  double congestion_left_s = 0.0;
  std::vector<double> mbps;
  for (double t = 0.0; t < duration_s; t += 1.0) {
    value = std::max(0.15, value + 0.25 * (mean - value) +
                               rng.normal(0.0, 0.16));
    // Occasional cell-congestion episodes: throughput halves or worse for
    // a few seconds (the source of the paper's small 4G stall rates).
    if (congestion_left_s > 0.0) {
      congestion_left_s -= 1.0;
      mbps.push_back(value * rng.uniform(0.25, 0.5));
    } else {
      if (rng.bernoulli(0.012)) congestion_left_s = rng.exponential(5.0);
      mbps.push_back(value);
    }
  }
  return mbps;
}

}  // namespace

std::vector<Trace> generate_traces(const TraceSetConfig& config, Rng& rng) {
  require(config.count > 0 && config.duration_s >= 10.0,
          "generate_traces: invalid config");
  std::vector<Trace> traces(static_cast<std::size_t>(config.count));
  for (int i = 0; i < config.count; ++i) {
    auto& trace = traces[static_cast<std::size_t>(i)];
    Rng local = rng.fork(static_cast<std::uint64_t>(i) + 101);
    trace.id = (config.is_5g ? "5g-" : "4g-") + std::to_string(i);
    trace.mbps = config.is_5g ? raw_mmwave_trace(config.duration_s, local)
                              : raw_lte_trace(config.duration_s, local);
  }

  // Scale the whole population so its pooled median hits the anchor the
  // paper ties the top video track to.
  const double raw_median = population_median_mbps(traces);
  require(raw_median > 0.0, "generate_traces: degenerate population");
  const double scale = config.target_median_mbps / raw_median;
  for (auto& trace : traces) {
    for (auto& v : trace.mbps) v *= scale;
  }
  return traces;
}

double population_median_mbps(const std::vector<Trace>& traces) {
  std::vector<double> all;
  for (const auto& trace : traces) {
    all.insert(all.end(), trace.mbps.begin(), trace.mbps.end());
  }
  require(!all.empty(), "population_median_mbps: no samples");
  return stats::median(all);
}

}  // namespace wild5g::traces
