// wild5g/traces: throughput-trace generation after the Lumos5G dataset.
//
// Sec. 5.1 drives all ABR experiments from throughput traces collected at
// 1-second granularity (121 5G mmWave traces, 175 4G traces). We do not have
// the field data, so we synthesize trace populations with the moments that
// matter for rate adaptation: 4G is low-mean and stable; mmWave 5G is an
// order of magnitude faster on median but swings wildly and collapses to
// near-zero during blockage. Populations are scaled so their median matches
// the paper's anchors (the top video track: 160 Mbps for 5G, 20 Mbps for 4G).
#pragma once

#include <string>
#include <vector>

#include "core/rng.h"
#include "radio/channel.h"

namespace wild5g::traces {

/// One throughput trace at fixed sampling granularity.
struct Trace {
  std::string id;
  double interval_s = 1.0;
  std::vector<double> mbps;

  [[nodiscard]] double duration_s() const {
    return static_cast<double>(mbps.size()) * interval_s;
  }
  /// Bandwidth at time t (last sample extends to infinity).
  [[nodiscard]] double at(double t_s) const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double median() const;
};

struct TraceSetConfig {
  int count = 121;
  double duration_s = 320.0;
  double target_median_mbps = 160.0;
  bool is_5g = true;  // mmWave channel dynamics vs stable LTE
};

/// Default configurations mirroring the Lumos5G populations used in Sec. 5.
[[nodiscard]] TraceSetConfig lumos5g_mmwave_config();  // 121 traces, median 160
[[nodiscard]] TraceSetConfig lumos5g_lte_config();     // 175 traces, median 20

/// Generates a trace population; deterministic in `rng`.
[[nodiscard]] std::vector<Trace> generate_traces(const TraceSetConfig& config,
                                                 Rng& rng);

/// Pooled median throughput across a population.
[[nodiscard]] double population_median_mbps(const std::vector<Trace>& traces);

}  // namespace wild5g::traces
