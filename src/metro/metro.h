// wild5g/metro: sharded multi-UE campaign driver over shared cells.
//
// The paper measures a handful of UEs one at a time; metro scale asks what
// a city of them does to each other. This module couples the repo's radio
// primitives into a contention campaign: a corridor of cells, each with a
// radio::CellScheduler splitting its airtime among the UEs camped on it, a
// population of UEs driven through radio::A3HandoffEngine (so a loaded
// cell's UEs move — and hand off — together), and per-UE metrics aggregated
// through stats::SampleAccumulator so memory stays O(cells x steps +
// sketch) no matter whether the campaign runs 1e3 or 1e6 UEs.
//
// Determinism (DESIGN.md section 11): coupling UEs through shared cells
// naively breaks the byte-identical-at-any-thread-count contract, because a
// UE's throughput depends on how many *other* UEs share its cell at each
// step. run_campaign restores independence with a two-phase recompute:
//
//   Phase 1 (parallel over fixed-size UE shards): every UE's serving-cell
//     timeline is a pure function of base.fork(ue_index) — trajectory, A3
//     handoffs, activity draws. Shards return integer occupancy matrices
//     (attached / active counts per cell per step) plus handoff tallies;
//     integer addition is exact, so the serial index-ordered merge is
//     schedule-independent.
//   Ledger (serial): the merged attachment deltas are replayed through one
//     CellScheduler per cell — attach/detach bookkeeping at campaign scale,
//     cross-checked against the occupancy matrix every step.
//   Phase 2 (parallel again): each UE is re-simulated with byte-identical
//     draws (fork(i) is position-independent), now reading the *global*
//     active-count matrix to price its airtime share and interference; the
//     resulting samples land in per-shard SampleAccumulators merged in
//     index order.
//
// CPU cost is 2x one pass; in exchange every number is a pure function of
// (config, seed), verified by tests/test_metro.cpp at 1 vs 8 threads.
//
// Faults: the campaign models the *radio* fault kinds — mmwave_blockage
// (RSRP penalty), nr_to_lte_outage (LTE fallback), radio_outage (zero
// throughput). Plans containing any other kind are rejected up front
// (unsupported_fault_kinds); the bench binaries turn that into exit 2.
#pragma once

#include <vector>

#include "core/quantile_sketch.h"
#include "core/rng.h"
#include "faults/injector.h"
#include "radio/cell.h"
#include "radio/handoff.h"
#include "radio/types.h"
#include "radio/ue.h"

namespace wild5g::metro {

struct MetroConfig {
  /// Corridor geometry: `cells` sites in a line, `cell_spacing_m` apart.
  int cells = 12;
  int ues_per_cell = 100;
  double cell_spacing_m = 800.0;

  /// Service every cell offers, and the service UEs fall back to while an
  /// nr_to_lte_outage fault window is open.
  radio::NetworkConfig network{radio::Carrier::kVerizon,
                               radio::Band::kNrMidBand,
                               radio::DeploymentMode::kNsa};
  radio::NetworkConfig lte_fallback{radio::Carrier::kVerizon,
                                    radio::Band::kLte,
                                    radio::DeploymentMode::kNsa};
  radio::UeProfile ue = radio::pixel5();
  radio::Direction direction = radio::Direction::kDownlink;
  radio::HandoffConfig handoff;

  double duration_s = 60.0;
  double step_s = 0.5;

  /// Airtime fraction pre-consumed in every cell by traffic the campaign
  /// does not model per-UE (the load-sweep dial); [0, 1).
  double background_load = 0.0;
  /// Probability a UE is actively transferring in a given step; [0, 1].
  double activity = 1.0;
  /// Common speed of the co-moving population (m/s); the storm figure runs
  /// this at vehicular speed so whole cells hand off together.
  double ue_speed_mps = 1.4;
  /// Per-step demand for the QoE view: a step is fully satisfied when the
  /// UE's share meets this rate, and the shortfall accrues as rebuffering.
  double demand_mbps = 25.0;

  /// Optional fault surface (pure queries; null = pristine campaign and the
  /// exact pre-fault draw sequence). Radio kinds only — see
  /// unsupported_fault_kinds().
  const faults::Injector* faults = nullptr;
};

struct MetroResult {
  int ues = 0;
  int cells = 0;
  int steps = 0;

  long long handoffs = 0;
  long long pingpongs = 0;
  /// Most handoffs completed in any single step across the population —
  /// the handoff-storm intensity of the co-moving figure.
  int peak_step_handoffs = 0;
  /// Most simultaneously active UEs observed on one cell in one step.
  int peak_cell_active = 0;
  /// Attach + detach operations replayed through the cell ledger.
  long long attach_ops = 0;
  /// Mean of CellScheduler::utilization over every (cell, step).
  double mean_utilization = 0.0;

  /// One sample per UE that was ever active: its mean goodput over its
  /// active steps.
  stats::SampleAccumulator per_ue_mean_mbps;
  /// One sample per ever-active UE: 1 - mean(min(1, goodput/demand)),
  /// the fraction of demanded playback time spent stalled.
  stats::SampleAccumulator per_ue_rebuffer_fraction;
  /// One sample per (UE, active step): instantaneous goodput.
  stats::SampleAccumulator step_throughput_mbps;
};

/// Fault kinds present in `plan` that the metro campaign does not model
/// (anything beyond mmwave_blockage / nr_to_lte_outage / radio_outage),
/// deduplicated in first-appearance order. Empty means the plan is usable.
[[nodiscard]] std::vector<faults::FaultKind> unsupported_fault_kinds(
    const faults::FaultPlan& plan);

/// Runs the campaign. Byte-identical for a given (config, rng seed) at any
/// thread count; throws wild5g::Error on invalid config or a fault plan
/// with unsupported kinds.
[[nodiscard]] MetroResult run_campaign(const MetroConfig& config, Rng rng);

}  // namespace wild5g::metro
