#include "metro/metro.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>

#include "core/error.h"
#include "core/parallel.h"

namespace wild5g::metro {

namespace {

/// Fixed shard width: the unit of parallelism is a block of UE indices, so
/// the shard decomposition — and therefore every merge order — is a pure
/// function of the UE count, never of the thread count.
constexpr int kUesPerShard = 512;

bool kind_supported(faults::FaultKind kind) {
  return kind == faults::FaultKind::kMmwaveBlockage ||
         kind == faults::FaultKind::kNrToLteOutage ||
         kind == faults::FaultKind::kRadioOutage;
}

struct StepView {
  int step = 0;
  double t_s = 0.0;
  int serving = 0;
  double serving_rsrp_dbm = 0.0;
  bool active = false;
  bool handed_off = false;
};

struct UeTotals {
  int handoffs = 0;
  int pingpongs = 0;
};

/// Replays UE `ue_index` from scratch: trajectory, A3 handoffs, activity.
/// Every draw comes from base.fork(ue_index) substreams, so phase 1 and
/// phase 2 observe byte-identical timelines by construction.
template <typename Visitor>
UeTotals simulate_ue(const MetroConfig& config,
                     const std::vector<radio::CellSite>& sites,
                     const Rng& base, int ue_index, int steps,
                     Visitor&& visit) {
  const Rng ue_rng = base.fork(static_cast<std::uint64_t>(ue_index));
  Rng placement_rng = ue_rng.fork(0);
  const int home = ue_index % config.cells;
  double position =
      sites[static_cast<std::size_t>(home)].position_m +
      placement_rng.uniform(-0.45 * config.cell_spacing_m,
                            0.45 * config.cell_spacing_m);
  radio::A3HandoffEngine engine(sites, config.handoff, ue_rng.fork(1), home);
  Rng activity_rng = ue_rng.fork(2);
  for (int s = 0; s < steps; ++s) {
    position += config.ue_speed_mps * config.step_s;
    const auto step = engine.step(config.step_s, position);
    // One activity draw per step unconditionally, so the stream position
    // never depends on the outcome.
    const bool active = activity_rng.bernoulli(config.activity);
    visit(StepView{
        .step = s,
        .t_s = static_cast<double>(s + 1) * config.step_s,
        .serving = step.serving_cell,
        .serving_rsrp_dbm = step.serving_rsrp_dbm,
        .active = active,
        .handed_off = step.handed_off,
    });
  }
  return UeTotals{engine.handoff_count(), engine.pingpong_count()};
}

/// Integer occupancy view one shard contributes; element-wise addition is
/// exact, so merging shards in index order is schedule-independent.
struct ShardCounts {
  std::vector<std::int32_t> attached;       // [cell * steps + step]
  std::vector<std::int32_t> active;         // [cell * steps + step]
  std::vector<std::int32_t> step_handoffs;  // [step]
  long long handoffs = 0;
  long long pingpongs = 0;
};

/// Sample accumulators one shard contributes in phase 2; merged in shard
/// index order, which the sketch contract makes equivalent to one stream.
struct ShardMetrics {
  stats::SampleAccumulator per_ue_mean;
  stats::SampleAccumulator per_ue_rebuffer;
  stats::SampleAccumulator step_tput;
};

void validate(const MetroConfig& config) {
  require(config.cells >= 1, "metro: cells must be >= 1");
  require(config.ues_per_cell >= 1, "metro: ues_per_cell must be >= 1");
  require(config.cell_spacing_m > 0.0, "metro: cell_spacing_m must be > 0");
  require(config.step_s > 0.0, "metro: step_s must be > 0");
  require(config.duration_s >= config.step_s,
          "metro: duration_s must cover at least one step");
  require(config.background_load >= 0.0 && config.background_load < 1.0,
          "metro: background_load out of [0, 1)");
  require(config.activity >= 0.0 && config.activity <= 1.0,
          "metro: activity out of [0, 1]");
  require(config.ue_speed_mps >= 0.0, "metro: ue_speed_mps must be >= 0");
  require(config.demand_mbps > 0.0, "metro: demand_mbps must be > 0");
  if (config.faults != nullptr) {
    const auto bad = unsupported_fault_kinds(config.faults->plan());
    require(bad.empty(),
            std::string("metro: fault plan contains kinds the campaign does "
                        "not model (first: ") +
                (bad.empty() ? "" : faults::to_string(bad.front())) +
                "); supported kinds are mmwave_blockage, nr_to_lte_outage, "
                "radio_outage");
  }
}

}  // namespace

std::vector<faults::FaultKind> unsupported_fault_kinds(
    const faults::FaultPlan& plan) {
  std::vector<faults::FaultKind> out;
  for (const auto& window : plan.windows) {
    if (kind_supported(window.kind)) continue;
    if (std::find(out.begin(), out.end(), window.kind) == out.end()) {
      out.push_back(window.kind);
    }
  }
  return out;
}

MetroResult run_campaign(const MetroConfig& config, Rng rng) {
  validate(config);

  const int steps = static_cast<int>(config.duration_s / config.step_s);
  const int total_ues = config.cells * config.ues_per_cell;
  const std::size_t matrix_size =
      static_cast<std::size_t>(config.cells) * static_cast<std::size_t>(steps);

  std::vector<radio::CellSite> sites;
  sites.reserve(static_cast<std::size_t>(config.cells));
  for (int c = 0; c < config.cells; ++c) {
    sites.push_back({.id = c,
                     .position_m = static_cast<double>(c) *
                                   config.cell_spacing_m,
                     .band = config.network.band});
  }

  const Rng base = rng.split();
  const int shard_count = (total_ues + kUesPerShard - 1) / kUesPerShard;

  // --- Phase 1: occupancy. Each shard sees only its own UEs. -------------
  auto shard_counts = parallel::parallel_map(
      static_cast<std::size_t>(shard_count), [&](std::size_t shard) {
        ShardCounts counts;
        counts.attached.assign(matrix_size, 0);
        counts.active.assign(matrix_size, 0);
        counts.step_handoffs.assign(static_cast<std::size_t>(steps), 0);
        const int begin = static_cast<int>(shard) * kUesPerShard;
        const int end = std::min(total_ues, begin + kUesPerShard);
        for (int i = begin; i < end; ++i) {
          const UeTotals totals = simulate_ue(
              config, sites, base, i, steps, [&](const StepView& v) {
                const std::size_t cell_step =
                    static_cast<std::size_t>(v.serving) *
                        static_cast<std::size_t>(steps) +
                    static_cast<std::size_t>(v.step);
                ++counts.attached[cell_step];
                if (v.active) ++counts.active[cell_step];
                if (v.handed_off) {
                  ++counts.step_handoffs[static_cast<std::size_t>(v.step)];
                }
              });
          counts.handoffs += totals.handoffs;
          counts.pingpongs += totals.pingpongs;
        }
        return counts;
      });

  MetroResult result;
  result.ues = total_ues;
  result.cells = config.cells;
  result.steps = steps;

  std::vector<std::int32_t> attached(matrix_size, 0);
  std::vector<std::int32_t> active(matrix_size, 0);
  std::vector<std::int32_t> step_handoffs(static_cast<std::size_t>(steps), 0);
  for (const auto& counts : shard_counts) {  // index order: exact merge
    for (std::size_t k = 0; k < matrix_size; ++k) {
      attached[k] += counts.attached[k];
      active[k] += counts.active[k];
    }
    for (std::size_t s = 0; s < step_handoffs.size(); ++s) {
      step_handoffs[s] += counts.step_handoffs[s];
    }
    result.handoffs += counts.handoffs;
    result.pingpongs += counts.pingpongs;
  }
  shard_counts.clear();
  for (const std::int32_t n : step_handoffs) {
    result.peak_step_handoffs = std::max(result.peak_step_handoffs, n);
  }

  // --- Ledger: replay attachment deltas through the cell schedulers. -----
  const radio::CellSchedulerConfig cell_config{
      .band = config.network.band,
      .background_load = config.background_load,
  };
  {
    std::vector<radio::CellScheduler> schedulers(
        static_cast<std::size_t>(config.cells),
        radio::CellScheduler(cell_config));
    // Per-cell LIFO of live slots: the ledger does not track UE identity
    // (phase 1 already did), only that every churn flows through
    // attach/detach and the bookkeeping agrees with the occupancy matrix.
    std::vector<std::vector<int>> live(
        static_cast<std::size_t>(config.cells));
    double utilization_sum = 0.0;
    for (int s = 0; s < steps; ++s) {
      for (int c = 0; c < config.cells; ++c) {
        auto& cell = schedulers[static_cast<std::size_t>(c)];
        auto& slots = live[static_cast<std::size_t>(c)];
        const std::size_t cell_step =
            static_cast<std::size_t>(c) * static_cast<std::size_t>(steps) +
            static_cast<std::size_t>(s);
        const int want = attached[cell_step];
        while (static_cast<int>(slots.size()) < want) {
          slots.push_back(cell.attach());
          ++result.attach_ops;
        }
        while (static_cast<int>(slots.size()) > want) {
          cell.detach(slots.back());
          slots.pop_back();
          ++result.attach_ops;
        }
        require(cell.attached_count() == want,
                "metro: ledger out of sync with occupancy matrix");
        const int now_active = active[cell_step];
        result.peak_cell_active =
            std::max(result.peak_cell_active, now_active);
        utilization_sum += cell.utilization(now_active);
      }
    }
    result.mean_utilization =
        utilization_sum / static_cast<double>(matrix_size);
  }

  // --- Phase 2: price each UE's share against the global occupancy. ------
  const radio::CellScheduler scheduler(cell_config);
  auto shard_metrics = parallel::parallel_map(
      static_cast<std::size_t>(shard_count), [&](std::size_t shard) {
        ShardMetrics metrics;
        const int begin = static_cast<int>(shard) * kUesPerShard;
        const int end = std::min(total_ues, begin + kUesPerShard);
        for (int i = begin; i < end; ++i) {
          double goodput_sum = 0.0;
          double satisfied_sum = 0.0;
          int active_steps = 0;
          simulate_ue(config, sites, base, i, steps, [&](const StepView& v) {
            if (!v.active) return;
            const std::size_t cell_step =
                static_cast<std::size_t>(v.serving) *
                    static_cast<std::size_t>(steps) +
                static_cast<std::size_t>(v.step);
            // This UE is active, so the global count includes it: >= 1.
            const int sharers = active[cell_step];
            double goodput = 0.0;
            if (config.faults == nullptr ||
                !config.faults->radio_outage_at(v.t_s)) {
              const double rsrp =
                  v.serving_rsrp_dbm -
                  (config.faults == nullptr
                       ? 0.0
                       : config.faults->rsrp_penalty_db_at(v.t_s));
              const bool fallback =
                  config.faults != nullptr &&
                  config.faults->nr_fallback_at(v.t_s);
              goodput = scheduler.ue_throughput_mbps(
                  fallback ? config.lte_fallback : config.network, config.ue,
                  config.direction, rsrp, sharers);
            }
            goodput_sum += goodput;
            satisfied_sum += std::min(1.0, goodput / config.demand_mbps);
            ++active_steps;
            metrics.step_tput.add(goodput);
          });
          if (active_steps > 0) {
            const double n = static_cast<double>(active_steps);
            metrics.per_ue_mean.add(goodput_sum / n);
            metrics.per_ue_rebuffer.add(1.0 - satisfied_sum / n);
          }
        }
        return metrics;
      });

  for (const auto& metrics : shard_metrics) {  // index order: sketch merge
    result.per_ue_mean_mbps.merge(metrics.per_ue_mean);
    result.per_ue_rebuffer_fraction.merge(metrics.per_ue_rebuffer);
    result.step_throughput_mbps.merge(metrics.step_tput);
  }
  return result;
}

}  // namespace wild5g::metro
