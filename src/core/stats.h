// wild5g/core: descriptive statistics and simple regression used by the
// measurement campaigns and model-evaluation code.
#pragma once

#include <span>
#include <vector>

namespace wild5g::stats {

/// Arithmetic mean of a non-empty sample.
[[nodiscard]] double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator) of a non-empty sample;
/// 0 for a single-element sample.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Harmonic mean of a non-empty, strictly positive sample. Used by the
/// harmonic-mean throughput predictor (Sec. 5.3 of the paper).
[[nodiscard]] double harmonic_mean(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. p=50 is the median.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Convenience wrappers.
[[nodiscard]] double median(std::span<const double> xs);
[[nodiscard]] double p95(std::span<const double> xs);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double cumulative_probability = 0.0;
};

/// Empirical CDF of the sample, one point per observation, sorted by value.
[[nodiscard]] std::vector<CdfPoint> empirical_cdf(std::span<const double> xs);

/// Ordinary least squares fit of y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;

  [[nodiscard]] double at(double x) const { return slope * x + intercept; }
};

/// Fits y = slope*x + intercept by least squares; requires >= 2 points and
/// non-constant x.
[[nodiscard]] LinearFit linear_fit(std::span<const double> x,
                                   std::span<const double> y);

/// Mean absolute percentage error, in percent. Ground-truth entries must be
/// nonzero. This is the model-accuracy metric the paper reports (Fig. 15).
[[nodiscard]] double mape_percent(std::span<const double> truth,
                                  std::span<const double> predicted);

/// Mean absolute error.
[[nodiscard]] double mae(std::span<const double> truth,
                         std::span<const double> predicted);

}  // namespace wild5g::stats
