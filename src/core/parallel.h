// wild5g/core: deterministic parallel campaign runner.
//
// Every bench reproduces a paper campaign by iterating over independent
// seeded trials (speedtest repeats, drive runs, web page loads, ABR
// sessions). `parallel_map` / `parallel_for` turn those loops into a
// parallel primitive whose contract is **bit-identical output regardless of
// thread count**:
//
//   1. Each task index gets its own Rng substream, forked *up front* from a
//      parent stream (`Rng::fork(index)` / `Rng::split()`), never a shared
//      Rng threaded through the loop — so the draws a task sees are a pure
//      function of its index, not of scheduling order.
//   2. Results are collected into an index-ordered vector; tasks never
//      publish into shared accumulators.
//   3. Floating-point reductions happen in index order on the caller's
//      thread after the barrier — FP addition is not associative, so the
//      reduction order must not depend on which thread finished first.
//
// Thread count comes from `--threads N` (stripped by bench::MetricsEmitter)
// or the WILD5G_THREADS environment variable; the default is the hardware
// concurrency and `1` restores fully serial execution on the calling
// thread. The determinism gate (tests/test_golden_determinism.cpp) asserts
// byte-identical bench JSON at `--threads 1` and `--threads 8`.
//
// Nested parallel regions execute serially inline on the worker that
// reaches them: campaign loops parallelize at the outermost level and the
// inner primitives (e.g. SpeedtestHarness::peak_of) degrade gracefully.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

namespace wild5g::parallel {

/// Number of threads parallel regions use (>= 1). Resolution order:
/// set_thread_count() > WILD5G_THREADS > hardware concurrency.
[[nodiscard]] std::size_t thread_count();

/// Overrides the thread count for subsequent parallel regions; 0 restores
/// the default (WILD5G_THREADS, else hardware concurrency). Workers are
/// re-provisioned lazily on the next parallel region.
void set_thread_count(std::size_t n);

/// The machine's hardware concurrency (>= 1); what thread_count() defaults
/// to when neither an override nor WILD5G_THREADS is present.
[[nodiscard]] std::size_t hardware_thread_count();

namespace detail {
/// Runs body(0) .. body(n_tasks - 1), each exactly once, on the shared
/// fixed-size pool (the caller participates). Blocks until all tasks
/// finish; every task runs even if an earlier one throws, and the
/// exception from the lowest failing index is rethrown on the caller's
/// thread (lowest-index so the surfaced error does not depend on thread
/// count).
void run_indexed(std::size_t n_tasks,
                 const std::function<void(std::size_t)>& body);
}  // namespace detail

/// Parallel index loop. `fn(i)` must not touch shared mutable state except
/// through its own index-addressed slot; fork a per-index Rng substream
/// instead of sharing one.
template <typename Fn>
void parallel_for(std::size_t n_tasks, Fn&& fn) {
  detail::run_indexed(n_tasks,
                      [&fn](std::size_t index) { fn(index); });
}

/// Parallel map: returns {fn(0), fn(1), ..., fn(n_tasks - 1)} in index
/// order regardless of completion order. Reduce the result serially on the
/// caller's thread to keep floating-point sums deterministic.
template <typename Fn>
[[nodiscard]] auto parallel_map(std::size_t n_tasks, Fn&& fn) {
  using Result = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
  static_assert(!std::is_void_v<Result>,
                "parallel_map requires a value-returning fn; use "
                "parallel_for for side-effect loops");
  std::vector<std::optional<Result>> slots(n_tasks);
  detail::run_indexed(n_tasks, [&fn, &slots](std::size_t index) {
    slots[index].emplace(fn(index));
  });
  std::vector<Result> results;
  results.reserve(n_tasks);
  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

}  // namespace wild5g::parallel
