// wild5g/core: tolerance-aware comparison of golden-metrics documents.
//
// A golden baseline is the JSON a bench binary emits at kBenchSeed via
// `--json`. compare() walks a fresh run against the committed baseline and
// reports every field that drifted beyond its tolerance — the per-field
// report is what makes a failed `golden.*` test actionable.
#pragma once

#include <string>
#include <vector>

#include "core/json.h"

namespace wild5g::golden {

/// Two-sided tolerance: a numeric pair matches when
/// |fresh - golden| <= abs  OR  |fresh - golden| <= rel * |golden|.
struct Tolerance {
  double rel = 1e-6;
  double abs = 1e-9;
};

/// One field that differs between golden and fresh, with a human-readable
/// JSON-path-like location (e.g. `tables[2].rows[3][1]` or `metrics.stalls`).
struct Drift {
  std::string path;
  std::string message;
};

/// Reads the effective default tolerance of a golden document: its root
/// `tolerance` member if present, library defaults otherwise.
[[nodiscard]] Tolerance document_tolerance(const json::Value& golden);

/// Compares `fresh` against `golden` and returns every drifted field.
///
/// Rules:
///  - Tolerances come from the GOLDEN document: the root `tolerance` object
///    sets the default, and the root `tolerances` object maps a metric name
///    or table title to a per-metric override.
///  - Numbers (and strings that parse fully as numbers, i.e. table cells)
///    compare under the effective tolerance; everything else compares
///    exactly.
///  - Structural mismatches (type changes, missing/extra keys, array length
///    changes) are drifts too — a refactor that drops a table row is a
///    regression even if the surviving numbers match.
[[nodiscard]] std::vector<Drift> compare(const json::Value& golden,
                                         const json::Value& fresh);

/// Formats the drift list as the report golden_check prints: one line per
/// field, `path: <what changed>`.
[[nodiscard]] std::string format_report(const std::vector<Drift>& drifts);

}  // namespace wild5g::golden
