#include "core/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/error.h"

namespace wild5g {

void Table::set_header(std::vector<std::string> header) {
  require(rows_.empty(), "Table::set_header: rows already added");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  require(!header_.empty(), "Table::add_row: header not set");
  require(row.size() == header_.size(), "Table::add_row: arity mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::num(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  out << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  out << '\n';
}

namespace {
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string escaped = "\"";
  for (char ch : field) {
    if (ch == '"') escaped += '"';
    escaped += ch;
  }
  escaped += '"';
  return escaped;
}
}  // namespace

void Table::write_csv(std::ostream& out) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << csv_escape(row[c]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace wild5g
