#include "core/parallel.h"

#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>

#include "core/error.h"

namespace wild5g::parallel {

namespace {

/// True on a thread currently executing inside a parallel region; nested
/// regions run serially inline so the pool can never deadlock on itself.
thread_local bool t_inside_region = false;

std::size_t resolve_env_thread_count() {
  const char* env = std::getenv("WILD5G_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  require(end != env && *end == '\0' && value >= 0 &&
              value <= std::numeric_limits<int>::max(),
          "WILD5G_THREADS must be a non-negative integer");
  return static_cast<std::size_t>(value);
}

/// Fixed-size pool executing one indexed batch at a time. Indices are
/// dispensed under the batch mutex and tagged with a batch generation so a
/// worker can never claim work from a batch it did not observe starting.
/// Campaign tasks are milliseconds-to-seconds each, so per-index locking is
/// noise; what matters is that index->thread assignment can never affect
/// the output (tasks are pure functions of their index).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t extra_workers) {
    workers_.reserve(extra_workers);
    for (std::size_t i = 0; i < extra_workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    batch_cv_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  /// Runs body(0..n_tasks-1), each exactly once; the calling thread
  /// participates. Every task runs even if an earlier one throws; the
  /// exception of the lowest failing index is rethrown here so the surfaced
  /// error does not depend on thread count.
  void run(std::size_t n_tasks,
           const std::function<void(std::size_t)>& body) {
    std::uint64_t my_generation = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      body_ = &body;
      n_tasks_ = n_tasks;
      next_index_ = 0;
      pending_ = n_tasks;
      error_ = nullptr;
      error_index_ = std::numeric_limits<std::size_t>::max();
      my_generation = ++generation_;
    }
    batch_cv_.notify_all();
    work(my_generation);
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    body_ = nullptr;
    if (error_ != nullptr) {
      std::exception_ptr error = error_;
      error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(error);
    }
  }

 private:
  void worker_loop() {
    t_inside_region = true;  // nested regions on workers run inline
    std::uint64_t seen_generation = 0;
    for (;;) {
      std::uint64_t my_generation = 0;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        batch_cv_.wait(lock, [&] {
          return stop_ || (body_ != nullptr && generation_ != seen_generation);
        });
        if (stop_) return;
        seen_generation = my_generation = generation_;
      }
      work(my_generation);
    }
  }

  /// Claims and executes indices of batch `my_generation` until it is
  /// drained (or superseded, which cannot happen before it drains because
  /// run() blocks until pending_ == 0).
  void work(std::uint64_t my_generation) {
    for (;;) {
      std::size_t index = 0;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (generation_ != my_generation || next_index_ >= n_tasks_) return;
        index = next_index_++;
      }
      std::exception_ptr task_error = nullptr;
      try {
        // wild5g-lint: allow(guarded-by-violation) body_ is published under
        // mutex_ before the generation_ bump that releases this batch, and
        // run() cannot retire or replace it until pending_ drains — the
        // generation check above is the happens-before edge.
        (*body_)(index);
      } catch (...) {
        task_error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mutex_);
      if (task_error != nullptr && index < error_index_) {
        error_ = task_error;
        error_index_ = index;
      }
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }

  std::mutex mutex_;
  std::condition_variable batch_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t n_tasks_ = 0;
  std::size_t next_index_ = 0;
  std::size_t pending_ = 0;
  std::exception_ptr error_ = nullptr;
  std::size_t error_index_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

/// Pool configuration + lazily provisioned shared pool. `g_pool_mutex` also
/// serializes top-level parallel regions from distinct caller threads (the
/// benches only ever have one).
std::mutex g_pool_mutex;
// Confinement of the three pool globals under g_pool_mutex is now proved by
// wild5g-lint's guarded-by inference (no manual allow needed): every access
// is either lexically under a g_pool_mutex guard or inside a helper whose
// held-set fixpoint H(f) contains it.
std::size_t g_override_threads = 0;  // 0 = WILD5G_THREADS / hardware
std::unique_ptr<ThreadPool> g_pool;
std::size_t g_pool_threads = 0;  // thread count g_pool was built for

std::size_t resolve_thread_count_locked() {
  if (g_override_threads != 0) return g_override_threads;
  const std::size_t env = resolve_env_thread_count();
  if (env != 0) return env;
  return hardware_thread_count();
}

ThreadPool& pool_for_locked(std::size_t threads) {
  if (g_pool == nullptr || g_pool_threads != threads) {
    g_pool.reset();  // join old workers before re-provisioning
    g_pool = std::make_unique<ThreadPool>(threads - 1);
    g_pool_threads = threads;
  }
  return *g_pool;
}

}  // namespace

std::size_t hardware_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t thread_count() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  return resolve_thread_count_locked();
}

void set_thread_count(std::size_t n) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_override_threads = n;
}

namespace detail {

void run_indexed(std::size_t n_tasks,
                 const std::function<void(std::size_t)>& body) {
  if (n_tasks == 0) return;
  if (t_inside_region) {  // nested region: already inside a parallel run
    for (std::size_t i = 0; i < n_tasks; ++i) body(i);
    return;
  }
  std::unique_lock<std::mutex> lock(g_pool_mutex);
  const std::size_t threads = resolve_thread_count_locked();
  if (threads <= 1 || n_tasks == 1) {
    lock.unlock();
    for (std::size_t i = 0; i < n_tasks; ++i) body(i);
    return;
  }
  ThreadPool& pool = pool_for_locked(threads);
  t_inside_region = true;
  try {
    pool.run(n_tasks, body);
  } catch (...) {
    t_inside_region = false;
    throw;
  }
  t_inside_region = false;
}

}  // namespace detail

}  // namespace wild5g::parallel
