#include "core/golden.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "core/error.h"

namespace wild5g::golden {

namespace {

const char* type_name(json::Value::Type type) {
  switch (type) {
    case json::Value::Type::kNull: return "null";
    case json::Value::Type::kBool: return "bool";
    case json::Value::Type::kNumber: return "number";
    case json::Value::Type::kString: return "string";
    case json::Value::Type::kArray: return "array";
    case json::Value::Type::kObject: return "object";
  }
  return "?";
}

/// True when `text` is exactly one decimal number (a formatted table cell).
bool parse_cell_number(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size() && std::isfinite(out);
}

Tolerance member_tolerance(const json::Value* overrides, const std::string& key,
                           Tolerance fallback) {
  if (overrides == nullptr) return fallback;
  const json::Value* entry = overrides->find(key);
  if (entry == nullptr || !entry->is_object()) return fallback;
  Tolerance tol = fallback;
  if (const json::Value* rel = entry->find("rel")) tol.rel = rel->as_number();
  if (const json::Value* abs = entry->find("abs")) tol.abs = abs->as_number();
  return tol;
}

class Comparator {
 public:
  Comparator(const json::Value& golden, std::vector<Drift>& out)
      : overrides_(golden.find("tolerances")), out_(out) {}

  void walk(const json::Value& golden, const json::Value& fresh,
            const std::string& path, Tolerance tol) {
    if (golden.type() != fresh.type()) {
      // A numeric string vs. numeric string never lands here; a genuine type
      // change is always structural drift.
      drift(path, std::string("type changed: golden ") +
                      type_name(golden.type()) + ", fresh " +
                      type_name(fresh.type()));
      return;
    }
    switch (golden.type()) {
      case json::Value::Type::kNull:
        break;
      case json::Value::Type::kBool:
        if (golden.as_bool() != fresh.as_bool()) {
          drift(path, std::string("golden ") +
                          (golden.as_bool() ? "true" : "false") + ", fresh " +
                          (fresh.as_bool() ? "true" : "false"));
        }
        break;
      case json::Value::Type::kNumber:
        compare_numbers(golden.as_number(), fresh.as_number(), path, tol);
        break;
      case json::Value::Type::kString:
        compare_strings(golden.as_string(), fresh.as_string(), path, tol);
        break;
      case json::Value::Type::kArray:
        walk_array(golden, fresh, path, tol);
        break;
      case json::Value::Type::kObject:
        walk_object(golden, fresh, path, tol);
        break;
    }
  }

 private:
  void drift(const std::string& path, std::string message) {
    out_.push_back(Drift{path, std::move(message)});
  }

  void compare_numbers(double golden, double fresh, const std::string& path,
                       Tolerance tol) {
    const double diff = std::fabs(fresh - golden);
    if (diff <= tol.abs || diff <= tol.rel * std::fabs(golden)) return;
    // wild5g-lint: allow(float-equality) exact-zero guard before dividing;
    // any nonzero magnitude, however small, has a well-defined relative drift.
    const double rel = golden != 0.0
                           ? diff / std::fabs(golden)
                           : std::numeric_limits<double>::infinity();
    drift(path, "golden " + json::format_number(golden) + ", fresh " +
                    json::format_number(fresh) + " (abs drift " +
                    json::format_number(diff) + ", rel drift " +
                    json::format_number(rel) + "; tol rel " +
                    json::format_number(tol.rel) + ", abs " +
                    json::format_number(tol.abs) + ")");
  }

  void compare_strings(const std::string& golden, const std::string& fresh,
                       const std::string& path, Tolerance tol) {
    if (golden == fresh) return;
    // Formatted table cells ("13.5") still deserve tolerance, not
    // byte-equality: a different-but-within-tolerance rounding is fine.
    double golden_num = 0.0;
    double fresh_num = 0.0;
    if (parse_cell_number(golden, golden_num) &&
        parse_cell_number(fresh, fresh_num)) {
      compare_numbers(golden_num, fresh_num, path, tol);
      return;
    }
    drift(path, "golden \"" + golden + "\", fresh \"" + fresh + "\"");
  }

  void walk_array(const json::Value& golden, const json::Value& fresh,
                  const std::string& path, Tolerance tol) {
    const auto& golden_elems = golden.as_array();
    const auto& fresh_elems = fresh.as_array();
    if (golden_elems.size() != fresh_elems.size()) {
      drift(path, "length changed: golden " +
                      std::to_string(golden_elems.size()) + ", fresh " +
                      std::to_string(fresh_elems.size()));
    }
    const std::size_t n = std::min(golden_elems.size(), fresh_elems.size());
    for (std::size_t i = 0; i < n; ++i) {
      Tolerance elem_tol = tol;
      // A table (an object carrying a "title") can have a per-table override
      // keyed by that title.
      if (const json::Value* title = golden_elems[i].find("title");
          title != nullptr && title->is_string()) {
        elem_tol = member_tolerance(overrides_, title->as_string(), tol);
      }
      walk(golden_elems[i], fresh_elems[i],
           path + "[" + std::to_string(i) + "]", elem_tol);
    }
  }

  void walk_object(const json::Value& golden, const json::Value& fresh,
                   const std::string& path, Tolerance tol) {
    const std::string prefix = path.empty() ? "" : path + ".";
    for (const auto& member : golden.as_object()) {
      const json::Value* counterpart = fresh.find(member.key);
      if (counterpart == nullptr) {
        drift(prefix + member.key, "missing in fresh run");
        continue;
      }
      walk(member.value, *counterpart, prefix + member.key,
           member_tolerance(overrides_, member.key, tol));
    }
    for (const auto& member : fresh.as_object()) {
      if (golden.find(member.key) == nullptr) {
        drift(prefix + member.key, "unexpected new field in fresh run");
      }
    }
  }

  const json::Value* overrides_;
  std::vector<Drift>& out_;
};

}  // namespace

Tolerance document_tolerance(const json::Value& golden) {
  Tolerance tol;
  if (const json::Value* entry = golden.find("tolerance");
      entry != nullptr && entry->is_object()) {
    if (const json::Value* rel = entry->find("rel")) tol.rel = rel->as_number();
    if (const json::Value* abs = entry->find("abs")) tol.abs = abs->as_number();
  }
  return tol;
}

std::vector<Drift> compare(const json::Value& golden,
                           const json::Value& fresh) {
  std::vector<Drift> drifts;
  Comparator comparator(golden, drifts);
  comparator.walk(golden, fresh, "", document_tolerance(golden));
  return drifts;
}

std::string format_report(const std::vector<Drift>& drifts) {
  std::string out;
  for (const auto& drift : drifts) {
    out += "  " + drift.path + ": " + drift.message + "\n";
  }
  return out;
}

}  // namespace wild5g::golden
