#include "core/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "core/error.h"

namespace wild5g::json {

Value::Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}
Value::Value(const char* s) : type_(Type::kString), string_(s) {}

Value Value::array() {
  Value v;
  v.type_ = Type::kArray;
  return v;
}

Value Value::object() {
  Value v;
  v.type_ = Type::kObject;
  return v;
}

bool Value::as_bool() const {
  require(is_bool(), "json: value is not a bool");
  return bool_;
}

double Value::as_number() const {
  require(is_number(), "json: value is not a number");
  return number_;
}

const std::string& Value::as_string() const {
  require(is_string(), "json: value is not a string");
  return string_;
}

const std::vector<Value>& Value::as_array() const {
  require(is_array(), "json: value is not an array");
  return array_;
}

const std::vector<Member>& Value::as_object() const {
  require(is_object(), "json: value is not an object");
  return object_;
}

void Value::push_back(Value element) {
  require(is_array(), "json: push_back on non-array");
  array_.push_back(std::move(element));
}

void Value::set(std::string key, Value value) {
  require(is_object(), "json: set on non-object");
  for (auto& member : object_) {
    if (member.key == key) {
      member.value = std::move(value);
      return;
    }
  }
  object_.push_back(Member{std::move(key), std::move(value)});
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& member : object_) {
    if (member.key == key) return &member.value;
  }
  return nullptr;
}

std::size_t Value::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  throw Error("json: size() on non-container");
}

std::string format_number(double value) {
  require(std::isfinite(value),
          "json: cannot serialize non-finite number (NaN or infinity)");
  // Shortest representation that round-trips to the identical double keeps
  // goldens human-readable and the writer deterministic.
  char buffer[40];
  for (int precision = 1; precision <= 17; ++precision) {
    // wild5g-lint: allow(printf-float) this IS the deterministic formatter:
    // %.*g feeds the shortest-round-trip search every other caller must use.
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

namespace {

void escape_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buffer;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void dump_value(const Value& value, int indent, std::string& out) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string inner_pad(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (value.type()) {
    case Value::Type::kNull:
      out += "null";
      break;
    case Value::Type::kBool:
      out += value.as_bool() ? "true" : "false";
      break;
    case Value::Type::kNumber:
      out += format_number(value.as_number());
      break;
    case Value::Type::kString:
      escape_string(value.as_string(), out);
      break;
    case Value::Type::kArray: {
      const auto& elements = value.as_array();
      if (elements.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < elements.size(); ++i) {
        out += inner_pad;
        dump_value(elements[i], indent + 1, out);
        if (i + 1 < elements.size()) out += ',';
        out += '\n';
      }
      out += pad;
      out += ']';
      break;
    }
    case Value::Type::kObject: {
      const auto& members = value.as_object();
      if (members.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members.size(); ++i) {
        out += inner_pad;
        escape_string(members[i].key, out);
        out += ": ";
        dump_value(members[i].value, indent + 1, out);
        if (i + 1 < members.size()) out += ',';
        out += '\n';
      }
      out += pad;
      out += '}';
      break;
    }
  }
}

void dump_value_compact(const Value& value, std::string& out) {
  switch (value.type()) {
    case Value::Type::kNull:
      out += "null";
      break;
    case Value::Type::kBool:
      out += value.as_bool() ? "true" : "false";
      break;
    case Value::Type::kNumber:
      out += format_number(value.as_number());
      break;
    case Value::Type::kString:
      escape_string(value.as_string(), out);
      break;
    case Value::Type::kArray: {
      const auto& elements = value.as_array();
      out += '[';
      for (std::size_t i = 0; i < elements.size(); ++i) {
        if (i > 0) out += ',';
        dump_value_compact(elements[i], out);
      }
      out += ']';
      break;
    }
    case Value::Type::kObject: {
      const auto& members = value.as_object();
      out += '{';
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i > 0) out += ',';
        escape_string(members[i].key, out);
        out += ':';
        dump_value_compact(members[i].value, out);
      }
      out += '}';
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value value = parse_value();
    skip_whitespace();
    require(pos_ == text_.size(),
            "json: trailing garbage after document" + location());
    return value;
  }

 private:
  static constexpr int kMaxDepth = 200;

  [[noreturn]] void fail(const std::string& message) {
    throw Error("json: " + message + location());
  }

  std::string location() const {
    return " (at byte " + std::to_string(pos_) + ")";
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char ch, const char* what) {
    if (pos_ >= text_.size() || text_[pos_] != ch) {
      fail(std::string("expected ") + what);
    }
    ++pos_;
  }

  void expect_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      fail("invalid literal");
    }
    pos_ += literal.size();
  }

  Value parse_value() {
    require(depth_ < kMaxDepth, "json: nesting too deep");
    skip_whitespace();
    switch (peek()) {
      case 'n': expect_literal("null"); return Value(nullptr);
      case 't': expect_literal("true"); return Value(true);
      case 'f': expect_literal("false"); return Value(false);
      case '"': return Value(parse_string());
      case '[': return parse_array();
      case '{': return parse_object();
      default: return parse_number();
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("invalid number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("invalid number: missing fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail("invalid number: missing exponent digits");
    }
    const std::string token(text_.substr(start, pos_ - start));
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) fail("number out of range");
    return Value(value);
  }

  std::string parse_string() {
    expect('"', "'\"'");
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char ch = text_[pos_++];
      if (ch == '"') return out;
      if (static_cast<unsigned char>(ch) < 0x20) {
        fail("unescaped control character in string");
      }
      if (ch != '\\') {
        out += ch;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("invalid escape character");
      }
    }
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char ch = text_[pos_++];
      code <<= 4;
      if (ch >= '0' && ch <= '9') {
        code |= static_cast<unsigned>(ch - '0');
      } else if (ch >= 'a' && ch <= 'f') {
        code |= static_cast<unsigned>(ch - 'a' + 10);
      } else if (ch >= 'A' && ch <= 'F') {
        code |= static_cast<unsigned>(ch - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    if (code >= 0xD800 && code <= 0xDFFF) {
      fail("surrogate \\u escapes are not supported");
    }
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  Value parse_array() {
    expect('[', "'['");
    ++depth_;
    Value out = Value::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return out;
    }
    while (true) {
      out.push_back(parse_value());
      skip_whitespace();
      const char ch = peek();
      if (ch == ',') {
        ++pos_;
        continue;
      }
      if (ch == ']') {
        ++pos_;
        --depth_;
        return out;
      }
      fail("expected ',' or ']' in array");
    }
  }

  Value parse_object() {
    expect('{', "'{'");
    ++depth_;
    Value out = Value::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return out;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':', "':' after object key");
      out.set(std::move(key), parse_value());
      skip_whitespace();
      const char ch = peek();
      if (ch == ',') {
        ++pos_;
        continue;
      }
      if (ch == '}') {
        ++pos_;
        --depth_;
        return out;
      }
      fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::string dump(const Value& value) {
  std::string out;
  dump_value(value, 0, out);
  out += '\n';
  return out;
}

std::string dump_compact(const Value& value) {
  std::string out;
  dump_value_compact(value, out);
  return out;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace wild5g::json
