// wild5g/core: deterministic streaming quantile sketch and the
// SampleAccumulator facade that routes campaign percentiles through it.
//
// The paper's headline artifacts are percentile tables over large sample
// populations; storing every sample makes memory the scaling wall for
// metro-scale campaigns (ROADMAP items 1-2). QuantileSketch replaces
// store-all-samples with logarithmic value buckets (the DDSketch scheme):
// each sample lands in the bucket whose geometric span covers it, so a
// quantile query returns a value within a declared *relative accuracy* of
// the true order statistic at that rank, using O(1) memory in the sample
// count.
//
// Determinism contract (DESIGN.md section 10): the sketch state is a pure
// function of the sample *multiset* — bucket assignment involves no
// randomness, no compaction heuristics, and no order dependence — so
// merge(shard_0 .. shard_k) is byte-identical to the single-stream sketch
// of the concatenation, for any sharding. That is what lets parallel_map
// campaigns sketch per-shard and merge in index order without perturbing
// the byte-identical-at-any-thread-count contract.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/json.h"
#include "core/stats.h"

namespace wild5g::stats {

class QuantileSketch {
 public:
  /// Declared accuracy: quantile(p) is within this relative error of the
  /// order statistic at rank floor(p/100 * (n-1)), for magnitudes inside
  /// [kMinMagnitude, kMaxMagnitude]. 1% keeps every committed golden table
  /// inside its per-table tolerance.
  static constexpr double kDefaultRelativeAccuracy = 0.01;
  /// Magnitudes below this collapse into the smallest bucket and values of
  /// exactly zero are counted separately; magnitudes above kMaxMagnitude
  /// clamp into the largest bucket (min()/max() stay exact either way).
  static constexpr double kMinMagnitude = 1e-9;
  static constexpr double kMaxMagnitude = 1e12;

  explicit QuantileSketch(
      double relative_accuracy = kDefaultRelativeAccuracy);

  /// Streams one sample. NaN is rejected here, at accumulation time, so a
  /// poisoned campaign fails at its source instead of at golden-emit time.
  void add(double x);

  /// Folds another sketch of the same relative accuracy into this one.
  /// Bucket counts add exactly, so merge order can never change a query.
  /// Merging a sketch with itself is rejected (wild5g::Error).
  void merge(const QuantileSketch& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  /// Exact extremes of everything streamed (not bucket representatives).
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double relative_accuracy() const { return alpha_; }

  /// Percentile-convention quantile, p in [0, 100]: the estimate for the
  /// order statistic at rank floor(p/100 * (n-1)), clamped into
  /// [min(), max()]. Requires a non-empty sketch, mirroring
  /// stats::percentile's precondition.
  [[nodiscard]] double quantile(double p) const;

  /// Heap + object bytes held; O(bucket range), never O(sample count).
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Lossless JSON round-trip of the full sketch state, for the campaign
  /// engine's checkpoint/resume. Doubles render via the shortest
  /// round-tripping form, so from_json(to_json(s)) answers every query
  /// byte-identically to `s`. Bucket counts are serialized as JSON numbers,
  /// exact below 2^53 — far beyond any campaign's sample population.
  [[nodiscard]] json::Value to_json() const;
  /// Inverse of to_json(); throws wild5g::Error on malformed or
  /// inconsistent state (e.g. counts that do not sum to the total).
  [[nodiscard]] static QuantileSketch from_json(const json::Value& value);

 private:
  /// Contiguous bucket counters over a lazily-grown index window.
  struct DenseStore {
    std::vector<std::uint64_t> counts;
    int base = 0;  // bucket index of counts[0]
    std::uint64_t total = 0;

    void bump(int index);
    void merge(const DenseStore& other);
    [[nodiscard]] std::size_t memory_bytes() const {
      return counts.capacity() * sizeof(std::uint64_t);
    }
  };

  [[nodiscard]] int bucket_index(double magnitude) const;
  [[nodiscard]] double bucket_value(int index) const;

  double alpha_;
  double gamma_;
  double inv_log_gamma_;
  std::uint64_t count_ = 0;
  std::uint64_t zero_count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  DenseStore positive_;
  DenseStore negative_;  // indexed by |x|'s bucket
};

/// Facade the campaign harnesses and bench tables accumulate through: exact
/// percentiles (bit-for-bit identical to stats::percentile over the same
/// multiset) while the population is small, spilling into a QuantileSketch
/// once it crosses `exact_limit`. The mode switch depends only on the total
/// count, so whether samples arrive in one stream or via merge() of
/// parallel shards, the same population yields the same answers.
class SampleAccumulator {
 public:
  /// Every committed bench table today stays below this, so routing the
  /// benches through the facade changed no golden byte.
  static constexpr std::size_t kDefaultExactLimit = 8192;

  explicit SampleAccumulator(
      std::size_t exact_limit = kDefaultExactLimit,
      double relative_accuracy = QuantileSketch::kDefaultRelativeAccuracy);

  /// Streams one sample; NaN is rejected at accumulation time.
  void add(double x);
  void add(std::span<const double> xs);

  /// Folds `other` (same exact_limit and accuracy) into this accumulator.
  /// Empty merges non-empty (and vice versa) preserving exact min/max/
  /// count; merging an accumulator with itself is rejected (wild5g::Error).
  void merge(const SampleAccumulator& other);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] bool empty() const { return count() == 0; }
  /// True while percentiles are still computed over the stored sample.
  [[nodiscard]] bool exact() const { return !sketch_.has_value(); }

  /// Percentile over everything streamed; requires a non-empty
  /// accumulator, mirroring stats::percentile/stats::mean preconditions.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] double p95() const { return percentile(95.0); }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Bytes held; bounded by exact_limit + the sketch's bucket range.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Lossless JSON round-trip of the accumulator (mode, stored samples or
  /// sketch state, running sum), for the campaign engine's
  /// checkpoint/resume. The exact-mode sample order is preserved so a
  /// resumed accumulator spills into its sketch at the same point, with the
  /// same stream order, as the uninterrupted run.
  [[nodiscard]] json::Value to_json() const;
  /// Inverse of to_json(); throws wild5g::Error on malformed state.
  [[nodiscard]] static SampleAccumulator from_json(const json::Value& value);

 private:
  void spill_to_sketch();

  std::size_t exact_limit_;
  double relative_accuracy_;
  std::vector<double> exact_;
  std::optional<QuantileSketch> sketch_;
  double sum_ = 0.0;
};

}  // namespace wild5g::stats
