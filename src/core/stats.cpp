#include "core/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/error.h"

namespace wild5g::stats {

double mean(std::span<const double> xs) {
  require(!xs.empty(), "stats::mean: empty sample");
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  // Same contract as mean(): an empty sample is a caller bug, not a 0.0.
  require(!xs.empty(), "stats::stddev: empty sample");
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double harmonic_mean(std::span<const double> xs) {
  require(!xs.empty(), "stats::harmonic_mean: empty sample");
  double inv_sum = 0.0;
  for (double x : xs) {
    require(x > 0.0, "stats::harmonic_mean: non-positive value");
    inv_sum += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / inv_sum;
}

double percentile(std::span<const double> xs, double p) {
  require(!xs.empty(), "stats::percentile: empty sample");
  require(p >= 0.0 && p <= 100.0, "stats::percentile: p out of [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  // NaN would silently poison the sort order (NaN compares false against
  // everything), yielding an arbitrary but plausible-looking percentile.
  for (double x : sorted) {
    WILD5G_REQUIRE(!std::isnan(x), "stats::percentile: NaN sample");
  }
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - std::floor(rank);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }
double p95(std::span<const double> xs) { return percentile(xs, 95.0); }

std::vector<CdfPoint> empirical_cdf(std::span<const double> xs) {
  require(!xs.empty(), "stats::empirical_cdf: empty sample");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(sorted.size());
  const auto n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cdf.push_back({sorted[i], static_cast<double>(i + 1) / n});
  }
  return cdf;
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  require(x.size() == y.size(), "stats::linear_fit: size mismatch");
  require(x.size() >= 2, "stats::linear_fit: need >= 2 points");
  const double mx = mean(x);
  const double my = mean(y);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  require(sxx > 0.0, "stats::linear_fit: constant x");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

double mape_percent(std::span<const double> truth,
                    std::span<const double> predicted) {
  require(truth.size() == predicted.size(), "stats::mape: size mismatch");
  require(!truth.empty(), "stats::mape: empty sample");
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    // wild5g-lint: allow(float-equality) exact-zero guard before dividing;
    // MAPE is undefined only at exactly zero ground truth.
    require(truth[i] != 0.0, "stats::mape: zero ground-truth value");
    acc += std::abs((truth[i] - predicted[i]) / truth[i]);
  }
  return 100.0 * acc / static_cast<double>(truth.size());
}

double mae(std::span<const double> truth, std::span<const double> predicted) {
  require(truth.size() == predicted.size(), "stats::mae: size mismatch");
  require(!truth.empty(), "stats::mae: empty sample");
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    acc += std::abs(truth[i] - predicted[i]);
  }
  return acc / static_cast<double>(truth.size());
}

}  // namespace wild5g::stats
