// wild5g/core: bump/slab arena for hot-path object churn.
//
// The discrete-event simulator allocates and frees one small handler node
// per scheduled event; at metro-campaign scale that is millions of
// malloc/free pairs on the critical path. Arena replaces them with a bump
// pointer over retained chunks plus size-class free lists, so steady-state
// schedule/fire churn performs zero heap allocations: a fired event's block
// is recycled and the next schedule of the same size reuses it.
//
// Contract:
//  - allocate(bytes) returns a 16-byte-aligned block of at least `bytes`
//    bytes (types needing stricter alignment than alignof(std::max_align_t)
//    are not supported).
//  - recycle(block, bytes) returns a block obtained from allocate(bytes)
//    (same byte count) for reuse; the arena never calls destructors — the
//    owner destroys the object first.
//  - Blocks stay valid until recycle()/reset()/destruction; allocate() never
//    moves or invalidates outstanding blocks (chunks are stable).
//  - reset() rewinds the bump cursor and clears the free lists while
//    retaining small chunks, so a reused arena reaches steady state without
//    touching the heap again. Outstanding blocks are invalidated.
//  - Not thread-safe: one arena per owner, matching the one-Simulator-per-
//    parallel_map-task discipline (DESIGN.md section 8).
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <vector>

#include "core/error.h"

namespace wild5g {

class Arena {
 public:
  /// Allocation granularity; every block size is rounded up to a multiple
  /// and every block address is aligned to it.
  static constexpr std::size_t kQuantum = 16;
  /// Requests above this size bypass the size-class free lists and get a
  /// dedicated chunk (freed on reset, not recycled).
  static constexpr std::size_t kMaxSmallBytes = 2048;
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(round_up(chunk_bytes)) {
    require(chunk_bytes_ >= kMaxSmallBytes,
            "Arena: chunk size below the largest small block");
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    for (Chunk& chunk : chunks_) ::operator delete(chunk.data);
    for (Chunk& chunk : large_chunks_) ::operator delete(chunk.data);
  }

  /// A 16-byte-aligned block of at least `bytes` bytes. Small sizes come
  /// from the free list of their size class when one is available, else
  /// from the bump cursor; large sizes get a dedicated chunk.
  [[nodiscard]] void* allocate(std::size_t bytes) {
    const std::size_t size = round_up(bytes);
    if (size > kMaxSmallBytes) [[unlikely]] {
      large_chunks_.push_back({static_cast<unsigned char*>(
                                   ::operator new(size)),
                               size});
      return large_chunks_.back().data;
    }
    FreeBlock*& head = free_lists_[size / kQuantum - 1];
    if (head != nullptr) {
      FreeBlock* block = head;
      head = block->next;
      return block;
    }
    return bump(size);
  }

  /// Returns a small block for reuse by the next allocate() of the same
  /// size class. Large blocks (> kMaxSmallBytes) are retained until reset()
  /// instead — the event hot path never produces them.
  void recycle(void* block, std::size_t bytes) {
    const std::size_t size = round_up(bytes);
    if (size > kMaxSmallBytes) [[unlikely]]
      return;
    FreeBlock*& head = free_lists_[size / kQuantum - 1];
    auto* entry = static_cast<FreeBlock*>(block);
    entry->next = head;
    head = entry;
  }

  /// Invalidates every outstanding block: rewinds the bump cursor over the
  /// retained small chunks, clears the free lists, and releases dedicated
  /// large chunks.
  void reset() {
    for (FreeBlock*& head : free_lists_) head = nullptr;
    for (Chunk& chunk : large_chunks_) ::operator delete(chunk.data);
    large_chunks_.clear();
    active_chunk_ = 0;
    offset_ = 0;
  }

  /// Total heap bytes owned (retained chunks + dedicated large chunks).
  /// Tests use this to assert that event churn reaches a steady state.
  [[nodiscard]] std::size_t bytes_reserved() const {
    std::size_t total = chunks_.size() * chunk_bytes_;
    for (const Chunk& chunk : large_chunks_) total += chunk.bytes;
    return total;
  }

 private:
  struct FreeBlock {
    FreeBlock* next;
  };
  struct Chunk {
    unsigned char* data;
    std::size_t bytes;
  };
  static_assert(sizeof(FreeBlock) <= kQuantum,
                "free-list header must fit the smallest block");

  [[nodiscard]] static constexpr std::size_t round_up(std::size_t bytes) {
    return ((bytes < kQuantum ? kQuantum : bytes) + kQuantum - 1) /
           kQuantum * kQuantum;
  }

  [[nodiscard]] void* bump(std::size_t size) {
    while (active_chunk_ < chunks_.size()) {
      if (offset_ + size <= chunk_bytes_) {
        void* block = chunks_[active_chunk_].data + offset_;
        offset_ += size;
        return block;
      }
      ++active_chunk_;
      offset_ = 0;
    }
    chunks_.push_back({static_cast<unsigned char*>(
                           ::operator new(chunk_bytes_)),
                       chunk_bytes_});
    active_chunk_ = chunks_.size() - 1;
    void* block = chunks_.back().data;
    offset_ = size;
    return block;
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;        // uniform bump chunks, retained forever
  std::vector<Chunk> large_chunks_;  // dedicated oversize blocks
  std::size_t active_chunk_ = 0;
  std::size_t offset_ = 0;
  FreeBlock* free_lists_[kMaxSmallBytes / kQuantum] = {};
};

}  // namespace wild5g
