// wild5g/core: deterministic random number generation.
//
// Every stochastic component in the library draws from an explicitly threaded
// Rng so that campaigns, traces, and benchmarks are reproducible bit-for-bit
// from a seed. Components that need independent streams fork() a child rng.
#pragma once

#include <cstdint>
#include <random>
#include <span>

#include "core/error.h"

namespace wild5g {

/// Seeded pseudo-random source wrapping std::mt19937_64 with the
/// distributions used throughout the library.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    require(lo <= hi, "Rng::uniform: lo > hi");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    require(lo <= hi, "Rng::uniform_int: lo > hi");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Log-normal parameterized by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Exponential with the given mean (= 1/rate).
  double exponential(double mean) {
    require(mean > 0.0, "Rng::exponential: mean must be positive");
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// True with probability p.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    require(!items.empty(), "Rng::pick: empty span");
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  /// Derives an independent child stream; deterministic in (seed, salt).
  [[nodiscard]] Rng fork(std::uint64_t salt) const {
    // SplitMix64-style mix so nearby salts give uncorrelated streams.
    std::uint64_t z = seed_ + salt * 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return Rng(z ^ (z >> 31));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace wild5g
