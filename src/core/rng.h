// wild5g/core: deterministic random number generation.
//
// Every stochastic component in the library draws from an explicitly threaded
// Rng so that campaigns, traces, and benchmarks are reproducible bit-for-bit
// from a seed. Components that need independent streams fork() a child rng.
//
// Portability: the raw std::mt19937_64 bit stream is fully specified by the
// C++ standard, but the std::*_distribution adaptors are only required to be
// *a* correct distribution — their output differs between libstdc++, libc++,
// and MSVC. Golden baselines must not depend on which standard library built
// the binary, so every distribution below is hand-rolled on top of the raw
// 64-bit stream: uniform doubles via the top 53 bits, integers via unbiased
// rejection sampling, normal via Box-Muller, exponential/lognormal via
// inverse transform, bernoulli via a single threshold compare. This class is
// the only place in the tree allowed to touch <random> — tools/wild5g_lint
// enforces that (rule ban-raw-engine).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>
#include <random>
#include <span>
#include <sstream>
#include <string>

#include "core/error.h"

namespace wild5g {

/// Seeded pseudo-random source built on the (portable) std::mt19937_64 bit
/// stream with hand-rolled, standard-library-independent distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    WILD5G_REQUIRE(lo <= hi, "Rng::uniform: lo > hi");
    const double x = lo + unit() * (hi - lo);
    // Rounding at the top of the range can land exactly on hi; nudge back
    // inside so the half-open contract holds (nextafter(hi, lo) == lo when
    // the interval is empty).
    return x < hi ? x : std::nextafter(hi, lo);
  }

  /// Uniform integer in [lo, hi] inclusive. Unbiased: draws are rejected
  /// (deterministically, as part of the stream) rather than folded with a
  /// biased modulo.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    WILD5G_REQUIRE(lo <= hi, "Rng::uniform_int: lo > hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1u;
    std::uint64_t r = next_u64();
    if (span != 0) {  // span == 0 means the full 64-bit range: accept any r.
      const std::uint64_t reject_below =
          (std::numeric_limits<std::uint64_t>::max() % span + 1u) % span;
      if (reject_below != 0) {
        // Accept r in [0, 2^64 - (2^64 mod span)); that window holds an exact
        // multiple of span values, so `r % span` is uniform.
        const std::uint64_t limit = 0u - reject_below;
        while (r >= limit) r = next_u64();
      }
      r %= span;
    }
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + r);
  }

  /// Gaussian with the given mean and standard deviation (Box-Muller; two
  /// uniform draws per variate, no cached spare, so the stream position is a
  /// pure function of the call count).
  double normal(double mean, double stddev) {
    const double u1 = 1.0 - unit();  // (0, 1]: keeps the log finite.
    const double u2 = unit();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * radius * std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Log-normal parameterized by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Exponential with the given mean (= 1/rate), via inverse transform.
  double exponential(double mean) {
    WILD5G_REQUIRE(mean > 0.0, "Rng::exponential: mean must be positive");
    return -mean * std::log(1.0 - unit());
  }

  /// True with probability p. Consumes exactly one draw either way.
  bool bernoulli(double p) { return unit() < p; }

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    WILD5G_REQUIRE(!items.empty(), "Rng::pick: empty span");
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  /// Derives an independent child stream; deterministic in (seed, salt).
  /// Note fork() depends on the *construction seed*, not the stream
  /// position: forking the same salt from the same Rng twice yields
  /// identical children. Campaign loops that fork one child per task index
  /// should fork from a split() of their parent so that successive
  /// campaigns on one Rng get distinct substream families.
  [[nodiscard]] Rng fork(std::uint64_t salt) const {
    // SplitMix64-style mix so nearby salts give uncorrelated streams.
    std::uint64_t z = seed_ + salt * 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return Rng(z ^ (z >> 31));
  }

  /// Derives an independent child stream from the *current position* of
  /// this stream, advancing the parent by one draw. This is the parallel
  /// campaign primitive: split() once on the caller's thread, then
  /// fork(index) one substream per task, so every task's draws are a pure
  /// function of (parent state, task index) and never of scheduling order.
  [[nodiscard]] Rng split() {
    // Mix the raw draw (SplitMix64 finalizer) so the child seed is not a
    // raw engine word, keeping child streams uncorrelated with the parent.
    std::uint64_t z = next_u64() + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return Rng(z ^ (z >> 31));
  }

  /// Serializes the full generator state (construction seed + engine
  /// position) as text. The mt19937_64 textual representation is specified
  /// by the C++ standard (decimal state words separated by spaces), so the
  /// string is portable across standard libraries — the same property the
  /// hand-rolled distributions give the draw stream. Backs the campaign
  /// engine's checkpoint/resume: a deserialized Rng continues the exact
  /// draw sequence, and fork() children stay identical because the
  /// construction seed rides along.
  [[nodiscard]] std::string serialize_state() const {
    std::ostringstream out;
    out << seed_ << ' ' << engine_;
    return out.str();
  }

  /// Inverse of serialize_state(); throws wild5g::Error on malformed text.
  [[nodiscard]] static Rng deserialize_state(const std::string& text) {
    std::istringstream in(text);
    std::uint64_t seed = 0;
    in >> seed;
    WILD5G_REQUIRE(!in.fail(), "Rng::deserialize_state: malformed state");
    Rng rng(seed);
    in >> rng.engine_;
    WILD5G_REQUIRE(!in.fail(),
                   "Rng::deserialize_state: malformed engine state");
    return rng;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  /// Next raw 64-bit word of the (standard-specified) mt19937_64 stream.
  std::uint64_t next_u64() { return engine_(); }

  /// Uniform double in [0, 1): top 53 bits scaled by 2^-53, so every value
  /// is exactly representable and the mapping is identical on every platform.
  double unit() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace wild5g
