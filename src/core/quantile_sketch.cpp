#include "core/quantile_sketch.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace wild5g::stats {

// ---------------------------------------------------------------------------
// QuantileSketch

QuantileSketch::QuantileSketch(double relative_accuracy)
    : alpha_(relative_accuracy),
      gamma_((1.0 + relative_accuracy) / (1.0 - relative_accuracy)),
      inv_log_gamma_(1.0 / std::log(gamma_)) {
  require(relative_accuracy > 0.0 && relative_accuracy < 1.0,
          "QuantileSketch: relative accuracy must be in (0, 1)");
}

void QuantileSketch::DenseStore::bump(int index) {
  if (counts.empty()) {
    base = index;
    counts.push_back(0);
  } else if (index < base) {
    counts.insert(counts.begin(), static_cast<std::size_t>(base - index), 0);
    base = index;
  } else if (index >= base + static_cast<int>(counts.size())) {
    counts.resize(static_cast<std::size_t>(index - base) + 1, 0);
  }
  ++counts[static_cast<std::size_t>(index - base)];
  ++total;
}

void QuantileSketch::DenseStore::merge(const DenseStore& other) {
  if (other.counts.empty()) return;
  if (counts.empty()) {
    *this = other;
    return;
  }
  const int lo = std::min(base, other.base);
  const int hi = std::max(base + static_cast<int>(counts.size()),
                          other.base + static_cast<int>(other.counts.size()));
  std::vector<std::uint64_t> merged(static_cast<std::size_t>(hi - lo), 0);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    merged[static_cast<std::size_t>(base - lo) + i] += counts[i];
  }
  for (std::size_t i = 0; i < other.counts.size(); ++i) {
    merged[static_cast<std::size_t>(other.base - lo) + i] += other.counts[i];
  }
  counts = std::move(merged);
  base = lo;
  total += other.total;
}

int QuantileSketch::bucket_index(double magnitude) const {
  const double clamped =
      std::min(std::max(magnitude, kMinMagnitude), kMaxMagnitude);
  return static_cast<int>(std::ceil(std::log(clamped) * inv_log_gamma_));
}

double QuantileSketch::bucket_value(int index) const {
  // Bucket i covers (gamma^(i-1), gamma^i]; the geometric midpoint is
  // within alpha of every value in the bucket.
  return 2.0 * std::pow(gamma_, index) / (gamma_ + 1.0);
}

void QuantileSketch::add(double x) {
  WILD5G_REQUIRE(!std::isnan(x), "QuantileSketch::add: NaN sample");
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  if (x > 0.0) {
    positive_.bump(bucket_index(x));
  } else if (x < 0.0) {
    negative_.bump(bucket_index(-x));
  } else {
    ++zero_count_;
  }
}

void QuantileSketch::merge(const QuantileSketch& other) {
  // Folding a sketch into itself is always a bug in the caller (a shard
  // loop that picked up its own accumulator); reject it rather than
  // silently double-counting the population.
  require(this != &other, "QuantileSketch::merge: cannot merge with self");
  // wild5g-lint: allow(float-equality) configs are copied verbatim, never
  // recomputed, so exact equality is the correct compatibility check.
  require(alpha_ == other.alpha_,
          "QuantileSketch::merge: relative accuracies differ");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  zero_count_ += other.zero_count_;
  positive_.merge(other.positive_);
  negative_.merge(other.negative_);
}

double QuantileSketch::min() const {
  require(count_ > 0, "QuantileSketch::min: empty sketch");
  return min_;
}

double QuantileSketch::max() const {
  require(count_ > 0, "QuantileSketch::max: empty sketch");
  return max_;
}

double QuantileSketch::quantile(double p) const {
  require(count_ > 0, "QuantileSketch::quantile: empty sketch");
  require(p >= 0.0 && p <= 100.0, "QuantileSketch::quantile: p out of [0,100]");
  // Target the order statistic at floor(rank), matching the lower anchor of
  // stats::percentile's interpolation.
  const double rank = (p / 100.0) * static_cast<double>(count_ - 1);
  const auto k = static_cast<std::uint64_t>(rank);
  if (k == 0) return min_;
  if (k >= count_ - 1) return max_;

  std::uint64_t seen = 0;
  double estimate = max_;
  // Ascending value order: most-negative first (largest |x| bucket), then
  // zeros, then positives.
  bool found = false;
  if (negative_.total > 0) {
    for (int i = negative_.base + static_cast<int>(negative_.counts.size()) - 1;
         i >= negative_.base; --i) {
      seen += negative_.counts[static_cast<std::size_t>(i - negative_.base)];
      if (seen > k) {
        estimate = -bucket_value(i);
        found = true;
        break;
      }
    }
  }
  if (!found && zero_count_ > 0) {
    seen += zero_count_;
    if (seen > k) {
      estimate = 0.0;
      found = true;
    }
  }
  if (!found) {
    for (int i = positive_.base;
         i < positive_.base + static_cast<int>(positive_.counts.size()); ++i) {
      seen += positive_.counts[static_cast<std::size_t>(i - positive_.base)];
      if (seen > k) {
        estimate = bucket_value(i);
        break;
      }
    }
  }
  // The exact extremes are known; never report outside them.
  return std::min(std::max(estimate, min_), max_);
}

std::size_t QuantileSketch::memory_bytes() const {
  return sizeof(*this) + positive_.memory_bytes() + negative_.memory_bytes();
}

// ---------------------------------------------------------------------------
// SampleAccumulator

SampleAccumulator::SampleAccumulator(std::size_t exact_limit,
                                     double relative_accuracy)
    : exact_limit_(exact_limit), relative_accuracy_(relative_accuracy) {
  require(relative_accuracy > 0.0 && relative_accuracy < 1.0,
          "SampleAccumulator: relative accuracy must be in (0, 1)");
}

void SampleAccumulator::spill_to_sketch() {
  QuantileSketch sketch(relative_accuracy_);
  for (double x : exact_) sketch.add(x);
  sketch_ = std::move(sketch);
  exact_.clear();
  exact_.shrink_to_fit();
}

void SampleAccumulator::add(double x) {
  WILD5G_REQUIRE(!std::isnan(x), "SampleAccumulator::add: NaN sample");
  sum_ += x;
  if (sketch_.has_value()) {
    sketch_->add(x);
    return;
  }
  exact_.push_back(x);
  if (exact_.size() > exact_limit_) spill_to_sketch();
}

void SampleAccumulator::add(std::span<const double> xs) {
  for (double x : xs) add(x);
}

void SampleAccumulator::merge(const SampleAccumulator& other) {
  // Self-merge in exact mode would insert exact_ into itself — undefined
  // behavior the moment the vector reallocates mid-insert — and in sketch
  // mode it would silently double every bucket. Both are caller bugs.
  require(this != &other, "SampleAccumulator::merge: cannot merge with self");
  require(exact_limit_ == other.exact_limit_,
          "SampleAccumulator::merge: exact limits differ");
  // wild5g-lint: allow(float-equality) configs are copied verbatim, never
  // recomputed, so exact equality is the correct compatibility check.
  require(relative_accuracy_ == other.relative_accuracy_,
          "SampleAccumulator::merge: relative accuracies differ");
  sum_ += other.sum_;
  if (!sketch_.has_value() && !other.sketch_.has_value() &&
      exact_.size() + other.exact_.size() <= exact_limit_) {
    exact_.insert(exact_.end(), other.exact_.begin(), other.exact_.end());
    return;
  }
  if (!sketch_.has_value()) spill_to_sketch();
  if (other.sketch_.has_value()) {
    sketch_->merge(*other.sketch_);
  } else {
    for (double x : other.exact_) sketch_->add(x);
  }
}

std::uint64_t SampleAccumulator::count() const {
  return sketch_.has_value() ? sketch_->count() : exact_.size();
}

double SampleAccumulator::percentile(double p) const {
  if (sketch_.has_value()) return sketch_->quantile(p);
  return stats::percentile(exact_, p);
}

double SampleAccumulator::mean() const {
  require(count() > 0, "SampleAccumulator::mean: empty sample");
  return sum_ / static_cast<double>(count());
}

double SampleAccumulator::min() const {
  if (sketch_.has_value()) return sketch_->min();
  require(!exact_.empty(), "SampleAccumulator::min: empty sample");
  return *std::min_element(exact_.begin(), exact_.end());
}

double SampleAccumulator::max() const {
  if (sketch_.has_value()) return sketch_->max();
  require(!exact_.empty(), "SampleAccumulator::max: empty sample");
  return *std::max_element(exact_.begin(), exact_.end());
}

std::size_t SampleAccumulator::memory_bytes() const {
  return sizeof(*this) + exact_.capacity() * sizeof(double) +
         (sketch_.has_value() ? sketch_->memory_bytes() : 0);
}

}  // namespace wild5g::stats
