#include "core/quantile_sketch.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace wild5g::stats {

// ---------------------------------------------------------------------------
// QuantileSketch

QuantileSketch::QuantileSketch(double relative_accuracy)
    : alpha_(relative_accuracy),
      gamma_((1.0 + relative_accuracy) / (1.0 - relative_accuracy)),
      inv_log_gamma_(1.0 / std::log(gamma_)) {
  require(relative_accuracy > 0.0 && relative_accuracy < 1.0,
          "QuantileSketch: relative accuracy must be in (0, 1)");
}

void QuantileSketch::DenseStore::bump(int index) {
  if (counts.empty()) {
    base = index;
    counts.push_back(0);
  } else if (index < base) {
    counts.insert(counts.begin(), static_cast<std::size_t>(base - index), 0);
    base = index;
  } else if (index >= base + static_cast<int>(counts.size())) {
    counts.resize(static_cast<std::size_t>(index - base) + 1, 0);
  }
  ++counts[static_cast<std::size_t>(index - base)];
  ++total;
}

void QuantileSketch::DenseStore::merge(const DenseStore& other) {
  if (other.counts.empty()) return;
  if (counts.empty()) {
    *this = other;
    return;
  }
  const int lo = std::min(base, other.base);
  const int hi = std::max(base + static_cast<int>(counts.size()),
                          other.base + static_cast<int>(other.counts.size()));
  std::vector<std::uint64_t> merged(static_cast<std::size_t>(hi - lo), 0);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    merged[static_cast<std::size_t>(base - lo) + i] += counts[i];
  }
  for (std::size_t i = 0; i < other.counts.size(); ++i) {
    merged[static_cast<std::size_t>(other.base - lo) + i] += other.counts[i];
  }
  counts = std::move(merged);
  base = lo;
  total += other.total;
}

int QuantileSketch::bucket_index(double magnitude) const {
  const double clamped =
      std::min(std::max(magnitude, kMinMagnitude), kMaxMagnitude);
  return static_cast<int>(std::ceil(std::log(clamped) * inv_log_gamma_));
}

double QuantileSketch::bucket_value(int index) const {
  // Bucket i covers (gamma^(i-1), gamma^i]; the geometric midpoint is
  // within alpha of every value in the bucket.
  return 2.0 * std::pow(gamma_, index) / (gamma_ + 1.0);
}

void QuantileSketch::add(double x) {
  WILD5G_REQUIRE(!std::isnan(x), "QuantileSketch::add: NaN sample");
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  if (x > 0.0) {
    positive_.bump(bucket_index(x));
  } else if (x < 0.0) {
    negative_.bump(bucket_index(-x));
  } else {
    ++zero_count_;
  }
}

void QuantileSketch::merge(const QuantileSketch& other) {
  // Folding a sketch into itself is always a bug in the caller (a shard
  // loop that picked up its own accumulator); reject it rather than
  // silently double-counting the population.
  require(this != &other, "QuantileSketch::merge: cannot merge with self");
  // wild5g-lint: allow(float-equality) configs are copied verbatim, never
  // recomputed, so exact equality is the correct compatibility check.
  require(alpha_ == other.alpha_,
          "QuantileSketch::merge: relative accuracies differ");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  zero_count_ += other.zero_count_;
  positive_.merge(other.positive_);
  negative_.merge(other.negative_);
}

double QuantileSketch::min() const {
  require(count_ > 0, "QuantileSketch::min: empty sketch");
  return min_;
}

double QuantileSketch::max() const {
  require(count_ > 0, "QuantileSketch::max: empty sketch");
  return max_;
}

double QuantileSketch::quantile(double p) const {
  require(count_ > 0, "QuantileSketch::quantile: empty sketch");
  require(p >= 0.0 && p <= 100.0, "QuantileSketch::quantile: p out of [0,100]");
  // Target the order statistic at floor(rank), matching the lower anchor of
  // stats::percentile's interpolation.
  const double rank = (p / 100.0) * static_cast<double>(count_ - 1);
  const auto k = static_cast<std::uint64_t>(rank);
  if (k == 0) return min_;
  if (k >= count_ - 1) return max_;

  std::uint64_t seen = 0;
  double estimate = max_;
  // Ascending value order: most-negative first (largest |x| bucket), then
  // zeros, then positives.
  bool found = false;
  if (negative_.total > 0) {
    for (int i = negative_.base + static_cast<int>(negative_.counts.size()) - 1;
         i >= negative_.base; --i) {
      seen += negative_.counts[static_cast<std::size_t>(i - negative_.base)];
      if (seen > k) {
        estimate = -bucket_value(i);
        found = true;
        break;
      }
    }
  }
  if (!found && zero_count_ > 0) {
    seen += zero_count_;
    if (seen > k) {
      estimate = 0.0;
      found = true;
    }
  }
  if (!found) {
    for (int i = positive_.base;
         i < positive_.base + static_cast<int>(positive_.counts.size()); ++i) {
      seen += positive_.counts[static_cast<std::size_t>(i - positive_.base)];
      if (seen > k) {
        estimate = bucket_value(i);
        break;
      }
    }
  }
  // The exact extremes are known; never report outside them.
  return std::min(std::max(estimate, min_), max_);
}

std::size_t QuantileSketch::memory_bytes() const {
  return sizeof(*this) + positive_.memory_bytes() + negative_.memory_bytes();
}

namespace {

// Checkpoint field helpers: every lookup failure names the missing key so a
// truncated or hand-edited snapshot fails with an actionable message.
const json::Value& checkpoint_field(const json::Value& object,
                                    const char* key) {
  const json::Value* field = object.find(key);
  require(field != nullptr,
          std::string("sketch state: missing field '") + key + "'");
  return *field;
}

double checkpoint_number(const json::Value& object, const char* key) {
  const json::Value& field = checkpoint_field(object, key);
  require(field.is_number(),
          std::string("sketch state: field '") + key + "' is not a number");
  return field.as_number();
}

std::uint64_t checkpoint_count(const json::Value& object, const char* key) {
  const double raw = checkpoint_number(object, key);
  require(raw >= 0.0 && raw == std::floor(raw) && raw < 0x1p53,
          std::string("sketch state: field '") + key +
              "' is not a non-negative integer");
  return static_cast<std::uint64_t>(raw);
}

json::Value store_to_json(const std::vector<std::uint64_t>& counts,
                          int base) {
  json::Value out = json::Value::object();
  out.set("base", base);
  json::Value array = json::Value::array();
  for (const std::uint64_t c : counts) {
    array.push_back(static_cast<double>(c));
  }
  out.set("counts", std::move(array));
  return out;
}

}  // namespace

json::Value QuantileSketch::to_json() const {
  json::Value out = json::Value::object();
  out.set("alpha", alpha_);
  out.set("count", static_cast<double>(count_));
  out.set("zero_count", static_cast<double>(zero_count_));
  if (count_ > 0) {
    out.set("min", min_);
    out.set("max", max_);
  }
  out.set("positive", store_to_json(positive_.counts, positive_.base));
  out.set("negative", store_to_json(negative_.counts, negative_.base));
  return out;
}

QuantileSketch QuantileSketch::from_json(const json::Value& value) {
  require(value.is_object(), "sketch state: not an object");
  QuantileSketch sketch(checkpoint_number(value, "alpha"));
  sketch.count_ = checkpoint_count(value, "count");
  sketch.zero_count_ = checkpoint_count(value, "zero_count");
  if (sketch.count_ > 0) {
    sketch.min_ = checkpoint_number(value, "min");
    sketch.max_ = checkpoint_number(value, "max");
    require(sketch.min_ <= sketch.max_, "sketch state: min > max");
  }
  const auto load_store = [&](const char* key, DenseStore& store) {
    const json::Value& node = checkpoint_field(value, key);
    require(node.is_object(),
            std::string("sketch state: field '") + key + "' is not an object");
    const double base = checkpoint_number(node, "base");
    require(base == std::floor(base) && std::abs(base) < 1e9,
            std::string("sketch state: '") + key + "' base is not an integer");
    store.base = static_cast<int>(base);
    const json::Value& counts = checkpoint_field(node, "counts");
    require(counts.is_array(),
            std::string("sketch state: '") + key + "' counts is not an array");
    store.total = 0;
    for (const json::Value& element : counts.as_array()) {
      require(element.is_number() && element.as_number() >= 0.0 &&
                  element.as_number() == std::floor(element.as_number()),
              std::string("sketch state: '") + key +
                  "' count is not a non-negative integer");
      const auto c = static_cast<std::uint64_t>(element.as_number());
      store.counts.push_back(c);
      store.total += c;
    }
    // bump() never leaves the window empty once anything landed; reject a
    // store whose edges are zero so round-tripped state stays canonical.
    require(store.counts.empty() ||
                (store.counts.front() > 0 && store.counts.back() > 0),
            std::string("sketch state: '") + key +
                "' counts window has zero-valued edges");
  };
  load_store("positive", sketch.positive_);
  load_store("negative", sketch.negative_);
  require(sketch.count_ == sketch.zero_count_ + sketch.positive_.total +
                               sketch.negative_.total,
          "sketch state: counts do not sum to total");
  return sketch;
}

// ---------------------------------------------------------------------------
// SampleAccumulator

SampleAccumulator::SampleAccumulator(std::size_t exact_limit,
                                     double relative_accuracy)
    : exact_limit_(exact_limit), relative_accuracy_(relative_accuracy) {
  require(relative_accuracy > 0.0 && relative_accuracy < 1.0,
          "SampleAccumulator: relative accuracy must be in (0, 1)");
}

void SampleAccumulator::spill_to_sketch() {
  QuantileSketch sketch(relative_accuracy_);
  for (double x : exact_) sketch.add(x);
  sketch_ = std::move(sketch);
  exact_.clear();
  exact_.shrink_to_fit();
}

void SampleAccumulator::add(double x) {
  WILD5G_REQUIRE(!std::isnan(x), "SampleAccumulator::add: NaN sample");
  sum_ += x;
  if (sketch_.has_value()) {
    sketch_->add(x);
    return;
  }
  exact_.push_back(x);
  if (exact_.size() > exact_limit_) spill_to_sketch();
}

void SampleAccumulator::add(std::span<const double> xs) {
  for (double x : xs) add(x);
}

void SampleAccumulator::merge(const SampleAccumulator& other) {
  // Self-merge in exact mode would insert exact_ into itself — undefined
  // behavior the moment the vector reallocates mid-insert — and in sketch
  // mode it would silently double every bucket. Both are caller bugs.
  require(this != &other, "SampleAccumulator::merge: cannot merge with self");
  require(exact_limit_ == other.exact_limit_,
          "SampleAccumulator::merge: exact limits differ");
  // wild5g-lint: allow(float-equality) configs are copied verbatim, never
  // recomputed, so exact equality is the correct compatibility check.
  require(relative_accuracy_ == other.relative_accuracy_,
          "SampleAccumulator::merge: relative accuracies differ");
  sum_ += other.sum_;
  if (!sketch_.has_value() && !other.sketch_.has_value() &&
      exact_.size() + other.exact_.size() <= exact_limit_) {
    exact_.insert(exact_.end(), other.exact_.begin(), other.exact_.end());
    return;
  }
  if (!sketch_.has_value()) spill_to_sketch();
  if (other.sketch_.has_value()) {
    sketch_->merge(*other.sketch_);
  } else {
    for (double x : other.exact_) sketch_->add(x);
  }
}

std::uint64_t SampleAccumulator::count() const {
  return sketch_.has_value() ? sketch_->count() : exact_.size();
}

double SampleAccumulator::percentile(double p) const {
  if (sketch_.has_value()) return sketch_->quantile(p);
  return stats::percentile(exact_, p);
}

double SampleAccumulator::mean() const {
  require(count() > 0, "SampleAccumulator::mean: empty sample");
  return sum_ / static_cast<double>(count());
}

double SampleAccumulator::min() const {
  if (sketch_.has_value()) return sketch_->min();
  require(!exact_.empty(), "SampleAccumulator::min: empty sample");
  return *std::min_element(exact_.begin(), exact_.end());
}

double SampleAccumulator::max() const {
  if (sketch_.has_value()) return sketch_->max();
  require(!exact_.empty(), "SampleAccumulator::max: empty sample");
  return *std::max_element(exact_.begin(), exact_.end());
}

std::size_t SampleAccumulator::memory_bytes() const {
  return sizeof(*this) + exact_.capacity() * sizeof(double) +
         (sketch_.has_value() ? sketch_->memory_bytes() : 0);
}

json::Value SampleAccumulator::to_json() const {
  json::Value out = json::Value::object();
  out.set("exact_limit", static_cast<double>(exact_limit_));
  out.set("alpha", relative_accuracy_);
  out.set("sum", sum_);
  if (sketch_.has_value()) {
    out.set("sketch", sketch_->to_json());
  } else {
    json::Value samples = json::Value::array();
    for (const double x : exact_) samples.push_back(x);
    out.set("exact", std::move(samples));
  }
  return out;
}

SampleAccumulator SampleAccumulator::from_json(const json::Value& value) {
  require(value.is_object(), "accumulator state: not an object");
  const double limit = checkpoint_number(value, "exact_limit");
  require(limit >= 0.0 && limit == std::floor(limit) && limit < 0x1p53,
          "accumulator state: exact_limit is not a non-negative integer");
  SampleAccumulator acc(static_cast<std::size_t>(limit),
                        checkpoint_number(value, "alpha"));
  acc.sum_ = checkpoint_number(value, "sum");
  const json::Value* sketch = value.find("sketch");
  const json::Value* exact = value.find("exact");
  require((sketch != nullptr) != (exact != nullptr),
          "accumulator state: expected exactly one of 'sketch'/'exact'");
  if (sketch != nullptr) {
    acc.sketch_ = QuantileSketch::from_json(*sketch);
    // wild5g-lint: allow(float-equality) configs are copied verbatim, never
    // recomputed, so exact equality is the correct compatibility check.
    require(acc.sketch_->relative_accuracy() == acc.relative_accuracy_,
            "accumulator state: sketch accuracy differs from accumulator");
    require(acc.sketch_->count() > acc.exact_limit_,
            "accumulator state: sketch mode below the exact limit");
  } else {
    require(exact->is_array(), "accumulator state: 'exact' is not an array");
    require(exact->size() <= acc.exact_limit_,
            "accumulator state: exact samples exceed the limit");
    for (const json::Value& element : exact->as_array()) {
      require(element.is_number(),
              "accumulator state: exact sample is not a number");
      acc.exact_.push_back(element.as_number());
    }
  }
  return acc;
}

}  // namespace wild5g::stats
