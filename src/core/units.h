// wild5g/core: unit conventions and conversion helpers.
//
// The library passes physical quantities as plain doubles with the unit fixed
// by the parameter/variable name suffix:
//   *_mbps   throughput in megabits per second
//   *_ms     time in milliseconds
//   *_s      time in seconds
//   *_km     distance in kilometers
//   *_m      distance in meters
//   *_mw     power in milliwatts
//   *_w      power in watts
//   *_j      energy in joules
//   *_dbm    received signal power (RSRP) in dBm
//   *_mhz    bandwidth in MHz
// These helpers keep the conversions in one audited place.
#pragma once

namespace wild5g {

inline constexpr double kBitsPerMegabit = 1e6;
inline constexpr double kMsPerSecond = 1e3;

/// Megabits/second -> bits/second.
constexpr double mbps_to_bps(double mbps) { return mbps * kBitsPerMegabit; }
/// Bits/second -> megabits/second.
constexpr double bps_to_mbps(double bps) { return bps / kBitsPerMegabit; }
/// Milliwatts -> watts.
constexpr double mw_to_w(double mw) { return mw / 1e3; }
/// Watts -> milliwatts.
constexpr double w_to_mw(double w) { return w * 1e3; }
/// Milliseconds -> seconds.
constexpr double ms_to_s(double ms) { return ms / kMsPerSecond; }
/// Seconds -> milliseconds.
constexpr double s_to_ms(double s) { return s * kMsPerSecond; }
/// Kilometers -> meters.
constexpr double km_to_m(double km) { return km * 1e3; }
/// Meters -> kilometers.
constexpr double m_to_km(double m) { return m / 1e3; }

/// Energy (joules) spent transferring `mbits` megabits at constant power
/// expressed as microjoules-per-bit efficiency. Lower is better.
constexpr double energy_per_bit_uj(double energy_j, double mbits) {
  return (energy_j * 1e6) / (mbits * kBitsPerMegabit);
}

}  // namespace wild5g
