// wild5g/core: console table and CSV rendering for benchmark reports.
//
// Every bench binary regenerates one of the paper's tables or figures; this
// renderer keeps their output uniform and diff-friendly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace wild5g {

/// A simple column-aligned text table with an optional title.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row; must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Formats a double with `digits` fractional digits.
  [[nodiscard]] static std::string num(double value, int digits = 2);

  /// Renders the table with box-drawing-free ASCII alignment.
  void print(std::ostream& out) const;

  /// Renders as CSV (header + rows), for machine consumption.
  void write_csv(std::ostream& out) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wild5g
