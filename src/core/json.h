// wild5g/core: a minimal deterministic JSON document model.
//
// Backs the golden-metrics regression harness: every bench binary serializes
// its figure/table data through this writer, and tools/golden_check parses
// the committed baselines back for tolerance-aware comparison. The writer is
// deterministic by construction (insertion-ordered objects, shortest
// round-tripping number rendering) so byte-identical output doubles as a
// determinism gate.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wild5g::json {

class Value;

/// One key/value pair of an object. Objects preserve insertion order so the
/// emitted document is stable across runs.
struct Member;

/// A JSON document node: null, bool, number, string, array, or object.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  Value(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Value(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Value(double d) : type_(Type::kNumber), number_(d) {}  // NOLINT
  Value(int i) : type_(Type::kNumber), number_(i) {}  // NOLINT
  Value(std::int64_t i)  // NOLINT(google-explicit-constructor)
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Value(std::uint64_t i)  // NOLINT(google-explicit-constructor)
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Value(std::string s);  // NOLINT(google-explicit-constructor)
  Value(const char* s);  // NOLINT(google-explicit-constructor)

  /// Empty-container factories (a default Value is null, not `{}`/`[]`).
  [[nodiscard]] static Value array();
  [[nodiscard]] static Value object();

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw wild5g::Error on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Value>& as_array() const;
  [[nodiscard]] const std::vector<Member>& as_object() const;

  /// Array mutation; throws unless this value is an array.
  void push_back(Value element);

  /// Object mutation: sets `key` (replacing an existing entry in place, so
  /// insertion order is stable); throws unless this value is an object.
  void set(std::string key, Value value);

  /// Object lookup; returns nullptr when the key is absent (or this value is
  /// not an object).
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Number of elements (array) or members (object); throws otherwise.
  [[nodiscard]] std::size_t size() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<Member> object_;
};

struct Member {
  std::string key;
  Value value;
};

/// Renders `value` as the shortest decimal string that parses back to the
/// exact same double ("13.5", not "13.500000000000000"). Throws wild5g::Error
/// for NaN or infinity — JSON has no representation for them, and silently
/// emitting `null` would corrupt a golden baseline.
[[nodiscard]] std::string format_number(double value);

/// Serializes `value` as pretty-printed JSON (2-space indent, trailing
/// newline at top level). Deterministic: same document -> same bytes.
[[nodiscard]] std::string dump(const Value& value);

/// Serializes `value` as single-line JSON with no whitespace. Backs the
/// campaign server's line-oriented protocol, where every metric frame must
/// fit one line and byte-identical streams are the determinism gate.
[[nodiscard]] std::string dump_compact(const Value& value);

/// Parses a JSON document. Throws wild5g::Error with a position-annotated
/// message on malformed input (truncated document, bad escapes, trailing
/// garbage, non-finite numbers, nesting deeper than 200 levels).
[[nodiscard]] Value parse(std::string_view text);

}  // namespace wild5g::json
