// wild5g/core: error type and precondition helpers used across the library.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace wild5g {

/// Exception type thrown by all wild5g components on contract violations or
/// unrecoverable configuration errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
  explicit Error(const char* what) : std::runtime_error(what) {}
};

namespace detail {

/// Cold failure paths for require()/WILD5G_REQUIRE. Out-of-line [[noreturn]]
/// helpers keep the success path to a predictable branch and let the
/// compiler treat the throw machinery as cold code.
[[noreturn]] inline void require_fail(const char* message) {
  throw Error(message);
}
[[noreturn]] inline void require_fail(const std::string& message) {
  throw Error(message);
}
/// WILD5G_REQUIRE variant: prefixes the message with file:line (basename
/// only, so messages do not leak build-tree paths) so errors surfaced from
/// deep inside a faulted campaign are attributable to their check site.
[[noreturn]] inline void require_fail_at(const char* file, int line,
                                         const std::string& message) {
  std::string where(file);
  const auto slash = where.find_last_of("/\\");
  if (slash != std::string::npos) where.erase(0, slash + 1);
  throw Error(where + ":" + std::to_string(line) + ": " + message);
}

}  // namespace detail

/// Throws wild5g::Error with `message` when `condition` is false.
/// Used to validate public-API preconditions (never for internal invariants,
/// which use assert-style checks in tests).
///
/// NOTE: the `message` argument is evaluated before the call, so callers
/// that build a message (`"x: " + detail`) pay for the std::string even when
/// the condition holds. That is fine on cold configuration paths; hot paths
/// (per-draw, per-event, per-chunk checks) use WILD5G_REQUIRE below, which
/// is zero-cost on success.
inline void require(bool condition, const char* message) {
  if (!condition) [[unlikely]] detail::require_fail(message);
}
inline void require(bool condition, const std::string& message) {
  if (!condition) [[unlikely]] detail::require_fail(message);
}

}  // namespace wild5g

/// Precondition check that is zero-cost on the success path: the message
/// expression is only evaluated (constructed, concatenated) after the
/// condition has already failed, and the thrown wild5g::Error is prefixed
/// with `file:line` of the check so fault-path errors are attributable.
///
///   WILD5G_REQUIRE(lo <= hi, "Rng::uniform: lo > hi");
///   WILD5G_REQUIRE(found, "no profile named '" + name + "'");  // lazy +
#define WILD5G_REQUIRE(condition, message)                              \
  do {                                                                  \
    if (!(condition)) [[unlikely]] {                                    \
      ::wild5g::detail::require_fail_at(__FILE__, __LINE__, (message)); \
    }                                                                   \
  } while (false)
