// wild5g/core: error type and precondition helpers used across the library.
#pragma once

#include <stdexcept>
#include <string>

namespace wild5g {

/// Exception type thrown by all wild5g components on contract violations or
/// unrecoverable configuration errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws wild5g::Error with `message` when `condition` is false.
/// Used to validate public-API preconditions (never for internal invariants,
/// which use assert-style checks in tests).
inline void require(bool condition, const std::string& message) {
  if (!condition) throw Error(message);
}

}  // namespace wild5g
