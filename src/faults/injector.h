// wild5g/faults: deterministic evaluation of a FaultPlan.
//
// The Injector is a *pure query surface* over a validated plan: every
// answer is a function of (plan, campaign seed, query arguments) and of
// nothing else — no mutable state, no shared Rng stream. That is what lets
// harnesses consult it from inside parallel_map tasks without perturbing
// the repo's byte-identical-at-any-thread-count contract: a harness that
// receives a null injector executes exactly the pre-fault code path (and
// exactly the pre-fault Rng draw sequence), so default goldens are
// untouched; a harness that receives a plan perturbs reproducibly.
//
// Stochastic decisions (object-fetch failures, trace-record corruption)
// draw from throwaway Rng substreams forked per decision index off the
// injector's root seed, mirroring the parallel campaign discipline of
// DESIGN.md section 8 item 6: pure function of (seed, index), never of
// call order or thread schedule.
#pragma once

#include <cstdint>
#include <functional>

#include "core/rng.h"
#include "faults/fault_plan.h"
#include "sim/simulator.h"

namespace wild5g::faults {

class Injector {
 public:
  /// `campaign_seed` is typically bench::kBenchSeed; the plan's seed_salt
  /// is mixed in so the same seed can drive differently-salted plans.
  Injector(FaultPlan plan, std::uint64_t campaign_seed);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  // --- radio -------------------------------------------------------------
  /// Extra path attenuation (dB) from mmWave blockage bursts at time t.
  [[nodiscard]] double rsrp_penalty_db_at(double t_s) const;
  /// True while the NR carrier is down and the UE is camped on LTE.
  [[nodiscard]] bool nr_fallback_at(double t_s) const;
  /// True inside a dead zone (no service on any radio).
  [[nodiscard]] bool radio_outage_at(double t_s) const;
  /// Fraction of [a_s, b_s) spent inside radio_outage windows.
  [[nodiscard]] double outage_fraction(double a_s, double b_s) const;

  // --- transport ---------------------------------------------------------
  /// Extra loss events/s from any loss burst covering t.
  [[nodiscard]] double extra_loss_events_per_s_at(double t_s) const;
  /// Extra RTT (ms) from any latency spike covering t.
  [[nodiscard]] double extra_rtt_ms_at(double t_s) const;

  // --- net ---------------------------------------------------------------
  /// True while the server refuses connections (harnesses retry with
  /// bounded deterministic backoff, then report a partial result).
  [[nodiscard]] bool server_unreachable_at(double t_s) const;
  /// Fraction of [a_s, b_s) lost to server stalls (window overlap weighted
  /// by each stall's magnitude).
  [[nodiscard]] double server_stall_fraction(double a_s, double b_s) const;

  // --- abr / generic bandwidth shaping ------------------------------------
  /// Multiplier in [0, 1] applied to available bandwidth at t. Folds in
  /// chunk stalls (1 - magnitude), NR->LTE fallback (residual magnitude)
  /// and radio outages (0). Trace-driven consumers (abr::Session) apply it
  /// sample by sample, converting stalls into rebuffer time.
  [[nodiscard]] double bandwidth_scale_at(double t_s) const;

  // --- web ----------------------------------------------------------------
  /// Whether the fetch of object `object_index` starting at `t_s` fails.
  /// Deterministic in (root seed, salt, object_index); `salt` keys the
  /// decision family (e.g. the site index), so one plan fails different
  /// object subsets on different pages.
  [[nodiscard]] bool object_fetch_fails(std::uint64_t salt,
                                        std::uint64_t object_index,
                                        double t_s) const;

  // --- traces --------------------------------------------------------------
  /// Whether serialized record `index` is corrupted (trace_corrupt windows
  /// live in record-index space: record i sits at t = i).
  [[nodiscard]] bool corrupt_record(std::uint64_t index) const;

  // --- sim-driven consumers ------------------------------------------------
  /// Schedules `on_edge(window, is_start)` on `sim` at every window
  /// boundary (milliseconds = seconds * 1000, matching Simulator's clock),
  /// for components that react to fault edges instead of polling. Windows
  /// whose start lies before sim.now_ms() are skipped entirely; a window
  /// already in progress cannot deliver a coherent start edge.
  void arm(sim::Simulator& sim,
           std::function<void(const FaultWindow&, bool)> on_edge) const;

 private:
  /// Pure (seed, salt, index) -> bernoulli(p) decision.
  [[nodiscard]] bool decision(std::uint64_t salt, std::uint64_t index,
                              double probability) const;

  FaultPlan plan_;
  Rng root_;
};

}  // namespace wild5g::faults
