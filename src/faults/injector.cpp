#include "faults/injector.h"

#include <algorithm>
#include <utility>

namespace wild5g::faults {

namespace {

/// SplitMix64 finalizer, the same mixing discipline Rng::fork uses, so the
/// injector's decision streams are uncorrelated with harness streams that
/// share the campaign seed.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a + b * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Injector::Injector(FaultPlan plan, std::uint64_t campaign_seed)
    : plan_(std::move(plan)), root_(mix(campaign_seed, plan_.seed_salt)) {
  plan_.validate();
}

double Injector::rsrp_penalty_db_at(double t_s) const {
  double penalty = 0.0;
  for (const auto& w : plan_.windows) {
    if (w.kind == FaultKind::kMmwaveBlockage && w.covers(t_s)) {
      penalty += w.magnitude;
    }
  }
  return penalty;
}

bool Injector::nr_fallback_at(double t_s) const {
  for (const auto& w : plan_.windows) {
    if (w.kind == FaultKind::kNrToLteOutage && w.covers(t_s)) return true;
  }
  return false;
}

bool Injector::radio_outage_at(double t_s) const {
  for (const auto& w : plan_.windows) {
    if (w.kind == FaultKind::kRadioOutage && w.covers(t_s)) return true;
  }
  return false;
}

double Injector::outage_fraction(double a_s, double b_s) const {
  if (b_s <= a_s) return 0.0;
  double covered = 0.0;
  // Same-kind windows never overlap (FaultPlan::validate), so overlaps sum.
  for (const auto& w : plan_.windows) {
    if (w.kind == FaultKind::kRadioOutage) covered += w.overlap_s(a_s, b_s);
  }
  return std::min(1.0, covered / (b_s - a_s));
}

double Injector::extra_loss_events_per_s_at(double t_s) const {
  double extra = 0.0;
  for (const auto& w : plan_.windows) {
    if (w.kind == FaultKind::kLossBurst && w.covers(t_s)) extra += w.magnitude;
  }
  return extra;
}

double Injector::extra_rtt_ms_at(double t_s) const {
  double extra = 0.0;
  for (const auto& w : plan_.windows) {
    if (w.kind == FaultKind::kLatencySpike && w.covers(t_s)) {
      extra += w.magnitude;
    }
  }
  return extra;
}

bool Injector::server_unreachable_at(double t_s) const {
  for (const auto& w : plan_.windows) {
    if (w.kind == FaultKind::kServerUnreachable && w.covers(t_s)) return true;
  }
  return false;
}

double Injector::server_stall_fraction(double a_s, double b_s) const {
  if (b_s <= a_s) return 0.0;
  double stalled = 0.0;
  for (const auto& w : plan_.windows) {
    if (w.kind == FaultKind::kServerStall) {
      stalled += w.magnitude * w.overlap_s(a_s, b_s);
    }
  }
  return std::min(1.0, stalled / (b_s - a_s));
}

double Injector::bandwidth_scale_at(double t_s) const {
  double scale = 1.0;
  for (const auto& w : plan_.windows) {
    if (!w.covers(t_s)) continue;
    switch (w.kind) {
      case FaultKind::kRadioOutage:
        return 0.0;
      case FaultKind::kChunkStall:
        scale *= 1.0 - w.magnitude;
        break;
      case FaultKind::kNrToLteOutage:
        scale *= w.magnitude;
        break;
      default:
        break;
    }
  }
  return scale;
}

bool Injector::object_fetch_fails(std::uint64_t salt,
                                  std::uint64_t object_index,
                                  double t_s) const {
  for (const auto& w : plan_.windows) {
    if (w.kind == FaultKind::kObjectFail && w.covers(t_s)) {
      if (decision(mix(salt, 0x0b1ec7ull), object_index, w.magnitude)) {
        return true;
      }
    }
  }
  return false;
}

bool Injector::corrupt_record(std::uint64_t index) const {
  const auto t = static_cast<double>(index);
  for (const auto& w : plan_.windows) {
    if (w.kind == FaultKind::kTraceCorrupt && w.covers(t)) {
      if (decision(0x72ace5ull, index, w.magnitude)) return true;
    }
  }
  return false;
}

void Injector::arm(sim::Simulator& sim,
                   std::function<void(const FaultWindow&, bool)> on_edge) const {
  // One shared callback wrapper per window pair; windows starting in the
  // past are skipped whole (a half-delivered window would be incoherent).
  for (const auto& w : plan_.windows) {
    const double start_ms = w.start_s * 1000.0;
    if (start_ms < sim.now_ms()) continue;
    sim.schedule_at(start_ms, [on_edge, w] { on_edge(w, true); });
    sim.schedule_at(w.end_s() * 1000.0, [on_edge, w] { on_edge(w, false); });
  }
}

bool Injector::decision(std::uint64_t salt, std::uint64_t index,
                        double probability) const {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  Rng stream = root_.fork(mix(salt, index));
  return stream.bernoulli(probability);
}

}  // namespace wild5g::faults
