// wild5g/faults: declarative, seeded fault plans for the measurement
// substrate.
//
// The paper's field campaigns are defined as much by failures as by
// successes: mmWave blockage and dead zones, NR->LTE fallback during drives
// (Sec. 3.3), stalled or unreachable speedtest servers, rebuffering ABR
// sessions (Sec. 5), and truncated trace files. A FaultPlan declares those
// impairments as explicit time windows — parsed from JSON (`--faults
// <plan.json>` on every bench binary) or built programmatically — and a
// faults::Injector (injector.h) evaluates them deterministically, so a given
// (plan, seed) pair perturbs a campaign bit-for-bit reproducibly at any
// thread count. The chaos suite (`ctest -R chaos`) sweeps committed plans
// under bench/faults/ over representative benches.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/json.h"

namespace wild5g::faults {

/// The impairment taxonomy, covering the substrate end to end.
enum class FaultKind {
  /// Radio: an mmWave blockage burst. `magnitude` = extra path attenuation
  /// in dB (link capacity collapses but rarely to zero).
  kMmwaveBlockage,
  /// Radio: the NR carrier drops and the UE falls back to LTE for the
  /// window. `magnitude` = residual bandwidth fraction in [0, 1] for
  /// consumers that shape bandwidth directly (trace-driven ABR).
  kNrToLteOutage,
  /// Radio: a dead zone — no service at all. `magnitude` is ignored
  /// (severity is always total).
  kRadioOutage,
  /// Transport: a loss-burst episode. `magnitude` = extra loss events/s.
  kLossBurst,
  /// Transport: a latency spike. `magnitude` = extra RTT in ms.
  kLatencySpike,
  /// Net: the speedtest server stalls mid-test. `magnitude` = stalled
  /// fraction of the overlapped test time, in [0, 1].
  kServerStall,
  /// Net: the server is unreachable (connect fails; the harness retries
  /// with bounded deterministic backoff). `magnitude` is ignored.
  kServerUnreachable,
  /// ABR: chunk downloads crawl. `magnitude` = severity in [0, 1];
  /// bandwidth is scaled by (1 - magnitude) inside the window.
  kChunkStall,
  /// Web: object fetches fail. `magnitude` = per-object failure
  /// probability in [0, 1] inside the window.
  kObjectFail,
  /// Traces: serialized records are corrupted. `magnitude` = per-record
  /// corruption probability in [0, 1] (windows are in record-index space:
  /// record i maps to t = i).
  kTraceCorrupt,
};

/// Canonical snake_case name, as used in plan JSON.
[[nodiscard]] const char* to_string(FaultKind kind);

/// Inverse of to_string(); throws wild5g::Error on an unknown kind name.
[[nodiscard]] FaultKind kind_from_string(std::string_view name);

/// One impairment window on the campaign timeline (seconds).
struct FaultWindow {
  FaultKind kind = FaultKind::kRadioOutage;
  double start_s = 0.0;
  double duration_s = 0.0;
  double magnitude = 0.0;

  [[nodiscard]] double end_s() const { return start_s + duration_s; }
  /// Half-open containment: start <= t < end.
  [[nodiscard]] bool covers(double t_s) const {
    return t_s >= start_s && t_s < end_s();
  }
  /// Length of the overlap between this window and [a_s, b_s).
  [[nodiscard]] double overlap_s(double a_s, double b_s) const;
};

/// A named, validated collection of fault windows.
///
/// Validation rules (enforced by validate(), and by from_json on load):
///  - start_s >= 0, duration_s > 0, all fields finite;
///  - magnitude within the kind's range (probabilities and severities in
///    [0, 1]; dB / ms / rate magnitudes >= 0);
///  - windows of the same kind must not overlap (two blockage bursts at
///    once is one longer burst — force the plan author to say so).
/// Windows of *different* kinds may overlap freely (a latency spike during
/// a loss burst is exactly the compound weather the chaos suite wants).
struct FaultPlan {
  std::string name = "unnamed";
  /// Salted into the injector's decision streams so two plans with the
  /// same windows can still perturb stochastic faults differently.
  std::uint64_t seed_salt = 0;
  std::vector<FaultWindow> windows;

  [[nodiscard]] bool empty() const { return windows.empty(); }

  /// Throws wild5g::Error describing the first violated rule.
  void validate() const;

  /// Plan document shape:
  ///   { "name": "...", "seed_salt": 7,
  ///     "windows": [ { "kind": "nr_to_lte_outage", "start_s": 3,
  ///                    "duration_s": 5, "magnitude": 0.1 }, ... ] }
  /// All parsers validate before returning.
  [[nodiscard]] static FaultPlan from_json(const json::Value& doc);
  [[nodiscard]] static FaultPlan parse(std::string_view text);
  [[nodiscard]] static FaultPlan load(const std::string& path);
  [[nodiscard]] json::Value to_json() const;
};

}  // namespace wild5g::faults
