#include "faults/fault_plan.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <fstream>
#include <sstream>

#include "core/error.h"

namespace wild5g::faults {

namespace {

struct KindName {
  FaultKind kind;
  const char* name;
};

constexpr std::array<KindName, 10> kKindNames = {{
    {FaultKind::kMmwaveBlockage, "mmwave_blockage"},
    {FaultKind::kNrToLteOutage, "nr_to_lte_outage"},
    {FaultKind::kRadioOutage, "radio_outage"},
    {FaultKind::kLossBurst, "loss_burst"},
    {FaultKind::kLatencySpike, "latency_spike"},
    {FaultKind::kServerStall, "server_stall"},
    {FaultKind::kServerUnreachable, "server_unreachable"},
    {FaultKind::kChunkStall, "chunk_stall"},
    {FaultKind::kObjectFail, "object_fail"},
    {FaultKind::kTraceCorrupt, "trace_corrupt"},
}};

/// Magnitude contract per kind: probabilities and severities live in [0, 1];
/// additive magnitudes (dB, ms, events/s) only need to be non-negative.
bool magnitude_is_fraction(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNrToLteOutage:
    case FaultKind::kServerStall:
    case FaultKind::kChunkStall:
    case FaultKind::kObjectFail:
    case FaultKind::kTraceCorrupt:
      return true;
    case FaultKind::kMmwaveBlockage:
    case FaultKind::kRadioOutage:
    case FaultKind::kLossBurst:
    case FaultKind::kLatencySpike:
    case FaultKind::kServerUnreachable:
      return false;
  }
  return false;
}

double require_finite_field(const json::Value& window, const char* key,
                            double fallback, bool required) {
  const json::Value* field = window.find(key);
  if (field == nullptr) {
    require(!required, std::string("FaultPlan: window missing '") + key + "'");
    return fallback;
  }
  require(field->is_number(),
          std::string("FaultPlan: window field '") + key + "' must be a number");
  return field->as_number();
}

}  // namespace

const char* to_string(FaultKind kind) {
  for (const auto& entry : kKindNames) {
    if (entry.kind == kind) return entry.name;
  }
  throw Error("FaultKind: unknown enum value");
}

FaultKind kind_from_string(std::string_view name) {
  for (const auto& entry : kKindNames) {
    if (name == entry.name) return entry.kind;
  }
  throw Error("FaultPlan: unknown fault kind '" + std::string(name) + "'");
}

double FaultWindow::overlap_s(double a_s, double b_s) const {
  const double lo = std::max(a_s, start_s);
  const double hi = std::min(b_s, end_s());
  return std::max(0.0, hi - lo);
}

void FaultPlan::validate() const {
  for (const auto& w : windows) {
    const std::string tag = std::string(to_string(w.kind)) + " window";
    require(std::isfinite(w.start_s) && std::isfinite(w.duration_s) &&
                std::isfinite(w.magnitude),
            "FaultPlan: " + tag + " has a non-finite field");
    require(w.start_s >= 0.0, "FaultPlan: " + tag + " starts before t=0");
    require(w.duration_s > 0.0,
            "FaultPlan: " + tag + " has non-positive duration");
    require(w.magnitude >= 0.0, "FaultPlan: " + tag + " has negative magnitude");
    if (magnitude_is_fraction(w.kind)) {
      require(w.magnitude <= 1.0,
              "FaultPlan: " + tag + " magnitude must be a fraction in [0, 1]");
    }
  }
  // Same-kind windows must not overlap. Sort index pairs per kind and check
  // neighbors; O(n log n) and order-independent of the declared sequence.
  std::vector<const FaultWindow*> sorted;
  sorted.reserve(windows.size());
  for (const auto& w : windows) sorted.push_back(&w);
  std::sort(sorted.begin(), sorted.end(),
            [](const FaultWindow* a, const FaultWindow* b) {
              if (a->kind != b->kind) return a->kind < b->kind;
              return a->start_s < b->start_s;
            });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    const FaultWindow& prev = *sorted[i - 1];
    const FaultWindow& next = *sorted[i];
    if (prev.kind != next.kind) continue;
    require(next.start_s >= prev.end_s(),
            std::string("FaultPlan: overlapping ") + to_string(next.kind) +
                " windows (merge them into one)");
  }
}

FaultPlan FaultPlan::from_json(const json::Value& doc) {
  require(doc.is_object(), "FaultPlan: document must be a JSON object");
  FaultPlan plan;
  if (const json::Value* name = doc.find("name"); name != nullptr) {
    require(name->is_string(), "FaultPlan: 'name' must be a string");
    plan.name = name->as_string();
  }
  if (const json::Value* salt = doc.find("seed_salt"); salt != nullptr) {
    require(salt->is_number() && salt->as_number() >= 0.0,
            "FaultPlan: 'seed_salt' must be a non-negative number");
    plan.seed_salt = static_cast<std::uint64_t>(salt->as_number());
  }
  const json::Value* windows = doc.find("windows");
  require(windows != nullptr && windows->is_array(),
          "FaultPlan: 'windows' array is required");
  for (const auto& entry : windows->as_array()) {
    require(entry.is_object(), "FaultPlan: each window must be an object");
    const json::Value* kind = entry.find("kind");
    require(kind != nullptr && kind->is_string(),
            "FaultPlan: window missing string 'kind'");
    FaultWindow window;
    window.kind = kind_from_string(kind->as_string());
    window.start_s = require_finite_field(entry, "start_s", 0.0, true);
    window.duration_s = require_finite_field(entry, "duration_s", 0.0, true);
    window.magnitude = require_finite_field(entry, "magnitude", 0.0, false);
    plan.windows.push_back(window);
  }
  plan.validate();
  return plan;
}

FaultPlan FaultPlan::parse(std::string_view text) {
  return from_json(json::parse(text));
}

FaultPlan FaultPlan::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "FaultPlan: cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

json::Value FaultPlan::to_json() const {
  validate();
  json::Value doc = json::Value::object();
  doc.set("name", name);
  doc.set("seed_salt", seed_salt);
  json::Value list = json::Value::array();
  for (const auto& w : windows) {
    json::Value entry = json::Value::object();
    entry.set("kind", to_string(w.kind));
    entry.set("start_s", w.start_s);
    entry.set("duration_s", w.duration_s);
    entry.set("magnitude", w.magnitude);
    list.push_back(std::move(entry));
  }
  doc.set("windows", std::move(list));
  return doc;
}

}  // namespace wild5g::faults
