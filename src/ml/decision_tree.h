// wild5g/ml: CART decision trees (regression + classification).
//
// These are the learners the paper leans on: Decision Tree Regression for the
// TH+SS power model (Sec. 4.5) and software-monitor calibration (Sec. 4.6),
// and a Gini-based classifier for the 4G/5G interface selector (Sec. 6.2).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.h"

namespace wild5g::ml {

/// Shared stopping-rule configuration for tree growth.
struct TreeConfig {
  int max_depth = 8;
  std::size_t min_samples_leaf = 5;
  std::size_t min_samples_split = 10;
  double min_impurity_decrease = 1e-9;
};

/// One node of a learned tree. Internal nodes split on
/// `features[feature] < threshold` (true -> left); leaves carry `value`.
struct TreeNode {
  bool is_leaf = true;
  int feature = -1;
  double threshold = 0.0;
  std::int32_t left = -1;
  std::int32_t right = -1;
  double value = 0.0;          // leaf: mean target (regression) or class id
  std::size_t sample_count = 0;
};

/// CART regressor minimizing within-node variance (squared error).
class DecisionTreeRegressor {
 public:
  explicit DecisionTreeRegressor(TreeConfig config = {}) : config_(config) {}

  /// Learns the tree; `data` must be valid and non-empty.
  void fit(const Dataset& data);

  /// Predicts the target for one feature row.
  [[nodiscard]] double predict(std::span<const double> features) const;
  [[nodiscard]] double predict(std::initializer_list<double> features) const {
    return predict(std::span<const double>(features.begin(), features.size()));
  }

  /// Predicts for every row of `data`.
  [[nodiscard]] std::vector<double> predict_all(const Dataset& data) const;

  /// Total impurity decrease contributed by each feature, normalized to
  /// sum to 1 (the "importance" the paper inspects on its selector trees).
  [[nodiscard]] std::vector<double> feature_importances() const;

  [[nodiscard]] bool is_fitted() const { return !nodes_.empty(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] int depth() const;

 private:
  TreeConfig config_;
  std::vector<TreeNode> nodes_;
  std::vector<double> importance_raw_;
  std::size_t feature_count_ = 0;

  friend class TreeGrower;
};

/// CART classifier minimizing Gini impurity. Labels are dense ints [0, k).
class DecisionTreeClassifier {
 public:
  explicit DecisionTreeClassifier(TreeConfig config = {}) : config_(config) {}

  /// Learns the tree; targets in `data` are interpreted as integer labels.
  void fit(const Dataset& data);

  /// Predicts the majority-class label for one feature row.
  [[nodiscard]] int predict(std::span<const double> features) const;
  [[nodiscard]] int predict(std::initializer_list<double> features) const {
    return predict(std::span<const double>(features.begin(), features.size()));
  }

  [[nodiscard]] std::vector<int> predict_all(const Dataset& data) const;

  /// Fraction of rows of `data` classified correctly.
  [[nodiscard]] double accuracy(const Dataset& data) const;

  /// Normalized Gini importance per feature.
  [[nodiscard]] std::vector<double> feature_importances() const;

  /// Human-readable rendering of the tree, using the dataset's feature
  /// names and the provided class names (for Fig. 22-style inspection).
  [[nodiscard]] std::string describe(
      std::span<const std::string> feature_names,
      std::span<const std::string> class_names) const;

  [[nodiscard]] bool is_fitted() const { return !nodes_.empty(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

 private:
  TreeConfig config_;
  std::vector<TreeNode> nodes_;
  std::vector<double> importance_raw_;
  std::size_t feature_count_ = 0;
  int class_count_ = 0;

  friend class TreeGrower;
};

}  // namespace wild5g::ml
