#include "ml/dataset.h"

#include <numeric>

#include "core/error.h"

namespace wild5g::ml {

void Dataset::add(std::vector<double> features, double target) {
  require(features.size() == feature_names.size(),
          "Dataset::add: feature arity mismatch");
  rows.push_back(std::move(features));
  targets.push_back(target);
}

void Dataset::validate() const {
  require(rows.size() == targets.size(),
          "Dataset: rows/targets size mismatch");
  for (const auto& row : rows) {
    require(row.size() == feature_names.size(),
            "Dataset: row arity mismatch");
  }
}

TrainTestSplit train_test_split(const Dataset& data, double train_fraction,
                                Rng& rng) {
  require(train_fraction > 0.0 && train_fraction < 1.0,
          "train_test_split: fraction out of (0,1)");
  data.validate();
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(std::span<std::size_t>(order));

  const auto train_count = static_cast<std::size_t>(
      train_fraction * static_cast<double>(data.size()));
  TrainTestSplit split;
  split.train.feature_names = data.feature_names;
  split.test.feature_names = data.feature_names;
  for (std::size_t i = 0; i < order.size(); ++i) {
    auto& dest = (i < train_count) ? split.train : split.test;
    dest.rows.push_back(data.rows[order[i]]);
    dest.targets.push_back(data.targets[order[i]]);
  }
  return split;
}

}  // namespace wild5g::ml
