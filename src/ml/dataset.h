// wild5g/ml: tabular dataset container shared by the tree learners.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/rng.h"

namespace wild5g::ml {

/// A dense feature matrix with one target per row. Feature names are kept so
/// learned trees can be rendered readably (Fig. 22 of the paper).
struct Dataset {
  std::vector<std::string> feature_names;
  std::vector<std::vector<double>> rows;  // rows[i].size() == feature_names.size()
  std::vector<double> targets;            // regression target or class label

  [[nodiscard]] std::size_t size() const { return rows.size(); }
  [[nodiscard]] std::size_t feature_count() const {
    return feature_names.size();
  }

  /// Appends one observation; `features` must match feature_count().
  void add(std::vector<double> features, double target);

  /// Validates internal consistency; throws wild5g::Error on violation.
  void validate() const;
};

/// Result of a random split.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Randomly partitions `data` into train/test with `train_fraction` of rows
/// in train (the paper uses 7:3). Deterministic in `rng`.
[[nodiscard]] TrainTestSplit train_test_split(const Dataset& data,
                                              double train_fraction, Rng& rng);

}  // namespace wild5g::ml
