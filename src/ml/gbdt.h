// wild5g/ml: gradient-boosted regression trees.
//
// The paper's MPC_GDBT throughput predictor (Sec. 5.3, after Lumos5G) is a
// gradient-boosted decision tree; this is a least-squares boosting ensemble
// over the CART regressor.
#pragma once

#include <span>
#include <vector>

#include "ml/decision_tree.h"

namespace wild5g::ml {

struct GbdtConfig {
  int tree_count = 100;
  double learning_rate = 0.1;
  TreeConfig tree;  // weak learners default to shallow trees
  GbdtConfig() { tree.max_depth = 3; tree.min_samples_leaf = 3; tree.min_samples_split = 6; }
};

/// Least-squares gradient boosting: F_0 = mean(y); each stage fits a shallow
/// CART to the residuals and adds it with shrinkage `learning_rate`.
class GradientBoostedRegressor {
 public:
  explicit GradientBoostedRegressor(GbdtConfig config = {})
      : config_(config) {}

  void fit(const Dataset& data);

  [[nodiscard]] double predict(std::span<const double> features) const;
  [[nodiscard]] double predict(std::initializer_list<double> features) const {
    return predict(std::span<const double>(features.begin(), features.size()));
  }
  [[nodiscard]] std::vector<double> predict_all(const Dataset& data) const;

  [[nodiscard]] bool is_fitted() const { return fitted_; }
  [[nodiscard]] std::size_t stage_count() const { return stages_.size(); }

 private:
  GbdtConfig config_;
  double base_prediction_ = 0.0;
  std::vector<DecisionTreeRegressor> stages_;
  bool fitted_ = false;
};

}  // namespace wild5g::ml
