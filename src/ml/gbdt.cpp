#include "ml/gbdt.h"

#include <numeric>

#include "core/error.h"

namespace wild5g::ml {

void GradientBoostedRegressor::fit(const Dataset& data) {
  data.validate();
  require(!data.rows.empty(), "GradientBoostedRegressor::fit: empty dataset");
  require(config_.tree_count > 0, "GradientBoostedRegressor: tree_count <= 0");
  require(config_.learning_rate > 0.0,
          "GradientBoostedRegressor: learning_rate <= 0");

  stages_.clear();
  base_prediction_ =
      std::accumulate(data.targets.begin(), data.targets.end(), 0.0) /
      static_cast<double>(data.targets.size());

  std::vector<double> current(data.size(), base_prediction_);
  Dataset residuals;
  residuals.feature_names = data.feature_names;
  residuals.rows = data.rows;
  residuals.targets.resize(data.size());

  for (int stage = 0; stage < config_.tree_count; ++stage) {
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      residuals.targets[i] = data.targets[i] - current[i];
      sum_sq += residuals.targets[i] * residuals.targets[i];
    }
    if (sum_sq < 1e-12) break;  // already fit exactly
    DecisionTreeRegressor tree(config_.tree);
    tree.fit(residuals);
    for (std::size_t i = 0; i < data.size(); ++i) {
      current[i] += config_.learning_rate * tree.predict(data.rows[i]);
    }
    stages_.push_back(std::move(tree));
  }
  fitted_ = true;
}

double GradientBoostedRegressor::predict(
    std::span<const double> features) const {
  require(fitted_, "GradientBoostedRegressor: not fitted");
  double value = base_prediction_;
  for (const auto& tree : stages_) {
    value += config_.learning_rate * tree.predict(features);
  }
  return value;
}

std::vector<double> GradientBoostedRegressor::predict_all(
    const Dataset& data) const {
  std::vector<double> out;
  out.reserve(data.size());
  for (const auto& row : data.rows) out.push_back(predict(row));
  return out;
}

}  // namespace wild5g::ml
