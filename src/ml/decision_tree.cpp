#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "core/error.h"

namespace wild5g::ml {

namespace {

/// Mutable state while growing one tree. Handles both criteria:
/// squared error (regression) and Gini (classification).
enum class Criterion { kSquaredError, kGini };

struct SplitChoice {
  bool found = false;
  int feature = -1;
  double threshold = 0.0;
  double impurity_decrease = 0.0;
  std::vector<std::size_t> left;
  std::vector<std::size_t> right;
};

class Grower {
 public:
  Grower(const Dataset& data, const TreeConfig& config, Criterion criterion,
         int class_count)
      : data_(data),
        config_(config),
        criterion_(criterion),
        class_count_(class_count),
        importance_(data.feature_count(), 0.0) {}

  std::vector<TreeNode> grow() {
    std::vector<std::size_t> all(data_.size());
    std::iota(all.begin(), all.end(), 0);
    grow_node(all, 0);
    return std::move(nodes_);
  }

  std::vector<double> take_importance() { return std::move(importance_); }

 private:
  // Impurity of a node given its member rows: sum of squared deviations for
  // regression, n * Gini for classification (both "weighted" impurities so
  // decreases are additive).
  double node_impurity(std::span<const std::size_t> idx) const {
    if (criterion_ == Criterion::kSquaredError) {
      double sum = 0.0;
      double sq = 0.0;
      for (auto i : idx) {
        sum += data_.targets[i];
        sq += data_.targets[i] * data_.targets[i];
      }
      const auto n = static_cast<double>(idx.size());
      return sq - sum * sum / n;
    }
    std::vector<double> counts(static_cast<std::size_t>(class_count_), 0.0);
    for (auto i : idx) counts[static_cast<std::size_t>(data_.targets[i])]++;
    const auto n = static_cast<double>(idx.size());
    double sum_p2 = 0.0;
    for (double c : counts) sum_p2 += (c / n) * (c / n);
    return n * (1.0 - sum_p2);
  }

  double leaf_value(std::span<const std::size_t> idx) const {
    if (criterion_ == Criterion::kSquaredError) {
      double sum = 0.0;
      for (auto i : idx) sum += data_.targets[i];
      return sum / static_cast<double>(idx.size());
    }
    std::vector<std::size_t> counts(static_cast<std::size_t>(class_count_), 0);
    for (auto i : idx) counts[static_cast<std::size_t>(data_.targets[i])]++;
    const auto best =
        std::max_element(counts.begin(), counts.end()) - counts.begin();
    return static_cast<double>(best);
  }

  SplitChoice best_split(std::span<const std::size_t> idx,
                         double parent_impurity) const {
    SplitChoice best;
    std::vector<std::size_t> sorted(idx.begin(), idx.end());
    for (std::size_t f = 0; f < data_.feature_count(); ++f) {
      std::sort(sorted.begin(), sorted.end(), [&](std::size_t a,
                                                  std::size_t b) {
        return data_.rows[a][f] < data_.rows[b][f];
      });
      scan_feature(sorted, static_cast<int>(f), parent_impurity, best);
    }
    if (best.found) {
      best.left.clear();
      best.right.clear();
      for (auto i : idx) {
        auto& side = (data_.rows[i][static_cast<std::size_t>(best.feature)] <
                      best.threshold)
                         ? best.left
                         : best.right;
        side.push_back(i);
      }
    }
    return best;
  }

  // Scans all split positions of one (pre-sorted) feature with running
  // sufficient statistics; updates `best` in place.
  void scan_feature(std::span<const std::size_t> sorted, int feature,
                    double parent_impurity, SplitChoice& best) const {
    const auto f = static_cast<std::size_t>(feature);
    const auto n = sorted.size();
    if (criterion_ == Criterion::kSquaredError) {
      double total_sum = 0.0;
      double total_sq = 0.0;
      for (auto i : sorted) {
        total_sum += data_.targets[i];
        total_sq += data_.targets[i] * data_.targets[i];
      }
      double left_sum = 0.0;
      double left_sq = 0.0;
      for (std::size_t k = 0; k + 1 < n; ++k) {
        const double y = data_.targets[sorted[k]];
        left_sum += y;
        left_sq += y * y;
        const double v_here = data_.rows[sorted[k]][f];
        const double v_next = data_.rows[sorted[k + 1]][f];
        if (v_here == v_next) continue;
        const auto nl = static_cast<double>(k + 1);
        const auto nr = static_cast<double>(n - k - 1);
        if (nl < static_cast<double>(config_.min_samples_leaf) ||
            nr < static_cast<double>(config_.min_samples_leaf)) {
          continue;
        }
        const double imp_l = left_sq - left_sum * left_sum / nl;
        const double right_sum = total_sum - left_sum;
        const double imp_r =
            (total_sq - left_sq) - right_sum * right_sum / nr;
        consider(parent_impurity - imp_l - imp_r, feature,
                 0.5 * (v_here + v_next), best);
      }
      return;
    }
    // Gini criterion.
    std::vector<double> total(static_cast<std::size_t>(class_count_), 0.0);
    for (auto i : sorted) total[static_cast<std::size_t>(data_.targets[i])]++;
    std::vector<double> left(static_cast<std::size_t>(class_count_), 0.0);
    for (std::size_t k = 0; k + 1 < n; ++k) {
      left[static_cast<std::size_t>(data_.targets[sorted[k]])]++;
      const double v_here = data_.rows[sorted[k]][f];
      const double v_next = data_.rows[sorted[k + 1]][f];
      if (v_here == v_next) continue;
      const auto nl = static_cast<double>(k + 1);
      const auto nr = static_cast<double>(n - k - 1);
      if (nl < static_cast<double>(config_.min_samples_leaf) ||
          nr < static_cast<double>(config_.min_samples_leaf)) {
        continue;
      }
      double sum_l2 = 0.0;
      double sum_r2 = 0.0;
      for (std::size_t c = 0; c < left.size(); ++c) {
        sum_l2 += (left[c] / nl) * (left[c] / nl);
        const double rc = total[c] - left[c];
        sum_r2 += (rc / nr) * (rc / nr);
      }
      const double imp_l = nl * (1.0 - sum_l2);
      const double imp_r = nr * (1.0 - sum_r2);
      consider(parent_impurity - imp_l - imp_r, feature,
               0.5 * (v_here + v_next), best);
    }
  }

  static void consider(double decrease, int feature, double threshold,
                       SplitChoice& best) {
    if (decrease > best.impurity_decrease ||
        (!best.found && decrease > 0.0)) {
      best.found = true;
      best.feature = feature;
      best.threshold = threshold;
      best.impurity_decrease = decrease;
    }
  }

  std::int32_t grow_node(std::span<const std::size_t> idx, int depth) {
    const auto node_id = static_cast<std::int32_t>(nodes_.size());
    nodes_.emplace_back();
    nodes_[static_cast<std::size_t>(node_id)].sample_count = idx.size();

    const double impurity = node_impurity(idx);
    const bool can_split = depth < config_.max_depth &&
                           idx.size() >= config_.min_samples_split &&
                           impurity > 0.0;
    SplitChoice split;
    if (can_split) split = best_split(idx, impurity);
    if (!split.found ||
        split.impurity_decrease < config_.min_impurity_decrease) {
      nodes_[static_cast<std::size_t>(node_id)].is_leaf = true;
      nodes_[static_cast<std::size_t>(node_id)].value = leaf_value(idx);
      return node_id;
    }

    importance_[static_cast<std::size_t>(split.feature)] +=
        split.impurity_decrease;
    // Children are grown after the parent so the parent's fields must be set
    // via index (the vector may reallocate during recursion).
    const auto left_id = grow_node(split.left, depth + 1);
    const auto right_id = grow_node(split.right, depth + 1);
    auto& node = nodes_[static_cast<std::size_t>(node_id)];
    node.is_leaf = false;
    node.feature = split.feature;
    node.threshold = split.threshold;
    node.left = left_id;
    node.right = right_id;
    return node_id;
  }

  const Dataset& data_;
  const TreeConfig& config_;
  Criterion criterion_;
  int class_count_;
  std::vector<TreeNode> nodes_;
  std::vector<double> importance_;
};

double tree_predict(const std::vector<TreeNode>& nodes,
                    std::span<const double> features) {
  require(!nodes.empty(), "decision tree: not fitted");
  std::size_t at = 0;
  while (!nodes[at].is_leaf) {
    const auto& node = nodes[at];
    require(static_cast<std::size_t>(node.feature) < features.size(),
            "decision tree: feature arity mismatch");
    at = static_cast<std::size_t>(
        features[static_cast<std::size_t>(node.feature)] < node.threshold
            ? node.left
            : node.right);
  }
  return nodes[at].value;
}

std::vector<double> normalized(std::vector<double> raw) {
  const double total = std::accumulate(raw.begin(), raw.end(), 0.0);
  if (total > 0.0) {
    for (auto& v : raw) v /= total;
  }
  return raw;
}

int tree_depth_from(const std::vector<TreeNode>& nodes, std::size_t at) {
  if (nodes[at].is_leaf) return 0;
  return 1 + std::max(
                 tree_depth_from(nodes, static_cast<std::size_t>(nodes[at].left)),
                 tree_depth_from(nodes,
                                 static_cast<std::size_t>(nodes[at].right)));
}

}  // namespace

void DecisionTreeRegressor::fit(const Dataset& data) {
  data.validate();
  require(!data.rows.empty(), "DecisionTreeRegressor::fit: empty dataset");
  feature_count_ = data.feature_count();
  Grower grower(data, config_, Criterion::kSquaredError, 0);
  nodes_ = grower.grow();
  importance_raw_ = grower.take_importance();
}

double DecisionTreeRegressor::predict(std::span<const double> features) const {
  return tree_predict(nodes_, features);
}

std::vector<double> DecisionTreeRegressor::predict_all(
    const Dataset& data) const {
  std::vector<double> out;
  out.reserve(data.size());
  for (const auto& row : data.rows) out.push_back(predict(row));
  return out;
}

std::vector<double> DecisionTreeRegressor::feature_importances() const {
  require(is_fitted(), "DecisionTreeRegressor: not fitted");
  return normalized(importance_raw_);
}

int DecisionTreeRegressor::depth() const {
  require(is_fitted(), "DecisionTreeRegressor: not fitted");
  return tree_depth_from(nodes_, 0);
}

void DecisionTreeClassifier::fit(const Dataset& data) {
  data.validate();
  require(!data.rows.empty(), "DecisionTreeClassifier::fit: empty dataset");
  feature_count_ = data.feature_count();
  int max_label = 0;
  for (double t : data.targets) {
    require(t >= 0.0 && t == std::floor(t),
            "DecisionTreeClassifier::fit: labels must be non-negative ints");
    max_label = std::max(max_label, static_cast<int>(t));
  }
  class_count_ = max_label + 1;
  Grower grower(data, config_, Criterion::kGini, class_count_);
  nodes_ = grower.grow();
  importance_raw_ = grower.take_importance();
}

int DecisionTreeClassifier::predict(std::span<const double> features) const {
  return static_cast<int>(tree_predict(nodes_, features));
}

std::vector<int> DecisionTreeClassifier::predict_all(
    const Dataset& data) const {
  std::vector<int> out;
  out.reserve(data.size());
  for (const auto& row : data.rows) out.push_back(predict(row));
  return out;
}

double DecisionTreeClassifier::accuracy(const Dataset& data) const {
  require(!data.rows.empty(), "DecisionTreeClassifier::accuracy: empty set");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (predict(data.rows[i]) == static_cast<int>(data.targets[i])) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(data.size());
}

std::vector<double> DecisionTreeClassifier::feature_importances() const {
  require(is_fitted(), "DecisionTreeClassifier: not fitted");
  return normalized(importance_raw_);
}

std::string DecisionTreeClassifier::describe(
    std::span<const std::string> feature_names,
    std::span<const std::string> class_names) const {
  require(is_fitted(), "DecisionTreeClassifier: not fitted");
  std::ostringstream os;
  // Iterative preorder render with explicit depth bookkeeping.
  struct Frame {
    std::size_t node;
    int depth;
    std::string prefix;
  };
  std::vector<Frame> stack{{0, 0, ""}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const auto& node = nodes_[frame.node];
    os << std::string(static_cast<std::size_t>(frame.depth) * 2, ' ')
       << frame.prefix;
    if (node.is_leaf) {
      const auto cls = static_cast<std::size_t>(node.value);
      os << "-> " << (cls < class_names.size() ? class_names[cls] : "?")
         << "  [n=" << node.sample_count << "]\n";
    } else {
      const auto f = static_cast<std::size_t>(node.feature);
      os << "if " << (f < feature_names.size() ? feature_names[f] : "x")
         << " < " << node.threshold << "  [n=" << node.sample_count << "]\n";
      stack.push_back({static_cast<std::size_t>(node.right), frame.depth + 1,
                       "else: "});
      stack.push_back({static_cast<std::size_t>(node.left), frame.depth + 1,
                       "then: "});
    }
  }
  return os.str();
}

}  // namespace wild5g::ml
