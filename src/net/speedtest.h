// wild5g/net: the Speedtest-style measurement harness of Sec. 3.
//
// Models Ookla's server ecosystem (carrier-hosted servers in major metros,
// plus in-state third-party servers with NIC/port capacity caps) and runs
// single/multi-connection throughput + latency tests over the simulated
// radio + transport stack. Campaigns report 95th-percentile results across
// repeats, exactly as the paper does ("we report the 95th percentile
// performance results of all Speedtest sessions for a setting").
#pragma once

#include <string>
#include <vector>

#include "core/rng.h"
#include "faults/injector.h"
#include "geo/geo.h"
#include "radio/channel.h"
#include "radio/types.h"
#include "radio/ue.h"
#include "transport/tcp.h"

namespace wild5g::net {

/// RTT of a small probe to a server `distance_km` away on `config`'s radio:
/// radio access latency + inflated great-circle propagation (fiber routes
/// are ~3.4x longer than geodesics in the Fig. 1/2 data).
[[nodiscard]] double path_rtt_ms(const radio::NetworkConfig& config,
                                 double distance_km);

/// Internet-side loss-event rate grows with path length (more ASes, more
/// shared queues) — the mechanism behind single-connection decay in Fig. 3.
[[nodiscard]] double loss_event_rate_per_s(double rtt_ms);

/// Per-packet drop probability also grows with path length: short metro
/// paths are nearly loss-free while transcontinental routes cross many
/// shared queues. Still well under the paper's observed <1% loss.
[[nodiscard]] double loss_per_packet(double rtt_ms);

/// One server in the test pool.
struct SpeedtestServer {
  std::string name;
  geo::GeoPoint location;
  bool carrier_hosted = false;
  /// NIC/switch-port or configuration cap; 0 = uncapped (Fig. 24).
  double port_cap_mbps = 0.0;
  /// Extra one-way routing penalty for third-party hosting.
  double hosting_penalty_ms = 0.0;
};

/// Carrier-hosted servers (one per major metro; Verizon hosts 48,
/// T-Mobile 47 in the paper — we host one per catalog metro).
[[nodiscard]] std::vector<SpeedtestServer> carrier_server_pool();

/// The 37 Minnesota servers of Fig. 24, with their observed capacity caps.
[[nodiscard]] std::vector<SpeedtestServer> minnesota_server_pool();

enum class ConnectionMode { kSingle, kMultiple };

struct SpeedtestResult {
  double downlink_mbps = 0.0;
  double uplink_mbps = 0.0;
  double rtt_ms = 0.0;
  /// Connection attempts that failed (server unreachable) before this
  /// result was obtained; aggregated by peak_of across trials.
  int errors = 0;
  /// True when no data could be collected at all (every connection attempt
  /// exhausted its retry budget, or every trial of a campaign failed).
  /// Metrics fields are zero in that case — partial results, not a throw.
  bool failed = false;
};

struct SpeedtestConfig {
  radio::NetworkConfig network;
  radio::UeProfile ue;
  geo::GeoPoint ue_location;
  /// Stationary outdoor LoS RSRP distribution for the session.
  double session_rsrp_mean_dbm = -76.0;
  double session_rsrp_stddev_db = 2.5;
  double test_duration_s = 15.0;

  /// Optional fault injector (not owned; null = no faults, and the harness
  /// then executes the exact pre-fault code path and draw sequence).
  const faults::Injector* faults = nullptr;
  /// Graceful-degradation knobs, only consulted when faults are active:
  /// a server_unreachable window triggers up to `max_retries` reconnects
  /// with deterministic exponential backoff (retry_backoff_s * 2^attempt —
  /// no rng involved, so retries never perturb the draw stream).
  int max_retries = 3;
  double retry_backoff_s = 1.0;
  /// Wall-clock spacing between the start times of successive trials in
  /// peak_of; gives each trial a distinct position on the fault timeline.
  double trial_spacing_s = 20.0;
};

/// Runs speedtest sessions against servers.
class SpeedtestHarness {
 public:
  explicit SpeedtestHarness(SpeedtestConfig config);

  /// One full test (latency probe + downlink + uplink phases) starting at
  /// t = 0 on the fault timeline.
  [[nodiscard]] SpeedtestResult run(const SpeedtestServer& server,
                                    ConnectionMode mode, Rng& rng) const;

  /// Like run(), but the session starts at `start_s` on the fault timeline
  /// (fault windows are evaluated against [start_s, start_s + duration)).
  /// With no injector configured, start_s is irrelevant and ignored.
  [[nodiscard]] SpeedtestResult run_at(const SpeedtestServer& server,
                                       ConnectionMode mode, Rng& rng,
                                       double start_s) const;

  /// Repeats the test and reports the per-metric 95th percentile (latency
  /// uses the 5th percentile: "peak performance" means lowest RTT). Trial i
  /// starts at i * trial_spacing_s on the fault timeline. Failed trials are
  /// excluded from the percentiles; their connection errors are summed into
  /// `errors`, and `failed` is set only when every trial failed.
  [[nodiscard]] SpeedtestResult peak_of(const SpeedtestServer& server,
                                        ConnectionMode mode, int repeats,
                                        Rng& rng) const;

  [[nodiscard]] const SpeedtestConfig& config() const { return config_; }

 private:
  SpeedtestConfig config_;
};

}  // namespace wild5g::net
