#include "net/speedtest.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "core/parallel.h"
#include "core/quantile_sketch.h"
#include "core/stats.h"

namespace wild5g::net {

namespace {
// Effective RTT per km of geodesic distance: ~5 us/km/direction in fiber
// times a 3.4x route-inflation factor (calibrated to the Fig. 1 city map).
constexpr double kRttPerKm = 0.034;
}  // namespace

double path_rtt_ms(const radio::NetworkConfig& config, double distance_km) {
  require(distance_km >= 0.0, "path_rtt_ms: negative distance");
  return radio::access_latency_ms(config) + kRttPerKm * distance_km;
}

double loss_event_rate_per_s(double rtt_ms) {
  require(rtt_ms >= 0.0, "loss_event_rate_per_s: negative rtt");
  return 0.01 + 0.0008 * rtt_ms;
}

double loss_per_packet(double rtt_ms) {
  require(rtt_ms >= 0.0, "loss_per_packet: negative rtt");
  return 4e-8 * rtt_ms;
}

std::vector<SpeedtestServer> carrier_server_pool() {
  std::vector<SpeedtestServer> servers;
  for (const auto& city : geo::metro_cities()) {
    servers.push_back({.name = city.name,
                       .location = city.point,
                       .carrier_hosted = true});
  }
  return servers;
}

std::vector<SpeedtestServer> minnesota_server_pool() {
  // The 37 in-state servers of Fig. 24 for a Minneapolis UE. Distances are
  // encoded as coordinates near the named towns; caps reflect the figure's
  // observed bounds (25-28 port-limited to ~2 Gbps, 29-33 to ~1 Gbps,
  // 34-37 below that).
  const geo::GeoPoint msp{44.9778, -93.2650};
  auto near = [&](double km_east, double km_north) {
    // Small-offset placement: 1 deg lat ~ 111 km, 1 deg lon ~ 79 km here.
    return geo::GeoPoint{msp.lat_deg + km_north / 111.0,
                         msp.lon_deg + km_east / 79.0};
  };
  std::vector<SpeedtestServer> servers = {
      {"Verizon, Minneapolis", near(3, 1), true, 0.0, 0.0},
      {"Hennepin H.., Minneapolis", near(5, 3), false, 0.0, 0.6},
      {"Sprint, St. Paul", near(15, 2), false, 0.0, 0.6},
      {"Carleton C.., Northfield", near(20, -60), false, 0.0, 0.8},
      {"CenturyLin.., St. Paul", near(16, 0), false, 0.0, 0.7},
      {"Midco, Cambridge", near(20, 70), false, 0.0, 0.8},
      {"NetINS pow.., Minneapolis", near(4, -2), false, 0.0, 0.6},
      {"Fibernet M.., Monticello", near(-55, 35), false, 0.0, 0.9},
      {"US Interne.., Minneapolis", near(6, -4), false, 0.0, 0.7},
      {"Paul Bunya.., Minneapolis", near(2, 5), false, 0.0, 0.7},
      {"Metronet, Rochester", near(90, -110), false, 0.0, 1.0},
      {"Gigabit Mi.., Rosemount", near(18, -25), false, 0.0, 0.8},
      {"Arvig, Perham", near(-200, 180), false, 0.0, 1.2},
      {"West Centr.., Sebeka", near(-160, 190), false, 0.0, 1.2},
      {"Spectrum, St Cloud", near(-90, 90), false, 0.0, 1.0},
      {"CTC, Brainerd", near(-60, 180), false, 0.0, 1.1},
      {"Hiawatha B.., Winona", near(150, -120), false, 0.0, 1.2},
      {"CenturyLin.., Rochester", near(92, -112), false, 0.0, 1.0},
      {"Midco, Bemidji", near(-180, 320), false, 0.0, 1.4},
      {"Midco, Fairmont", near(-90, -180), false, 0.0, 1.3},
      {"Midco, St. Joseph", near(-100, 95), false, 0.0, 1.1},
      {"Paul Bunya.., Bemidji", near(-182, 322), false, 0.0, 1.4},
      {"702 Commun.., Moorhead", near(-320, 280), false, 0.0, 1.5},
      {"fdcservers.., Minneapolis", near(7, 2), false, 2600.0, 0.7},
      {"Vibrant Br.., Litchfield", near(-95, 20), false, 2000.0, 1.0},
      {"Midco, International..", near(-120, 420), false, 2000.0, 1.6},
      {"Gustavus A.., Saint Peter", near(-60, -90), false, 2000.0, 1.0},
      {"AcenTek-Sp.., Houston", near(170, -150), false, 2000.0, 1.3},
      {"RadioLink.., Ellendale", near(40, -110), false, 1000.0, 1.0},
      {"Albany Mut.., Albany", near(-120, 100), false, 1000.0, 1.1},
      {"Paul Bunya.., Duluth", near(150, 220), false, 1000.0, 1.3},
      {"Stellar As.., Brandon", near(-210, 120), false, 1000.0, 1.3},
      {"Nuvera, New Ulm", near(-120, -70), false, 1000.0, 1.1},
      {"Halstad Te.., Halstad", near(-330, 330), false, 950.0, 1.6},
      {"vRad, Eden Prairi..", near(-12, -12), false, 900.0, 0.7},
      {"Northeast.., Mountain Ir..", near(120, 280), false, 800.0, 1.4},
      {"Midco, Ely", near(170, 320), false, 700.0, 1.5},
  };
  return servers;
}

SpeedtestHarness::SpeedtestHarness(SpeedtestConfig config)
    : config_(std::move(config)) {
  require(config_.test_duration_s > 1.0,
          "SpeedtestHarness: test too short");
}

SpeedtestResult SpeedtestHarness::run(const SpeedtestServer& server,
                                      ConnectionMode mode, Rng& rng) const {
  return run_at(server, mode, rng, 0.0);
}

SpeedtestResult SpeedtestHarness::run_at(const SpeedtestServer& server,
                                         ConnectionMode mode, Rng& rng,
                                         double start_s) const {
  const faults::Injector* faults = config_.faults;
  SpeedtestResult result;

  // Connection phase. Under a server_unreachable window the harness retries
  // with *deterministic* exponential backoff (no rng draw), so the retry
  // machinery cannot perturb the measurement draw stream; when the retry
  // budget is exhausted the trial degrades to a failed partial result
  // instead of throwing.
  double t = start_s;
  if (faults != nullptr) {
    double backoff_s = config_.retry_backoff_s;
    int attempts_left = config_.max_retries;
    while (faults->server_unreachable_at(t)) {
      ++result.errors;
      if (attempts_left-- <= 0) {
        result.failed = true;
        return result;
      }
      t += backoff_s;
      backoff_s *= 2.0;
    }
  }

  const double distance_km =
      geo::haversine_km(config_.ue_location, server.location);
  // NR->LTE outage: the session camps on the LTE fallback service for
  // capacity and access latency alike.
  radio::NetworkConfig network = config_.network;
  if (faults != nullptr && faults->nr_fallback_at(t)) {
    network.band = radio::Band::kLte;
  }
  const double base_rtt =
      path_rtt_ms(network, distance_km) + server.hosting_penalty_ms;

  // Latency phase: several pings, report the mean with jitter.
  result.rtt_ms = base_rtt + std::abs(rng.normal(0.0, 1.2));
  if (faults != nullptr) result.rtt_ms += faults->extra_rtt_ms_at(t);

  // Session signal draw (stationary, LoS to the panel), minus any mmWave
  // blockage attenuation active at connect time.
  double rsrp = rng.normal(config_.session_rsrp_mean_dbm,
                           config_.session_rsrp_stddev_db);
  if (faults != nullptr) rsrp -= faults->rsrp_penalty_db_at(t);

  // Fractions of the measurement window lost to dead air / server stalls;
  // goodput scales down by the lost share (throughput is zero during a
  // full-window outage).
  double degrade = 1.0;
  if (faults != nullptr) {
    const double end_s = t + config_.test_duration_s;
    degrade *= 1.0 - faults->outage_fraction(t, end_s);
    degrade *= 1.0 - faults->server_stall_fraction(t, end_s);
  }

  auto run_direction = [&](radio::Direction direction) {
    double radio_cap =
        radio::link_capacity_mbps(network, config_.ue, direction, rsrp);
    // Session-level capacity wobble: scheduler share, cross traffic.
    radio_cap *= rng.uniform(0.92, 1.0);
    transport::PathConfig path;
    path.rtt_ms = result.rtt_ms;
    path.capacity_mbps = server.port_cap_mbps > 0.0
                             ? std::min(radio_cap, server.port_cap_mbps)
                             : radio_cap;
    if (!server.carrier_hosted) path.capacity_mbps *= 0.93;  // transit hops
    path.loss_event_rate_per_s = loss_event_rate_per_s(path.rtt_ms);
    path.loss_per_packet = loss_per_packet(path.rtt_ms);
    if (faults != nullptr) {
      path.loss_event_rate_per_s += faults->extra_loss_events_per_s_at(t);
    }

    // Speedtest servers run with large, tuned send buffers.
    transport::TcpOptions options = transport::tuned_tcp_options();
    const int conns = mode == ConnectionMode::kMultiple
                          ? static_cast<int>(rng.uniform_int(15, 25))
                          : 1;
    return transport::simulate_tcp(conns, path, options,
                                   config_.test_duration_s, rng)
               .aggregate_goodput_mbps *
           degrade;
  };
  result.downlink_mbps = run_direction(radio::Direction::kDownlink);
  result.uplink_mbps = run_direction(radio::Direction::kUplink);
  return result;
}

SpeedtestResult SpeedtestHarness::peak_of(const SpeedtestServer& server,
                                          ConnectionMode mode, int repeats,
                                          Rng& rng) const {
  require(repeats > 0, "SpeedtestHarness::peak_of: repeats must be positive");
  // Independent repeats run in parallel. Each trial's Rng is forked up
  // front from one split of the caller's stream, so trial i's draws depend
  // only on (parent state, i) — never on thread count or completion order.
  Rng base = rng.split();
  const auto trials = parallel::parallel_map(
      static_cast<std::size_t>(repeats), [&](std::size_t i) {
        Rng trial_rng = base.fork(i);
        // Trial i sits at its own spot on the fault timeline, so a sweep
        // of trials samples fault windows the way repeated real-world
        // sessions would (ignored when no injector is configured).
        return run_at(server, mode, trial_rng,
                      static_cast<double>(i) * config_.trial_spacing_s);
      });
  // Index-ordered reduction on the caller's thread. Failed trials
  // contribute their error counts but not their (zeroed) metrics.
  stats::SampleAccumulator dl;
  stats::SampleAccumulator ul;
  stats::SampleAccumulator rtt;
  int errors = 0;
  for (const auto& r : trials) {
    errors += r.errors;
    if (r.failed) continue;
    dl.add(r.downlink_mbps);
    ul.add(r.uplink_mbps);
    rtt.add(r.rtt_ms);
  }
  if (dl.empty()) {
    // Every trial failed: degrade to an explicit empty result.
    return {0.0, 0.0, 0.0, errors, true};
  }
  return {dl.percentile(95.0), ul.percentile(95.0), rtt.percentile(5.0),
          errors, false};
}

}  // namespace wild5g::net
