// wild5g/net: the 2019 "5Gophers" baseline (Narayanan et al., WWW'20).
//
// Sec. 3 measures 5G's evolution against the first commercial deployments of
// October 2019. These are the baseline operating points the paper's
// longitudinal claims are made against: ~2 Gbps downlink (4CC, X50 modems),
// uplink in the tens of Mbps, and a ~12 ms best-case RTT.
#pragma once

namespace wild5g::net {

struct Baseline2019 {
  double mmwave_dl_multi_mbps = 2000.0;  // best multi-conn downlink
  double mmwave_dl_single_mbps = 1100.0; // best single-conn downlink
  double mmwave_ul_mbps = 60.0;          // uplink (1CC)
  double min_rtt_ms = 12.2;              // best-case latency
  int dl_component_carriers = 4;         // X50-era carrier aggregation
};

/// The October-2019 5Gophers operating point.
[[nodiscard]] inline Baseline2019 baseline_5gophers() { return {}; }

}  // namespace wild5g::net
