// wild5g/engine: the metrics document a campaign accumulates into.
//
// Extracted from bench/bench_common.h's MetricsEmitter so the same
// document-building logic serves three callers: the batch bench binaries
// (which wrap it back into a MetricsEmitter), the campaign engine's
// checkpoint/resume (which snapshots and restores the partially-built
// document), and tools/wild5g_serve (which renders it as the final frame of
// a campaign's metric stream).
//
// The emitted shape is byte-compatible with the pre-engine emitter — key
// order bench, seed, [fault_plan], tolerance, [tolerances], tables,
// metrics — because bench/golden/ baselines diff against it byte-for-byte.
// New supervision keys ("interrupted", "deadline_hit") are only ever
// appended when the corresponding event actually happened, so a default
// run's document is untouched.
#pragma once

#include <cstdint>
#include <string>

#include "core/json.h"
#include "core/table.h"

namespace wild5g::engine {

/// Insertion-ordered, deterministic collection of a campaign's tables,
/// scalar metrics, and tolerances. Pure data: no I/O, no clock, no argv.
class MetricsDocument {
 public:
  /// `fault_plan_name` empty means a fault-free run; any other value is
  /// recorded under "fault_plan" so a faulted document can never be diffed
  /// against a default golden.
  MetricsDocument(std::string bench_id, std::uint64_t seed,
                  std::string fault_plan_name = {});

  /// Default tolerance written into the document.
  void set_tolerance(double rel, double abs);
  /// Per-metric override, keyed by a metric name or a table title.
  void set_tolerance(const std::string& name, double rel, double abs);

  /// Records a completed table.
  void record(const Table& table);

  /// Records a named scalar metric (raw double, not a formatted cell).
  void metric(const std::string& name, double value);

  /// Appends a top-level boolean flag ("interrupted") after every standard
  /// key. Flags record supervision events; a run without the event emits a
  /// document byte-identical to a build without the flag mechanism.
  void set_flag(const std::string& name);

  [[nodiscard]] const std::string& bench_id() const { return bench_id_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Assembles the document in its final (golden-compatible) shape.
  [[nodiscard]] json::Value document() const;

  /// The mutable state accumulated so far, for the campaign engine's
  /// checkpoint. Identity fields (bench, seed, fault plan) are *not*
  /// included — they ride in the snapshot's request section and the
  /// restored document is reconstructed from them, so a snapshot cannot be
  /// replayed against a mismatched campaign silently.
  [[nodiscard]] json::Value checkpoint_state() const;
  /// Inverse of checkpoint_state(); throws wild5g::Error on malformed
  /// state. Replaces all accumulated tables/metrics/tolerances/flags.
  void restore_state(const json::Value& state);

 private:
  std::string bench_id_;
  std::uint64_t seed_ = 0;
  std::string fault_plan_name_;
  double rel_ = 1e-6;
  double abs_ = 1e-9;
  json::Value tables_;
  json::Value metrics_;
  json::Value tolerances_;
  json::Value flags_;
};

}  // namespace wild5g::engine
