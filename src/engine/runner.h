// wild5g/engine: the stepped execution loop with supervision yield points.
//
// run_steps drives a Campaign from start_step to completion, pausing at a
// *yield point* before every step to consult the supervising layer. The
// runner itself is clock-free — deadlines, signals, and watchdogs live
// outside src/engine and reach in through the injected predicates — so the
// loop's behavior is a pure function of (campaign, control), and a run
// bounded by deadline_steps is exactly reproducible: the same request stops
// after the same step with the same partial document, at any thread count.
#pragma once

#include <cstddef>
#include <functional>

#include "core/json.h"
#include "engine/campaign.h"

namespace wild5g::engine {

/// How a supervised run ended. Every campaign ends in exactly one of these
/// — the service's uptime invariant (DESIGN.md section 12).
enum class RunStatus {
  /// All steps executed.
  kCompleted,
  /// The deadline (deterministic step cap or injected wall-clock predicate)
  /// expired; the document holds the steps that finished in time.
  kDeadline,
  /// The process is being torn down (SIGINT/SIGTERM); partial document.
  kInterrupted,
  /// Cancelled by request or by the watchdog; partial document.
  kCancelled,
};

/// Wire/status-line name: "completed", "deadline_partial", "interrupted",
/// "cancelled".
[[nodiscard]] const char* to_string(RunStatus status);

/// Supervision hooks consulted at every yield point. All members are
/// optional; a default RunControl runs the campaign to completion.
struct RunControl {
  /// Step to start from: 0 for a fresh run, a checkpoint's next step for a
  /// resume.
  std::size_t start_step = 0;

  /// Deterministic deadline: steps with index >= deadline_steps are not
  /// executed (0 = unlimited). This is how tests pin "the deadline hit
  /// after exactly N steps" without racing a clock.
  std::size_t deadline_steps = 0;

  /// Checked at each yield point, in this order (first hit wins):
  /// interrupted -> kInterrupted, cancelled -> kCancelled, over_deadline /
  /// deadline_steps -> kDeadline. Null predicates never fire.
  std::function<bool()> interrupted;
  std::function<bool()> cancelled;
  std::function<bool()> over_deadline;

  /// Called after each executed step with the step's frame payload (the
  /// service streams it; the benches ignore it).
  std::function<void(std::size_t step, const json::Value& frame)> on_frame;
  /// Called after each executed step with the index of the *next* step —
  /// the heartbeat / checkpoint hook. A checkpoint written here with
  /// next_step resumes byte-identically.
  std::function<void(std::size_t next_step)> on_yield;
};

struct RunOutcome {
  RunStatus status = RunStatus::kCompleted;
  /// Steps executed by this call (not counting steps before start_step).
  std::size_t steps_executed = 0;
  /// Index of the first step that did NOT run (== total_steps() when
  /// completed); the resume point a checkpoint should record.
  std::size_t next_step = 0;
};

/// Runs `campaign` from control.start_step under the given supervision.
/// Throws whatever the campaign throws (a throwing step is a bug, not an
/// outcome — the supervising layer decides how to surface it).
[[nodiscard]] RunOutcome run_steps(Campaign& campaign, CampaignContext& ctx,
                                   const RunControl& control);

}  // namespace wild5g::engine
