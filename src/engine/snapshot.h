// wild5g/engine: versioned, self-contained campaign checkpoints.
//
// A Snapshot captures everything needed to continue a supervised campaign
// byte-identically: the original request (campaign name, seed as a decimal
// string, params, the fault plan embedded *by value*), the index of the
// next step to execute, the campaign's serialized mutable state, and the
// partially-built metrics document. Nothing in it references the machine it
// was written on — a snapshot written on one host resumes on another.
//
// This module is the single sanctioned file-I/O site inside src/engine
// (tools/wild5g_lint rule engine-blocking-call exempts snapshot.{h,cpp});
// campaign and runner code never touch the filesystem. save_snapshot writes
// via a temp file + rename so a SIGKILL mid-write can never leave a
// truncated snapshot where a valid one stood — the chaos soak suite kills
// the service at arbitrary points and resumes from whatever is on disk.
#pragma once

#include <cstddef>
#include <string>

#include "core/json.h"
#include "engine/campaign.h"

namespace wild5g::engine {

/// Bump when the snapshot document shape changes; load_snapshot rejects
/// any other version rather than guessing.
inline constexpr int kSnapshotVersion = 1;

struct Snapshot {
  CampaignRequest request;
  /// Index of the first step the resumed run should execute.
  std::size_t next_step = 0;
  /// Campaign::checkpoint_state() at the yield point.
  json::Value campaign_state;
  /// MetricsDocument::checkpoint_state() at the yield point.
  json::Value document_state;

  /// Document shape:
  ///   { "format": "wild5g-snapshot", "version": 1,
  ///     "request": {...}, "next_step": N,
  ///     "campaign_state": {...}, "document_state": {...} }
  [[nodiscard]] json::Value to_json() const;
  /// Inverse of to_json(); throws wild5g::Error on a malformed document or
  /// a version this build does not speak.
  [[nodiscard]] static Snapshot from_json(const json::Value& doc);
};

/// Atomically writes `snapshot` to `path` (temp file in the same directory,
/// then rename). Throws wild5g::Error on I/O failure.
void save_snapshot(const Snapshot& snapshot, const std::string& path);

/// Reads and validates a snapshot; throws wild5g::Error on I/O failure or
/// malformed content.
[[nodiscard]] Snapshot load_snapshot(const std::string& path);

}  // namespace wild5g::engine
