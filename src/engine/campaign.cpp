#include "engine/campaign.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <ostream>
#include <utility>

#include "core/error.h"
#include "engine/metro_campaigns.h"

namespace wild5g::engine {

void CampaignContext::report(const Table& table) {
  if (console != nullptr) table.print(*console);
  doc.record(table);
}

// --- registry --------------------------------------------------------------

namespace {

struct RegistryEntry {
  std::string name;
  CampaignFactory factory;
};

/// Serializes registry access; registration happens during startup and the
/// service protocol thread reads concurrently with the compute thread.
std::mutex g_registry_mutex;
// The registry singleton's confinement under g_registry_mutex is proved by
// wild5g-lint's guarded-by inference: every caller of registry_locked()
// holds the mutex, so H(registry_locked) covers the static below.
std::vector<RegistryEntry>& registry_locked() {
  static std::vector<RegistryEntry> entries;
  return entries;
}

}  // namespace

void register_campaign(const std::string& name, CampaignFactory factory) {
  require(!name.empty(), "register_campaign: empty name");
  require(factory != nullptr, "register_campaign: null factory");
  const std::lock_guard<std::mutex> lock(g_registry_mutex);
  auto& entries = registry_locked();
  for (auto& entry : entries) {
    if (entry.name == name) {
      entry.factory = factory;
      return;
    }
  }
  entries.push_back(RegistryEntry{name, factory});
}

std::unique_ptr<Campaign> make_campaign(const CampaignRequest& request) {
  CampaignFactory factory = nullptr;
  std::string known;
  {
    const std::lock_guard<std::mutex> lock(g_registry_mutex);
    for (const auto& entry : registry_locked()) {
      if (!known.empty()) known += ", ";
      known += entry.name;
      if (entry.name == request.campaign) factory = entry.factory;
    }
  }
  require(factory != nullptr,
          "make_campaign: unknown campaign '" + request.campaign +
              "' (registered: " + (known.empty() ? "none" : known) + ")");
  return factory(request);
}

std::vector<std::string> campaign_names() {
  const std::lock_guard<std::mutex> lock(g_registry_mutex);
  std::vector<std::string> names;
  for (const auto& entry : registry_locked()) names.push_back(entry.name);
  return names;
}

void register_builtin_campaigns() {
  register_campaign("metro_load", make_metro_load_campaign);
  register_campaign("metro_qoe", make_metro_qoe_campaign);
  register_campaign("drive_soak", make_drive_soak_campaign);
}

// --- request (de)serialization ---------------------------------------------

json::Value request_to_json(const CampaignRequest& request) {
  json::Value doc = json::Value::object();
  doc.set("campaign", request.campaign);
  doc.set("seed", std::to_string(request.seed));
  if (!request.params.is_null()) doc.set("params", request.params);
  if (request.fault_plan.has_value()) {
    doc.set("fault_plan", request.fault_plan->to_json());
  }
  return doc;
}

CampaignRequest request_from_json(const json::Value& doc) {
  require(doc.is_object(), "campaign request: not an object");
  CampaignRequest request;
  const json::Value* campaign = doc.find("campaign");
  require(campaign != nullptr && campaign->is_string(),
          "campaign request: missing string field 'campaign'");
  request.campaign = campaign->as_string();
  if (const json::Value* seed = doc.find("seed")) {
    // Accept both the canonical string form (full 64-bit precision) and a
    // plain JSON number for hand-written submissions.
    if (seed->is_string()) {
      const std::string& text = seed->as_string();
      std::size_t parsed = 0;
      unsigned long long value = 0;
      try {
        value = std::stoull(text, &parsed);
      } catch (const std::exception&) {
        throw Error("campaign request: seed '" + text +
                    "' is not an unsigned integer");
      }
      require(parsed == text.size() && !text.empty() && text[0] != '-',
              "campaign request: seed '" + text +
                  "' is not an unsigned integer");
      request.seed = static_cast<std::uint64_t>(value);
    } else if (seed->is_number()) {
      const double value = seed->as_number();
      require(value >= 0.0 && value == std::floor(value) && value < 0x1p53,
              "campaign request: numeric seed is not a non-negative integer");
      request.seed = static_cast<std::uint64_t>(value);
    } else {
      throw Error("campaign request: seed must be a string or number");
    }
  }
  if (const json::Value* params = doc.find("params")) {
    require(params->is_object(), "campaign request: params is not an object");
    request.params = *params;
  }
  if (const json::Value* plan = doc.find("fault_plan")) {
    request.fault_plan = faults::FaultPlan::from_json(*plan);
  }
  return request;
}

// --- param helpers ----------------------------------------------------------

int param_positive_int(const json::Value& params, const std::string& key,
                       int default_value) {
  if (params.is_null()) return default_value;
  require(params.is_object(), "campaign params: not an object");
  const json::Value* value = params.find(key);
  if (value == nullptr) return default_value;
  require(value->is_number(),
          "campaign params: '" + key + "' is not a number");
  const double raw = value->as_number();
  require(raw >= 1.0 && raw == std::floor(raw) && raw <= 1e9,
          "campaign params: '" + key + "' must be a positive integer");
  return static_cast<int>(raw);
}

void reject_unknown_params(const json::Value& params,
                           std::initializer_list<std::string_view> known) {
  if (params.is_null()) return;
  require(params.is_object(), "campaign params: not an object");
  for (const auto& member : params.as_object()) {
    const bool recognized =
        std::any_of(known.begin(), known.end(),
                    [&](std::string_view k) { return k == member.key; });
    require(recognized,
            "campaign params: unknown parameter '" + member.key + "'");
  }
}

}  // namespace wild5g::engine
