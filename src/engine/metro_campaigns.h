// wild5g/engine: the built-in stepped campaigns.
//
// metro_load and metro_qoe are the existing metro bench campaigns sliced
// into engine steps — one grid point per step — producing byte-identical
// documents to the pre-engine monolithic mains (the committed goldens gate
// that). drive_soak is the long-running service workload: a sequence of
// metro intervals threaded through one sequential Rng (split() per
// interval) with rollup SampleAccumulators that spill into sketch mode, so
// checkpoint/resume must round-trip genuinely sequential state — engine
// position, sketch buckets — not just a step counter.
#pragma once

#include <memory>

#include "engine/campaign.h"

namespace wild5g::engine {

/// Per-user throughput under shared-cell contention: a background-load
/// sweep (5 steps) then a sharers-per-cell sweep (4 steps).
/// Params: "cells" (default 12), "ues" (default 100).
[[nodiscard]] std::unique_ptr<Campaign> make_metro_load_campaign(
    const CampaignRequest& request);

/// Busy-hour QoE and handoff storms for a co-moving population: one step
/// per activity grid point (4 steps).
/// Params: "cells" (default 12), "ues" (default 100).
[[nodiscard]] std::unique_ptr<Campaign> make_metro_qoe_campaign(
    const CampaignRequest& request);

/// Long-haul supervised workload: "intervals" (default 12) metro intervals
/// of "interval_s" (default 30) seconds each, over a corridor of "cells"
/// (default 4) x "ues" (default 25). The fault plan lives on the *global*
/// campaign timeline and is sliced per interval; per-UE and per-step
/// samples roll up across intervals through SampleAccumulators.
[[nodiscard]] std::unique_ptr<Campaign> make_drive_soak_campaign(
    const CampaignRequest& request);

}  // namespace wild5g::engine
