#include "engine/runner.h"

#include "core/error.h"

namespace wild5g::engine {

const char* to_string(RunStatus status) {
  switch (status) {
    case RunStatus::kCompleted: return "completed";
    case RunStatus::kDeadline: return "deadline_partial";
    case RunStatus::kInterrupted: return "interrupted";
    case RunStatus::kCancelled: return "cancelled";
  }
  throw Error("RunStatus: invalid value");
}

RunOutcome run_steps(Campaign& campaign, CampaignContext& ctx,
                     const RunControl& control) {
  const std::size_t total = campaign.total_steps();
  require(control.start_step <= total,
          "run_steps: start_step is past the end of the campaign");
  RunOutcome outcome;
  outcome.next_step = control.start_step;
  for (std::size_t step = control.start_step; step < total; ++step) {
    // Yield point: supervision is consulted *before* a step executes, so a
    // stop never discards a step's work — the document always reflects a
    // whole number of completed steps.
    if (control.interrupted && control.interrupted()) {
      outcome.status = RunStatus::kInterrupted;
      return outcome;
    }
    if (control.cancelled && control.cancelled()) {
      outcome.status = RunStatus::kCancelled;
      return outcome;
    }
    if ((control.deadline_steps != 0 && step >= control.deadline_steps) ||
        (control.over_deadline && control.over_deadline())) {
      outcome.status = RunStatus::kDeadline;
      return outcome;
    }
    const json::Value frame = campaign.execute_step(step, ctx);
    ++outcome.steps_executed;
    outcome.next_step = step + 1;
    if (control.on_frame) control.on_frame(step, frame);
    if (control.on_yield) control.on_yield(step + 1);
  }
  outcome.status = RunStatus::kCompleted;
  return outcome;
}

}  // namespace wild5g::engine
