#include "engine/snapshot.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/error.h"

namespace wild5g::engine {

json::Value Snapshot::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("format", "wild5g-snapshot");
  doc.set("version", kSnapshotVersion);
  doc.set("request", request_to_json(request));
  doc.set("next_step", static_cast<double>(next_step));
  doc.set("campaign_state", campaign_state);
  doc.set("document_state", document_state);
  return doc;
}

Snapshot Snapshot::from_json(const json::Value& doc) {
  require(doc.is_object(), "snapshot: not an object");
  const auto field = [&](const char* key) -> const json::Value& {
    const json::Value* value = doc.find(key);
    require(value != nullptr,
            std::string("snapshot: missing field '") + key + "'");
    return *value;
  };
  const json::Value& format = field("format");
  require(format.is_string() && format.as_string() == "wild5g-snapshot",
          "snapshot: not a wild5g snapshot document");
  const json::Value& version = field("version");
  require(version.is_number() &&
              version.as_number() == static_cast<double>(kSnapshotVersion),
          "snapshot: unsupported version (this build speaks version " +
              std::to_string(kSnapshotVersion) + ")");
  Snapshot snapshot;
  snapshot.request = request_from_json(field("request"));
  const json::Value& next_step = field("next_step");
  require(next_step.is_number() && next_step.as_number() >= 0.0 &&
              next_step.as_number() == std::floor(next_step.as_number()),
          "snapshot: next_step is not a non-negative integer");
  snapshot.next_step = static_cast<std::size_t>(next_step.as_number());
  snapshot.campaign_state = field("campaign_state");
  snapshot.document_state = field("document_state");
  return snapshot;
}

void save_snapshot(const Snapshot& snapshot, const std::string& path) {
  require(!path.empty(), "save_snapshot: empty path");
  const std::string text = json::dump(snapshot.to_json());
  // Write-then-rename: the soak suite SIGKILLs the service at arbitrary
  // yield points, and a half-written snapshot must never replace a valid
  // one. rename(2) within a directory is atomic; readers see either the
  // old snapshot or the new one, never a prefix.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    require(out.good(),
            "save_snapshot: cannot open '" + tmp + "' for writing");
    out << text;
    out.flush();
    require(out.good(), "save_snapshot: write to '" + tmp + "' failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("save_snapshot: cannot rename '" + tmp + "' to '" + path +
                "'");
  }
}

Snapshot load_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "load_snapshot: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  require(!in.bad(), "load_snapshot: read from '" + path + "' failed");
  return Snapshot::from_json(json::parse(buffer.str()));
}

}  // namespace wild5g::engine
