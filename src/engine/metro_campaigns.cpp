#include "engine/metro_campaigns.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "core/error.h"
#include "core/rng.h"
#include "core/table.h"
#include "faults/injector.h"
#include "metro/metro.h"

namespace wild5g::engine {

namespace {

/// Rejects plans with kinds the metro substrate does not model; same
/// contract (and near-identical message) as the bench shells' exit-2 path,
/// so a bad plan fails a service submit instead of wedging a campaign.
void require_radio_plan(const faults::FaultPlan& plan,
                        const std::string& campaign) {
  const auto bad = metro::unsupported_fault_kinds(plan);
  require(bad.empty(),
          campaign + ": fault plan contains '" +
              faults::to_string(bad.empty() ? faults::FaultKind::kRadioOutage
                                            : bad.front()) +
              "' windows, which the metro campaign does not model (radio "
              "kinds only: mmwave_blockage, nr_to_lte_outage, radio_outage)");
}

/// Serializes a table's accumulated rows for a checkpoint.
json::Value rows_to_json(const Table& table) {
  json::Value rows = json::Value::array();
  for (const auto& row : table.rows()) {
    json::Value cells = json::Value::array();
    for (const auto& cell : row) cells.push_back(cell);
    rows.push_back(std::move(cells));
  }
  return rows;
}

/// Re-adds checkpointed rows to a freshly-built (empty) table.
void rows_from_json(const json::Value& rows, Table& table,
                    const std::string& what) {
  require(rows.is_array(), what + ": rows state is not an array");
  for (const json::Value& row : rows.as_array()) {
    require(row.is_array(), what + ": row is not an array");
    std::vector<std::string> cells;
    for (const json::Value& cell : row.as_array()) {
      require(cell.is_string(), what + ": cell is not a string");
      cells.push_back(cell.as_string());
    }
    table.add_row(std::move(cells));
  }
}

const json::Value& state_field(const json::Value& state, const char* key,
                               const std::string& what) {
  const json::Value* value = state.find(key);
  require(value != nullptr, what + ": state missing '" + key + "'");
  return *value;
}

std::uint64_t state_count(const json::Value& state, const char* key,
                          const std::string& what) {
  const json::Value& value = state_field(state, key, what);
  require(value.is_number() && value.as_number() >= 0.0 &&
              value.as_number() == std::floor(value.as_number()),
          what + ": state field '" + std::string(key) +
              "' is not a non-negative integer");
  return static_cast<std::uint64_t>(value.as_number());
}

// --- metro_load -------------------------------------------------------------

class MetroLoadCampaign final : public Campaign {
 public:
  explicit MetroLoadCampaign(const CampaignRequest& request)
      : seed_(request.seed),
        cells_(param_positive_int(request.params, "cells", 12)),
        ues_per_cell_(param_positive_int(request.params, "ues", 100)),
        load_table_(load_title()),
        sharer_table_(
            "Same corridor, background load 0: per-user throughput vs"
            " sharers") {
    reject_unknown_params(request.params, {"cells", "ues"});
    if (request.fault_plan.has_value()) {
      require_radio_plan(*request.fault_plan, "metro_load");
      injector_ = std::make_unique<faults::Injector>(*request.fault_plan,
                                                     request.seed);
    }
    load_table_.set_header({"bg load", "mean/UE Mbps", "p50 Mbps",
                            "p95 Mbps", "mean util", "handoffs"});
    sharer_table_.set_header({"UEs/cell", "mean/UE Mbps", "p50 Mbps",
                              "p95 Mbps", "step p5 Mbps"});
  }

  [[nodiscard]] std::size_t total_steps() const override {
    return kLoadGrid.size() + kSharerGrid.size();
  }

  [[nodiscard]] json::Value execute_step(std::size_t index,
                                 CampaignContext& ctx) override {
    json::Value frame = json::Value::object();
    if (index < kLoadGrid.size()) {
      const double load = kLoadGrid[index];
      metro::MetroConfig config = base_config();
      config.background_load = load;
      const auto result = metro::run_campaign(config, Rng(seed_));
      load_table_.add_row(
          {Table::num(load, 1), Table::num(result.per_ue_mean_mbps.mean(), 3),
           Table::num(result.per_ue_mean_mbps.median(), 3),
           Table::num(result.per_ue_mean_mbps.p95(), 3),
           Table::num(result.mean_utilization, 3),
           Table::num(static_cast<double>(result.handoffs), 0)});
      if (index == 0) {  // the unloaded anchor point
        ctx.doc.metric("unloaded_mean_ue_mbps",
                       result.per_ue_mean_mbps.mean());
        ctx.doc.metric("peak_cell_active",
                       static_cast<double>(result.peak_cell_active));
        ctx.doc.metric("attach_ops", static_cast<double>(result.attach_ops));
      }
      if (index + 1 == kLoadGrid.size()) ctx.report(load_table_);
      frame.set("grid", "background_load");
      frame.set("bg_load", load);
      frame.set("mean_ue_mbps", result.per_ue_mean_mbps.mean());
      frame.set("handoffs", static_cast<double>(result.handoffs));
    } else {
      const int sharers = kSharerGrid[index - kLoadGrid.size()];
      metro::MetroConfig config = base_config();
      config.ues_per_cell = sharers;
      config.background_load = 0.0;
      const auto result = metro::run_campaign(config, Rng(seed_));
      sharer_table_.add_row(
          {Table::num(static_cast<double>(sharers), 0),
           Table::num(result.per_ue_mean_mbps.mean(), 3),
           Table::num(result.per_ue_mean_mbps.median(), 3),
           Table::num(result.per_ue_mean_mbps.p95(), 3),
           Table::num(result.step_throughput_mbps.percentile(5.0), 3)});
      if (index + 1 == total_steps()) ctx.report(sharer_table_);
      frame.set("grid", "sharers");
      frame.set("ues_per_cell", sharers);
      frame.set("mean_ue_mbps", result.per_ue_mean_mbps.mean());
    }
    return frame;
  }

  [[nodiscard]] json::Value checkpoint_state() const override {
    json::Value state = json::Value::object();
    state.set("load_rows", rows_to_json(load_table_));
    state.set("sharer_rows", rows_to_json(sharer_table_));
    return state;
  }

  void restore_state(const json::Value& state) override {
    require(state.is_object(), "metro_load: state is not an object");
    rows_from_json(state_field(state, "load_rows", "metro_load"), load_table_,
                   "metro_load");
    rows_from_json(state_field(state, "sharer_rows", "metro_load"),
                   sharer_table_, "metro_load");
  }

 private:
  static constexpr std::array<double, 5> kLoadGrid = {0.0, 0.2, 0.4, 0.6,
                                                      0.8};
  static constexpr std::array<int, 4> kSharerGrid = {1, 10, 50, 100};

  [[nodiscard]] std::string load_title() const {
    return std::to_string(cells_) + " cells x " +
           std::to_string(ues_per_cell_) +
           " UEs/cell, 60 s walk, mid-band NSA: background load sweep";
  }

  [[nodiscard]] metro::MetroConfig base_config() const {
    metro::MetroConfig config;
    config.cells = cells_;
    config.ues_per_cell = ues_per_cell_;
    config.faults = injector_.get();
    return config;
  }

  std::uint64_t seed_;
  int cells_;
  int ues_per_cell_;
  std::unique_ptr<faults::Injector> injector_;
  Table load_table_;
  Table sharer_table_;
};

// --- metro_qoe --------------------------------------------------------------

class MetroQoeCampaign final : public Campaign {
 public:
  explicit MetroQoeCampaign(const CampaignRequest& request)
      : seed_(request.seed),
        cells_(param_positive_int(request.params, "cells", 12)),
        ues_per_cell_(param_positive_int(request.params, "ues", 100)),
        table_(title()) {
    reject_unknown_params(request.params, {"cells", "ues"});
    if (request.fault_plan.has_value()) {
      require_radio_plan(*request.fault_plan, "metro_qoe");
      injector_ = std::make_unique<faults::Injector>(*request.fault_plan,
                                                     request.seed);
    }
    table_.set_header({"activity", "mean/UE Mbps", "rebuffer mean",
                       "rebuffer p95", "handoffs", "ping-pongs",
                       "peak storm"});
  }

  [[nodiscard]] std::size_t total_steps() const override {
    return kActivityGrid.size();
  }

  [[nodiscard]] json::Value execute_step(std::size_t index,
                                 CampaignContext& ctx) override {
    const double activity = kActivityGrid[index];
    metro::MetroConfig config = base_config();
    config.activity = activity;
    const auto result = metro::run_campaign(config, Rng(seed_));
    table_.add_row(
        {Table::num(activity, 2), Table::num(result.per_ue_mean_mbps.mean(), 3),
         Table::num(result.per_ue_rebuffer_fraction.mean(), 4),
         Table::num(result.per_ue_rebuffer_fraction.p95(), 4),
         Table::num(static_cast<double>(result.handoffs), 0),
         Table::num(static_cast<double>(result.pingpongs), 0),
         Table::num(static_cast<double>(result.peak_step_handoffs), 0)});
    if (index + 1 == kActivityGrid.size()) {  // the busy-hour anchor point
      ctx.doc.metric("busy_hour_rebuffer_mean",
                     result.per_ue_rebuffer_fraction.mean());
      ctx.doc.metric("busy_hour_peak_storm",
                     static_cast<double>(result.peak_step_handoffs));
      ctx.doc.metric("busy_hour_pingpongs",
                     static_cast<double>(result.pingpongs));
      ctx.report(table_);
    }
    json::Value frame = json::Value::object();
    frame.set("activity", activity);
    frame.set("rebuffer_mean", result.per_ue_rebuffer_fraction.mean());
    frame.set("peak_storm", static_cast<double>(result.peak_step_handoffs));
    return frame;
  }

  [[nodiscard]] json::Value checkpoint_state() const override {
    json::Value state = json::Value::object();
    state.set("rows", rows_to_json(table_));
    return state;
  }

  void restore_state(const json::Value& state) override {
    require(state.is_object(), "metro_qoe: state is not an object");
    rows_from_json(state_field(state, "rows", "metro_qoe"), table_,
                   "metro_qoe");
  }

 private:
  static constexpr std::array<double, 4> kActivityGrid = {0.25, 0.5, 0.75,
                                                          1.0};

  [[nodiscard]] std::string title() const {
    return std::to_string(cells_) + " cells x " +
           std::to_string(ues_per_cell_) +
           " UEs/cell at 14 m/s, 25 Mbps demand: busy-hour activity sweep";
  }

  [[nodiscard]] metro::MetroConfig base_config() const {
    metro::MetroConfig config;
    config.cells = cells_;
    config.ues_per_cell = ues_per_cell_;
    config.ue_speed_mps = 14.0;  // vehicular corridor
    config.background_load = 0.2;
    config.demand_mbps = 25.0;  // the paper's 4K operating point
    config.handoff.time_to_trigger_ms = 160.0;  // vehicular-speed A3 tuning
    config.faults = injector_.get();
    return config;
  }

  std::uint64_t seed_;
  int cells_;
  int ues_per_cell_;
  std::unique_ptr<faults::Injector> injector_;
  Table table_;
};

// --- drive_soak -------------------------------------------------------------

class DriveSoakCampaign final : public Campaign {
 public:
  explicit DriveSoakCampaign(const CampaignRequest& request)
      : seed_(request.seed),
        intervals_(param_positive_int(request.params, "intervals", 12)),
        interval_s_(param_positive_int(request.params, "interval_s", 30)),
        cells_(param_positive_int(request.params, "cells", 4)),
        ues_per_cell_(param_positive_int(request.params, "ues", 25)),
        rng_(request.seed),
        table_(std::to_string(intervals_) + " intervals x " +
               std::to_string(interval_s_) + " s, " + std::to_string(cells_) +
               " cells x " + std::to_string(ues_per_cell_) +
               " UEs/cell: long-haul drive soak") {
    reject_unknown_params(request.params,
                          {"intervals", "interval_s", "cells", "ues"});
    if (request.fault_plan.has_value()) {
      require_radio_plan(*request.fault_plan, "drive_soak");
      plan_ = *request.fault_plan;
    }
    table_.set_header({"interval", "mean/UE Mbps", "p50 Mbps", "handoffs",
                       "peak storm"});
  }

  [[nodiscard]] std::size_t total_steps() const override {
    return static_cast<std::size_t>(intervals_);
  }

  [[nodiscard]] json::Value execute_step(std::size_t index,
                                 CampaignContext& ctx) override {
    // One interval = one metro campaign over [index * interval_s,
    // (index+1) * interval_s) of the global timeline. The substream comes
    // from split() — sequentially dependent on every prior interval — so a
    // resumed run genuinely needs the checkpointed engine state.
    Rng interval_rng = rng_.split();
    metro::MetroConfig config;
    config.cells = cells_;
    config.ues_per_cell = ues_per_cell_;
    config.duration_s = static_cast<double>(interval_s_);
    config.background_load = 0.2;
    std::unique_ptr<faults::Injector> injector;
    if (plan_.has_value()) {
      const faults::FaultPlan sliced = slice_plan(index);
      if (!sliced.empty()) {
        injector = std::make_unique<faults::Injector>(sliced, seed_);
        config.faults = injector.get();
      }
    }
    const auto result = metro::run_campaign(config, std::move(interval_rng));
    throughput_.merge(result.step_throughput_mbps);
    ue_mean_.merge(result.per_ue_mean_mbps);
    handoffs_ += result.handoffs;
    pingpongs_ += result.pingpongs;
    peak_storm_ = std::max(peak_storm_, result.peak_step_handoffs);
    table_.add_row({Table::num(static_cast<double>(index), 0),
                    Table::num(result.per_ue_mean_mbps.mean(), 3),
                    Table::num(result.per_ue_mean_mbps.median(), 3),
                    Table::num(static_cast<double>(result.handoffs), 0),
                    Table::num(static_cast<double>(result.peak_step_handoffs),
                               0)});
    if (index + 1 == total_steps()) {
      ctx.report(table_);
      ctx.doc.metric("rollup_mean_ue_mbps", ue_mean_.mean());
      ctx.doc.metric("rollup_p50_step_mbps", throughput_.median());
      ctx.doc.metric("rollup_p5_step_mbps", throughput_.percentile(5.0));
      ctx.doc.metric("rollup_samples",
                     static_cast<double>(throughput_.count()));
      ctx.doc.metric("total_handoffs", static_cast<double>(handoffs_));
      ctx.doc.metric("total_pingpongs", static_cast<double>(pingpongs_));
      ctx.doc.metric("peak_storm", static_cast<double>(peak_storm_));
    }
    json::Value frame = json::Value::object();
    frame.set("interval", static_cast<double>(index));
    frame.set("mean_ue_mbps", result.per_ue_mean_mbps.mean());
    frame.set("handoffs", static_cast<double>(result.handoffs));
    frame.set("rollup_count", static_cast<double>(throughput_.count()));
    return frame;
  }

  [[nodiscard]] json::Value checkpoint_state() const override {
    json::Value state = json::Value::object();
    state.set("rng", rng_.serialize_state());
    state.set("rows", rows_to_json(table_));
    state.set("throughput", throughput_.to_json());
    state.set("ue_mean", ue_mean_.to_json());
    state.set("handoffs", static_cast<double>(handoffs_));
    state.set("pingpongs", static_cast<double>(pingpongs_));
    state.set("peak_storm", peak_storm_);
    return state;
  }

  void restore_state(const json::Value& state) override {
    require(state.is_object(), "drive_soak: state is not an object");
    const json::Value& rng = state_field(state, "rng", "drive_soak");
    require(rng.is_string(), "drive_soak: rng state is not a string");
    rng_ = Rng::deserialize_state(rng.as_string());
    rows_from_json(state_field(state, "rows", "drive_soak"), table_,
                   "drive_soak");
    throughput_ = stats::SampleAccumulator::from_json(
        state_field(state, "throughput", "drive_soak"));
    ue_mean_ = stats::SampleAccumulator::from_json(
        state_field(state, "ue_mean", "drive_soak"));
    handoffs_ =
        static_cast<long long>(state_count(state, "handoffs", "drive_soak"));
    pingpongs_ =
        static_cast<long long>(state_count(state, "pingpongs", "drive_soak"));
    peak_storm_ =
        static_cast<int>(state_count(state, "peak_storm", "drive_soak"));
  }

 private:
  /// Projects the global-timeline plan onto interval `index`: shift every
  /// window into interval-local time, clip to [0, interval_s), drop what
  /// does not overlap. Shifting all windows by the same offset and clipping
  /// preserves the per-kind non-overlap invariant, so the sliced plan
  /// always validates.
  [[nodiscard]] faults::FaultPlan slice_plan(std::size_t index) const {
    const double offset =
        static_cast<double>(index) * static_cast<double>(interval_s_);
    const double span = static_cast<double>(interval_s_);
    faults::FaultPlan sliced;
    sliced.name = plan_->name;
    sliced.seed_salt = plan_->seed_salt;
    for (const auto& window : plan_->windows) {
      const double local_start = std::max(window.start_s - offset, 0.0);
      const double local_end = std::min(window.end_s() - offset, span);
      if (local_end <= local_start) continue;
      faults::FaultWindow clipped = window;
      clipped.start_s = local_start;
      clipped.duration_s = local_end - local_start;
      sliced.windows.push_back(clipped);
    }
    return sliced;
  }

  std::uint64_t seed_;
  int intervals_;
  int interval_s_;
  int cells_;
  int ues_per_cell_;
  std::optional<faults::FaultPlan> plan_;
  Rng rng_;
  Table table_;
  stats::SampleAccumulator throughput_;
  stats::SampleAccumulator ue_mean_;
  long long handoffs_ = 0;
  long long pingpongs_ = 0;
  int peak_storm_ = 0;
};

}  // namespace

std::unique_ptr<Campaign> make_metro_load_campaign(
    const CampaignRequest& request) {
  return std::make_unique<MetroLoadCampaign>(request);
}

std::unique_ptr<Campaign> make_metro_qoe_campaign(
    const CampaignRequest& request) {
  return std::make_unique<MetroQoeCampaign>(request);
}

std::unique_ptr<Campaign> make_drive_soak_campaign(
    const CampaignRequest& request) {
  return std::make_unique<DriveSoakCampaign>(request);
}

}  // namespace wild5g::engine
