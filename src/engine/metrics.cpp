#include "engine/metrics.h"

#include <utility>

#include "core/error.h"

namespace wild5g::engine {

MetricsDocument::MetricsDocument(std::string bench_id, std::uint64_t seed,
                                 std::string fault_plan_name)
    : bench_id_(std::move(bench_id)),
      seed_(seed),
      fault_plan_name_(std::move(fault_plan_name)),
      tables_(json::Value::array()),
      metrics_(json::Value::object()),
      tolerances_(json::Value::object()),
      flags_(json::Value::object()) {}

void MetricsDocument::set_tolerance(double rel, double abs) {
  rel_ = rel;
  abs_ = abs;
}

void MetricsDocument::set_tolerance(const std::string& name, double rel,
                                    double abs) {
  json::Value entry = json::Value::object();
  entry.set("rel", rel);
  entry.set("abs", abs);
  tolerances_.set(name, std::move(entry));
}

void MetricsDocument::record(const Table& table) {
  json::Value entry = json::Value::object();
  entry.set("title", table.title());
  json::Value header = json::Value::array();
  for (const auto& cell : table.header()) header.push_back(cell);
  entry.set("header", std::move(header));
  json::Value rows = json::Value::array();
  for (const auto& row : table.rows()) {
    json::Value cells = json::Value::array();
    for (const auto& cell : row) cells.push_back(cell);
    rows.push_back(std::move(cells));
  }
  entry.set("rows", std::move(rows));
  tables_.push_back(std::move(entry));
}

void MetricsDocument::metric(const std::string& name, double value) {
  metrics_.set(name, value);
}

void MetricsDocument::set_flag(const std::string& name) {
  flags_.set(name, true);
}

json::Value MetricsDocument::document() const {
  json::Value doc = json::Value::object();
  doc.set("bench", bench_id_);
  doc.set("seed", seed_);
  if (!fault_plan_name_.empty()) doc.set("fault_plan", fault_plan_name_);
  json::Value tolerance = json::Value::object();
  tolerance.set("rel", rel_);
  tolerance.set("abs", abs_);
  doc.set("tolerance", std::move(tolerance));
  if (tolerances_.size() > 0) doc.set("tolerances", tolerances_);
  doc.set("tables", tables_);
  doc.set("metrics", metrics_);
  for (const auto& flag : flags_.as_object()) {
    doc.set(flag.key, flag.value);
  }
  return doc;
}

json::Value MetricsDocument::checkpoint_state() const {
  json::Value state = json::Value::object();
  state.set("rel", rel_);
  state.set("abs", abs_);
  state.set("tolerances", tolerances_);
  state.set("tables", tables_);
  state.set("metrics", metrics_);
  state.set("flags", flags_);
  return state;
}

void MetricsDocument::restore_state(const json::Value& state) {
  require(state.is_object(), "MetricsDocument: state is not an object");
  const auto field = [&](const char* key) -> const json::Value& {
    const json::Value* value = state.find(key);
    require(value != nullptr,
            std::string("MetricsDocument: state missing '") + key + "'");
    return *value;
  };
  const json::Value& rel = field("rel");
  const json::Value& abs = field("abs");
  require(rel.is_number() && abs.is_number(),
          "MetricsDocument: tolerance state is not numeric");
  const json::Value& tolerances = field("tolerances");
  const json::Value& tables = field("tables");
  const json::Value& metrics = field("metrics");
  const json::Value& flags = field("flags");
  require(tolerances.is_object() && metrics.is_object() && flags.is_object(),
          "MetricsDocument: tolerances/metrics/flags state is not an object");
  require(tables.is_array(), "MetricsDocument: tables state is not an array");
  for (const auto& member : metrics.as_object()) {
    require(member.value.is_number(),
            "MetricsDocument: metric '" + member.key + "' is not a number");
  }
  rel_ = rel.as_number();
  abs_ = abs.as_number();
  tolerances_ = tolerances;
  tables_ = tables;
  metrics_ = metrics;
  flags_ = flags;
}

}  // namespace wild5g::engine
