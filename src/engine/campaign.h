// wild5g/engine: the stepped-campaign abstraction behind every long-running
// measurement.
//
// ROADMAP item 5 asks for a service mode: campaigns that run for hours under
// supervision — deadlines, checkpoints, cancellation — instead of one
// monolithic main(). The enabling refactor is to slice a campaign into an
// ordered sequence of *steps* with explicit yield points between them:
//
//   - each step is a pure function of (request, step index, campaign state
//     entering the step), so the engine can pause after any step;
//   - between steps the supervising layer (bench_common.h, wild5g_serve)
//     may stream a frame, write a checkpoint, or stop the run;
//   - a campaign's mutable state is exactly what checkpoint_state()
//     serializes, so restore_state() + "run the remaining steps" is
//     byte-identical to never having stopped.
//
// Everything in src/engine is deterministic compute: no clocks, no signals,
// no filesystem (tools/wild5g_lint rule engine-blocking-call enforces that;
// snapshot.cpp is the one sanctioned writer). Wall-clock supervision lives
// outside and reaches in through runner.h's injected predicates.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/json.h"
#include "engine/metrics.h"
#include "faults/fault_plan.h"

namespace wild5g::engine {

/// The default campaign seed; equals bench::kBenchSeed (SIGCOMM'21 opening
/// day) so engine-backed bench runs reproduce the committed goldens.
inline constexpr std::uint64_t kDefaultSeed = 20210823;

/// Everything needed to (re)construct a campaign deterministically. The
/// request is what a snapshot embeds, what the service protocol submits,
/// and what the bench shells assemble from argv.
struct CampaignRequest {
  /// Registry name ("metro_load", "metro_qoe", "drive_soak", ...).
  std::string campaign;
  std::uint64_t seed = kDefaultSeed;
  /// Campaign-specific parameters as a JSON object (may be null for "all
  /// defaults"). Factories must reject unknown keys — a typoed parameter
  /// silently falling back to a default would mislabel the measurement.
  json::Value params;
  /// Optional fault plan, embedded by value so a snapshot is
  /// self-contained (resume must not depend on the original plan file
  /// still existing).
  std::optional<faults::FaultPlan> fault_plan;
};

/// Where a campaign's output goes. `doc` accumulates the metrics document;
/// `console` (null in service mode) receives the human-readable tables the
/// batch benches have always printed.
struct CampaignContext {
  MetricsDocument& doc;
  std::ostream* console = nullptr;

  /// Prints the table when a console is attached, and records it in the
  /// document either way — the engine twin of MetricsEmitter::report.
  void report(const Table& table);
};

/// A campaign sliced into total_steps() sequential steps. Implementations
/// must keep execute_step() a deterministic function of (construction request,
/// index, state) — the checkpoint/resume byte-identity tests enforce it at
/// thread counts 1 and 8.
class Campaign {
 public:
  virtual ~Campaign() = default;

  /// Fixed for the lifetime of the campaign (known before the first step).
  [[nodiscard]] virtual std::size_t total_steps() const = 0;

  /// Executes step `index` (indices arrive strictly in order, starting
  /// from 0 or from a restored checkpoint's next step), recording tables
  /// and metrics into `ctx`. Returns this step's frame payload — a small
  /// JSON object the service streams to the client as progress.
  [[nodiscard]] virtual json::Value execute_step(std::size_t index,
                                         CampaignContext& ctx) = 0;

  /// The campaign's mutable state after the steps executed so far;
  /// everything restore_state() needs to continue byte-identically.
  [[nodiscard]] virtual json::Value checkpoint_state() const = 0;
  /// Inverse of checkpoint_state(); throws wild5g::Error on malformed
  /// state. Called at most once, before any execute_step() call.
  virtual void restore_state(const json::Value& state) = 0;
};

/// Builds a campaign (throws wild5g::Error on bad params / fault plan).
using CampaignFactory =
    std::unique_ptr<Campaign> (*)(const CampaignRequest& request);

// --- registry --------------------------------------------------------------

/// Registers a campaign under `name`; re-registering an existing name
/// replaces the factory (test binaries override builtins). Thread-safe.
void register_campaign(const std::string& name, CampaignFactory factory);

/// Instantiates `request.campaign` from the registry; throws wild5g::Error
/// (listing the registered names) when the name is unknown.
[[nodiscard]] std::unique_ptr<Campaign> make_campaign(
    const CampaignRequest& request);

/// Registered names in registration order (for the service hello frame).
[[nodiscard]] std::vector<std::string> campaign_names();

/// Registers the built-in campaigns (metro_load, metro_qoe, drive_soak).
/// Idempotent; every entry point that touches the registry calls it first.
void register_builtin_campaigns();

// --- request (de)serialization ---------------------------------------------

/// Request document shape (also the snapshot's "request" section):
///   { "campaign": "metro_load", "seed": "20210823",
///     "params": {...}, "fault_plan": {...} }
/// The seed is a decimal *string* so full 64-bit seeds survive the JSON
/// number path (doubles lose integers above 2^53).
[[nodiscard]] json::Value request_to_json(const CampaignRequest& request);
[[nodiscard]] CampaignRequest request_from_json(const json::Value& doc);

// --- param helpers for factories -------------------------------------------

/// Reads `params[key]` as a strictly positive integer, defaulting when the
/// key is absent; throws wild5g::Error on non-integer / non-positive
/// values. `params` may be null (all defaults).
[[nodiscard]] int param_positive_int(const json::Value& params,
                                     const std::string& key,
                                     int default_value);

/// Throws unless every key of `params` appears in `known` — a typoed
/// parameter must fail the submit, not silently run the default campaign.
void reject_unknown_params(const json::Value& params,
                           std::initializer_list<std::string_view> known);

}  // namespace wild5g::engine
