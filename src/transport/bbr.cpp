#include "transport/bbr.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "core/error.h"

namespace wild5g::transport {

namespace {

constexpr double kBbrEfficiency = 0.97;  // header/ack overhead

/// PROBE_BW pacing-gain cycle (RFC-draft BBR v1): one probe, one drain,
/// six cruise phases, each lasting ~1 RTT.
constexpr double kCruiseGain = 1.0;

struct BbrState {
  enum class Phase { kStartup, kDrain, kProbeBw };
  Phase phase = Phase::kStartup;
  double delivered_rate_mbps = 1.0;  // latest bandwidth sample
  std::deque<std::pair<double, double>> bw_samples;  // (time, mbps)
  double btl_bw_mbps = 1.0;          // max-filter output
  double full_bw_mbps = 0.0;         // STARTUP plateau detection
  int full_bw_rounds = 0;
  int cycle_index = 0;
  double cycle_started_s = 0.0;
  double achieved_mbps = 0.0;
};

}  // namespace

FlowResult simulate_bbr(int connection_count, const PathConfig& path,
                        const BbrOptions& options, double duration_s,
                        Rng& rng) {
  require(connection_count > 0, "simulate_bbr: need >= 1 connection");
  require(path.rtt_ms > 0.0 && path.capacity_mbps > 0.0,
          "simulate_bbr: invalid path");
  require(duration_s > 1.0, "simulate_bbr: duration too short");

  const double rtt_s = path.rtt_ms / 1000.0;
  const double window_cap_mbps =
      options.wmem_bytes * 8.0 / 1e6 / rtt_s;  // flow-control ceiling
  const double dt = std::clamp(rtt_s / 2.0, 0.002, 0.02);
  const double warmup_s = duration_s * 0.2;

  std::vector<BbrState> conns(static_cast<std::size_t>(connection_count));
  double measured_mbit = 0.0;
  double measured_time = 0.0;
  int loss_events = 0;
  std::vector<double> per_conn_mbit(conns.size(), 0.0);

  for (double now = 0.0; now < duration_s; now += dt) {
    // Offered (pacing) rates.
    double offered_total = 0.0;
    std::vector<double> offered(conns.size());
    for (std::size_t i = 0; i < conns.size(); ++i) {
      auto& c = conns[i];
      double gain = kCruiseGain;
      switch (c.phase) {
        case BbrState::Phase::kStartup: gain = options.startup_gain; break;
        case BbrState::Phase::kDrain: gain = options.drain_gain; break;
        case BbrState::Phase::kProbeBw: {
          // 8-phase cycle: probe, drain, cruise x6.
          const auto phase_len_s = rtt_s;
          if (now - c.cycle_started_s >= phase_len_s) {
            c.cycle_index = (c.cycle_index + 1) % 8;
            c.cycle_started_s = now;
          }
          gain = c.cycle_index == 0 ? options.probe_gain
                 : c.cycle_index == 1 ? options.drain_gain
                                      : kCruiseGain;
          break;
        }
      }
      offered[i] = std::min(window_cap_mbps, c.btl_bw_mbps * gain);
      offered_total += offered[i];
    }
    const double scale = offered_total > path.capacity_mbps
                             ? path.capacity_mbps / offered_total
                             : 1.0;

    for (std::size_t i = 0; i < conns.size(); ++i) {
      auto& c = conns[i];
      c.achieved_mbps = offered[i] * scale * kBbrEfficiency;
      if (now >= warmup_s) {
        measured_mbit += c.achieved_mbps * dt;
        per_conn_mbit[i] += c.achieved_mbps * dt;
      }

      // Bandwidth sample = delivery rate (what actually got through).
      c.delivered_rate_mbps = c.achieved_mbps / kBbrEfficiency;
      c.bw_samples.emplace_back(now, c.delivered_rate_mbps);
      while (!c.bw_samples.empty() &&
             now - c.bw_samples.front().first > options.bw_window_s) {
        c.bw_samples.pop_front();
      }
      double max_bw = 1.0;
      for (const auto& [t, bw] : c.bw_samples) max_bw = std::max(max_bw, bw);
      c.btl_bw_mbps = max_bw;

      // Loss is observed but (unlike CUBIC) does not change the rate model.
      const double pkts = c.achieved_mbps * dt / (options.mss_bytes * 8e-6);
      if (rng.bernoulli(std::min(1.0, path.loss_event_rate_per_s * dt +
                                          path.loss_per_packet * pkts))) {
        ++loss_events;
      }

      // STARTUP exits when bandwidth stops growing for 3 rounds.
      if (c.phase == BbrState::Phase::kStartup) {
        if (c.btl_bw_mbps < 1.25 * c.full_bw_mbps) {
          if (++c.full_bw_rounds >= static_cast<int>(3.0 * rtt_s / dt)) {
            c.phase = BbrState::Phase::kDrain;
            c.cycle_started_s = now;
          }
        } else {
          c.full_bw_mbps = c.btl_bw_mbps;
          c.full_bw_rounds = 0;
        }
      } else if (c.phase == BbrState::Phase::kDrain &&
                 now - c.cycle_started_s >= rtt_s) {
        c.phase = BbrState::Phase::kProbeBw;
        c.cycle_started_s = now;
        c.cycle_index = static_cast<int>(rng.uniform_int(2, 7));
      }
    }
    if (now >= warmup_s) measured_time += dt;
  }

  FlowResult result;
  result.loss_events = loss_events;
  require(measured_time > 0.0, "simulate_bbr: no steady-state window");
  result.aggregate_goodput_mbps = measured_mbit / measured_time;
  result.per_connection_mbps.reserve(conns.size());
  for (double mbit : per_conn_mbit) {
    result.per_connection_mbps.push_back(mbit / measured_time);
  }
  return result;
}

}  // namespace wild5g::transport
