// wild5g/transport: fluid-model BBR congestion control.
//
// Sec. 3.2 closes with "these observations highlight the inefficacies that
// exist in current TCP and congestion control mechanisms over mmWave 5G".
// CUBIC's loss-driven window collapses are exactly that inefficacy; BBR
// paces at the measured bottleneck bandwidth and ignores random loss, so a
// single BBR connection holds near-capacity even on long, lossy paths. The
// ablation bench contrasts the two on the Fig. 8 campaign.
#pragma once

#include "core/rng.h"
#include "transport/tcp.h"

namespace wild5g::transport {

struct BbrOptions {
  double mss_bytes = 1448.0;
  /// Receive/send window budget still applies (flow control).
  double wmem_bytes = 32.0e6;
  double startup_gain = 2.885;   // BBR STARTUP pacing gain
  double probe_gain = 1.25;      // PROBE_BW up-cycle gain
  double drain_gain = 0.75;      // PROBE_BW drain phase
  double bw_window_s = 10.0;     // max-filter window for bandwidth samples
};

/// Simulates `connection_count` BBR flows over `path` for `duration_s`.
/// Loss events do not reduce the rate (BBR is model-based); only the
/// bandwidth filter and the pacing cycle shape throughput.
[[nodiscard]] FlowResult simulate_bbr(int connection_count,
                                      const PathConfig& path,
                                      const BbrOptions& options,
                                      double duration_s, Rng& rng);

}  // namespace wild5g::transport
