// wild5g/transport: fluid-model TCP CUBIC and UDP over a shared bottleneck.
//
// Reproduces the transport phenomena of Sec. 3.2 / Fig. 8 mechanistically:
//  - a single connection is window-limited to wmem/RTT when the kernel's
//    tcp_wmem is below the path's bandwidth-delay product ("1-TCP default"
//    capping near 500 Mbps);
//  - raising wmem ("1-TCP tuned") recovers 2-3x but stays loss/CUBIC-limited,
//    and the shortfall vs UDP grows with RTT (hence with UE-server distance);
//  - many parallel connections (Speedtest opens 15-25) fill mmWave capacity
//    regardless of distance;
//  - UDP tracks the link capacity minus protocol overhead.
#pragma once

#include <vector>

#include "core/rng.h"

namespace wild5g::transport {

/// End-to-end path characteristics.
struct PathConfig {
  double rtt_ms = 30.0;
  double capacity_mbps = 2000.0;    // bottleneck (radio) capacity
  /// Ambient loss events per second per connection (middlebox resets,
  /// cross-traffic bursts); grows mildly with path length.
  double loss_event_rate_per_s = 0.05;
  /// Random per-packet drop probability. This is the dominant limiter for
  /// high-BDP flows: CUBIC's equilibrium window shrinks with RTT at a fixed
  /// packet-loss rate, producing the Fig. 3/8 distance decay even at loss
  /// rates well under the paper's observed 1%.
  double loss_per_packet = 5e-7;
};

/// Kernel/socket configuration of the sending side.
struct TcpOptions {
  double wmem_bytes = 1.4e6;   // effective default Linux send-buffer budget
  double mss_bytes = 1448.0;
  double initial_cwnd_pkts = 10.0;
};

/// A tuned sender (tcp_wmem raised well past the BDP, Sec. 3.2).
[[nodiscard]] TcpOptions tuned_tcp_options();

/// Result of a transfer simulation.
struct FlowResult {
  double aggregate_goodput_mbps = 0.0;
  std::vector<double> per_connection_mbps;
  int loss_events = 0;
};

/// Simulates `connection_count` concurrent CUBIC connections over `path`
/// for `duration_s`, reporting steady-state goodput (initial 20% of the run
/// is treated as warmup and excluded). Deterministic in `rng`.
[[nodiscard]] FlowResult simulate_tcp(int connection_count,
                                      const PathConfig& path,
                                      const TcpOptions& options,
                                      double duration_s, Rng& rng);

/// UDP throughput: capacity minus protocol overhead (no congestion control).
[[nodiscard]] double udp_throughput_mbps(const PathConfig& path);

}  // namespace wild5g::transport
