#include "transport/tcp.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace wild5g::transport {

namespace {

constexpr double kCubicC = 0.4;    // packets / s^3 (RFC 8312)
constexpr double kCubicBeta = 0.7; // multiplicative decrease
constexpr double kTcpEfficiency = 0.97;  // header/ack overhead
constexpr double kUdpEfficiency = 0.985;

struct ConnState {
  double cwnd_pkts = 10.0;
  double wmax_pkts = 0.0;
  double epoch_start_s = 0.0;
  double epoch_k_s = 0.0;  // time to plateau: K = cbrt((Wmax - W0)/C)
  bool slow_start = true;
  double ssthresh_pkts = 1e18;  // slow-start exit point
  double achieved_mbps = 0.0;
  // Loss hazard accumulator: integrates the instantaneous loss intensity
  // and fires when it crosses a jittered unit threshold. Quasi-periodic
  // losses keep each run near CUBIC's equilibrium instead of leaving short
  // tests at the mercy of Poisson luck.
  double loss_hazard = 0.0;
  double loss_threshold = 1.0;
};

}  // namespace

TcpOptions tuned_tcp_options() {
  TcpOptions options;
  options.wmem_bytes = 32.0e6;  // comfortably above any path BDP here
  return options;
}

FlowResult simulate_tcp(int connection_count, const PathConfig& path,
                        const TcpOptions& options, double duration_s,
                        Rng& rng) {
  require(connection_count > 0, "simulate_tcp: need >= 1 connection");
  require(path.rtt_ms > 0.0 && path.capacity_mbps > 0.0,
          "simulate_tcp: invalid path");
  require(duration_s > 1.0, "simulate_tcp: duration too short");

  const double rtt_s = path.rtt_ms / 1000.0;
  const double wmem_pkts = options.wmem_bytes / options.mss_bytes;
  const double pkt_mbits = options.mss_bytes * 8.0 / 1e6;
  // Window cap: send buffer, and sanity ceiling of 2x BDP + queue.
  const double bdp_pkts = path.capacity_mbps * rtt_s / pkt_mbits;
  const double cwnd_cap = std::min(wmem_pkts, 2.0 * bdp_pkts + 100.0);

  std::vector<ConnState> conns(static_cast<std::size_t>(connection_count));
  for (auto& c : conns) {
    c.cwnd_pkts = options.initial_cwnd_pkts;
    c.loss_threshold = rng.uniform(0.7, 1.3);
  }

  const double dt = std::clamp(rtt_s / 2.0, 0.002, 0.02);
  const double warmup_s = duration_s * 0.2;
  double measured_mbit = 0.0;
  double measured_time = 0.0;
  int loss_events = 0;
  std::vector<double> per_conn_mbit(conns.size(), 0.0);

  for (double now = 0.0; now < duration_s; now += dt) {
    // Offered rates from the current windows.
    double offered_total = 0.0;
    std::vector<double> offered(conns.size());
    for (std::size_t i = 0; i < conns.size(); ++i) {
      offered[i] =
          std::min(conns[i].cwnd_pkts, cwnd_cap) * pkt_mbits / rtt_s;
      offered_total += offered[i];
    }
    const double scale =
        offered_total > path.capacity_mbps
            ? path.capacity_mbps / offered_total
            : 1.0;
    const double overload =
        std::max(0.0, offered_total / path.capacity_mbps - 1.0);

    for (std::size_t i = 0; i < conns.size(); ++i) {
      auto& c = conns[i];
      c.achieved_mbps = offered[i] * scale * kTcpEfficiency;
      if (now >= warmup_s) {
        measured_mbit += c.achieved_mbps * dt;
        per_conn_mbit[i] += c.achieved_mbps * dt;
      }

      // Loss: ambient events + per-packet drops feed the hazard; bottleneck
      // overflow adds an immediate random component.
      const double pkts_sent = c.achieved_mbps * dt / pkt_mbits;
      c.loss_hazard += path.loss_event_rate_per_s * dt +
                       path.loss_per_packet * pkts_sent;
      const double p_congestion = std::min(1.0, 3.0 * overload * dt);
      bool lost = rng.bernoulli(p_congestion);
      if (c.loss_hazard >= c.loss_threshold) {
        lost = true;
        c.loss_hazard = 0.0;
        c.loss_threshold = rng.uniform(0.7, 1.3);
      }
      if (lost) {
        ++loss_events;
        c.wmax_pkts = c.cwnd_pkts;
        // Most events are a single congestion notification (CUBIC beta);
        // a minority are burst losses / retransmission timeouts. An RTO
        // collapses the window and restarts slow start toward half the old
        // flight, after which CUBIC crawls back toward Wmax — on long-RTT
        // paths that crawl dominates, which is what pulls single
        // connections far below capacity (Fig. 3 / Fig. 8).
        if (rng.bernoulli(0.15)) {
          c.ssthresh_pkts = std::max(10.0, 0.5 * c.cwnd_pkts);
          c.cwnd_pkts = options.initial_cwnd_pkts;
          c.slow_start = true;
        } else {
          c.cwnd_pkts = std::max(2.0, c.cwnd_pkts * kCubicBeta);
          c.slow_start = false;
        }
        c.epoch_start_s = now;
        c.epoch_k_s = std::cbrt(
            std::max(0.0, c.wmax_pkts - c.cwnd_pkts) / kCubicC);
        continue;
      }

      if (c.slow_start) {
        // Exponential growth: one doubling per RTT, until ssthresh.
        c.cwnd_pkts = std::min(cwnd_cap, c.cwnd_pkts * (1.0 + dt / rtt_s));
        if (c.cwnd_pkts >= c.ssthresh_pkts) {
          c.slow_start = false;
          c.epoch_start_s = now + dt;
          c.epoch_k_s = std::cbrt(
              std::max(0.0, c.wmax_pkts - c.cwnd_pkts) / kCubicC);
        }
      } else {
        // CUBIC window evolution in real time since the last loss.
        const double t = now + dt - c.epoch_start_s;
        const double k = c.epoch_k_s;
        const double target =
            kCubicC * (t - k) * (t - k) * (t - k) + c.wmax_pkts;
        c.cwnd_pkts = std::clamp(target, 2.0, cwnd_cap);
      }
    }
    if (now >= warmup_s) measured_time += dt;
  }

  FlowResult result;
  result.loss_events = loss_events;
  require(measured_time > 0.0, "simulate_tcp: no steady-state window");
  result.aggregate_goodput_mbps = measured_mbit / measured_time;
  result.per_connection_mbps.reserve(conns.size());
  for (double mbit : per_conn_mbit) {
    result.per_connection_mbps.push_back(mbit / measured_time);
  }
  return result;
}

double udp_throughput_mbps(const PathConfig& path) {
  require(path.capacity_mbps > 0.0, "udp_throughput_mbps: invalid path");
  return path.capacity_mbps * kUdpEfficiency;
}

}  // namespace wild5g::transport
