#include "web/selector.h"

#include <algorithm>

#include "core/error.h"
#include "core/parallel.h"
#include "core/stats.h"

namespace wild5g::web {

std::vector<SiteMeasurement> measure_corpus(
    const std::vector<Website>& corpus, int repeats,
    const power::DevicePowerProfile& device, Rng& rng,
    const faults::Injector* faults) {
  require(!corpus.empty(), "measure_corpus: empty corpus");
  require(repeats > 0, "measure_corpus: repeats must be positive");
  auto config_5g = mmwave_page_config();
  auto config_4g = lte_page_config();
  config_5g.faults = faults;
  config_4g.faults = faults;

  // Sites are measured in parallel: one Rng substream per site, forked up
  // front from a split of the caller's stream, so site i's page loads draw
  // the same randomness at any thread count. Per-site repeat sums stay in
  // repeat order on a single thread.
  Rng base = rng.split();
  return parallel::parallel_map(corpus.size(), [&](std::size_t i) {
    Rng site_rng = base.fork(i);
    // Per-site salt: the same plan fails different object subsets on
    // different sites, deterministically in the site's corpus position.
    auto config_5g_site = config_5g;
    auto config_4g_site = config_4g;
    config_5g_site.fault_salt = i;
    config_4g_site.fault_salt = i;
    SiteMeasurement m;
    m.site = corpus[i];
    for (int r = 0; r < repeats; ++r) {
      const auto r5 = load_page(m.site, config_5g_site, device, site_rng);
      const auto r4 = load_page(m.site, config_4g_site, device, site_rng);
      m.plt_5g_s += r5.plt_s;
      m.energy_5g_j += r5.energy_j;
      m.plt_4g_s += r4.plt_s;
      m.energy_4g_j += r4.energy_j;
      m.failed_objects += r5.failed_objects + r4.failed_objects;
    }
    const auto n = static_cast<double>(repeats);
    m.plt_5g_s /= n;
    m.energy_5g_j /= n;
    m.plt_4g_s /= n;
    m.energy_4g_j /= n;
    return m;
  });
}

std::vector<QoeWeights> paper_qoe_models() {
  return {
      {"M1", "High Performance", 0.2, 0.8},
      {"M2", "Performance Oriented", 0.4, 0.6},
      {"M3", "Balanced", 0.5, 0.5},
      {"M4", "Better Energy Saving", 0.6, 0.4},
      {"M5", "High Energy Saving", 0.8, 0.2},
  };
}

InterfaceSelector::InterfaceSelector(QoeWeights weights)
    : weights_(std::move(weights)), tree_([] {
        ml::TreeConfig config;
        config.max_depth = 4;  // the paper post-prunes to small trees
        config.min_samples_leaf = 8;
        config.min_samples_split = 16;
        return ml::DecisionTreeClassifier(config);
      }()) {
  require(weights_.alpha >= 0.0 && weights_.beta >= 0.0 &&
              weights_.alpha + weights_.beta > 0.0,
          "InterfaceSelector: invalid weights");
}

RadioChoice InterfaceSelector::oracle_choice(const SiteMeasurement& m) const {
  const double qoe_4g = weights_.alpha * (m.energy_4g_j / energy_norm_j_) +
                        weights_.beta * (m.plt_4g_s / plt_norm_s_);
  const double qoe_5g = weights_.alpha * (m.energy_5g_j / energy_norm_j_) +
                        weights_.beta * (m.plt_5g_s / plt_norm_s_);
  return qoe_4g <= qoe_5g ? RadioChoice::kUse4g : RadioChoice::kUse5g;
}

void InterfaceSelector::train(std::span<const SiteMeasurement> train_set,
                              Rng& rng) {
  require(train_set.size() >= 50, "InterfaceSelector::train: set too small");
  // Normalize both metrics by their training-set maxima ("we normalize both
  // metrics for fair comparison").
  plt_norm_s_ = 0.0;
  energy_norm_j_ = 0.0;
  for (const auto& m : train_set) {
    plt_norm_s_ = std::max({plt_norm_s_, m.plt_4g_s, m.plt_5g_s});
    energy_norm_j_ = std::max({energy_norm_j_, m.energy_4g_j, m.energy_5g_j});
  }
  require(plt_norm_s_ > 0.0 && energy_norm_j_ > 0.0,
          "InterfaceSelector::train: degenerate measurements");

  ml::Dataset data;
  data.feature_names = feature_names();
  for (const auto& m : train_set) {
    data.add(feature_vector(m.site),
             static_cast<double>(oracle_choice(m) == RadioChoice::kUse5g));
  }
  (void)rng;  // split/shuffle handled by the caller's corpus order
  tree_.fit(data);
}

RadioChoice InterfaceSelector::predict(const Website& site) const {
  require(tree_.is_fitted(), "InterfaceSelector: not trained");
  return tree_.predict(feature_vector(site)) == 1 ? RadioChoice::kUse5g
                                                  : RadioChoice::kUse4g;
}

double InterfaceSelector::accuracy(
    std::span<const SiteMeasurement> test_set) const {
  require(!test_set.empty(), "InterfaceSelector::accuracy: empty set");
  std::size_t hits = 0;
  for (const auto& m : test_set) {
    if (predict(m.site) == oracle_choice(m)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(test_set.size());
}

InterfaceSelector::ChoiceCounts InterfaceSelector::counts(
    std::span<const SiteMeasurement> test_set) const {
  ChoiceCounts counts;
  for (const auto& m : test_set) {
    (predict(m.site) == RadioChoice::kUse4g ? counts.use_4g
                                            : counts.use_5g)++;
  }
  return counts;
}

InterfaceSelector::Outcome InterfaceSelector::outcome(
    std::span<const SiteMeasurement> test_set) const {
  require(!test_set.empty(), "InterfaceSelector::outcome: empty set");
  double energy_selected = 0.0;
  double energy_always_5g = 0.0;
  double plt_selected = 0.0;
  double plt_always_5g = 0.0;
  for (const auto& m : test_set) {
    const bool use_4g = predict(m.site) == RadioChoice::kUse4g;
    energy_selected += use_4g ? m.energy_4g_j : m.energy_5g_j;
    plt_selected += use_4g ? m.plt_4g_s : m.plt_5g_s;
    energy_always_5g += m.energy_5g_j;
    plt_always_5g += m.plt_5g_s;
  }
  Outcome outcome;
  outcome.energy_saving_percent =
      100.0 * (energy_always_5g - energy_selected) / energy_always_5g;
  outcome.plt_penalty_percent =
      100.0 * (plt_selected - plt_always_5g) / plt_always_5g;
  return outcome;
}

std::string InterfaceSelector::describe_tree() const {
  static const std::vector<std::string> kClasses = {"Use 4G", "Use 5G"};
  const auto names = feature_names();
  return tree_.describe(names, kClasses);
}

std::vector<double> InterfaceSelector::feature_importances() const {
  return tree_.feature_importances();
}

}  // namespace wild5g::web
