// wild5g/web: synthetic website corpus (Sec. 6's Alexa top-1500 stand-in).
//
// Each website carries the Table-5 feature vector the paper analyzes:
// object counts, dynamic-object share, page size, image/video counts. The
// corpus spans the ranges of Fig. 19 (3..1000 objects, <1 MB .. >10 MB).
#pragma once

#include <string>
#include <vector>

#include "core/rng.h"

namespace wild5g::web {

struct Website {
  std::string domain;
  int object_count = 0;           // NO
  int image_count = 0;            // NI
  int video_count = 0;            // NV
  int dynamic_object_count = 0;   // DNO numerator
  double total_page_size_mb = 0;  // PS
  double dynamic_size_fraction = 0.0;  // DSO: dynamic bytes / total bytes

  [[nodiscard]] double dynamic_object_fraction() const {
    return object_count > 0 ? static_cast<double>(dynamic_object_count) /
                                  static_cast<double>(object_count)
                            : 0.0;
  }
  [[nodiscard]] double avg_object_size_kb() const {  // AOS
    return object_count > 0
               ? total_page_size_mb * 1024.0 / static_cast<double>(object_count)
               : 0.0;
  }
};

/// Feature vector (Table 5 order) for ML models.
[[nodiscard]] std::vector<double> feature_vector(const Website& site);
[[nodiscard]] std::vector<std::string> feature_names();

/// Generates a corpus of `count` websites; deterministic in `rng`.
[[nodiscard]] std::vector<Website> generate_corpus(int count, Rng& rng);

}  // namespace wild5g::web
