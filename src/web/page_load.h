// wild5g/web: page-load simulation over a radio (Sec. 6's measurement).
//
// Loads a website over mmWave 5G or 4G: connection setup, objects fetched in
// dependency rounds over a parallel-connection pool, per-object slow-start
// cost (small objects cannot fill a fat pipe), and server think time for
// dynamic objects. Produces the two Sec.-6 QoE metrics: page load time and
// radio energy (from the device power rails over the transfer timeline).
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "faults/injector.h"
#include "power/power_model.h"
#include "radio/types.h"
#include "radio/ue.h"
#include "web/website.h"

namespace wild5g::web {

struct PageLoadConfig {
  radio::NetworkConfig network;
  radio::UeProfile ue;
  double rtt_ms = 26.0;             // UE to web server (CDN-close)
  double rsrp_dbm = -80.0;
  int parallel_connections = 6;
  double dynamic_think_ms = 120.0;  // server-side generation per dyn object
  double parse_round_ms = 60.0;     // client parse/JS between rounds
  /// HTTP/2-style multiplexing: all objects of a round stream over one warm
  /// connection (one request round-trip per round, no per-object slow-start
  /// ramps). Narayanan et al. [39] studied protocol versions over mmWave;
  /// this knob reproduces that comparison (see bench_extension_http2).
  bool multiplexed = false;
  /// Optional fault injector (not owned; null = no faults). Object fetches
  /// that the injector fails occupy their connection slot for
  /// `object_timeout_s` (the client's give-up deadline), transfer no bytes,
  /// and are counted in PageLoadResult::failed_objects — the page still
  /// completes, with the timeout folded into PLT like a real browser's
  /// error-and-continue behavior.
  const faults::Injector* faults = nullptr;
  /// Keys the injector's per-object failure decisions; give each page of a
  /// corpus a distinct salt (e.g. its site index) so one plan fails
  /// different object subsets on different pages.
  std::uint64_t fault_salt = 0;
  double object_timeout_s = 2.0;
};

/// Defaults for the paper's two settings: stationary LoS Verizon mmWave 5G
/// and Verizon 4G, on the rooted PX5.
[[nodiscard]] PageLoadConfig mmwave_page_config();
[[nodiscard]] PageLoadConfig lte_page_config();

struct PageLoadResult {
  double plt_s = 0.0;
  double energy_j = 0.0;
  /// Object fetches the fault injector failed (0 without an injector).
  int failed_objects = 0;
  /// Downlink megabits transferred per integral second (for power models).
  std::vector<double> per_second_dl_mbps;
};

/// Simulates one page load; deterministic in `rng`.
[[nodiscard]] PageLoadResult load_page(const Website& site,
                                       const PageLoadConfig& config,
                                       const power::DevicePowerProfile& device,
                                       Rng& rng);

}  // namespace wild5g::web
