#include "web/website.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace wild5g::web {

std::vector<double> feature_vector(const Website& site) {
  return {
      site.dynamic_object_fraction(),            // DNO
      static_cast<double>(site.image_count),     // NI
      static_cast<double>(site.video_count),     // NV
      site.dynamic_size_fraction,                // DSO
      site.total_page_size_mb,                   // PS
      static_cast<double>(site.object_count),    // NO
      site.avg_object_size_kb(),                 // AOS
  };
}

std::vector<std::string> feature_names() {
  return {"DNO", "NI", "NV", "DSO", "PS", "NO", "AOS"};
}

std::vector<Website> generate_corpus(int count, Rng& rng) {
  require(count > 0, "generate_corpus: count must be positive");
  std::vector<Website> corpus;
  corpus.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Website site;
    site.domain = "site-" + std::to_string(i) + ".example";
    // Object count: lognormal, median ~60, clamped to the Fig. 19 range.
    site.object_count = static_cast<int>(std::clamp(
        rng.lognormal(std::log(60.0), 0.9), 3.0, 1000.0));
    // Page size: correlated with object count plus lognormal spread,
    // spanning <1 MB to >10 MB (Fig. 19b bins).
    const double size_mu =
        std::log(0.035 * static_cast<double>(site.object_count) + 0.4);
    site.total_page_size_mb =
        std::clamp(rng.lognormal(size_mu, 0.7), 0.05, 60.0);
    // Media mix.
    site.image_count = static_cast<int>(
        rng.uniform(0.3, 0.75) * static_cast<double>(site.object_count));
    site.video_count =
        rng.bernoulli(0.25)
            ? static_cast<int>(rng.uniform_int(1, 4))
            : 0;
    // Dynamic content (ads, scripts, API calls).
    const double dyn_fraction = std::clamp(rng.normal(0.35, 0.22), 0.0, 0.97);
    site.dynamic_object_count = static_cast<int>(
        dyn_fraction * static_cast<double>(site.object_count));
    site.dynamic_size_fraction =
        std::clamp(dyn_fraction * rng.uniform(0.5, 1.3), 0.0, 0.98);
    corpus.push_back(site);
  }
  return corpus;
}

}  // namespace wild5g::web
