#include "web/page_load.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "radio/channel.h"

namespace wild5g::web {

PageLoadConfig mmwave_page_config() {
  PageLoadConfig config;
  config.network = {radio::Carrier::kVerizon, radio::Band::kNrMmWave,
                    radio::DeploymentMode::kNsa};
  config.ue = radio::pixel5();
  config.rtt_ms = 26.0;
  config.rsrp_dbm = -80.0;
  return config;
}

PageLoadConfig lte_page_config() {
  PageLoadConfig config;
  config.network = {radio::Carrier::kVerizon, radio::Band::kLte,
                    radio::DeploymentMode::kNsa};
  config.ue = radio::pixel5();
  config.rtt_ms = 42.0;
  config.rsrp_dbm = -85.0;
  return config;
}

namespace {

constexpr double kInitialWindowKb = 14.6;  // 10 x 1460B segments

/// Time to fetch one object of `size_kb` on a connection whose fair share
/// of the link is `share_mbps`: request RTT, slow-start ramp, bulk residual,
/// and server think time for dynamically generated content.
double object_fetch_s(double size_kb, bool dynamic,
                      const PageLoadConfig& config, double share_mbps,
                      Rng& rng) {
  const double rtt_s = config.rtt_ms / 1000.0;
  const double think_s =
      dynamic ? (config.dynamic_think_ms / 1000.0) * rng.uniform(0.6, 1.6)
              : 0.0;
  const double ramp_rounds =
      std::min(6.0, std::ceil(std::log2(1.0 + size_kb / kInitialWindowKb)));
  const double ramp_s = 0.5 * ramp_rounds * rtt_s;  // pipelined overlap
  const double bulk_s = (size_kb * 8.0 / 1024.0) / std::max(1.0, share_mbps);
  return rtt_s + think_s + ramp_s + bulk_s;
}

}  // namespace

PageLoadResult load_page(const Website& site, const PageLoadConfig& config,
                         const power::DevicePowerProfile& device, Rng& rng) {
  require(site.object_count > 0, "load_page: empty website");
  require(config.parallel_connections > 0, "load_page: no connections");

  // Fault-failure predicate for one object. Checked *before* any per-object
  // rng draws, and failed objects draw nothing — so with a null injector the
  // draw sequence is byte-identical to the pre-fault code path.
  auto fetch_fails = [&](std::size_t object_index, double t_s) {
    return config.faults != nullptr &&
           config.faults->object_fetch_fails(config.fault_salt, object_index,
                                             t_s);
  };

  const double capacity_mbps =
      radio::link_capacity_mbps(config.network, config.ue,
                                radio::Direction::kDownlink, config.rsrp_dbm) *
      rng.uniform(0.85, 1.0);
  const double share_mbps =
      capacity_mbps / static_cast<double>(config.parallel_connections);
  const double rtt_s = config.rtt_ms / 1000.0;

  // Object sizes: lognormal split of the page, dynamic objects flagged by
  // the site's dynamic fraction.
  std::vector<double> sizes_kb(static_cast<std::size_t>(site.object_count));
  double raw_total = 0.0;
  for (auto& s : sizes_kb) {
    s = rng.lognormal(std::log(30.0), 1.2);
    raw_total += s;
  }
  const double scale = site.total_page_size_mb * 1024.0 / raw_total;
  for (auto& s : sizes_kb) s *= scale;

  // Dependency rounds: the root document, then discovered resources, then
  // script-injected content. Dynamic-heavy pages need more rounds.
  const int rounds = 2 + static_cast<int>(
                             std::round(3.0 * site.dynamic_object_fraction()));
  std::vector<std::vector<std::size_t>> round_objects(
      static_cast<std::size_t>(rounds));
  round_objects[0].push_back(0);  // root document
  for (std::size_t i = 1; i < sizes_kb.size(); ++i) {
    const auto round = static_cast<std::size_t>(
        rng.uniform_int(1, rounds - 1));
    round_objects[round].push_back(i);
  }

  const double setup_s = 2.5 * rtt_s;  // DNS + TCP + TLS
  double plt = setup_s;
  PageLoadResult result;

  auto record = [&](double from_s, double duration_s, double mbits) {
    // Spread the round's bits uniformly over its duration into 1 s buckets.
    if (duration_s <= 0.0 || mbits <= 0.0) return;
    const double rate = mbits / duration_s;
    double t = from_s;
    const double end = from_s + duration_s;
    while (t < end) {
      const double bucket_end = std::floor(t) + 1.0;
      const double slice = std::min(bucket_end, end) - t;
      const auto bucket = static_cast<std::size_t>(t);
      if (result.per_second_dl_mbps.size() <= bucket) {
        result.per_second_dl_mbps.resize(bucket + 1, 0.0);
      }
      result.per_second_dl_mbps[bucket] += rate * slice;
      t += slice;
    }
  };

  const double dyn_fraction = site.dynamic_object_fraction();
  for (std::size_t round = 0; round < round_objects.size(); ++round) {
    const auto& objects = round_objects[round];
    if (objects.empty()) continue;
    if (config.multiplexed) {
      // One warm stream: a single request round-trip, then the round's
      // bytes at (nearly) the full link share; dynamic think times overlap
      // on the server and only the slowest one gates the stream.
      double round_mbits = 0.0;
      double max_think_s = 0.0;
      for (auto index : objects) {
        if (fetch_fails(index, plt)) {
          // The failed stream transfers nothing; the client abandons it at
          // the timeout, which gates the round like the slowest think time.
          ++result.failed_objects;
          max_think_s = std::max(max_think_s, config.object_timeout_s);
          continue;
        }
        round_mbits += sizes_kb[index] * 8.0 / 1024.0;
        if (rng.bernoulli(dyn_fraction)) {
          max_think_s = std::max(
              max_think_s, config.dynamic_think_ms / 1000.0 *
                               rng.uniform(0.6, 1.6));
        }
      }
      const double round_s = rtt_s + max_think_s +
                             round_mbits / std::max(1.0, capacity_mbps * 0.85);
      record(plt, round_s, round_mbits);
      plt += round_s;
      if (round + 1 < round_objects.size()) {
        plt += config.parse_round_ms / 1000.0;
      }
      continue;
    }
    // Greedy makespan over the connection pool: longest objects first.
    std::vector<double> durations;
    durations.reserve(objects.size());
    double round_mbits = 0.0;
    for (auto index : objects) {
      if (fetch_fails(index, plt)) {
        // Failed fetch: holds its connection slot until the client's
        // timeout, delivers no bytes, consumes no rng draws.
        ++result.failed_objects;
        durations.push_back(config.object_timeout_s);
        continue;
      }
      const bool dynamic = rng.bernoulli(dyn_fraction);
      durations.push_back(
          object_fetch_s(sizes_kb[index], dynamic, config, share_mbps, rng));
      round_mbits += sizes_kb[index] * 8.0 / 1024.0;
    }
    std::sort(durations.rbegin(), durations.rend());
    std::vector<double> workers(
        static_cast<std::size_t>(config.parallel_connections), 0.0);
    for (double d : durations) {
      auto slot = std::min_element(workers.begin(), workers.end());
      *slot += d;
    }
    const double round_s = *std::max_element(workers.begin(), workers.end());
    record(plt, round_s, round_mbits);
    plt += round_s;
    if (round + 1 < round_objects.size()) {
      plt += config.parse_round_ms / 1000.0;  // parse/JS gap, radio idle
    }
  }
  result.plt_s = plt;

  // Radio energy across the load: rail power at each second's throughput
  // (the radio stays in CONNECTED for the whole load).
  const power::RailKey rail = power::rail_key(config.network);
  if (result.per_second_dl_mbps.size() <
      static_cast<std::size_t>(std::ceil(plt))) {
    result.per_second_dl_mbps.resize(
        static_cast<std::size_t>(std::ceil(plt)), 0.0);
  }
  for (std::size_t s = 0; s < result.per_second_dl_mbps.size(); ++s) {
    const double second_span =
        std::min(1.0, plt - static_cast<double>(s));
    if (second_span <= 0.0) break;
    const double dl = result.per_second_dl_mbps[s];
    result.energy_j += device.transfer_power_mw(rail, dl, dl * 0.05,
                                                config.rsrp_dbm) /
                       1000.0 * second_span;
  }
  return result;
}

}  // namespace wild5g::web
