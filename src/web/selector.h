// wild5g/web: decision-tree radio interface selection for web browsing
// (Sec. 6.2, Table 6, Fig. 22).
//
// For each website, both radios are measured (PLT and energy); a per-site
// label is derived from the tunable utility QoE = alpha*EC + beta*PLT over
// normalized metrics, and a Gini decision tree learns to pick the radio from
// the Table-5 page features alone.
#pragma once

#include <string>
#include <vector>

#include "core/rng.h"
#include "ml/decision_tree.h"
#include "power/power_model.h"
#include "web/page_load.h"
#include "web/website.h"

namespace wild5g::web {

/// Both-radio measurement of one website (means over repeats).
struct SiteMeasurement {
  Website site;
  double plt_4g_s = 0.0;
  double plt_5g_s = 0.0;
  double energy_4g_j = 0.0;
  double energy_5g_j = 0.0;
  /// Total fault-failed object fetches across all loads of this site
  /// (always 0 when no injector is passed to measure_corpus).
  int failed_objects = 0;
};

/// Loads every site on both radios `repeats` times (the paper repeats >= 8).
/// With a fault injector, failed objects degrade each load's PLT (timeout
/// slots) and are tallied per site; the campaign itself never aborts. Each
/// site keys the injector's object-failure decisions with its corpus index,
/// so one plan fails different object subsets on different sites.
[[nodiscard]] std::vector<SiteMeasurement> measure_corpus(
    const std::vector<Website>& corpus, int repeats,
    const power::DevicePowerProfile& device, Rng& rng,
    const faults::Injector* faults = nullptr);

/// The five QoE weightings of Table 6.
struct QoeWeights {
  std::string id;           // "M1".."M5"
  std::string description;  // "High Performance" etc.
  double alpha = 0.5;       // energy weight
  double beta = 0.5;        // PLT weight
};

[[nodiscard]] std::vector<QoeWeights> paper_qoe_models();

enum class RadioChoice { kUse4g = 0, kUse5g = 1 };

/// Learns and applies the 4G/5G choice for one QoE weighting.
class InterfaceSelector {
 public:
  explicit InterfaceSelector(QoeWeights weights);

  /// Trains on measurements (labels derived internally from the utility).
  void train(std::span<const SiteMeasurement> train_set, Rng& rng);

  /// The utility-optimal label for a measurement (needs both-radio data).
  [[nodiscard]] RadioChoice oracle_choice(const SiteMeasurement& m) const;

  /// Prediction from page features alone.
  [[nodiscard]] RadioChoice predict(const Website& site) const;

  /// Fraction of test measurements where predict() matches oracle_choice().
  [[nodiscard]] double accuracy(
      std::span<const SiteMeasurement> test_set) const;

  struct ChoiceCounts {
    int use_4g = 0;
    int use_5g = 0;
  };
  [[nodiscard]] ChoiceCounts counts(
      std::span<const SiteMeasurement> test_set) const;

  /// Mean energy saved (percent, relative to always-5G) and mean PLT
  /// inflation (percent) of following the selector on a test set.
  struct Outcome {
    double energy_saving_percent = 0.0;
    double plt_penalty_percent = 0.0;
  };
  [[nodiscard]] Outcome outcome(
      std::span<const SiteMeasurement> test_set) const;

  [[nodiscard]] std::string describe_tree() const;
  [[nodiscard]] std::vector<double> feature_importances() const;
  [[nodiscard]] const QoeWeights& weights() const { return weights_; }

 private:
  QoeWeights weights_;
  ml::DecisionTreeClassifier tree_;
  double plt_norm_s_ = 1.0;     // normalization denominators (train set)
  double energy_norm_j_ = 1.0;
};

}  // namespace wild5g::web
