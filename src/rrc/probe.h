// wild5g/rrc: RRC-Probe — unrooted RRC timer inference (Sec. 4.1).
//
// A server sends UDP packets to the UE at increasing idle intervals and the
// UE acks each one; the observed RTT depends on the RRC state the packet
// finds the UE in. Sweeping the interval and locating the RTT plateaus
// recovers the state machine's timers without chipset diagnostics.
#pragma once

#include <optional>
#include <vector>

#include "core/rng.h"
#include "rrc/rrc_config.h"
#include "rrc/state_machine.h"

namespace wild5g::rrc {

/// The probing ladder: idle gaps from `min_gap_ms` to `max_gap_ms` in steps
/// of `step_ms`, each measured `repeats` times.
struct ProbeSchedule {
  double min_gap_ms = 200.0;
  double max_gap_ms = 16000.0;
  double step_ms = 200.0;
  int repeats = 21;
};

/// One probe measurement.
struct ProbeSample {
  double gap_ms = 0.0;
  double rtt_ms = 0.0;
  RrcState true_state = RrcState::kIdle;  // ground truth, for validation
};

/// Runs the probe ladder against the ground-truth machine `config`.
/// Deterministic in `rng`.
[[nodiscard]] std::vector<ProbeSample> run_probe(const RrcConfig& config,
                                                 const ProbeSchedule& schedule,
                                                 Rng& rng);

/// Timers and levels recovered from probe samples.
struct InferenceResult {
  /// Estimated UE-inactivity (tail) timer: last gap still at the base level.
  double tail_timer_ms = 0.0;
  /// End of the intermediate plateau (NSA anchor tail or SA INACTIVE hold),
  /// when a three-level structure is present.
  std::optional<double> mid_plateau_end_ms;
  double connected_level_rtt_ms = 0.0;
  std::optional<double> mid_level_rtt_ms;
  double idle_level_rtt_ms = 0.0;
  /// DRX cycle estimates from the RTT spread within each plateau.
  double long_drx_estimate_ms = 0.0;
  double idle_drx_estimate_ms = 0.0;
  /// Promotion delay estimate: idle-level mean minus base minus mean paging
  /// wait (half the idle-DRX cycle).
  double promotion_estimate_ms = 0.0;
};

/// Infers the state machine's parameters from probe samples (no access to
/// the generating config).
[[nodiscard]] InferenceResult infer_rrc_parameters(
    std::vector<ProbeSample> samples);

/// A probe schedule long enough to see all plateaus of `config` (the paper
/// probes to 40 s for Verizon's DSS low-band dual tail, 16 s otherwise).
[[nodiscard]] ProbeSchedule schedule_for(const RrcConfig& config);

}  // namespace wild5g::rrc
