#include "rrc/state_machine.h"

#include <algorithm>
#include <limits>

#include "core/error.h"

namespace wild5g::rrc {

RrcState state_after_gap(const RrcConfig& config, double gap_ms) {
  require(gap_ms >= 0.0, "state_after_gap: negative gap");
  // Strict comparisons: a timer expiring at exactly T has transitioned the
  // UE at T (matches the event-driven LiveRrcMachine's semantics).
  if (gap_ms < config.inactivity_timer_ms) return RrcState::kConnected;
  if (config.anchor_tail_ms && gap_ms < *config.anchor_tail_ms) {
    return RrcState::kConnectedAnchor;
  }
  if (config.inactive_hold_ms &&
      gap_ms < config.inactivity_timer_ms + *config.inactive_hold_ms) {
    return RrcState::kInactive;
  }
  return RrcState::kIdle;
}

namespace {

/// Promotion delay applicable when a packet finds the UE in RRC_IDLE.
double promotion_delay_ms(const RrcConfig& config) {
  if (radio::is_nr(config.network.band) && config.promotion_5g_ms) {
    return *config.promotion_5g_ms;
  }
  // DSS low-band or plain 4G: service resumes over the LTE leg first.
  if (config.promotion_4g_ms) return *config.promotion_4g_ms;
  return 0.0;
}

}  // namespace

double probe_rtt_ms(const RrcConfig& config, double gap_ms, Rng& rng) {
  const RrcState state = state_after_gap(config, gap_ms);
  // Measurement noise on the wire component of the RTT.
  const double jitter = std::max(0.0, rng.normal(0.0, 3.0));
  switch (state) {
    case RrcState::kConnected: {
      // Within the continuous-reception window the radio is listening;
      // afterwards the packet waits for the next Long-DRX on-duration.
      const double drx_wait = gap_ms <= config.short_drx_boundary_ms
                                  ? 0.0
                                  : rng.uniform(0.0, config.long_drx_cycle_ms);
      return config.base_rtt_ms + drx_wait + jitter;
    }
    case RrcState::kConnectedAnchor: {
      const double drx_wait = rng.uniform(0.0, config.long_drx_cycle_ms);
      return config.anchor_rtt_ms + drx_wait + jitter;
    }
    case RrcState::kInactive: {
      // Lightweight resume: no core signaling, short paging cycle.
      const double paging_wait =
          rng.uniform(0.0, std::min(config.idle_drx_cycle_ms, 320.0));
      return config.base_rtt_ms + config.inactive_resume_ms + paging_wait +
             jitter;
    }
    case RrcState::kIdle: {
      const double paging_wait = rng.uniform(0.0, config.idle_drx_cycle_ms);
      return config.base_rtt_ms + promotion_delay_ms(config) + paging_wait +
             jitter;
    }
  }
  return config.base_rtt_ms + jitter;
}

std::vector<StateSegment> build_timeline(const RrcConfig& config,
                                         std::span<const ActivityBurst> bursts,
                                         double horizon_ms) {
  require(horizon_ms > 0.0, "build_timeline: horizon must be positive");
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    require(bursts[i].start_ms < bursts[i].end_ms,
            "build_timeline: empty burst");
    require(bursts[i].end_ms <= horizon_ms,
            "build_timeline: burst beyond horizon");
    if (i > 0) {
      require(bursts[i - 1].end_ms <= bursts[i].start_ms,
              "build_timeline: bursts must be sorted and disjoint");
    }
  }

  std::vector<StateSegment> timeline;
  auto emit = [&](double start, double end, RrcState state, bool transferring,
                  bool promoting, double dl, double ul) {
    if (end - start <= 0.0) return;
    timeline.push_back({start, end, state, transferring, promoting, dl, ul});
  };

  // Emits the post-activity decay chain starting at `from` until `until`.
  auto emit_tail_chain = [&](double from, double until) {
    double at = from;
    const double tail_end =
        std::min(until, from + config.inactivity_timer_ms);
    emit(at, tail_end, RrcState::kConnected, false, false, 0.0, 0.0);
    at = tail_end;
    if (at >= until) return;
    if (config.anchor_tail_ms) {
      const double anchor_end = std::min(until, from + *config.anchor_tail_ms);
      emit(at, anchor_end, RrcState::kConnectedAnchor, false, false, 0.0, 0.0);
      at = anchor_end;
      if (at >= until) return;
    } else if (config.inactive_hold_ms) {
      const double inactive_end =
          std::min(until, tail_end + *config.inactive_hold_ms);
      emit(at, inactive_end, RrcState::kInactive, false, false, 0.0, 0.0);
      at = inactive_end;
      if (at >= until) return;
    }
    emit(at, until, RrcState::kIdle, false, false, 0.0, 0.0);
  };

  double last_activity_end = -1.0;  // -1: no activity yet (start in IDLE)
  for (const auto& burst : bursts) {
    // Fill the gap before this burst.
    if (last_activity_end < 0.0) {
      emit(0.0, burst.start_ms, RrcState::kIdle, false, false, 0.0, 0.0);
    } else {
      emit_tail_chain(last_activity_end, burst.start_ms);
    }

    // Promotion cost depends on the state the burst finds the UE in.
    const double gap = last_activity_end < 0.0
                           ? std::numeric_limits<double>::infinity()
                           : burst.start_ms - last_activity_end;
    const RrcState found = last_activity_end < 0.0
                               ? RrcState::kIdle
                               : state_after_gap(config, gap);
    double promo = 0.0;
    if (found == RrcState::kIdle) {
      promo = promotion_delay_ms(config);
    } else if (found == RrcState::kInactive) {
      promo = config.inactive_resume_ms;
    } else if (found == RrcState::kConnectedAnchor &&
               radio::is_nr(config.network.band)) {
      // NR leg must be re-added to the anchor (secondary-cell addition).
      promo = config.promotion_5g_ms.value_or(0.0) * 0.25;
    }
    promo = std::min(promo, burst.end_ms - burst.start_ms);
    emit(burst.start_ms, burst.start_ms + promo, RrcState::kConnected, false,
         true, 0.0, 0.0);
    emit(burst.start_ms + promo, burst.end_ms, RrcState::kConnected, true,
         false, burst.dl_mbps, burst.ul_mbps);
    last_activity_end = burst.end_ms;
  }

  // Decay after the final burst.
  if (last_activity_end < 0.0) {
    emit(0.0, horizon_ms, RrcState::kIdle, false, false, 0.0, 0.0);
  } else {
    emit_tail_chain(last_activity_end, horizon_ms);
  }
  return timeline;
}

}  // namespace wild5g::rrc
