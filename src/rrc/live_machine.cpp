#include "rrc/live_machine.h"

#include <algorithm>

#include "core/error.h"

namespace wild5g::rrc {

LiveRrcMachine::LiveRrcMachine(const RrcConfig& config, sim::Simulator& sim)
    : config_(config), sim_(sim) {}

void LiveRrcMachine::enter(RrcState next) {
  if (next == state_) return;
  transitions_.push_back({sim_.now_ms(), state_, next});
  state_ = next;
}

void LiveRrcMachine::arm(double delay_ms, RrcState next) {
  sim_.cancel(pending_timer_);
  pending_timer_ = sim_.schedule_in(delay_ms, [this, next] {
    enter(next);
    // Chain the decay: CONNECTED -> (anchor | INACTIVE) -> IDLE.
    if (next == RrcState::kConnectedAnchor) {
      arm(*config_.anchor_tail_ms - config_.inactivity_timer_ms,
          RrcState::kIdle);
    } else if (next == RrcState::kInactive) {
      arm(*config_.inactive_hold_ms, RrcState::kIdle);
    }
  });
}

double LiveRrcMachine::on_packet(Rng& rng) {
  const double now = sim_.now_ms();
  const double jitter = std::max(0.0, rng.normal(0.0, 3.0));
  double rtt = jitter;
  switch (state_) {
    case RrcState::kConnected: {
      const double gap = last_activity_ms_ < 0.0
                             ? 0.0
                             : now - last_activity_ms_;
      const double drx_wait = gap <= config_.short_drx_boundary_ms
                                  ? 0.0
                                  : rng.uniform(0.0, config_.long_drx_cycle_ms);
      rtt += config_.base_rtt_ms + drx_wait;
      break;
    }
    case RrcState::kConnectedAnchor:
      rtt += config_.anchor_rtt_ms +
             rng.uniform(0.0, config_.long_drx_cycle_ms);
      break;
    case RrcState::kInactive:
      rtt += config_.base_rtt_ms + config_.inactive_resume_ms +
             rng.uniform(0.0, std::min(config_.idle_drx_cycle_ms, 320.0));
      break;
    case RrcState::kIdle: {
      double promotion = 0.0;
      if (radio::is_nr(config_.network.band) && config_.promotion_5g_ms) {
        promotion = *config_.promotion_5g_ms;
      } else if (config_.promotion_4g_ms) {
        promotion = *config_.promotion_4g_ms;
      }
      rtt += config_.base_rtt_ms + promotion +
             rng.uniform(0.0, config_.idle_drx_cycle_ms);
      break;
    }
  }
  enter(RrcState::kConnected);
  last_activity_ms_ = now;
  // Decay chain restarts from this activity.
  if (config_.anchor_tail_ms) {
    arm(config_.inactivity_timer_ms, RrcState::kConnectedAnchor);
  } else if (config_.inactive_hold_ms) {
    arm(config_.inactivity_timer_ms, RrcState::kInactive);
  } else {
    arm(config_.inactivity_timer_ms, RrcState::kIdle);
  }
  return rtt;
}

std::vector<ProbeSample> run_probe_des(const RrcConfig& config,
                                       const ProbeSchedule& schedule,
                                       Rng& rng) {
  require(schedule.min_gap_ms > 0.0 && schedule.step_ms > 0.0 &&
              schedule.max_gap_ms >= schedule.min_gap_ms &&
              schedule.repeats > 0,
          "run_probe_des: invalid schedule");
  sim::Simulator sim;
  LiveRrcMachine machine(config, sim);
  std::vector<ProbeSample> samples;

  for (double gap = schedule.min_gap_ms; gap <= schedule.max_gap_ms + 1e-9;
       gap += schedule.step_ms) {
    // Warm-up packet establishes the activity anchor for this rung.
    (void)machine.on_packet(rng);
    for (int r = 0; r < schedule.repeats; ++r) {
      sim.run_until(sim.now_ms() + gap);
      const RrcState before = machine.state();
      const double rtt = machine.on_packet(rng);
      samples.push_back({gap, rtt, before});
    }
  }
  return samples;
}

}  // namespace wild5g::rrc
