#include "rrc/rrc_config.h"

#include <vector>

#include "core/error.h"

namespace wild5g::rrc {

using radio::Band;
using radio::Carrier;
using radio::DeploymentMode;
using radio::NetworkConfig;

std::string to_string(RrcState state) {
  switch (state) {
    case RrcState::kConnected: return "RRC_CONNECTED";
    case RrcState::kConnectedAnchor: return "LTE_RRC_CONNECTED (anchor)";
    case RrcState::kInactive: return "RRC_INACTIVE";
    case RrcState::kIdle: return "RRC_IDLE";
  }
  return "?";
}

std::span<const RrcProfile> table7_profiles() {
  static const std::vector<RrcProfile> kProfiles = [] {
    std::vector<RrcProfile> profiles;

    {  // T-Mobile SA low-band: RRC_INACTIVE, fast direct NR promotion.
      RrcConfig c;
      c.name = "T-Mobile SA low-band";
      c.network = {Carrier::kTMobile, Band::kNrLowBand, DeploymentMode::kSa};
      c.inactivity_timer_ms = 10400.0;
      c.inactive_hold_ms = 5000.0;  // observed between the 10 s and 15 s gaps
      c.long_drx_cycle_ms = 40.0;
      c.idle_drx_cycle_ms = 1250.0;
      c.promotion_4g_ms = std::nullopt;
      c.promotion_5g_ms = 341.0;
      c.base_rtt_ms = 32.0;
      // Table 2 reports 245 mW for SA's IDLE->CONNECTED signaling burst
      // (there is no 4G anchor to switch from).
      profiles.push_back({c, {.tail_mw = 593.0, .switch_mw = 245.0,
                              .inactive_mw = 140.0, .idle_mw = 22.0,
                              .promotion_mw = 245.0}});
    }
    {  // T-Mobile NSA low-band: dual tail (NR then LTE anchor).
      RrcConfig c;
      c.name = "T-Mobile NSA low-band";
      c.network = {Carrier::kTMobile, Band::kNrLowBand, DeploymentMode::kNsa};
      c.inactivity_timer_ms = 10400.0;
      c.anchor_tail_ms = 12120.0;
      c.long_drx_cycle_ms = 320.0;
      c.idle_drx_cycle_ms = 1200.0;
      c.promotion_4g_ms = 210.0;
      c.promotion_5g_ms = 1440.0;
      c.base_rtt_ms = 32.0;
      c.anchor_rtt_ms = 52.0;
      profiles.push_back({c, {.tail_mw = 260.0, .switch_mw = 699.0,
                              .anchor_tail_mw = 95.0, .idle_mw = 20.0,
                              .promotion_mw = 420.0}});
    }
    {  // Verizon NSA mmWave.
      RrcConfig c;
      c.name = "Verizon NSA mmWave";
      c.network = {Carrier::kVerizon, Band::kNrMmWave, DeploymentMode::kNsa};
      c.inactivity_timer_ms = 10500.0;
      c.long_drx_cycle_ms = 320.0;
      c.idle_drx_cycle_ms = 1280.0;
      c.promotion_4g_ms = 396.0;
      c.promotion_5g_ms = 1907.0;
      c.base_rtt_ms = 26.0;
      profiles.push_back({c, {.tail_mw = 1092.0, .switch_mw = 1494.0,
                              .idle_mw = 28.0, .promotion_mw = 560.0}});
    }
    {  // Verizon NSA low-band (DSS): dual tail, no separate 5G promotion.
      RrcConfig c;
      c.name = "Verizon NSA low-band (DSS)";
      c.network = {Carrier::kVerizon, Band::kNrLowBand, DeploymentMode::kNsa};
      c.inactivity_timer_ms = 10200.0;
      c.anchor_tail_ms = 18800.0;
      c.long_drx_cycle_ms = 400.0;
      c.idle_drx_cycle_ms = 1100.0;
      c.promotion_4g_ms = 288.0;
      c.promotion_5g_ms = std::nullopt;
      c.base_rtt_ms = 34.0;
      c.anchor_rtt_ms = 56.0;
      profiles.push_back({c, {.tail_mw = 249.0, .switch_mw = 799.0,
                              .anchor_tail_mw = 100.0, .idle_mw = 21.0,
                              .promotion_mw = 400.0}});
    }
    {  // T-Mobile 4G.
      RrcConfig c;
      c.name = "T-Mobile 4G";
      c.network = {Carrier::kTMobile, Band::kLte, DeploymentMode::kNsa};
      c.inactivity_timer_ms = 5000.0;
      c.long_drx_cycle_ms = 400.0;
      c.idle_drx_cycle_ms = 1300.0;
      c.promotion_4g_ms = 190.0;
      c.promotion_5g_ms = std::nullopt;
      c.base_rtt_ms = 42.0;
      profiles.push_back({c, {.tail_mw = 66.0, .idle_mw = 16.0,
                              .promotion_mw = 320.0}});
    }
    {  // Verizon 4G.
      RrcConfig c;
      c.name = "Verizon 4G";
      c.network = {Carrier::kVerizon, Band::kLte, DeploymentMode::kNsa};
      c.inactivity_timer_ms = 10200.0;
      c.long_drx_cycle_ms = 300.0;
      c.idle_drx_cycle_ms = 1280.0;
      c.promotion_4g_ms = 265.0;
      c.promotion_5g_ms = std::nullopt;
      c.base_rtt_ms = 44.0;
      profiles.push_back({c, {.tail_mw = 178.0, .idle_mw = 18.0,
                              .promotion_mw = 350.0}});
    }
    return profiles;
  }();
  return kProfiles;
}

const RrcProfile& profile_by_name(const std::string& name) {
  for (const auto& profile : table7_profiles()) {
    if (profile.config.name == name) return profile;
  }
  throw Error("rrc::profile_by_name: unknown profile '" + name + "'");
}

}  // namespace wild5g::rrc
