// wild5g/rrc: Radio Resource Control state-machine configurations.
//
// Encodes the per-carrier RRC timers the paper inferred with RRC-Probe
// (Table 7) and the per-state power levels it measured with the Monsoon
// monitor (Table 2). These configs parameterize both the ground-truth state
// machine the probe runs against and the power-waveform synthesizer.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "radio/types.h"

namespace wild5g::rrc {

/// RRC protocol states. kInactive exists only in SA 5G (3GPP TS 38.331);
/// NSA 5G inherits the 4G-like CONNECTED/IDLE machine.
enum class RrcState { kConnected, kConnectedAnchor, kInactive, kIdle };

[[nodiscard]] std::string to_string(RrcState state);

/// Timers of one network's RRC machine (Table 7), all in milliseconds.
struct RrcConfig {
  std::string name;
  radio::NetworkConfig network;

  double inactivity_timer_ms = 10000.0;  // CONNECTED tail (UE-inactivity)
  /// NSA only: after the NR leg is released the UE lingers in the LTE
  /// anchor's CONNECTED state until this (absolute) timer; the bracketed
  /// second values of Table 7. nullopt when there is no dual tail.
  std::optional<double> anchor_tail_ms;
  /// SA only: dwell time in RRC_INACTIVE before demoting to IDLE
  /// (the paper observes ~5 s, between the 10 s and 15 s probe gaps).
  std::optional<double> inactive_hold_ms;

  double long_drx_cycle_ms = 320.0;  // DRX cycle while in CONNECTED tail
  double idle_drx_cycle_ms = 1280.0; // paging cycle while in IDLE
  double short_drx_boundary_ms = 100.0;  // continuous-reception window

  /// Promotion delays from IDLE (N/A encoded as nullopt).
  std::optional<double> promotion_4g_ms;
  std::optional<double> promotion_5g_ms;
  /// SA only: lightweight INACTIVE -> CONNECTED resume latency.
  double inactive_resume_ms = 95.0;

  /// Base (promoted, uncongested) round-trip time of a small probe packet.
  double base_rtt_ms = 30.0;
  /// RTT of packets delivered over the LTE anchor leg (NSA dual tail).
  double anchor_rtt_ms = 55.0;

  [[nodiscard]] bool is_sa() const {
    return radio::is_nr(network.band) &&
           network.mode == radio::DeploymentMode::kSa;
  }
  [[nodiscard]] bool is_nsa_5g() const {
    return radio::is_nr(network.band) &&
           network.mode == radio::DeploymentMode::kNsa;
  }
};

/// Radio power levels of one network's RRC states (Table 2), in milliwatts.
struct RrcPowerParams {
  double tail_mw = 200.0;        // average over the CONNECTED-tail period
  double switch_mw = 0.0;        // extra power during 4G->5G switch (NSA)
  double anchor_tail_mw = 120.0; // LTE-anchor tail (NSA dual tail)
  double inactive_mw = 140.0;    // RRC_INACTIVE (SA)
  double idle_mw = 25.0;         // RRC_IDLE paging floor
  double promotion_mw = 450.0;   // signaling burst during IDLE->CONNECTED
};

/// One fully described network: timers + power levels.
struct RrcProfile {
  RrcConfig config;
  RrcPowerParams power;
};

/// The six network configurations of Table 7 / Fig. 25, in paper order:
/// T-Mobile SA low-band, T-Mobile NSA low-band, Verizon NSA mmWave,
/// Verizon NSA low-band (DSS), T-Mobile 4G, Verizon 4G.
[[nodiscard]] std::span<const RrcProfile> table7_profiles();

/// Lookup by human-readable name; throws wild5g::Error when unknown.
[[nodiscard]] const RrcProfile& profile_by_name(const std::string& name);

}  // namespace wild5g::rrc
