// wild5g/rrc: ground-truth RRC state evolution.
//
// Two views of the same machine:
//  - state_after_gap / probe_rtt_ms: what a probe packet experiences after a
//    given idle gap (drives RRC-Probe, Sec. 4.1 / Fig. 10).
//  - build_timeline: state segments for an activity schedule (drives the
//    power-waveform synthesizer, Sec. 4.2 / Table 2).
#pragma once

#include <span>
#include <vector>

#include "core/rng.h"
#include "rrc/rrc_config.h"

namespace wild5g::rrc {

/// RRC state a UE is in `gap_ms` after its last data activity ended.
[[nodiscard]] RrcState state_after_gap(const RrcConfig& config, double gap_ms);

/// Simulated RTT of one small probe packet arriving `gap_ms` after the last
/// activity: base RTT + DRX phase wait + any promotion/resume latency.
/// Stochastic in the DRX phase; deterministic in `rng`.
[[nodiscard]] double probe_rtt_ms(const RrcConfig& config, double gap_ms,
                                  Rng& rng);

/// A period of application data transfer.
struct ActivityBurst {
  double start_ms = 0.0;
  double end_ms = 0.0;
  double dl_mbps = 0.0;
  double ul_mbps = 0.0;
};

/// One homogeneous span of the RRC/power timeline.
struct StateSegment {
  double start_ms = 0.0;
  double end_ms = 0.0;
  RrcState state = RrcState::kIdle;
  bool transferring = false;  // data moving (use throughput power model)
  bool promoting = false;     // IDLE->CONNECTED signaling burst in progress
  double dl_mbps = 0.0;
  double ul_mbps = 0.0;

  [[nodiscard]] double duration_ms() const { return end_ms - start_ms; }
};

/// Expands an activity schedule into the full state timeline over
/// [0, horizon_ms]. Bursts must be sorted, non-overlapping, and inside the
/// horizon. The UE starts in RRC_IDLE. Promotion latency consumes the head
/// of each burst that finds the UE outside CONNECTED.
[[nodiscard]] std::vector<StateSegment> build_timeline(
    const RrcConfig& config, std::span<const ActivityBurst> bursts,
    double horizon_ms);

}  // namespace wild5g::rrc
