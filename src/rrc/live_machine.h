// wild5g/rrc: event-driven RRC machine on the discrete-event simulator.
//
// The closed-form model in state_machine.h answers "what state after a
// gap"; this class runs the same machine as live timers on a
// sim::Simulator — inactivity timer, anchor release, INACTIVE hold — the
// way a modem implements it. The two are cross-validated against each
// other in tests, and the DES version powers event-driven experiments
// (run_probe_des reproduces RRC-Probe as an actual packet exchange).
#pragma once

#include <vector>

#include "core/rng.h"
#include "rrc/probe.h"
#include "rrc/rrc_config.h"
#include "sim/simulator.h"

namespace wild5g::rrc {

class LiveRrcMachine {
 public:
  /// One logged state change.
  struct Transition {
    double at_ms = 0.0;
    RrcState from = RrcState::kIdle;
    RrcState to = RrcState::kIdle;
  };

  /// Attaches to `sim`; the UE starts in RRC_IDLE.
  LiveRrcMachine(const RrcConfig& config, sim::Simulator& sim);

  /// A downlink packet arrives at the current simulated time. Returns the
  /// full RTT the sender observes (base RTT + DRX paging wait + any
  /// promotion/resume signaling), promotes the UE to CONNECTED, and
  /// (re)arms the inactivity timer. Stochastic waits draw from `rng`.
  double on_packet(Rng& rng);

  [[nodiscard]] RrcState state() const { return state_; }
  [[nodiscard]] const std::vector<Transition>& transitions() const {
    return transitions_;
  }

 private:
  void enter(RrcState next);
  void arm(double delay_ms, RrcState next);

  const RrcConfig& config_;
  sim::Simulator& sim_;
  RrcState state_ = RrcState::kIdle;
  sim::EventId pending_timer_ = 0;
  double last_activity_ms_ = -1.0;
  std::vector<Transition> transitions_;
};

/// RRC-Probe as an actual discrete-event packet exchange: the server sends
/// one packet per ladder step, waits out the idle gap on the simulator
/// clock, and records the observed RTTs. Functionally equivalent to
/// run_probe() but exercises the live machine.
[[nodiscard]] std::vector<ProbeSample> run_probe_des(
    const RrcConfig& config, const ProbeSchedule& schedule, Rng& rng);

}  // namespace wild5g::rrc
