#include "rrc/probe.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/error.h"
#include "core/quantile_sketch.h"
#include "core/stats.h"

namespace wild5g::rrc {

std::vector<ProbeSample> run_probe(const RrcConfig& config,
                                   const ProbeSchedule& schedule, Rng& rng) {
  require(schedule.min_gap_ms > 0.0 && schedule.step_ms > 0.0 &&
              schedule.max_gap_ms >= schedule.min_gap_ms &&
              schedule.repeats > 0,
          "run_probe: invalid schedule");
  std::vector<ProbeSample> samples;
  for (double gap = schedule.min_gap_ms; gap <= schedule.max_gap_ms + 1e-9;
       gap += schedule.step_ms) {
    for (int r = 0; r < schedule.repeats; ++r) {
      samples.push_back({gap, probe_rtt_ms(config, gap, rng),
                         state_after_gap(config, gap)});
    }
  }
  return samples;
}

namespace {

struct GapStats {
  double gap_ms = 0.0;
  std::vector<double> rtts;
  /// Per-gap minimum RTT: the DRX phase wait is uniform over a cycle, so the
  /// minimum over many repeats converges on the state's floor latency. It is
  /// far more stable than any mid-quantile (whose sampling noise is
  /// proportional to the DRX cycle) and cleanly separates the plateaus.
  double floor_rtt = 0.0;
};

std::vector<GapStats> group_by_gap(std::vector<ProbeSample> samples) {
  std::map<double, std::vector<double>> groups;
  for (const auto& sample : samples) {
    groups[sample.gap_ms].push_back(sample.rtt_ms);
  }
  std::vector<GapStats> grouped;
  grouped.reserve(groups.size());
  for (auto& [gap, rtts] : groups) {
    GapStats gs;
    gs.gap_ms = gap;
    gs.floor_rtt = *std::min_element(rtts.begin(), rtts.end());
    gs.rtts = std::move(rtts);
    grouped.push_back(std::move(gs));
  }
  return grouped;
}

/// Mean of the floor statistic over gaps [from, to).
double window_level(const std::vector<GapStats>& gaps, std::size_t from,
                    std::size_t to) {
  double sum = 0.0;
  for (std::size_t i = from; i < to; ++i) sum += gaps[i].floor_rtt;
  return sum / static_cast<double>(to - from);
}

/// Change-point scan: indices i where the mean level of the next `w` gaps
/// exceeds the mean of the previous `w` gaps by an absolute + relative
/// threshold. Returns at most two boundaries (the machines have <= 3 levels).
std::vector<std::size_t> find_level_jumps(const std::vector<GapStats>& gaps) {
  constexpr std::size_t kWindow = 3;
  std::vector<std::size_t> jumps;
  std::size_t i = kWindow;
  while (i + kWindow <= gaps.size()) {
    const double before = window_level(gaps, i - kWindow, i);
    const double after = window_level(gaps, i, i + kWindow);
    const double threshold = std::max(12.0, 0.15 * before);
    if (after - before > threshold) {
      // Refine: the boundary is the first gap whose floor clears the jump.
      std::size_t boundary = i;
      for (std::size_t j = (i >= kWindow ? i - kWindow + 1 : 1);
           j < std::min(gaps.size(), i + kWindow); ++j) {
        if (gaps[j].floor_rtt > before + threshold) {
          boundary = j;
          break;
        }
      }
      jumps.push_back(boundary);
      if (jumps.size() == 2) break;
      i = boundary + kWindow;  // skip past the transition region
    } else {
      ++i;
    }
  }
  return jumps;
}

/// Pooled raw RTTs over gap indices [from, to), streamed into an
/// accumulator: probe ladders can pool thousands of RTTs per plateau, and
/// the accumulator keeps memory bounded while staying exact at this scale.
stats::SampleAccumulator pool(const std::vector<GapStats>& gaps,
                              std::size_t from, std::size_t to) {
  stats::SampleAccumulator all;
  for (std::size_t i = from; i < to; ++i) {
    all.add(std::span<const double>(gaps[i].rtts));
  }
  return all;
}

/// DRX cycle estimate from the RTT spread in a plateau: the wait is uniform
/// over one cycle, so (p90 - p10) covers 80% of it.
double drx_from_spread(const stats::SampleAccumulator& rtts) {
  if (rtts.count() < 10) return 0.0;
  return (rtts.percentile(90.0) - rtts.percentile(10.0)) / 0.8;
}

}  // namespace

InferenceResult infer_rrc_parameters(std::vector<ProbeSample> samples) {
  require(!samples.empty(), "infer_rrc_parameters: no samples");
  const auto gaps = group_by_gap(std::move(samples));
  require(gaps.size() >= 8, "infer_rrc_parameters: ladder too short");

  const auto jumps = find_level_jumps(gaps);
  require(!jumps.empty(),
          "infer_rrc_parameters: no state transition visible in ladder");

  InferenceResult result;
  const std::size_t first_jump = jumps[0];
  // The tail timer sits between the last base-level gap and the first
  // elevated one; report the midpoint.
  result.tail_timer_ms =
      0.5 * (gaps[first_jump - 1].gap_ms + gaps[first_jump].gap_ms);

  const auto connected = pool(gaps, 0, first_jump);
  result.connected_level_rtt_ms = connected.median();
  result.long_drx_estimate_ms = drx_from_spread(connected);

  std::size_t idle_from = first_jump;
  if (jumps.size() == 2) {
    const std::size_t second_jump = jumps[1];
    result.mid_plateau_end_ms =
        0.5 * (gaps[second_jump - 1].gap_ms + gaps[second_jump].gap_ms);
    const auto mid = pool(gaps, first_jump, second_jump);
    result.mid_level_rtt_ms = mid.median();
    idle_from = second_jump;
  }

  const auto idle = pool(gaps, idle_from, gaps.size());
  result.idle_level_rtt_ms = idle.median();
  result.idle_drx_estimate_ms = drx_from_spread(idle);

  // Base RTT estimate: fastest connected-state observations.
  const double base_estimate = connected.percentile(5.0);
  result.promotion_estimate_ms =
      std::max(0.0, idle.mean() - base_estimate -
                        result.idle_drx_estimate_ms / 2.0);
  return result;
}

ProbeSchedule schedule_for(const RrcConfig& config) {
  ProbeSchedule schedule;
  schedule.repeats = 101;  // cheap in simulation; tightens the plateaus
  double last_boundary = config.inactivity_timer_ms;
  if (config.anchor_tail_ms) {
    last_boundary = *config.anchor_tail_ms;
  } else if (config.inactive_hold_ms) {
    last_boundary = config.inactivity_timer_ms + *config.inactive_hold_ms;
  }
  schedule.max_gap_ms = last_boundary + 6000.0;
  return schedule;
}

}  // namespace wild5g::rrc
