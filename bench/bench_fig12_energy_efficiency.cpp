// Figure 12: throughput vs energy efficiency (energy per bit, log-log) for
// 4G and 5G on S20U, plus the headline low/high-throughput comparisons.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "power/power_model.h"

using namespace wild5g;
using power::DevicePowerProfile;
using power::RailKey;
using radio::Direction;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "fig12_energy_efficiency");
  bench::banner("Fig. 12", "Throughput vs energy efficiency (S20U)");
  bench::paper_note(
      "log E is linear in log T with slope -> -1 at low throughput; over"
      " downlink (uplink) 5G is ~79% (74%) less energy-efficient than 4G at"
      " low throughput but up to 5x (2x) more efficient at high throughput."
      " Note: we report J/bit computed from radio power, so absolute values"
      " differ from the paper's axis; the shape and ratios are the result.");

  const auto s20u = DevicePowerProfile::s20u();
  for (const Direction direction :
       {Direction::kDownlink, Direction::kUplink}) {
    const bool dl = direction == Direction::kDownlink;
    Table table("S20U " + radio::to_string(direction) +
                ": energy per bit (uJ/bit) vs throughput");
    table.set_header({"Mbps", "mmWave 5G", "Low-Band 5G", "4G/LTE"});
    for (double t = 1.0; t <= (dl ? 2048.0 : 256.0); t *= 2.0) {
      auto cell = [&](RailKey key, double cap) {
        if (t > cap) return std::string("-");
        const double p = s20u.rail(key, direction).power_mw(t);
        return Table::num(power::efficiency_uj_per_bit(p, t), 4);
      };
      table.add_row({Table::num(t, 0),
                     cell(RailKey::kNsaMmWave, dl ? 2200.0 : 230.0),
                     cell(RailKey::kNsaLowBand, dl ? 220.0 : 110.0),
                     cell(RailKey::k4g, dl ? 200.0 : 90.0)});
    }
    emitter.report(table);

    // Headline ratios: at low throughput and at each link's high end.
    const double low_t = dl ? 8.0 : 4.0;
    const auto mm = s20u.rail(RailKey::kNsaMmWave, direction);
    const auto lte = s20u.rail(RailKey::k4g, direction);
    const double e_mm_low =
        power::efficiency_uj_per_bit(mm.power_mw(low_t), low_t);
    const double e_lte_low =
        power::efficiency_uj_per_bit(lte.power_mw(low_t), low_t);
    const double high_mm = dl ? 1500.0 : 200.0;
    const double high_lte = dl ? 150.0 : 40.0;
    const double e_mm_high =
        power::efficiency_uj_per_bit(mm.power_mw(high_mm), high_mm);
    const double e_lte_high =
        power::efficiency_uj_per_bit(lte.power_mw(high_lte), high_lte);
    bench::measured_note(
        radio::to_string(direction) + ": at low rate 5G is " +
        Table::num(100.0 * (1.0 - e_lte_low / e_mm_low), 0) +
        "% less efficient than 4G; at each link's high end 5G is " +
        Table::num(e_lte_high / e_mm_high, 1) + "x more efficient");

    // Log-log slope at the low end.
    const double e1 = power::efficiency_uj_per_bit(mm.power_mw(1.0), 1.0);
    const double e4 = power::efficiency_uj_per_bit(mm.power_mw(4.0), 4.0);
    bench::measured_note("  log-log slope at low rate = " +
                         Table::num((std::log10(e4) - std::log10(e1)) /
                                        std::log10(4.0), 2) +
                         " (theory: -> -1)");
  }
  return emitter.exit_code();
}
