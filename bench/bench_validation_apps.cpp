// Sec. 4.5, "Validation on Real Applications": the TH+SS power model's
// energy estimate vs hardware ground truth for two real workloads —
// YouTube-style video streaming and Chrome-style web browsing. The paper
// reports 3.7% (video) and 2.1% (web) average relative error.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "abr/algorithms.h"
#include "abr/video.h"
#include "power/campaign.h"
#include "power/fitting.h"
#include "radio/ue.h"
#include "traces/traces.h"
#include "web/page_load.h"

using namespace wild5g;

namespace {

/// Ground-truth radio energy of a per-second downlink series (what the
/// Monsoon-minus-offline-baseline subtraction isolates in the paper).
double ground_truth_energy_j(const power::DevicePowerProfile& device,
                             power::RailKey rail,
                             std::span<const double> dl_mbps,
                             std::span<const double> rsrp_dbm) {
  double energy = 0.0;
  for (std::size_t s = 0; s < dl_mbps.size(); ++s) {
    energy += device.transfer_power_mw(rail, dl_mbps[s], dl_mbps[s] * 0.03,
                                       rsrp_dbm[s]) /
              1000.0;
  }
  return energy;
}

}  // namespace

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "validation_apps");
  bench::banner("Sec. 4.5", "Power-model validation on real applications");
  bench::paper_note(
      "Feeding application packet traces into the TH+SS model reproduces"
      " measured energy within 3.7% (video streaming) and 2.1% (web"
      " browsing) average relative error.");

  // Fit the model once from a walking campaign (the paper's procedure).
  power::WalkingCampaignConfig campaign;
  campaign.network = {radio::Carrier::kVerizon, radio::Band::kNrMmWave,
                      radio::DeploymentMode::kNsa};
  campaign.ue = radio::galaxy_s20u();
  const auto device = power::DevicePowerProfile::s20u();
  Rng rng(bench::kBenchSeed);
  auto samples = power::run_walking_campaign(campaign, device, rng);
  // The paper trains on both in-the-wild and controlled data; the
  // controlled sweep covers the low-throughput/good-signal region
  // applications actually live in.
  power::ControlledSweepConfig sweep;
  sweep.network = campaign.network;
  sweep.ue = campaign.ue;
  Rng sweep_rng(bench::kBenchSeed + 10);
  const auto controlled = power::run_controlled_sweep(sweep, device,
                                                      sweep_rng);
  samples.insert(samples.end(), controlled.begin(), controlled.end());
  power::PowerModelFit model(power::FeatureSet::kThroughputAndSignal);
  Rng split(bench::kBenchSeed + 1);
  model.fit(samples, split);

  Table table("Estimated vs measured radio energy");
  table.set_header({"application", "runs", "mean measured J",
                    "mean estimated J", "avg relative error %",
                    "paper error %"});

  // --- Video streaming (robustMPC over generated mmWave traces). ---
  {
    Rng trace_rng(bench::kBenchSeed + 2);
    auto config = traces::lumos5g_mmwave_config();
    config.count = 20;
    const auto video_traces = traces::generate_traces(config, trace_rng);
    const auto video = abr::video_ladder_5g();
    abr::SessionOptions options;
    options.chunk_count = 60;

    Rng rsrp_rng(bench::kBenchSeed + 3);
    double measured_sum = 0.0;
    double estimated_sum = 0.0;
    double rel_err_sum = 0.0;
    for (const auto& trace : video_traces) {
      if (!emitter.keep_going()) return emitter.exit_code();
      abr::HarmonicMeanPredictor predictor;
      abr::ModelPredictiveAbr robust(
          abr::ModelPredictiveAbr::Variant::kRobust, predictor);
      abr::TraceSource source(trace);
      const auto session = abr::stream(video, source, robust, options);

      std::vector<double> rsrp(session.per_second_dl_mbps.size());
      for (auto& r : rsrp) r = rsrp_rng.uniform(-92.0, -74.0);
      const double measured = ground_truth_energy_j(
          device, power::RailKey::kNsaMmWave, session.per_second_dl_mbps,
          rsrp);
      std::vector<power::PowerModelFit::UsageSlot> usage;
      for (std::size_t s = 0; s < session.per_second_dl_mbps.size(); ++s) {
        usage.push_back({session.per_second_dl_mbps[s],
                         session.per_second_dl_mbps[s] * 0.03, rsrp[s], 1.0});
      }
      const double estimated = model.estimate_energy_j(usage);
      measured_sum += measured;
      estimated_sum += estimated;
      rel_err_sum += std::abs(estimated - measured) / measured;
    }
    const double n = 20.0;
    table.add_row({"video streaming (2K/4K ABR)", "20",
                   Table::num(measured_sum / n, 1),
                   Table::num(estimated_sum / n, 1),
                   Table::num(100.0 * rel_err_sum / n, 2), "3.7"});
  }

  // --- Web browsing (page loads over mmWave). ---
  {
    Rng web_rng(bench::kBenchSeed + 4);
    const auto corpus = web::generate_corpus(40, web_rng);
    const auto config = web::mmwave_page_config();
    double measured_sum = 0.0;
    double estimated_sum = 0.0;
    double rel_err_sum = 0.0;
    for (const auto& site : corpus) {
      if (!emitter.keep_going()) return emitter.exit_code();
      const auto load = web::load_page(site, config, device, web_rng);
      std::vector<double> rsrp(load.per_second_dl_mbps.size(),
                               config.rsrp_dbm);
      const double measured = ground_truth_energy_j(
          device, power::RailKey::kNsaMmWave, load.per_second_dl_mbps, rsrp);
      std::vector<power::PowerModelFit::UsageSlot> usage;
      for (std::size_t s = 0; s < load.per_second_dl_mbps.size(); ++s) {
        usage.push_back({load.per_second_dl_mbps[s],
                         load.per_second_dl_mbps[s] * 0.03, rsrp[s], 1.0});
      }
      const double estimated = model.estimate_energy_j(usage);
      measured_sum += measured;
      estimated_sum += estimated;
      rel_err_sum += std::abs(estimated - measured) / measured;
    }
    const double n = static_cast<double>(corpus.size());
    table.add_row({"web browsing (page loads)", "40",
                   Table::num(measured_sum / n, 2),
                   Table::num(estimated_sum / n, 2),
                   Table::num(100.0 * rel_err_sum / n, 2), "2.1"});
  }
  emitter.report(table);

  bench::measured_note(
      "the data-driven model transfers from the walking campaign to unseen"
      " application workloads with single-digit relative error, as in the"
      " paper's validation.");
  return emitter.exit_code();
}
