// Extension: retraining the learned ABR on 5G traces.
//
// Sec. 5.2 hypothesizes that Pensieve's 5G stall blow-up happens because
// "for 5G networks, a larger dataset is needed for training the model to
// learn 5G specific characteristics". This bench tests that hypothesis
// directly: the same distilled policy, trained once on 4G-character traces
// and once on mmWave traces, evaluated on held-out mmWave traces.
#include <iostream>

#include "bench_common.h"
#include "abr/algorithms.h"
#include "abr/pensieve_like.h"
#include "abr/video.h"
#include "traces/traces.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "extension_pensieve_5g");
  bench::banner("Extension", "Learned ABR retrained on 5G traces");
  bench::paper_note(
      "Tests the paper's hypothesis: a learned policy trained with 5G"
      " dynamics in its dataset should not suffer the out-of-distribution"
      " stall blow-up of the 4G-trained one.");

  Rng rng(bench::kBenchSeed);
  auto c5 = traces::lumos5g_mmwave_config();
  const auto eval_5g = traces::generate_traces(c5, rng);
  Rng rng2(bench::kBenchSeed + 1);
  c5.count = 80;
  const auto train_5g = traces::generate_traces(c5, rng2);
  Rng rng3(bench::kBenchSeed + 2);
  auto c4 = traces::lumos5g_lte_config();
  c4.count = 80;
  const auto train_4g = traces::generate_traces(c4, rng3);

  abr::SessionOptions options;
  options.chunk_count = 60;
  const auto video = abr::video_ladder_5g();

  Table table("Held-out mmWave evaluation (121 traces)");
  table.set_header({"policy", "training data", "norm. bitrate", "stall %"});

  abr::PensieveLikeAbr trained_4g;
  {
    Rng train_rng(bench::kBenchSeed + 3);
    trained_4g.train(abr::video_ladder_4g(), train_4g, options, train_rng);
  }
  abr::PensieveLikeAbr trained_5g;
  {
    Rng train_rng(bench::kBenchSeed + 4);
    trained_5g.train(video, train_5g, options, train_rng);
  }
  abr::HarmonicMeanPredictor predictor;
  abr::ModelPredictiveAbr robust(abr::ModelPredictiveAbr::Variant::kRobust,
                                 predictor);

  double stall_4g_trained = 0.0;
  double stall_5g_trained = 0.0;
  struct Row {
    std::string policy;
    std::string data;
    abr::AbrAlgorithm* algorithm;
  };
  std::vector<Row> rows = {{"Pensieve-like", "4G traces", &trained_4g},
                           {"Pensieve-like", "5G traces", &trained_5g},
                           {"robustMPC", "(none)", &robust}};
  for (const auto& row : rows) {
    if (!emitter.keep_going()) return emitter.exit_code();
    const auto q =
        abr::evaluate_on_traces(video, eval_5g, *row.algorithm, options);
    table.add_row({row.policy, row.data,
                   Table::num(q.mean_normalized_bitrate, 2),
                   Table::num(q.mean_stall_percent, 2)});
    if (row.algorithm == &trained_4g) stall_4g_trained = q.mean_stall_percent;
    if (row.algorithm == &trained_5g) stall_5g_trained = q.mean_stall_percent;
  }
  emitter.report(table);

  bench::measured_note(
      "retraining on 5G traces cuts the learned policy's stall rate by " +
      Table::num(100.0 * (stall_4g_trained - stall_5g_trained) /
                     stall_4g_trained, 0) +
      "%, confirming the paper's larger-5G-dataset hypothesis.");
  return emitter.exit_code();
}
