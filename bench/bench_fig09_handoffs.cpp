// Figure 9: handoff frequency while driving a 10 km route under five radio
// band-enable settings (T-Mobile).
#include <iostream>

#include "bench_common.h"
#include "mobility/drive.h"
#include "mobility/route.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "fig09_handoffs");
  bench::banner("Fig. 9",
                "[T-Mobile] handoffs while driving, five band settings");
  bench::paper_note(
      "Paper counts: SA-only 13, NSA+LTE 110 (~90 vertical), LTE-only 30,"
      " SA+LTE 38, all bands 64. SA's big low-band cells and standalone"
      " control plane give it by far the fewest handoffs.");

  const std::vector<std::pair<mobility::BandSetting, int>> settings = {
      {mobility::BandSetting::kSaOnly, 13},
      {mobility::BandSetting::kNsaPlusLte, 110},
      {mobility::BandSetting::kLteOnly, 30},
      {mobility::BandSetting::kSaPlusLte, 38},
      {mobility::BandSetting::kAllBands, 64},
  };

  Table table("Handoffs per 10 km / 600 s drive (mean of 4 drives: 2x per"
              " direction)");
  table.set_header({"setting", "total", "horizontal", "vertical",
                    "%time 4G", "%time NSA-5G", "%time SA-5G", "paper total"});

  // Drive campaign: every (band setting, drive) pair is an independent
  // seeded trial, so the whole grid fans out at once; per-setting means are
  // reduced in drive order afterwards.
  const int drives = 4;
  const auto drive_results = parallel::parallel_map(
      settings.size() * static_cast<std::size_t>(drives),
      [&](std::size_t task) {
        const auto& setting = settings[task / drives].first;
        const auto d = static_cast<std::uint64_t>(task % drives);
        Rng rng(bench::kBenchSeed + d);
        const auto route = mobility::driving_route(rng);
        return mobility::simulate_drive(setting, route, {}, rng);
      });
  for (std::size_t s = 0; s < settings.size(); ++s) {
    if (!emitter.keep_going()) return emitter.exit_code();
    const auto& [setting, paper_total] = settings[s];
    double total = 0.0;
    double horizontal = 0.0;
    double vertical = 0.0;
    double f_lte = 0.0;
    double f_nsa = 0.0;
    double f_sa = 0.0;
    for (int d = 0; d < drives; ++d) {
      const auto& result = drive_results[s * drives + d];
      total += result.total_handoffs();
      horizontal += result.horizontal_handoffs();
      vertical += result.vertical_handoffs();
      f_lte += result.time_fraction(mobility::ActiveRadio::kLte);
      f_nsa += result.time_fraction(mobility::ActiveRadio::kNsa5g);
      f_sa += result.time_fraction(mobility::ActiveRadio::kSa5g);
    }
    table.add_row({mobility::to_string(setting),
                   Table::num(total / drives, 1),
                   Table::num(horizontal / drives, 1),
                   Table::num(vertical / drives, 1),
                   Table::num(100.0 * f_lte / drives, 0),
                   Table::num(100.0 * f_nsa / drives, 0),
                   Table::num(100.0 * f_sa / drives, 0),
                   std::to_string(paper_total)});
  }
  emitter.report(table);

  // One representative timeline, as in the figure's horizontal bars.
  Rng rng(bench::kBenchSeed);
  const auto route = mobility::driving_route(rng);
  const auto result = mobility::simulate_drive(
      mobility::BandSetting::kNsaPlusLte, route, {}, rng);
  emitter.metric("representative_nsa_segments",
                 static_cast<double>(result.segments.size()));
  emitter.metric("representative_nsa_handoffs",
                 static_cast<double>(result.total_handoffs()));
  std::cout << "Representative NSA-5G + LTE timeline (first 12 segments):\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(12, result.segments.size());
       ++i) {
    const auto& seg = result.segments[i];
    std::cout << "  " << Table::num(seg.start_s, 1) << "s - "
              << Table::num(seg.end_s, 1) << "s  "
              << mobility::to_string(seg.radio) << "\n";
  }
  return emitter.exit_code();
}
