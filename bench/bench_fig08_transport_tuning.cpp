// Figure 8: single-connection downlink across all US Azure regions under
// different transport settings: UDP, 8 x TCP, tuned 1-TCP (large tcp_wmem),
// and default 1-TCP (rooted PX5, CUBIC).
#include <iostream>

#include "bench_common.h"
#include "net/speedtest.h"
#include "radio/channel.h"
#include "radio/ue.h"
#include "transport/tcp.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "fig08_transport_tuning");
  bench::banner("Fig. 8",
                "Azure regions: UDP vs TCP-8 vs tuned/default single TCP");
  bench::paper_note(
      "UDP hits the PX5's ~2.2 Gbps ceiling everywhere; TCP-8 trails"
      " slightly; default 1-TCP is wmem-capped below ~500 Mbps; tuning"
      " tcp_wmem recovers 2.1-3x but still falls ~886 Mbps short of UDP on"
      " average, worsening with distance.");

  const radio::NetworkConfig network{radio::Carrier::kVerizon,
                                     radio::Band::kNrMmWave,
                                     radio::DeploymentMode::kNsa};
  const auto ue = radio::pixel5();
  Rng rng(bench::kBenchSeed);

  Table table("Downlink Mbps by transport setting (PX5, mmWave)");
  table.set_header({"region", "km", "UDP", "TCP-8", "1-TCP tuned",
                    "1-TCP default"});

  double udp_sum = 0.0;
  double tuned_sum = 0.0;
  double tuned_gain_min = 1e18;
  double tuned_gain_max = 0.0;
  double default_max = 0.0;
  int rows = 0;

  for (const auto& region : geo::azure_regions()) {
    // Cloud paths carry an extra ingress/virtualization penalty over the
    // carrier-hosted speedtest servers.
    const double rtt =
        net::path_rtt_ms(network, region.quoted_distance_km) + 8.0;
    const double capacity =
        radio::link_capacity_mbps(network, ue, radio::Direction::kDownlink,
                                  -76.0);
    transport::PathConfig path;
    path.rtt_ms = rtt;
    path.capacity_mbps = capacity;
    path.loss_event_rate_per_s = net::loss_event_rate_per_s(rtt);
    path.loss_per_packet = net::loss_per_packet(rtt);

    const double udp = transport::udp_throughput_mbps(path);
    auto run = [&](int conns, const transport::TcpOptions& options) {
      double best = 0.0;
      for (int rep = 0; rep < 5; ++rep) {
        best = std::max(best, transport::simulate_tcp(conns, path, options,
                                                      15.0, rng)
                                  .aggregate_goodput_mbps);
      }
      return best;
    };
    const double tcp8 = run(8, transport::tuned_tcp_options());
    const double tuned = run(1, transport::tuned_tcp_options());
    const double dflt = run(1, transport::TcpOptions{});

    table.add_row({region.name, Table::num(region.quoted_distance_km, 0),
                   Table::num(udp, 0), Table::num(tcp8, 0),
                   Table::num(tuned, 0), Table::num(dflt, 0)});
    udp_sum += udp;
    tuned_sum += tuned;
    tuned_gain_min = std::min(tuned_gain_min, tuned / dflt);
    tuned_gain_max = std::max(tuned_gain_max, tuned / dflt);
    default_max = std::max(default_max, dflt);
    ++rows;
  }
  emitter.report(table);

  bench::measured_note("default 1-TCP max = " + Table::num(default_max, 0) +
                       " Mbps (paper: <= ~500 Mbps at every region)");
  bench::measured_note("tuned/default gain = " +
                       Table::num(tuned_gain_min, 1) + "x to " +
                       Table::num(tuned_gain_max, 1) +
                       "x (paper: 2.1x to 3x)");
  bench::measured_note("mean UDP - tuned 1-TCP gap = " +
                       Table::num((udp_sum - tuned_sum) / rows, 0) +
                       " Mbps (paper: ~886 Mbps)");
  return emitter.exit_code();
}
