// Figure 17: QoE of seven ABR algorithms over mmWave 5G vs 4G —
// normalized bitrate vs time spent on stall, and the stall comparison.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "abr/algorithms.h"
#include "abr/pensieve_like.h"
#include "abr/video.h"
#include "traces/traces.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "fig17_abr_qoe");
  bench::banner("Fig. 17", "ABR QoE over 5G vs 4G (7 algorithms)");
  bench::paper_note(
      "Normalized bitrates stay similar across 4G and 5G (avg drop ~3.5%),"
      " but stalls explode on 5G (+58.2% on average; Pensieve +259.5%,"
      " fastMPC +82%). Only robustMPC keeps 'better QoE' (<5% stall, >0.8"
      " bitrate) on 5G; BBA avoids stalls by sacrificing bitrate.");

  Rng rng(bench::kBenchSeed);
  const auto traces_5g =
      traces::generate_traces(traces::lumos5g_mmwave_config(), rng);
  Rng rng2(bench::kBenchSeed + 1);
  const auto traces_4g =
      traces::generate_traces(traces::lumos5g_lte_config(), rng2);

  abr::SessionOptions options;
  options.chunk_count = 60;  // 4-minute video at 4 s chunks
  options.faults = emitter.faults();

  // Algorithm roster. Pensieve trains on 4G-character traces (see
  // DESIGN.md's substitution note).
  abr::HarmonicMeanPredictor hm_fast;
  abr::HarmonicMeanPredictor hm_robust;
  abr::RateBasedAbr rb;
  abr::BbaAbr bba;
  abr::BolaAbr bola;
  abr::FestiveAbr festive;
  abr::ModelPredictiveAbr fast(abr::ModelPredictiveAbr::Variant::kFast,
                               hm_fast);
  abr::ModelPredictiveAbr robust(abr::ModelPredictiveAbr::Variant::kRobust,
                                 hm_robust);
  abr::PensieveLikeAbr pensieve;
  {
    Rng train_rng(bench::kBenchSeed + 2);
    std::vector<traces::Trace> training(traces_4g.begin(),
                                        traces_4g.begin() + 60);
    pensieve.train(abr::video_ladder_4g(), training, options, train_rng);
  }

  std::vector<abr::AbrAlgorithm*> algorithms{&bba, &rb,      &bola, &fast,
                                             &pensieve, &robust, &festive};

  Table table("Per-algorithm QoE (means over 121 5G / 175 4G traces)");
  table.set_header({"algorithm", "5G bitrate", "5G stall%", "4G bitrate",
                    "4G stall%", "stall increase"});

  // Session fan-out: each algorithm streams its full 5G + 4G trace set in
  // its own task (algorithm objects are stateful, so one owner per task);
  // the QoE aggregation below runs in roster order on this thread.
  struct AlgorithmQoe {
    abr::AggregateQoe q5;
    abr::AggregateQoe q4;
  };
  const auto results =
      parallel::parallel_map(algorithms.size(), [&](std::size_t i) {
        return AlgorithmQoe{
            abr::evaluate_on_traces(abr::video_ladder_5g(), traces_5g,
                                    *algorithms[i], options),
            abr::evaluate_on_traces(abr::video_ladder_4g(), traces_4g,
                                    *algorithms[i], options)};
      });

  double bitrate_drop = 0.0;
  double stall_increase = 0.0;
  int better_qoe_5g = 0;
  std::string best_5g;
  double best_5g_stall = 1e18;
  double best_5g_bitrate = 0.0;
  for (std::size_t i = 0; i < algorithms.size(); ++i) {
    if (!emitter.keep_going()) return emitter.exit_code();
    const auto& [q5, q4] = results[i];
    const double increase =
        q4.mean_stall_percent > 0.05
            ? 100.0 * (q5.mean_stall_percent - q4.mean_stall_percent) /
                  q4.mean_stall_percent
            : 0.0;
    table.add_row({algorithms[i]->name(),
                   Table::num(q5.mean_normalized_bitrate, 2),
                   Table::num(q5.mean_stall_percent, 2),
                   Table::num(q4.mean_normalized_bitrate, 2),
                   Table::num(q4.mean_stall_percent, 2),
                   Table::num(increase, 0) + "%"});
    bitrate_drop +=
        q4.mean_normalized_bitrate - q5.mean_normalized_bitrate;
    stall_increase += q5.mean_stall_percent - q4.mean_stall_percent;
    if (q5.mean_stall_percent < 5.0 && q5.mean_normalized_bitrate > 0.8) {
      ++better_qoe_5g;
    }
    if (q5.mean_stall_percent < best_5g_stall &&
        q5.mean_normalized_bitrate >= 0.8) {
      best_5g_stall = q5.mean_stall_percent;
      best_5g_bitrate = q5.mean_normalized_bitrate;
      best_5g = algorithms[i]->name();
    }
  }
  emitter.report(table);
  emitter.metric("mean_bitrate_drop_pp", 100.0 * bitrate_drop / 7.0);
  emitter.metric("mean_stall_increase_pp", stall_increase / 7.0);
  emitter.metric("better_qoe_5g_count", better_qoe_5g);

  bench::measured_note("mean 4G->5G normalized-bitrate drop = " +
                       Table::num(100.0 * bitrate_drop / 7.0, 1) +
                       " pp (paper: ~3.5%)");
  bench::measured_note("algorithms in the strict 'better QoE' box on 5G: " +
                       std::to_string(better_qoe_5g) +
                       " (paper: 1 - robustMPC)");
  bench::measured_note("best >=0.8-bitrate algorithm on 5G = " + best_5g +
                       " at (" + Table::num(best_5g_bitrate, 2) +
                       " bitrate, " + Table::num(best_5g_stall, 1) +
                       "% stall) - robustMPC holds the QoE frontier as in"
                       " the paper");
  return emitter.exit_code();
}
