// Ablation: power-model learner capacity — decision-tree depth sweep and
// campaign-size sweep for the Sec. 4.5 TH+SS model. Quantifies why the
// paper's data-driven approach needs both its features and enough walking
// data.
#include <iostream>

#include "bench_common.h"
#include "power/campaign.h"
#include "power/fitting.h"
#include "radio/ue.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "ablation_power_model");
  bench::banner("Ablation", "Power-model capacity and data requirements");

  power::WalkingCampaignConfig campaign;
  campaign.network = {radio::Carrier::kVerizon, radio::Band::kNrMmWave,
                      radio::DeploymentMode::kNsa};
  campaign.ue = radio::galaxy_s20u();
  const auto device = power::DevicePowerProfile::s20u();
  Rng rng(bench::kBenchSeed);
  const auto full = power::run_walking_campaign(campaign, device, rng);

  // --- Tree depth sweep. ---
  {
    Table table("DTR max depth (TH+SS features, held-out MAPE)");
    table.set_header({"max depth", "MAPE %"});
    for (const int depth : {1, 2, 4, 8, 12, 16}) {
      ml::TreeConfig tree;
      tree.max_depth = depth;
      tree.min_samples_leaf = 4;
      tree.min_samples_split = 8;
      power::PowerModelFit fit(power::FeatureSet::kThroughputAndSignal,
                               tree);
      Rng split(bench::kBenchSeed + 1);
      fit.fit(full, split);
      table.add_row({std::to_string(depth),
                     Table::num(fit.test_mape_percent(), 2)});
    }
    emitter.report(table);
  }

  // --- Campaign-size sweep. ---
  {
    Table table("Campaign length (walking minutes of training data)");
    table.set_header({"minutes", "samples", "MAPE %"});
    for (const double minutes : {1.0, 3.0, 6.0, 12.0, 20.0}) {
      const auto count = static_cast<std::size_t>(minutes * 60.0 * 10.0);
      const std::span<const power::CampaignSample> subset(
          full.data(), std::min(count, full.size()));
      power::PowerModelFit fit(power::FeatureSet::kThroughputAndSignal);
      Rng split(bench::kBenchSeed + 2);
      fit.fit(subset, split);
      table.add_row({Table::num(minutes, 0),
                     std::to_string(subset.size()),
                     Table::num(fit.test_mape_percent(), 2)});
    }
    emitter.report(table);
  }

  bench::measured_note(
      "accuracy saturates around depth ~8 and a few minutes of walking"
      " data; depth-1 trees (a single split) cannot express the joint"
      " throughput+signal dependence, mirroring the Fig. 15 ablations.");
  return 0;
}
