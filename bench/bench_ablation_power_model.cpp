// Ablation: power-model learner capacity — decision-tree depth sweep and
// campaign-size sweep for the Sec. 4.5 TH+SS model. Quantifies why the
// paper's data-driven approach needs both its features and enough walking
// data.
#include <iostream>

#include "bench_common.h"
#include "power/campaign.h"
#include "power/fitting.h"
#include "radio/ue.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "ablation_power_model");
  bench::banner("Ablation", "Power-model capacity and data requirements");

  power::WalkingCampaignConfig campaign;
  campaign.network = {radio::Carrier::kVerizon, radio::Band::kNrMmWave,
                      radio::DeploymentMode::kNsa};
  campaign.ue = radio::galaxy_s20u();
  const auto device = power::DevicePowerProfile::s20u();
  Rng rng(bench::kBenchSeed);
  const auto full = power::run_walking_campaign(campaign, device, rng);

  // --- Tree depth sweep. --- Every train/evaluate split reseeds from the
  // bench seed, so the sweep points are independent tasks; rows are added
  // in sweep order after the barrier.
  {
    Table table("DTR max depth (TH+SS features, held-out MAPE)");
    table.set_header({"max depth", "MAPE %"});
    const std::vector<int> depths = {1, 2, 4, 8, 12, 16};
    const auto mapes =
        parallel::parallel_map(depths.size(), [&](std::size_t i) {
          ml::TreeConfig tree;
          tree.max_depth = depths[i];
          tree.min_samples_leaf = 4;
          tree.min_samples_split = 8;
          power::PowerModelFit fit(power::FeatureSet::kThroughputAndSignal,
                                   tree);
          Rng split(bench::kBenchSeed + 1);
          fit.fit(full, split);
          return fit.test_mape_percent();
        });
    for (std::size_t i = 0; i < depths.size(); ++i) {
      table.add_row({std::to_string(depths[i]), Table::num(mapes[i], 2)});
    }
    emitter.report(table);
  }

  // --- Campaign-size sweep. ---
  {
    Table table("Campaign length (walking minutes of training data)");
    table.set_header({"minutes", "samples", "MAPE %"});
    const std::vector<double> minutes_grid = {1.0, 3.0, 6.0, 12.0, 20.0};
    struct SweepPoint {
      std::size_t samples = 0;
      double mape = 0.0;
    };
    const auto points =
        parallel::parallel_map(minutes_grid.size(), [&](std::size_t i) {
          const auto count =
              static_cast<std::size_t>(minutes_grid[i] * 60.0 * 10.0);
          const std::span<const power::CampaignSample> subset(
              full.data(), std::min(count, full.size()));
          power::PowerModelFit fit(power::FeatureSet::kThroughputAndSignal);
          Rng split(bench::kBenchSeed + 2);
          fit.fit(subset, split);
          return SweepPoint{subset.size(), fit.test_mape_percent()};
        });
    for (std::size_t i = 0; i < minutes_grid.size(); ++i) {
      table.add_row({Table::num(minutes_grid[i], 0),
                     std::to_string(points[i].samples),
                     Table::num(points[i].mape, 2)});
    }
    emitter.report(table);
  }

  bench::measured_note(
      "accuracy saturates around depth ~8 and a few minutes of walking"
      " data; depth-1 trees (a single split) cannot express the joint"
      " throughput+signal dependence, mirroring the Fig. 15 ablations.");
  return emitter.exit_code();
}
