# Runs one bench binary with `--json OUT` (stdout suppressed — the console
# report is for humans, the JSON document is the artifact), then, when
# GOLDEN_CHECK is set, compares OUT against the committed GOLDEN baseline.
#
# Invoked two ways from bench.cmake:
#   - `ctest -R golden.<name>`: BENCH_BIN + OUT + GOLDEN + GOLDEN_CHECK
#   - `cmake --build build --target regen-goldens`: BENCH_BIN + OUT only,
#     with OUT pointing into the source tree's bench/golden/.
get_filename_component(out_dir "${OUT}" DIRECTORY)
file(MAKE_DIRECTORY "${out_dir}")

execute_process(
  COMMAND "${BENCH_BIN}" --json "${OUT}"
  RESULT_VARIABLE bench_rc
  OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench '${BENCH_BIN}' failed (exit ${bench_rc})")
endif()
if(NOT EXISTS "${OUT}")
  message(FATAL_ERROR "bench '${BENCH_BIN}' did not write '${OUT}'")
endif()

if(DEFINED GOLDEN_CHECK)
  if(NOT EXISTS "${GOLDEN}")
    message(FATAL_ERROR
      "no golden baseline at '${GOLDEN}' — generate it with"
      " `cmake --build build --target regen-goldens` and commit it")
  endif()
  execute_process(
    COMMAND "${GOLDEN_CHECK}" "${GOLDEN}" "${OUT}"
    RESULT_VARIABLE check_rc)
  if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR "golden drift detected (see report above)")
  endif()
endif()
