// Table 6 + Figure 22: decision-tree radio interface selection for web
// browsing — per-QoE-model 4G/5G choice counts on the held-out test set,
// the learned trees for M1 and M4, and the resulting energy/PLT outcomes.
#include <iostream>

#include "bench_common.h"
#include "web/selector.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "table6_fig22_selector");
  bench::banner("Table 6 + Fig. 22", "DT radio-interface selection");
  bench::paper_note(
      "Over 420 test websites: M1 (0.2/0.8) picks 5G for 401; M5 (0.8/0.2)"
      " picks 4G for all 420; intermediate models shift monotonically."
      " M1 splits on page size and dynamic-object share; M4 prefers 4G"
      " unless dynamic objects dominate (>76%). Selection saves 15-66%"
      " energy while improving overall QoE.");

  Rng rng(bench::kBenchSeed);
  const auto corpus = web::generate_corpus(1500, rng);
  const auto device = power::DevicePowerProfile::s10();
  auto measurements = web::measure_corpus(corpus, 8, device, rng);

  // 7:3 split, shuffled.
  rng.shuffle(std::span<web::SiteMeasurement>(measurements));
  const auto train_count =
      static_cast<std::size_t>(0.7 * measurements.size());
  const std::span<const web::SiteMeasurement> train(measurements.data(),
                                                    train_count);
  const std::span<const web::SiteMeasurement> test(
      measurements.data() + train_count, measurements.size() - train_count);

  Table table("Radio choices on the " + std::to_string(test.size()) +
              "-site test set");
  table.set_header({"model", "desired QoE", "alpha", "beta", "use 4G",
                    "use 5G", "accuracy", "energy saving %", "PLT penalty %"});

  std::vector<web::InterfaceSelector> selectors;
  for (const auto& weights : web::paper_qoe_models()) {
    web::InterfaceSelector selector(weights);
    Rng train_rng(bench::kBenchSeed + 77);
    selector.train(train, train_rng);
    const auto counts = selector.counts(test);
    const auto outcome = selector.outcome(test);
    table.add_row({weights.id, weights.description,
                   Table::num(weights.alpha, 1), Table::num(weights.beta, 1),
                   std::to_string(counts.use_4g),
                   std::to_string(counts.use_5g),
                   Table::num(selector.accuracy(test), 2),
                   Table::num(outcome.energy_saving_percent, 1),
                   Table::num(outcome.plt_penalty_percent, 1)});
    selectors.push_back(std::move(selector));
  }
  emitter.report(table);

  std::cout << "Fig. 22a - M1 (high performance) decision tree:\n"
            << selectors[0].describe_tree() << "\n";
  std::cout << "Fig. 22b - M4 (better energy saving) decision tree:\n"
            << selectors[3].describe_tree() << "\n";

  auto top_features = [](const web::InterfaceSelector& s) {
    const auto importances = s.feature_importances();
    const auto names = web::feature_names();
    std::string out;
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (importances[i] > 0.15) {
        out += names[i] + "(" + Table::num(importances[i], 2) + ") ";
      }
    }
    return out.empty() ? std::string("-") : out;
  };
  bench::measured_note("M1 dominant features: " + top_features(selectors[0]) +
                       "(paper: PS, DNO)");
  bench::measured_note("M4 dominant features: " + top_features(selectors[3]) +
                       "(paper: NO, DNO)");
  return emitter.exit_code();
}
