// Table 7: RRC parameters inferred with RRC-Probe for every network,
// compared against the configured (paper-reported) values.
#include <iostream>

#include "bench_common.h"
#include "rrc/probe.h"

using namespace wild5g;

namespace {
std::string opt_num(const std::optional<double>& v) {
  return v ? Table::num(*v, 0) : "N/A";
}
}  // namespace

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "table7_rrc_params");
  bench::banner("Table 7", "RRC parameters recovered by RRC-Probe");
  bench::paper_note(
      "Inferred UE-inactivity timers ~10.2-10.5 s (4G T-Mobile: 5 s); NSA"
      " low-band carries a second (anchor) tail of 12.1 / 18.8 s; SA holds"
      " RRC_INACTIVE ~5 s; promotion delays 190-396 ms (4G) and"
      " 341-1907 ms (5G).");

  Table table("Inferred vs configured RRC timers (ms)");
  table.set_header({"network", "tail cfg", "tail inferred", "mid-end cfg",
                    "mid-end inferred", "longDRX cfg", "longDRX est",
                    "idleDRX cfg", "idleDRX est", "promo cfg", "promo est"});

  for (const auto& profile : rrc::table7_profiles()) {
    const auto& config = profile.config;
    Rng rng(bench::kBenchSeed);
    const auto samples =
        rrc::run_probe(config, rrc::schedule_for(config), rng);
    const auto inferred = rrc::infer_rrc_parameters(samples);

    std::optional<double> mid_cfg;
    if (config.anchor_tail_ms) {
      mid_cfg = *config.anchor_tail_ms;
    } else if (config.inactive_hold_ms) {
      mid_cfg = config.inactivity_timer_ms + *config.inactive_hold_ms;
    }
    const double promo_cfg = config.promotion_5g_ms.value_or(
        config.promotion_4g_ms.value_or(0.0));

    table.add_row({config.name, Table::num(config.inactivity_timer_ms, 0),
                   Table::num(inferred.tail_timer_ms, 0), opt_num(mid_cfg),
                   inferred.mid_plateau_end_ms
                       ? Table::num(*inferred.mid_plateau_end_ms, 0)
                       : "-",
                   Table::num(config.long_drx_cycle_ms, 0),
                   Table::num(inferred.long_drx_estimate_ms, 0),
                   Table::num(config.idle_drx_cycle_ms, 0),
                   Table::num(inferred.idle_drx_estimate_ms, 0),
                   Table::num(promo_cfg, 0),
                   Table::num(inferred.promotion_estimate_ms, 0)});
  }
  emitter.report(table);
  bench::measured_note(
      "every timer recovered blind (no access to the generating config)"
      " within a few probe steps of its configured value.");
  return emitter.exit_code();
}
