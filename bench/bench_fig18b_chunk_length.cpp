// Figure 18b: QoE impact of the video chunk length (4 s / 2 s / 1 s) for
// fastMPC over mmWave 5G.
#include <iostream>

#include "bench_common.h"
#include "abr/algorithms.h"
#include "abr/video.h"
#include "traces/traces.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "fig18b_chunk_length");
  bench::banner("Fig. 18b", "Chunk length and 5G ABR QoE");
  bench::paper_note(
      "1 s chunks beat 2 s (and 4 s) chunks: +21.5% (+35.9%) bitrate and"
      " -33.6% (-29.8%) stalls, because finer-grained decisions track 5G's"
      " swings; one bad 4 s chunk can drain the whole buffer.");

  Rng rng(bench::kBenchSeed);
  const auto traces_5g =
      traces::generate_traces(traces::lumos5g_mmwave_config(), rng);

  Table table("fastMPC over 5G by chunk length (240 s video)");
  table.set_header({"chunk", "norm. bitrate", "stall %", "norm. QoE"});

  struct Point {
    double bitrate;
    double stall;
  };
  std::vector<Point> points;
  for (const double chunk_s : {4.0, 2.0, 1.0}) {
    const auto video = abr::video_ladder_5g(chunk_s);
    abr::SessionOptions options;
    options.chunk_count = static_cast<int>(240.0 / chunk_s);
    abr::HarmonicMeanPredictor predictor;
    abr::ModelPredictiveAbr mpc(
        abr::ModelPredictiveAbr::Variant::kFast, predictor,
        abr::ModelPredictiveAbr::horizon_for_chunk_length(chunk_s));
    const auto q =
        abr::evaluate_on_traces(video, traces_5g, mpc, options);
    table.add_row({Table::num(chunk_s, 0) + "s",
                   Table::num(q.mean_normalized_bitrate, 3),
                   Table::num(q.mean_stall_percent, 2),
                   Table::num(q.mean_normalized_qoe, 3)});
    points.push_back({q.mean_normalized_bitrate, q.mean_stall_percent});
  }
  emitter.report(table);

  const auto& c4 = points[0];
  const auto& c2 = points[1];
  const auto& c1 = points[2];
  bench::measured_note(
      "1s vs 2s: bitrate " +
      Table::num(100.0 * (c1.bitrate - c2.bitrate) / c2.bitrate, 1) +
      "%, stalls " +
      Table::num(100.0 * (c1.stall - c2.stall) / std::max(0.01, c2.stall), 1) +
      "% (paper: +21.5% bitrate, -33.6% stalls)");
  bench::measured_note(
      "1s vs 4s: bitrate " +
      Table::num(100.0 * (c1.bitrate - c4.bitrate) / c4.bitrate, 1) +
      "%, stalls " +
      Table::num(100.0 * (c1.stall - c4.stall) / std::max(0.01, c4.stall), 1) +
      "% (paper: +35.9% bitrate, -29.8% stalls)");
  return emitter.exit_code();
}
