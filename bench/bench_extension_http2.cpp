// Extension: HTTP/1.1 connection pools vs HTTP/2 multiplexing over mmWave
// 5G and 4G (the protocol-version angle of Narayanan et al. [39], applied
// to this paper's Sec. 6 corpus).
#include <iostream>

#include "bench_common.h"
#include "core/quantile_sketch.h"
#include "core/stats.h"
#include "web/page_load.h"
#include "web/website.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "extension_http2");
  bench::banner("Extension", "HTTP/1.1 pool vs HTTP/2 multiplexing");
  bench::paper_note(
      "Request round-trips dominate PLT for object-heavy pages; mmWave's"
      " bandwidth only pays off once multiplexing removes them. Energy"
      " follows PLT: faster loads also spend less 5G base power.");

  Rng rng(bench::kBenchSeed);
  const auto corpus = web::generate_corpus(300, rng);
  const auto device = power::DevicePowerProfile::s10();

  Table table("Corpus means (300 sites, 2 loads each)");
  table.set_header({"radio", "protocol", "mean PLT s", "p90 PLT s",
                    "mean energy J"});
  for (const bool is_5g : {true, false}) {
    if (!emitter.keep_going()) return emitter.exit_code();
    for (const bool multiplexed : {false, true}) {
      auto config = is_5g ? web::mmwave_page_config()
                          : web::lte_page_config();
      config.multiplexed = multiplexed;
      stats::SampleAccumulator plts;
      double energy = 0.0;
      for (const auto& site : corpus) {
        for (int rep = 0; rep < 2; ++rep) {
          const auto result = web::load_page(site, config, device, rng);
          plts.add(result.plt_s);
          energy += result.energy_j;
        }
      }
      table.add_row({is_5g ? "mmWave 5G" : "4G",
                     multiplexed ? "HTTP/2" : "HTTP/1.1",
                     Table::num(plts.mean(), 2),
                     Table::num(plts.percentile(90.0), 2),
                     Table::num(energy / (2.0 * corpus.size()), 2)});
    }
  }
  emitter.report(table);

  bench::measured_note(
      "multiplexing compresses the 4G-vs-5G PLT gap on small pages and"
      " widens 5G's lead on heavy ones (bandwidth finally binds); both"
      " radios save energy in proportion to the PLT cut.");
  return emitter.exit_code();
}
