// Extension: BBR vs CUBIC over the Fig. 8 Azure campaign.
//
// Sec. 3.2 concludes that "current TCP and congestion control mechanisms"
// are inefficient over mmWave 5G. This extension quantifies how much of the
// single-connection distance decay is CUBIC-specific: a model-based
// controller (BBR) that ignores random loss holds near-UDP throughput at
// every region.
#include <iostream>

#include "bench_common.h"
#include "net/speedtest.h"
#include "radio/channel.h"
#include "radio/ue.h"
#include "transport/bbr.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "extension_bbr");
  bench::banner("Extension",
                "BBR vs CUBIC single-connection downlink (Azure regions)");
  bench::paper_note(
      "The paper attributes single-connection decay to RTT+loss vs TCP"
      " (Sec. 3.2). A loss-agnostic controller removes most of it — the"
      " 'inefficacy' is congestion-control-specific, not physical.");

  const radio::NetworkConfig network{radio::Carrier::kVerizon,
                                     radio::Band::kNrMmWave,
                                     radio::DeploymentMode::kNsa};
  const auto ue = radio::pixel5();
  Rng rng(bench::kBenchSeed);

  Table table("Single-connection goodput (Mbps), PX5 mmWave");
  table.set_header({"region", "km", "UDP", "CUBIC tuned", "BBR",
                    "BBR/CUBIC"});
  for (const auto& region : geo::azure_regions()) {
    if (!emitter.keep_going()) return emitter.exit_code();
    const double rtt =
        net::path_rtt_ms(network, region.quoted_distance_km) + 8.0;
    transport::PathConfig path;
    path.rtt_ms = rtt;
    path.capacity_mbps = radio::link_capacity_mbps(
        network, ue, radio::Direction::kDownlink, -76.0);
    path.loss_event_rate_per_s = net::loss_event_rate_per_s(rtt);
    path.loss_per_packet = net::loss_per_packet(rtt);

    double cubic = 0.0;
    double bbr = 0.0;
    const int reps = 5;
    for (int rep = 0; rep < reps; ++rep) {
      Rng r1 = rng.fork(static_cast<std::uint64_t>(rep) * 2);
      Rng r2 = rng.fork(static_cast<std::uint64_t>(rep) * 2 + 1);
      cubic += transport::simulate_tcp(1, path,
                                       transport::tuned_tcp_options(), 15.0,
                                       r1)
                   .aggregate_goodput_mbps;
      bbr += transport::simulate_bbr(1, path, {}, 15.0, r2)
                 .aggregate_goodput_mbps;
    }
    cubic /= reps;
    bbr /= reps;
    table.add_row({region.name, Table::num(region.quoted_distance_km, 0),
                   Table::num(transport::udp_throughput_mbps(path), 0),
                   Table::num(cubic, 0), Table::num(bbr, 0),
                   Table::num(bbr / cubic, 2) + "x"});
  }
  emitter.report(table);

  bench::measured_note(
      "BBR stays within a few percent of UDP at every distance, while CUBIC"
      " decays with RTT: a transport fix recovers the capacity the paper"
      " shows being left on the table.");
  return emitter.exit_code();
}
