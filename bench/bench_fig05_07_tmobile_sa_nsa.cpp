// Figures 5-7: T-Mobile low-band SA vs NSA — latency, downlink, uplink vs
// UE-server distance.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "geo/geo.h"
#include "net/speedtest.h"
#include "radio/ue.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "fig05_07_tmobile_sa_nsa");
  bench::banner("Fig. 5-7",
                "[T-Mobile] SA vs NSA low-band: RTT / downlink / uplink");
  bench::paper_note(
      "No significant RTT difference between SA and NSA low-band; SA reaches"
      " only about half the NSA downlink and uplink throughput (no carrier"
      " aggregation, immature SA core).");

  const auto ue_location = geo::minneapolis().point;
  auto servers = net::carrier_server_pool();
  std::sort(servers.begin(), servers.end(), [&](const auto& a, const auto& b) {
    return geo::haversine_km(ue_location, a.location) <
           geo::haversine_km(ue_location, b.location);
  });

  auto make_harness = [&](radio::DeploymentMode mode) {
    net::SpeedtestConfig config;
    config.network = {radio::Carrier::kTMobile, radio::Band::kNrLowBand,
                      mode};
    config.ue = radio::galaxy_s20u();
    config.ue_location = ue_location;
    config.session_rsrp_mean_dbm = -84.0;
    return net::SpeedtestHarness(config);
  };
  const auto nsa = make_harness(radio::DeploymentMode::kNsa);
  const auto sa = make_harness(radio::DeploymentMode::kSa);

  Table table("T-Mobile low-band, p95 of 10 tests (multi-conn)");
  table.set_header({"server", "km", "NSA rtt", "SA rtt", "NSA dl", "SA dl",
                    "NSA ul", "SA ul"});
  Rng rng(bench::kBenchSeed);

  double dl_ratio = 0.0;
  double ul_ratio = 0.0;
  double rtt_gap = 0.0;
  int rows = 0;
  for (const auto& server : servers) {
    if (!emitter.keep_going()) return emitter.exit_code();
    const double km = geo::haversine_km(ue_location, server.location);
    const auto r_nsa =
        nsa.peak_of(server, net::ConnectionMode::kMultiple, 10, rng);
    const auto r_sa =
        sa.peak_of(server, net::ConnectionMode::kMultiple, 10, rng);
    table.add_row({server.name, Table::num(km, 0),
                   Table::num(r_nsa.rtt_ms, 1), Table::num(r_sa.rtt_ms, 1),
                   Table::num(r_nsa.downlink_mbps, 0),
                   Table::num(r_sa.downlink_mbps, 0),
                   Table::num(r_nsa.uplink_mbps, 0),
                   Table::num(r_sa.uplink_mbps, 0)});
    dl_ratio += r_sa.downlink_mbps / r_nsa.downlink_mbps;
    ul_ratio += r_sa.uplink_mbps / r_nsa.uplink_mbps;
    rtt_gap += r_sa.rtt_ms - r_nsa.rtt_ms;
    ++rows;
  }
  emitter.report(table);

  bench::measured_note("mean SA/NSA downlink ratio = " +
                       Table::num(dl_ratio / rows, 2) + " (paper: ~0.5)");
  bench::measured_note("mean SA/NSA uplink ratio = " +
                       Table::num(ul_ratio / rows, 2) + " (paper: ~0.5)");
  bench::measured_note("mean SA-NSA RTT gap = " +
                       Table::num(rtt_gap / rows, 2) +
                       " ms (paper: no significant difference)");
  return emitter.exit_code();
}
