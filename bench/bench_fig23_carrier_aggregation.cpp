// Figure 23 (Appendix A.1): carrier aggregation and UE capability — PX5
// (4CC, X52) vs S20U (8CC, X55) downlink throughput, single and multiple
// connections, against the nearest carrier-hosted server.
#include <iostream>

#include "bench_common.h"
#include "geo/geo.h"
#include "net/speedtest.h"
#include "radio/ue.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "fig23_carrier_aggregation");
  bench::banner("Fig. 23", "UE carrier-aggregation capability (PX5 vs S20U)");
  bench::paper_note(
      "S20U's 8CC downlink lifts throughput 50-60% over PX5's 4CC"
      " (~3.4 Gbps vs ~2.2 Gbps multi-conn); UE specs do not move latency.");

  const net::SpeedtestServer server{.name = "Verizon, Minneapolis",
                                    .location = {44.98, -93.26},
                                    .carrier_hosted = true};
  Table table("Downlink Mbps vs UE (nearest server, p95 of 10)");
  table.set_header({"UE", "modem", "DL CCs", "single-conn", "multi-conn",
                    "RTT ms"});

  double px5_multi = 0.0;
  double s20_multi = 0.0;
  for (const auto& ue : {radio::pixel5(), radio::galaxy_s20u()}) {
    if (!emitter.keep_going()) return emitter.exit_code();
    net::SpeedtestConfig config;
    config.network = {radio::Carrier::kVerizon, radio::Band::kNrMmWave,
                      radio::DeploymentMode::kNsa};
    config.ue = ue;
    config.ue_location = geo::minneapolis().point;
    net::SpeedtestHarness harness(config);
    Rng rng(bench::kBenchSeed);
    const auto single =
        harness.peak_of(server, net::ConnectionMode::kSingle, 10, rng);
    const auto multi =
        harness.peak_of(server, net::ConnectionMode::kMultiple, 10, rng);
    table.add_row({ue.name, ue.modem,
                   std::to_string(ue.mmwave_dl_component_carriers),
                   Table::num(single.downlink_mbps, 0),
                   Table::num(multi.downlink_mbps, 0),
                   Table::num(multi.rtt_ms, 1)});
    if (ue.name == "PX5") px5_multi = multi.downlink_mbps;
    if (ue.name == "S20U") s20_multi = multi.downlink_mbps;
  }
  emitter.report(table);

  bench::measured_note("S20U over PX5 = +" +
                       Table::num(100.0 * (s20_multi - px5_multi) / px5_multi,
                                  0) +
                       "% (paper: +50-60%)");
  return emitter.exit_code();
}
