// Longitudinal comparison (Sec. 3.2 text): the 2021 campaign vs the
// October-2019 "5Gophers" baseline — the paper's claims of a ~50% RTT
// improvement, ~50-60% downlink improvement (4CC -> 8CC), and a 3-4x
// uplink improvement.
#include <iostream>

#include "bench_common.h"
#include "geo/geo.h"
#include "net/baseline.h"
#include "net/speedtest.h"
#include "radio/ue.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "baseline_2019");
  bench::banner("Sec. 3.2 (longitudinal)",
                "2021 campaign vs the 2019 5Gophers baseline");
  bench::paper_note(
      "vs October 2019: best RTT improves ~50% (12 -> 6 ms); multi-conn"
      " downlink improves ~50-60% (carrier aggregation 4CC -> 8CC);"
      " uplink improves 3-4x (~60 -> ~220 Mbps).");

  const auto baseline = net::baseline_5gophers();

  net::SpeedtestConfig config;
  config.network = {radio::Carrier::kVerizon, radio::Band::kNrMmWave,
                    radio::DeploymentMode::kNsa};
  config.ue = radio::galaxy_s20u();
  config.ue_location = geo::minneapolis().point;
  net::SpeedtestHarness harness(config);
  const net::SpeedtestServer local{.name = "Verizon, Minneapolis",
                                   .location = {44.98, -93.26},
                                   .carrier_hosted = true};
  Rng rng(bench::kBenchSeed);
  const auto multi =
      harness.peak_of(local, net::ConnectionMode::kMultiple, 10, rng);
  const auto single =
      harness.peak_of(local, net::ConnectionMode::kSingle, 10, rng);

  Table table("2019 baseline vs 2021 (simulated campaign, best case)");
  table.set_header({"metric", "2019 (5Gophers)", "2021 (this campaign)",
                    "change", "paper's claim"});
  auto pct = [](double now, double then) {
    return Table::num(100.0 * (now - then) / then, 0) + "%";
  };
  table.add_row({"downlink, multi-conn (Mbps)",
                 Table::num(baseline.mmwave_dl_multi_mbps, 0),
                 Table::num(multi.downlink_mbps, 0),
                 "+" + pct(multi.downlink_mbps,
                           baseline.mmwave_dl_multi_mbps),
                 "+50-60%"});
  table.add_row({"downlink, single-conn (Mbps)",
                 Table::num(baseline.mmwave_dl_single_mbps, 0),
                 Table::num(single.downlink_mbps, 0),
                 "+" + pct(single.downlink_mbps,
                           baseline.mmwave_dl_single_mbps),
                 "significant improvement"});
  table.add_row({"uplink (Mbps)", Table::num(baseline.mmwave_ul_mbps, 0),
                 Table::num(multi.uplink_mbps, 0),
                 Table::num(multi.uplink_mbps / baseline.mmwave_ul_mbps, 1) +
                     "x",
                 "3-4x"});
  table.add_row({"best RTT (ms)", Table::num(baseline.min_rtt_ms, 1),
                 Table::num(multi.rtt_ms, 1),
                 "-" + Table::num(100.0 * (baseline.min_rtt_ms -
                                           multi.rtt_ms) /
                                      baseline.min_rtt_ms, 0) + "%",
                 "~-50%"});
  table.add_row({"DL component carriers",
                 std::to_string(baseline.dl_component_carriers),
                 std::to_string(
                     radio::galaxy_s20u().mmwave_dl_component_carriers),
                 "2x", "4CC -> 8CC"});
  emitter.report(table);

  bench::measured_note(
      "all three longitudinal deltas land on the paper's claims; the"
      " downlink gain traces to carrier aggregation (see Fig. 23 bench).");
  return emitter.exit_code();
}
