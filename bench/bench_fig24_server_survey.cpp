// Figure 24 (Appendix A.2): downlink throughput to the 37 Minnesota
// speedtest servers — carrier-hosted best, most others ~10% lower, and a
// band of servers port-capped at 2 Gbps / 1 Gbps.
#include <iostream>

#include "bench_common.h"
#include "geo/geo.h"
#include "net/speedtest.h"
#include "radio/ue.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "fig24_server_survey");
  bench::banner("Fig. 24", "In-state server survey (Minnesota, mmWave)");
  bench::paper_note(
      "Verizon's own Minneapolis server tops 3 Gbps; servers 2-23 deliver"
      " ~2.8 Gbps (Internet-side overhead); 25-28 are bound near 2 Gbps and"
      " 29-33 near 1 Gbps by NIC/port or configuration limits.");

  net::SpeedtestConfig config;
  config.network = {radio::Carrier::kVerizon, radio::Band::kNrMmWave,
                    radio::DeploymentMode::kNsa};
  config.ue = radio::galaxy_s20u();
  config.ue_location = geo::minneapolis().point;
  config.faults = emitter.faults();
  net::SpeedtestHarness harness(config);

  Table table("Downlink (Mbps, p95 of 10, multi-conn) per server");
  table.set_header({"#", "server", "port cap", "downlink"});
  Rng rng(bench::kBenchSeed);
  const auto servers = net::minnesota_server_pool();
  // Server sweep fans out one task per server, each on its own substream
  // forked up front; rows and the best-server scan stay in server order.
  Rng base = rng.split();
  const auto results =
      parallel::parallel_map(servers.size(), [&](std::size_t i) {
        Rng server_rng = base.fork(i);
        return harness.peak_of(servers[i], net::ConnectionMode::kMultiple,
                               10, server_rng);
      });
  double best = 0.0;
  std::string best_name;
  int errors = 0;
  for (std::size_t i = 0; i < servers.size(); ++i) {
    if (!emitter.keep_going()) return emitter.exit_code();
    errors += results[i].errors;
    table.add_row({std::to_string(i + 1), servers[i].name,
                   servers[i].port_cap_mbps > 0.0
                       ? Table::num(servers[i].port_cap_mbps, 0)
                       : "-",
                   Table::num(results[i].downlink_mbps, 0)});
    if (results[i].downlink_mbps > best) {
      best = results[i].downlink_mbps;
      best_name = servers[i].name;
    }
  }
  emitter.report(table);
  if (emitter.faults() != nullptr) {
    // Only faulted runs carry an error tally: the default document must
    // stay byte-identical to the committed golden.
    emitter.metric("connection_errors", errors);
    bench::measured_note("connection errors under fault plan = " +
                         std::to_string(errors));
  }
  bench::measured_note("best server = " + best_name + " at " +
                       Table::num(best, 0) +
                       " Mbps (paper: Verizon's own server, >3 Gbps)");
  return emitter.exit_code();
}
