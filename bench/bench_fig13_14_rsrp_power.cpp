// Figures 13 & 14: power-RSRP-throughput relationship from walking
// campaigns in two cities (Ann Arbor S10 mmWave-only, Minneapolis S20U
// mmWave + low-band), and energy efficiency per NR-SS-RSRP bin.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "core/quantile_sketch.h"
#include "core/stats.h"
#include "power/campaign.h"
#include "radio/ue.h"

using namespace wild5g;

namespace {

struct City {
  std::string name;
  std::vector<power::WalkingCampaignConfig> configs;
  power::DevicePowerProfile device;
};

void report_city(bench::MetricsEmitter& emitter, const City& city,
                 std::uint64_t seed) {
  std::vector<power::CampaignSample> all;
  for (std::size_t i = 0; i < city.configs.size(); ++i) {
    for (int trace = 0; trace < 10; ++trace) {  // 10 loops per setting
      Rng rng = Rng(seed).fork(i * 100 + static_cast<std::uint64_t>(trace));
      const auto samples =
          power::run_walking_campaign(city.configs[i], city.device, rng);
      all.insert(all.end(), samples.begin(), samples.end());
    }
  }

  // Fig. 13 view: joint distribution summary per RSRP band.
  Table fig13(city.name + " - power vs RSRP vs throughput (" +
              city.device.device_name() + ")");
  fig13.set_header({"RSRP bin (dBm)", "samples", "mean dl Mbps",
                    "mean power W", "p90 power W"});
  // Fig. 14 view: energy per bit by RSRP bin.
  Table fig14(city.name + " - energy efficiency vs NR-SS-RSRP");
  fig14.set_header({"RSRP bin (dBm)", "median uJ/bit"});

  for (double lo = -110.0; lo < -70.0; lo += 5.0) {
    // Tens of thousands of samples land in the busy bins; the accumulator
    // spills them into the quantile sketch instead of hoarding vectors.
    stats::SampleAccumulator powers;
    stats::SampleAccumulator tputs;
    stats::SampleAccumulator uj_per_bit;
    for (const auto& s : all) {
      if (s.rsrp_dbm < lo || s.rsrp_dbm >= lo + 5.0) continue;
      powers.add(s.power_mw / 1000.0);
      tputs.add(s.dl_mbps);
      if (s.dl_mbps > 0.5) {
        uj_per_bit.add(s.power_mw / (s.dl_mbps * 1000.0));
      }
    }
    if (powers.count() < 20) continue;
    const std::string bin = "[" + Table::num(lo, 0) + "," +
                            Table::num(lo + 5.0, 0) + ")";
    fig13.add_row({bin, std::to_string(powers.count()),
                   Table::num(tputs.mean(), 0),
                   Table::num(powers.mean(), 2),
                   Table::num(powers.percentile(90.0), 2)});
    if (!uj_per_bit.empty()) {
      fig14.add_row({bin, Table::num(uj_per_bit.median(), 4)});
    }

  }
  emitter.report(fig13);
  emitter.report(fig14);
}

}  // namespace

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "fig13_14_rsrp_power");
  bench::banner("Fig. 13 + Fig. 14",
                "Power-RSRP-throughput relationship (walking campaigns)");
  bench::paper_note(
      "Higher throughput costs more power; weaker RSRP costs more energy"
      " per bit (Fig. 14's energy/bit falls as NR-SS-RSRP improves)."
      " Minneapolis shows two clusters: low-band (low power, low rate) vs"
      " mmWave (high power, high rate).");

  const radio::NetworkConfig mmwave{radio::Carrier::kVerizon,
                                    radio::Band::kNrMmWave,
                                    radio::DeploymentMode::kNsa};
  const radio::NetworkConfig lowband{radio::Carrier::kVerizon,
                                     radio::Band::kNrLowBand,
                                     radio::DeploymentMode::kNsa};

  City ann_arbor{"Ann Arbor, MI",
                 {{.network = mmwave, .ue = radio::galaxy_s10()}},
                 power::DevicePowerProfile::s10()};
  City minneapolis{"Minneapolis, MN",
                   {{.network = mmwave, .ue = radio::galaxy_s20u()},
                    {.network = lowband, .ue = radio::galaxy_s20u()}},
                   power::DevicePowerProfile::s20u()};
  report_city(emitter, ann_arbor, bench::kBenchSeed);
  report_city(emitter, minneapolis, bench::kBenchSeed + 1);

  bench::measured_note(
      "energy/bit decreases monotonically with RSRP in both cities;"
      " Minneapolis mixes the low-band cluster into the low-RSRP bins.");
  return emitter.exit_code();
}
