// Extension: busy-hour QoE degradation and handoff storms for co-moving
// UEs. The paper's QoE sections (Sec. 5) stream to a single moving UE; a
// commuting population moves — and hands off — together, so a loaded
// cell's users arrive at the next cell as a burst. This campaign drives
// the whole population at vehicular speed and sweeps the busy-hour
// activity dial, reporting rebuffering and storm intensity.
//
// Flags (beyond the common --json/--threads/--faults):
//   --cells N   corridor length in cells   (default 12)
//   --ues N     UEs per cell               (default 100)
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "metro/metro.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "extension_metro_qoe");

  int cells = 12;
  int ues_per_cell = 100;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cells") {
      if (i + 1 >= argc) emitter.fail_usage("--cells requires a count");
      cells = emitter.positive_count("--cells", argv[++i]);
    } else if (arg == "--ues") {
      if (i + 1 >= argc) emitter.fail_usage("--ues requires a count");
      ues_per_cell = emitter.positive_count("--ues", argv[++i]);
    } else {
      emitter.fail_usage("unknown flag '" + arg + "'");
    }
  }
  if (emitter.faults() != nullptr) {
    const auto bad = metro::unsupported_fault_kinds(emitter.faults()->plan());
    if (!bad.empty()) {
      emitter.fail_usage(
          std::string("--faults: plan contains '") +
          faults::to_string(bad.front()) +
          "' windows, which the metro campaign does not model (radio kinds "
          "only: mmwave_blockage, nr_to_lte_outage, radio_outage)");
    }
  }

  bench::banner("Extension",
                "Metro-scale busy hour: co-moving QoE degradation and"
                " handoff storms");
  bench::paper_note(
      "Sec. 5 streams 4K video (~25 Mbps demand) to one driving UE; at"
      " busy hour every vehicle on the corridor streams at once, and"
      " co-moving UEs cross cell edges together — handoffs arrive in"
      " storms, not one at a time.");

  metro::MetroConfig base;
  base.cells = cells;
  base.ues_per_cell = ues_per_cell;
  base.ue_speed_mps = 14.0;  // vehicular corridor
  base.background_load = 0.2;
  base.demand_mbps = 25.0;   // the paper's 4K operating point
  base.handoff.time_to_trigger_ms = 160.0;  // vehicular-speed A3 tuning
  base.faults = emitter.faults();

  Table table(std::to_string(cells) + " cells x " +
              std::to_string(ues_per_cell) +
              " UEs/cell at 14 m/s, 25 Mbps demand: busy-hour activity"
              " sweep");
  table.set_header({"activity", "mean/UE Mbps", "rebuffer mean",
                    "rebuffer p95", "handoffs", "ping-pongs",
                    "peak storm"});
  const std::vector<double> activity_grid = {0.25, 0.5, 0.75, 1.0};
  for (std::size_t point = 0; point < activity_grid.size(); ++point) {
    const double activity = activity_grid[point];
    metro::MetroConfig config = base;
    config.activity = activity;
    const auto result = metro::run_campaign(config, Rng(bench::kBenchSeed));
    table.add_row(
        {Table::num(activity, 2),
         Table::num(result.per_ue_mean_mbps.mean(), 3),
         Table::num(result.per_ue_rebuffer_fraction.mean(), 4),
         Table::num(result.per_ue_rebuffer_fraction.p95(), 4),
         Table::num(static_cast<double>(result.handoffs), 0),
         Table::num(static_cast<double>(result.pingpongs), 0),
         Table::num(static_cast<double>(result.peak_step_handoffs), 0)});
    if (point + 1 == activity_grid.size()) {  // the busy-hour anchor point
      emitter.metric("busy_hour_rebuffer_mean",
                     result.per_ue_rebuffer_fraction.mean());
      emitter.metric("busy_hour_peak_storm",
                     static_cast<double>(result.peak_step_handoffs));
      emitter.metric("busy_hour_pingpongs",
                     static_cast<double>(result.pingpongs));
    }
  }
  emitter.report(table);

  bench::measured_note(
      "rebuffering grows with the activity dial even though demand per UE"
      " is constant — more simultaneously active sharers shrink each"
      " share below the 25 Mbps demand line — and the co-moving population"
      " turns cell edges into handoff storms dozens deep in a single"
      " step.");
  return emitter.finalize() ? 0 : 1;
}
