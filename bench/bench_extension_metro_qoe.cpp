// Extension: busy-hour QoE degradation and handoff storms for co-moving
// UEs. The paper's QoE sections (Sec. 5) stream to a single moving UE; a
// commuting population moves — and hands off — together, so a loaded
// cell's users arrive at the next cell as a burst. This campaign drives
// the whole population at vehicular speed and sweeps the busy-hour
// activity dial, reporting rebuffering and storm intensity.
//
// Engine-backed (src/engine/): the main assembles a CampaignRequest for the
// registered "metro_qoe" campaign and runs it under the emitter's
// supervision; the emitted document is byte-identical to the pre-engine
// monolithic main (the committed golden gates that).
//
// Flags (beyond the common --json/--threads/--faults/--deadline-ms):
//   --cells N   corridor length in cells   (default 12)
//   --ues N     UEs per cell               (default 100)
#include <iostream>
#include <string>

#include "bench_common.h"
#include "engine/campaign.h"
#include "metro/metro.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "extension_metro_qoe");

  engine::CampaignRequest request;
  request.campaign = "metro_qoe";
  request.params = json::Value::object();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cells") {
      if (i + 1 >= argc) emitter.fail_usage("--cells requires a count");
      request.params.set("cells",
                         emitter.positive_count("--cells", argv[++i]));
    } else if (arg == "--ues") {
      if (i + 1 >= argc) emitter.fail_usage("--ues requires a count");
      request.params.set("ues", emitter.positive_count("--ues", argv[++i]));
    } else {
      emitter.fail_usage("unknown flag '" + arg + "'");
    }
  }
  if (emitter.faults() != nullptr) {
    const auto bad = metro::unsupported_fault_kinds(emitter.faults()->plan());
    if (!bad.empty()) {
      emitter.fail_usage(
          std::string("--faults: plan contains '") +
          faults::to_string(bad.front()) +
          "' windows, which the metro campaign does not model (radio kinds "
          "only: mmwave_blockage, nr_to_lte_outage, radio_outage)");
    }
    request.fault_plan = emitter.fault_plan();
  }

  bench::banner("Extension",
                "Metro-scale busy hour: co-moving QoE degradation and"
                " handoff storms");
  bench::paper_note(
      "Sec. 5 streams 4K video (~25 Mbps demand) to one driving UE; at"
      " busy hour every vehicle on the corridor streams at once, and"
      " co-moving UEs cross cell edges together — handoffs arrive in"
      " storms, not one at a time.");

  engine::register_builtin_campaigns();
  const auto campaign = engine::make_campaign(request);
  const int code = emitter.run_campaign(*campaign);

  bench::measured_note(
      "rebuffering grows with the activity dial even though demand per UE"
      " is constant — more simultaneously active sharers shrink each"
      " share below the 25 Mbps demand line — and the co-moving population"
      " turns cell edges into handoff storms dozens deep in a single"
      " step.");
  return code;
}
