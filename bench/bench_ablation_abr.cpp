// Ablation: ABR design knobs on 5G — MPC horizon, the robustness discount,
// and the player's max buffer. Quantifies the design choices DESIGN.md
// calls out around the Sec. 5 results.
#include <iostream>

#include "bench_common.h"
#include "abr/algorithms.h"
#include "abr/video.h"
#include "traces/traces.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "ablation_abr");
  bench::banner("Ablation", "ABR design knobs over mmWave 5G");

  Rng rng(bench::kBenchSeed);
  auto config = traces::lumos5g_mmwave_config();
  config.count = 60;
  const auto traces_5g = traces::generate_traces(config, rng);
  const auto video = abr::video_ladder_5g();

  // --- Horizon sweep (fastMPC). ---
  {
    Table table("fastMPC planning horizon (chunks of 4 s)");
    table.set_header({"horizon", "norm. bitrate", "stall %", "norm. QoE"});
    for (const int horizon : {1, 2, 3, 5, 8}) {
      abr::SessionOptions options;
      options.chunk_count = 60;
      abr::HarmonicMeanPredictor predictor;
      abr::ModelPredictiveAbr mpc(abr::ModelPredictiveAbr::Variant::kFast,
                                  predictor, horizon);
      const auto q = abr::evaluate_on_traces(video, traces_5g, mpc, options);
      table.add_row({std::to_string(horizon),
                     Table::num(q.mean_normalized_bitrate, 3),
                     Table::num(q.mean_stall_percent, 2),
                     Table::num(q.mean_normalized_qoe, 3)});
    }
    emitter.report(table);
  }

  // --- Max buffer sweep (robustMPC). ---
  {
    Table table("Player buffer capacity (robustMPC)");
    table.set_header({"max buffer s", "norm. bitrate", "stall %"});
    for (const double max_buffer : {10.0, 20.0, 30.0, 60.0}) {
      abr::SessionOptions options;
      options.chunk_count = 60;
      options.max_buffer_s = max_buffer;
      abr::HarmonicMeanPredictor predictor;
      abr::ModelPredictiveAbr mpc(abr::ModelPredictiveAbr::Variant::kRobust,
                                  predictor);
      const auto q = abr::evaluate_on_traces(video, traces_5g, mpc, options);
      table.add_row({Table::num(max_buffer, 0),
                     Table::num(q.mean_normalized_bitrate, 3),
                     Table::num(q.mean_stall_percent, 2)});
    }
    emitter.report(table);
  }

  // --- Segment abandonment on/off (fastMPC). ---
  {
    Table table("Segment abandonment (fastMPC)");
    table.set_header({"abandonment", "norm. bitrate", "stall %"});
    for (const bool enabled : {false, true}) {
      abr::SessionOptions options;
      options.chunk_count = 60;
      options.allow_abandonment = enabled;
      abr::HarmonicMeanPredictor predictor;
      abr::ModelPredictiveAbr mpc(abr::ModelPredictiveAbr::Variant::kFast,
                                  predictor);
      const auto q = abr::evaluate_on_traces(video, traces_5g, mpc, options);
      table.add_row({enabled ? "on" : "off",
                     Table::num(q.mean_normalized_bitrate, 3),
                     Table::num(q.mean_stall_percent, 2)});
    }
    emitter.report(table);
  }

  bench::measured_note(
      "longer horizons and bigger buffers trade bitrate for stall"
      " protection; abandonment caps the cost of surprise chunks caught by"
      " a blockage — the mechanism the 5G-aware scheme builds on.");
  return emitter.exit_code();
}
