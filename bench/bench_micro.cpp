// Microbenchmarks (google-benchmark) for the library's hot primitives:
// event queue, CART training/prediction, CUBIC stepping, waveform
// synthesis, channel evolution, and the streaming engine.
#include <benchmark/benchmark.h>

#include "abr/algorithms.h"
#include "bench_common.h"
#include "abr/video.h"
#include "core/quantile_sketch.h"
#include "core/rng.h"
#include "core/stats.h"
#include "ml/decision_tree.h"
#include "power/waveform.h"
#include "radio/channel.h"
#include "rrc/state_machine.h"
#include "sim/simulator.h"
#include "traces/traces.h"
#include "transport/tcp.h"

using namespace wild5g;

namespace {

void BM_SimulatorEventChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int count = 0;
    for (int i = 0; i < state.range(0); ++i) {
      sim.schedule_at(static_cast<double>(i % 97), [&count] { ++count; });
    }
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorEventChurn)->Arg(1000)->Arg(10000);

ml::Dataset make_dataset(int rows) {
  Rng rng(1);
  ml::Dataset data;
  data.feature_names = {"a", "b", "c"};
  for (int i = 0; i < rows; ++i) {
    const double a = rng.uniform(0.0, 1.0);
    const double b = rng.uniform(0.0, 1.0);
    data.add({a, b, rng.uniform(0.0, 1.0)}, std::sin(5.0 * a) + b);
  }
  return data;
}

void BM_DecisionTreeFit(benchmark::State& state) {
  const auto data = make_dataset(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ml::DecisionTreeRegressor tree;
    tree.fit(data);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_DecisionTreeFit)->Arg(1000)->Arg(5000);

void BM_DecisionTreePredict(benchmark::State& state) {
  const auto data = make_dataset(5000);
  ml::DecisionTreeRegressor tree;
  tree.fit(data);
  Rng rng(2);
  const std::vector<double> row{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0),
                                rng.uniform(0.0, 1.0)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.predict(row));
  }
}
BENCHMARK(BM_DecisionTreePredict);

void BM_CubicFlows(benchmark::State& state) {
  transport::PathConfig path;
  path.rtt_ms = 40.0;
  path.capacity_mbps = 2000.0;
  path.loss_event_rate_per_s = 0.1;
  for (auto _ : state) {
    Rng rng(3);
    benchmark::DoNotOptimize(
        transport::simulate_tcp(static_cast<int>(state.range(0)), path,
                                transport::tuned_tcp_options(), 15.0, rng)
            .aggregate_goodput_mbps);
  }
}
BENCHMARK(BM_CubicFlows)->Arg(1)->Arg(20);

void BM_WaveformSynthesis(benchmark::State& state) {
  const auto profile = rrc::profile_by_name("Verizon NSA mmWave");
  const std::vector<rrc::ActivityBurst> bursts = {{1000.0, 5000.0, 400.0,
                                                   10.0}};
  const auto timeline =
      rrc::build_timeline(profile.config, bursts, 30000.0);
  power::WaveformSynthesizer synth(profile, power::DevicePowerProfile::s20u(),
                                   static_cast<double>(state.range(0)));
  for (auto _ : state) {
    Rng rng(4);
    benchmark::DoNotOptimize(synth.synthesize(timeline, rng).energy_j());
  }
}
BENCHMARK(BM_WaveformSynthesis)->Arg(1000)->Arg(5000);

// The pre-sketch percentile pattern: hoard every sample in a vector and
// sort-on-query. Kept as the baseline the sketch kernel is measured
// against; campaign code itself now goes through SampleAccumulator.
void BM_PercentileStoreAll(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Rng rng(7);
    std::vector<double> samples;
    samples.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      samples.push_back(rng.lognormal(3.0, 1.0));
    }
    // wild5g-lint: allow(bench-sample-hoard) this kernel *is* the store-all
    benchmark::DoNotOptimize(stats::percentile(samples, 90.0));
    // wild5g-lint: allow(bench-sample-hoard) baseline the sketch is measured
    benchmark::DoNotOptimize(stats::percentile(samples, 99.0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PercentileStoreAll)->Arg(100000)->Arg(1000000);

// Same population through the streaming sketch: O(sketch) memory and no
// sort at query time.
void BM_PercentileSketch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Rng rng(7);
    stats::QuantileSketch sketch;
    for (std::size_t i = 0; i < n; ++i) {
      sketch.add(rng.lognormal(3.0, 1.0));
    }
    benchmark::DoNotOptimize(sketch.quantile(90.0));
    benchmark::DoNotOptimize(sketch.quantile(99.0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PercentileSketch)->Arg(100000)->Arg(1000000);

void BM_ChannelProcess(benchmark::State& state) {
  radio::ChannelProcess process(
      radio::default_channel_process(radio::Band::kNrMmWave), Rng(5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(process.step(0.1).rsrp_dbm);
  }
}
BENCHMARK(BM_ChannelProcess);

void BM_MpcDecision(benchmark::State& state) {
  const auto video = abr::video_ladder_5g();
  abr::HarmonicMeanPredictor predictor;
  abr::ModelPredictiveAbr mpc(abr::ModelPredictiveAbr::Variant::kFast,
                              predictor);
  const std::vector<double> history{150.0, 90.0, 200.0, 120.0, 160.0};
  abr::AbrContext context;
  context.video = &video;
  context.next_chunk = 10;
  context.chunk_count = 60;
  context.buffer_s = 12.0;
  context.max_buffer_s = 30.0;
  context.last_track = 3;
  context.past_chunk_mbps = history;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mpc.choose_track(context));
  }
}
BENCHMARK(BM_MpcDecision);

void BM_StreamingSession(benchmark::State& state) {
  Rng rng(6);
  auto config = traces::lumos5g_mmwave_config();
  config.count = 1;
  const auto traces = traces::generate_traces(config, rng);
  const auto video = abr::video_ladder_5g();
  abr::SessionOptions options;
  options.chunk_count = 60;
  for (auto _ : state) {
    abr::TraceSource source(traces[0]);
    abr::BbaAbr bba;
    benchmark::DoNotOptimize(
        abr::stream(video, source, bba, options).total_stall_s);
  }
}
BENCHMARK(BM_StreamingSession);

}  // namespace

int main(int argc, char** argv) {
  // Wall-times are machine-dependent, so the golden document pins only the
  // registered benchmark inventory: dropping a family in a refactor is a
  // regression the gate catches, while timing noise is not.
  bench::MetricsEmitter emitter(argc, argv, "micro");
  Table inventory("Registered microbenchmark families");
  inventory.set_header({"family", "variants"});
  inventory.add_row({"BM_SimulatorEventChurn", "2"});
  inventory.add_row({"BM_DecisionTreeFit", "2"});
  inventory.add_row({"BM_DecisionTreePredict", "1"});
  inventory.add_row({"BM_CubicFlows", "2"});
  inventory.add_row({"BM_WaveformSynthesis", "2"});
  inventory.add_row({"BM_PercentileStoreAll", "2"});
  inventory.add_row({"BM_PercentileSketch", "2"});
  inventory.add_row({"BM_ChannelProcess", "1"});
  inventory.add_row({"BM_MpcDecision", "1"});
  inventory.add_row({"BM_StreamingSession", "1"});
  emitter.record(inventory);
  if (emitter.json_requested()) {
    return emitter.exit_code();  // golden run: inventory only
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return emitter.exit_code();
}
