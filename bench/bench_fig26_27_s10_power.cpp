// Figures 26 & 27 (Appendix A.4): S10 throughput-power and
// throughput-energy-efficiency curves for 4G vs mmWave 5G (Ann Arbor),
// including the device-specific crossover points.
#include <iostream>

#include "bench_common.h"
#include "power/power_model.h"

using namespace wild5g;
using power::DevicePowerProfile;
using power::RailKey;
using radio::Direction;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "fig26_27_s10_power");
  bench::banner("Fig. 26 + Fig. 27", "S10 power and efficiency (Ann Arbor)");
  bench::paper_note(
      "On the S10 the mmWave/4G crossovers sit at 213 Mbps (DL) and 44 Mbps"
      " (UL) — close to, but distinct from, the S20U's 187/40 Mbps"
      " (different chipset lithography).");

  const auto s10 = DevicePowerProfile::s10();
  for (const Direction direction :
       {Direction::kDownlink, Direction::kUplink}) {
    const bool dl = direction == Direction::kDownlink;
    Table table("S10 " + radio::to_string(direction) +
                ": power (mW) and efficiency (uJ/bit)");
    table.set_header({"Mbps", "5G mW", "4G mW", "5G uJ/bit", "4G uJ/bit"});
    for (double t = dl ? 25.0 : 5.0; t <= (dl ? 1600.0 : 100.0); t *= 2.0) {
      const auto mm = s10.rail(RailKey::kNsaMmWave, direction);
      const auto lte = s10.rail(RailKey::k4g, direction);
      const bool lte_ok = t <= (dl ? 180.0 : 60.0);
      table.add_row(
          {Table::num(t, 0), Table::num(mm.power_mw(t), 0),
           lte_ok ? Table::num(lte.power_mw(t), 0) : "-",
           Table::num(power::efficiency_uj_per_bit(mm.power_mw(t), t), 4),
           lte_ok ? Table::num(
                        power::efficiency_uj_per_bit(lte.power_mw(t), t), 4)
                  : "-"});
    }
    emitter.report(table);

    const auto crossover = power::crossover_mbps(
        s10.rail(RailKey::kNsaMmWave, direction),
        s10.rail(RailKey::k4g, direction));
    bench::measured_note(radio::to_string(direction) +
                         " 5G x 4G crossover = " +
                         Table::num(*crossover, 1) + " Mbps (paper: " +
                         (dl ? "213" : "44") + " Mbps)");
  }
  return emitter.exit_code();
}
