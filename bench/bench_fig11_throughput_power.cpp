// Figure 11: throughput vs power for 4G, NSA low-band 5G, and NSA mmWave 5G
// (S20U, Verizon), downlink and uplink, including the crossover points.
#include <iostream>

#include "bench_common.h"
#include "power/power_model.h"

using namespace wild5g;
using power::DevicePowerProfile;
using power::RailKey;
using radio::Direction;

namespace {

void sweep(bench::MetricsEmitter& emitter, const DevicePowerProfile& device,
           Direction direction, double max_mbps, double step_mbps) {
  const std::string dir_label = radio::to_string(direction);
  Table table("S20U " + dir_label + ": power (W) vs throughput (Mbps)");
  table.set_header({"Mbps", "mmWave 5G", "Low-Band 5G", "4G/LTE"});
  for (double t = 0.0; t <= max_mbps + 1e-9; t += step_mbps) {
    auto cell = [&](RailKey key, double cap) {
      if (t > cap) return std::string("-");
      return Table::num(device.rail(key, direction).power_mw(t) / 1000.0, 2);
    };
    const bool dl = direction == Direction::kDownlink;
    table.add_row({Table::num(t, 0),
                   cell(RailKey::kNsaMmWave, dl ? 2200.0 : 230.0),
                   cell(RailKey::kNsaLowBand, dl ? 220.0 : 110.0),
                   cell(RailKey::k4g, dl ? 200.0 : 90.0)});
  }
  emitter.report(table);

  const auto mm = device.rail(RailKey::kNsaMmWave, direction);
  const auto lte = device.rail(RailKey::k4g, direction);
  const auto lb = device.rail(RailKey::kNsaLowBand, direction);
  bench::measured_note(dir_label + " crossover mmWave x 4G = " +
                       Table::num(*power::crossover_mbps(mm, lte), 1) +
                       " Mbps, mmWave x low-band = " +
                       Table::num(*power::crossover_mbps(mm, lb), 1) +
                       " Mbps");
}

}  // namespace

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "fig11_throughput_power");
  bench::banner("Fig. 11", "Throughput vs power for 4G and 5G (S20U)");
  bench::paper_note(
      "Power rises linearly with throughput on every radio; mmWave's slope"
      " is far shallower, so it crosses below 4G at 187 Mbps (DL) / 40 Mbps"
      " (UL) and below low-band 5G at 189 / 123 Mbps.");

  const auto s20u = DevicePowerProfile::s20u();
  sweep(emitter, s20u, Direction::kDownlink, 2000.0, 200.0);
  sweep(emitter, s20u, Direction::kUplink, 200.0, 20.0);
  return emitter.exit_code();
}
