// Figures 15 & 16: power-model accuracy (MAPE) for TH+SS vs TH-only vs
// SS-only across the five device/carrier/network settings, and software-
// monitor calibration at 1 Hz and 10 Hz.
#include <iostream>

#include "bench_common.h"
#include "core/stats.h"
#include "power/campaign.h"
#include "power/fitting.h"
#include "power/monitor.h"
#include "power/waveform.h"
#include "radio/ue.h"
#include "rrc/state_machine.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "fig15_16_power_models");
  bench::banner("Fig. 15 + Fig. 16",
                "Power-model MAPE by feature set; software calibration");
  bench::paper_note(
      "TH+SS beats TH-only and (by a wide margin) SS-only on every"
      " configuration; SS-only is worst on mmWave where throughput spans"
      " 3 Gbps. Calibrated software monitoring approaches hardware accuracy,"
      " with 10 Hz beating 1 Hz.");

  struct Setting {
    std::string label;  // device/carrier/network, as in the figure
    radio::NetworkConfig network;
    radio::UeProfile ue;
    power::DevicePowerProfile device;
  };
  using radio::Band;
  using radio::Carrier;
  using radio::DeploymentMode;
  const std::vector<Setting> settings = {
      {"S10/VZ/NSA-HB", {Carrier::kVerizon, Band::kNrMmWave,
                         DeploymentMode::kNsa},
       radio::galaxy_s10(), power::DevicePowerProfile::s10()},
      {"S20/VZ/NSA-HB", {Carrier::kVerizon, Band::kNrMmWave,
                         DeploymentMode::kNsa},
       radio::galaxy_s20u(), power::DevicePowerProfile::s20u()},
      {"S20/VZ/NSA-LB", {Carrier::kVerizon, Band::kNrLowBand,
                         DeploymentMode::kNsa},
       radio::galaxy_s20u(), power::DevicePowerProfile::s20u()},
      {"S20/TM/NSA-LB", {Carrier::kTMobile, Band::kNrLowBand,
                         DeploymentMode::kNsa},
       radio::galaxy_s20u(), power::DevicePowerProfile::s20u()},
      {"S20/TM/SA-LB", {Carrier::kTMobile, Band::kNrLowBand,
                        DeploymentMode::kSa},
       radio::galaxy_s20u(), power::DevicePowerProfile::s20u()},
  };

  Table fig15("Fig. 15 (left): held-out MAPE (%) by feature set");
  fig15.set_header({"setting", "TH+SS", "TH", "SS"});
  // Each setting's campaign + train/evaluate split was already seeded by
  // its index (fork(i) / fork(1000 + i)), so the five settings fan out
  // without any draw-order change; rows land in setting order.
  const auto fig15_rows =
      parallel::parallel_map(settings.size(), [&](std::size_t i) {
        const auto& setting = settings[i];
        power::WalkingCampaignConfig campaign;
        campaign.network = setting.network;
        campaign.ue = setting.ue;
        Rng rng = Rng(bench::kBenchSeed).fork(i);
        const auto samples =
            power::run_walking_campaign(campaign, setting.device, rng);
        std::vector<std::string> row{setting.label};
        for (const auto features :
             {power::FeatureSet::kThroughputAndSignal,
              power::FeatureSet::kThroughputOnly,
              power::FeatureSet::kSignalOnly}) {
          power::PowerModelFit fit(features);
          Rng split = Rng(bench::kBenchSeed).fork(1000 + i);
          fit.fit(samples, split);
          row.push_back(Table::num(fit.test_mape_percent(), 2));
        }
        return row;
      });
  for (auto& row : fig15_rows) fig15.add_row(row);
  emitter.report(fig15);

  // Fig. 16: software-monitor calibration (S20U mmWave busy waveform).
  const auto profile = rrc::profile_by_name("Verizon NSA mmWave");
  std::vector<rrc::ActivityBurst> bursts;
  for (double t = 2000.0; t < 280000.0; t += 16000.0) {
    bursts.push_back({t, t + 6000.0, 300.0 + t / 2000.0, 10.0});
  }
  power::WaveformSynthesizer synth(profile, power::DevicePowerProfile::s20u(),
                                   1000.0);
  Rng wave_rng(bench::kBenchSeed + 7);
  const auto train_wave = synth.synthesize(
      rrc::build_timeline(profile.config, bursts, 300000.0), wave_rng);
  Rng wave_rng2(bench::kBenchSeed + 8);
  const auto test_wave = synth.synthesize(
      rrc::build_timeline(profile.config, bursts, 300000.0), wave_rng2);

  Table fig16("Fig. 16 (right): software calibration MAPE (%) vs TH+SS");
  fig16.set_header({"estimator", "MAPE %"});
  const auto hw_train = power::MonsoonMonitor::per_second_mw(train_wave);
  const auto hw_test = power::MonsoonMonitor::per_second_mw(test_wave);
  for (const double rate : {1.0, 10.0}) {
    power::SoftwareMonitor sw(power::default_software_monitor(rate));
    Rng r1(bench::kBenchSeed + 20 + static_cast<std::uint64_t>(rate));
    auto sw_train = sw.per_second_mw(train_wave, r1);
    sw_train.resize(hw_train.size());
    power::SoftwareCalibration calibration;
    calibration.fit(sw_train, hw_train);
    Rng r2(bench::kBenchSeed + 30 + static_cast<std::uint64_t>(rate));
    auto sw_test = sw.per_second_mw(test_wave, r2);
    sw_test.resize(hw_test.size());
    const double raw = stats::mape_percent(hw_test, sw_test);
    const double calibrated = stats::mape_percent(
        hw_test, calibration.calibrate_all(sw_test));
    fig16.add_row({"SW-" + Table::num(rate, 0) + "Hz raw",
                   Table::num(raw, 2)});
    fig16.add_row({"SW-" + Table::num(rate, 0) + "Hz calibrated",
                   Table::num(calibrated, 2)});
  }
  emitter.report(fig16);

  bench::measured_note(
      "TH+SS < TH << SS on every setting, and calibrated 10 Hz software"
      " monitoring beats 1 Hz, matching Figs. 15-16.");
  return emitter.exit_code();
}
