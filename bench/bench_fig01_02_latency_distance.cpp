// Figures 1 & 2: RTT vs UE-server distance for Verizon mmWave, low-band 5G,
// and 4G/LTE, over the carrier-hosted speedtest server network (UE pinned in
// Minneapolis).
#include <iostream>

#include "bench_common.h"
#include "core/stats.h"
#include "geo/geo.h"
#include "net/speedtest.h"
#include "radio/ue.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "fig01_02_latency_distance");
  bench::banner("Fig. 1 + Fig. 2", "Impact of UE-Server distance on RTT");
  bench::paper_note(
      "RTT ~6 ms at the nearest (~3 km) server, roughly doubling by ~320 km;"
      " low-band adds ~6-8 ms over mmWave; LTE adds a further 6-15 ms.");

  const auto ue_location = geo::minneapolis().point;
  const auto servers = net::carrier_server_pool();

  struct RadioRow {
    std::string label;
    radio::NetworkConfig network;
  };
  const std::vector<RadioRow> radios = {
      {"mmWave", {radio::Carrier::kVerizon, radio::Band::kNrMmWave,
                  radio::DeploymentMode::kNsa}},
      {"Low-Band", {radio::Carrier::kVerizon, radio::Band::kNrLowBand,
                    radio::DeploymentMode::kNsa}},
      {"LTE/4G", {radio::Carrier::kVerizon, radio::Band::kLte,
                  radio::DeploymentMode::kNsa}},
  };

  Table table("Fig. 2 [Verizon] RTT (ms, 5th pct of 10 tests) vs distance");
  table.set_header({"server", "km", "mmWave", "Low-Band", "LTE/4G"});

  std::vector<double> distances;
  std::vector<std::vector<double>> rtts(radios.size());
  Rng rng(bench::kBenchSeed);

  for (const auto& server : servers) {
    if (!emitter.keep_going()) return emitter.exit_code();
    const double km = geo::haversine_km(ue_location, server.location);
    std::vector<std::string> row{server.name, Table::num(km, 0)};
    for (std::size_t r = 0; r < radios.size(); ++r) {
      net::SpeedtestConfig config;
      config.network = radios[r].network;
      config.ue = radio::galaxy_s20u();
      config.ue_location = ue_location;
      config.session_rsrp_mean_dbm =
          radios[r].network.band == radio::Band::kNrMmWave ? -76.0 : -84.0;
      net::SpeedtestHarness harness(config);
      const auto result =
          harness.peak_of(server, net::ConnectionMode::kSingle, 10, rng);
      row.push_back(Table::num(result.rtt_ms, 1));
      rtts[r].push_back(result.rtt_ms);
    }
    distances.push_back(km);
    table.add_row(std::move(row));
  }
  emitter.report(table);

  // Headline comparisons.
  const auto fit_mm = stats::linear_fit(distances, rtts[0]);
  double min_mm = 1e9;
  for (double v : rtts[0]) min_mm = std::min(min_mm, v);
  double lb_gap = 0.0;
  double lte_gap = 0.0;
  for (std::size_t i = 0; i < distances.size(); ++i) {
    lb_gap += rtts[1][i] - rtts[0][i];
    lte_gap += rtts[2][i] - rtts[1][i];
  }
  lb_gap /= static_cast<double>(distances.size());
  lte_gap /= static_cast<double>(distances.size());

  bench::measured_note("min mmWave RTT (nearest server) = " +
                       Table::num(min_mm, 1) + " ms (paper: ~6 ms)");
  bench::measured_note("RTT-vs-distance slope = " +
                       Table::num(fit_mm.slope * 1000.0, 1) +
                       " ms per 1000 km (r2 = " +
                       Table::num(fit_mm.r_squared, 3) + ")");
  bench::measured_note("low-band adds " + Table::num(lb_gap, 1) +
                       " ms over mmWave (paper: 6-8 ms)");
  bench::measured_note("LTE adds " + Table::num(lte_gap, 1) +
                       " ms over low-band (paper: 6-15 ms over 5G)");
  return emitter.exit_code();
}
