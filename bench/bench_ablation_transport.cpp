// Ablation: send-buffer (tcp_wmem) sweep vs RTT — the BDP law behind
// Fig. 8's "tuned" result. Shows exactly where the window cap stops binding
// and loss/CUBIC dynamics take over.
#include <iostream>

#include "bench_common.h"
#include "net/speedtest.h"
#include "transport/tcp.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "ablation_transport");
  bench::banner("Ablation", "tcp_wmem sweep vs RTT (single connection)");
  bench::paper_note(
      "Sec. 3.2: the sender's buffer must at least cover the path BDP;"
      " beyond that, throughput is loss/CUBIC-limited. The sweep shows the"
      " knee moving with RTT.");

  Table table("Single-conn goodput (Mbps) on a 2 Gbps mmWave path");
  table.set_header({"wmem MB", "BDP-limited @", "rtt 10ms", "rtt 30ms",
                    "rtt 60ms", "rtt 90ms"});

  for (const double wmem_mb : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    std::vector<std::string> row{Table::num(wmem_mb, 1), ""};
    // RTT at which this buffer equals the 2 Gbps BDP.
    const double knee_rtt_ms = wmem_mb * 8.0 * 1000.0 / 2000.0;
    row[1] = Table::num(knee_rtt_ms, 0) + " ms";
    for (const double rtt : {10.0, 30.0, 60.0, 90.0}) {
      transport::PathConfig path;
      path.rtt_ms = rtt;
      path.capacity_mbps = 2000.0;
      path.loss_event_rate_per_s = net::loss_event_rate_per_s(rtt);
      path.loss_per_packet = net::loss_per_packet(rtt);
      transport::TcpOptions options;
      options.wmem_bytes = wmem_mb * 1e6;
      double total = 0.0;
      const int reps = 5;
      for (int rep = 0; rep < reps; ++rep) {
        Rng rng(bench::kBenchSeed + static_cast<std::uint64_t>(rep));
        total += transport::simulate_tcp(1, path, options, 15.0, rng)
                     .aggregate_goodput_mbps;
      }
      row.push_back(Table::num(total / reps, 0));
    }
    table.add_row(std::move(row));
  }
  emitter.report(table);

  bench::measured_note(
      "below the knee, goodput ~ wmem/RTT (halving RTT doubles it); above"
      " the knee, extra buffer buys nothing — the Fig. 8 'tuned' plateau.");
  return emitter.exit_code();
}
