// Shared helpers for the benchmark binaries. Each bench regenerates one of
// the paper's tables or figures from the simulated substrate and prints the
// paper's reported values alongside for comparison.
#pragma once

#include <iostream>
#include <string>

#include "core/table.h"

namespace wild5g::bench {

/// Fixed seed so every bench run is reproducible bit-for-bit.
inline constexpr std::uint64_t kBenchSeed = 20210823;  // SIGCOMM'21 opening day

inline void banner(const std::string& id, const std::string& title) {
  std::cout << "\n################################################################\n"
            << "# " << id << ": " << title << "\n"
            << "################################################################\n";
}

inline void paper_note(const std::string& text) {
  std::cout << "[paper] " << text << "\n";
}

inline void measured_note(const std::string& text) {
  std::cout << "[repro] " << text << "\n";
}

}  // namespace wild5g::bench
