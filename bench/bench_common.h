// Shared helpers for the benchmark binaries. Each bench regenerates one of
// the paper's tables or figures from the simulated substrate and prints the
// paper's reported values alongside for comparison.
//
// Every bench routes its tables through a MetricsEmitter so that, with
// `--json <path>`, the same run also produces a machine-checkable metrics
// document. Committed baselines live in bench/golden/ and `ctest -R golden.`
// diffs fresh runs against them (see tools/golden_check.cpp).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/error.h"
#include "core/json.h"
#include "core/parallel.h"
#include "core/table.h"
#include "faults/injector.h"

namespace wild5g::bench {

/// Fixed seed so every bench run is reproducible bit-for-bit.
inline constexpr std::uint64_t kBenchSeed = 20210823;  // SIGCOMM'21 opening day

inline void banner(const std::string& id, const std::string& title) {
  std::cout << "\n################################################################\n"
            << "# " << id << ": " << title << "\n"
            << "################################################################\n";
}

inline void paper_note(const std::string& text) {
  std::cout << "[paper] " << text << "\n";
}

inline void measured_note(const std::string& text) {
  std::cout << "[repro] " << text << "\n";
}

/// Collects a bench run's figure/table data and, when the binary was invoked
/// with `--json <path>` (or `--json=<path>`), writes it as deterministic
/// JSON. Bench mains end with `return emitter.finalize() ? 0 : 1;` so a
/// failed metrics write exits non-zero; the destructor is only a safety net
/// (and skips writing entirely when an exception is unwinding the stack, so
/// a bench that throws mid-run cannot leave a half-populated document for
/// the golden gate to diff confusingly).
///
/// Also strips `--threads N` (or `--threads=N`) and configures the parallel
/// campaign runner with it; `1` forces serial execution and the default is
/// WILD5G_THREADS / hardware concurrency (core/parallel.h). The emitted
/// document never mentions the thread count: output is byte-identical
/// regardless of it, and the determinism gate asserts that.
///
/// Also strips `--faults <plan.json>` (or `--faults=<plan.json>`): the plan
/// is loaded, validated, and wrapped in a faults::Injector seeded with
/// kBenchSeed; benches pass `faults()` into their harness configs. Without
/// the flag `faults()` is null, the harnesses run their exact pre-fault
/// code paths, and the emitted document is byte-identical to a build
/// without the fault layer — the golden gate relies on that. With the flag
/// the document records the plan name under "fault_plan", so a faulted run
/// can never be confused with (or diffed against) a default golden.
///
/// Recognized flags are stripped from argv so benches that forward argv to
/// another flag parser (google-benchmark) stay compatible.
class MetricsEmitter {
 public:
  MetricsEmitter(int& argc, char** argv, std::string bench_id)
      : bench_id_(std::move(bench_id)),
        uncaught_on_entry_(std::uncaught_exceptions()) {
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json") {
        if (i + 1 >= argc) usage_error("--json requires a path argument");
        json_path_ = argv[++i];
      } else if (arg.rfind("--json=", 0) == 0) {
        json_path_ = arg.substr(7);
        if (json_path_.empty()) usage_error("--json= requires a path");
      } else if (arg == "--threads") {
        if (i + 1 >= argc) usage_error("--threads requires a count argument");
        set_threads(argv[++i]);
      } else if (arg.rfind("--threads=", 0) == 0) {
        set_threads(arg.substr(10));
      } else if (arg == "--faults") {
        if (i + 1 >= argc) usage_error("--faults requires a plan path");
        load_faults(argv[++i]);
      } else if (arg.rfind("--faults=", 0) == 0) {
        load_faults(arg.substr(9));
      } else {
        argv[kept++] = argv[i];
      }
    }
    argc = kept;
    doc_ = json::Value::object();
    doc_.set("bench", bench_id_);
    doc_.set("seed", kBenchSeed);
    if (injector_ != nullptr) {
      doc_.set("fault_plan", injector_->plan().name);
    }
    tables_ = json::Value::array();
    metrics_ = json::Value::object();
    tolerances_ = json::Value::object();
  }

  MetricsEmitter(const MetricsEmitter&) = delete;
  MetricsEmitter& operator=(const MetricsEmitter&) = delete;

  ~MetricsEmitter() {
    // Mid-unwind the document is half-populated: leave nothing behind (a
    // missing file makes the golden gate fail loudly, a partial one would
    // diff confusingly) and let the exception terminate the process.
    if (std::uncaught_exceptions() > uncaught_on_entry_) {
      if (!json_path_.empty()) std::remove(json_path_.c_str());
      return;
    }
    if (!finalized_) (void)finalize();
  }

  /// Writes the document (when `--json` was given) and reports whether this
  /// run's metrics made it to disk. Bench mains must end with
  /// `return emitter.finalize() ? 0 : 1;` — a swallowed write failure would
  /// otherwise exit 0 with no JSON on disk and the campaign driver would
  /// never notice.
  [[nodiscard]] bool finalize() {
    if (finalized_) return ok_;
    finalized_ = true;
    if (json_path_.empty()) return ok_;
    try {
      write(json_path_);
    } catch (const std::exception& e) {
      // Leave no output file behind: a missing document makes the golden
      // gate fail loudly instead of comparing against a stale artifact.
      std::remove(json_path_.c_str());
      std::cerr << "MetricsEmitter: failed to write '" << json_path_
                << "': " << e.what() << "\n";
      ok_ = false;
    }
    return ok_;
  }

  /// True while no failure has been recorded (write errors set this false).
  [[nodiscard]] bool ok() const { return ok_; }

  /// True when this run was asked for a JSON document; benches with
  /// machine-dependent phases (microbenchmark timing) skip them under this.
  [[nodiscard]] bool json_requested() const { return !json_path_.empty(); }

  /// The fault injector from `--faults <plan.json>`, or null when the run
  /// is fault-free. Benches thread this into their harness configs; null
  /// means every harness takes its exact pre-fault code path.
  [[nodiscard]] const faults::Injector* faults() const {
    return injector_.get();
  }

  /// Public surface for bench-specific flag failures (an unparseable
  /// `--ues`, a fault plan the campaign cannot honor): same clear-message +
  /// exit-2 contract as the emitter's own flag parsing, so every usage
  /// error looks identical to the caller regardless of which layer caught
  /// it.
  [[noreturn]] void fail_usage(const std::string& message) const {
    usage_error(message);
  }

  /// Parses a strictly positive integer flag value (`--ues 100`); anything
  /// else — garbage, trailing junk, zero, negative — is a usage error
  /// (exit 2). Campaign sizes of zero are always a typo, never a request
  /// for an empty measurement.
  [[nodiscard]] int positive_count(const std::string& flag,
                                   const std::string& text) const {
    std::size_t parsed = 0;
    long value = 0;
    try {
      value = std::stol(text, &parsed);
    } catch (const std::exception&) {
      usage_error(flag + ": '" + text + "' is not a count");
    }
    if (parsed != text.size()) {
      usage_error(flag + ": '" + text + "' is not a count");
    }
    if (value <= 0) {
      usage_error(flag + ": count must be >= 1, got '" + text + "'");
    }
    return static_cast<int>(value);
  }

  /// Default tolerance written into the document; golden_check uses the
  /// GOLDEN file's tolerance, so regenerating goldens is how these take
  /// effect.
  void set_tolerance(double rel, double abs) {
    rel_ = rel;
    abs_ = abs;
  }

  /// Per-metric override, keyed by a metric name or a table title.
  void set_tolerance(const std::string& name, double rel, double abs) {
    json::Value entry = json::Value::object();
    entry.set("rel", rel);
    entry.set("abs", abs);
    tolerances_.set(name, std::move(entry));
  }

  /// Prints the table to stdout (as before) and records it in the document.
  void report(const Table& table) {
    table.print(std::cout);
    record(table);
  }

  /// Records a table without printing (for inventory-only documents).
  void record(const Table& table) {
    json::Value entry = json::Value::object();
    entry.set("title", table.title());
    json::Value header = json::Value::array();
    for (const auto& cell : table.header()) header.push_back(cell);
    entry.set("header", std::move(header));
    json::Value rows = json::Value::array();
    for (const auto& row : table.rows()) {
      json::Value cells = json::Value::array();
      for (const auto& cell : row) cells.push_back(cell);
      rows.push_back(std::move(cells));
    }
    entry.set("rows", std::move(rows));
    tables_.push_back(std::move(entry));
  }

  /// Records a named scalar metric (raw double, not a formatted cell).
  void metric(const std::string& name, double value) {
    metrics_.set(name, value);
  }

  /// Assembles the document in its final shape.
  [[nodiscard]] json::Value document() const {
    json::Value doc = doc_;
    json::Value tolerance = json::Value::object();
    tolerance.set("rel", rel_);
    tolerance.set("abs", abs_);
    doc.set("tolerance", std::move(tolerance));
    if (tolerances_.size() > 0) doc.set("tolerances", tolerances_);
    doc.set("tables", tables_);
    doc.set("metrics", metrics_);
    return doc;
  }

  /// Writes the document to `path`; throws wild5g::Error on I/O failure.
  void write(const std::string& path) const {
    const std::string text = json::dump(document());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    require(out.good(),
            "MetricsEmitter: cannot open '" + path + "' for writing");
    out << text;
    out.flush();
    require(out.good(), "MetricsEmitter: write to '" + path + "' failed");
  }

 private:
  /// Flag-parse failures are usage errors, not campaign results: print a
  /// clear message and exit non-zero immediately instead of silently
  /// forwarding a half-parsed flag to the rest of argv.
  [[noreturn]] void usage_error(const std::string& message) const {
    std::cerr << bench_id_ << ": " << message << "\n";
    std::exit(2);
  }

  void set_threads(const std::string& text) const {
    if (text.empty()) usage_error("--threads requires a count argument");
    std::size_t parsed = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(text, &parsed);
    } catch (const std::exception&) {
      usage_error("--threads: '" + text + "' is not a thread count");
    }
    if (parsed != text.size()) {
      usage_error("--threads: '" + text + "' is not a thread count");
    }
    if (value == 0) {
      // set_thread_count(0) means "restore auto" as an API, but as a flag
      // `--threads 0` is always a typo for `--threads 1`; silently running
      // at hardware concurrency would mislabel any timing the caller
      // records.
      usage_error("--threads: count must be >= 1 ('auto' is the default; "
                  "0 is not a thread count)");
    }
    parallel::set_thread_count(static_cast<std::size_t>(value));
  }

  void load_faults(const std::string& path) {
    if (path.empty()) usage_error("--faults requires a plan path");
    try {
      injector_ = std::make_unique<faults::Injector>(faults::FaultPlan::load(path),
                                                     kBenchSeed);
    } catch (const std::exception& e) {
      // A bad plan is a usage error, not a measurement: refuse to run
      // rather than silently measuring something other than what was asked.
      usage_error(std::string("--faults: ") + e.what());
    }
  }

  std::string bench_id_;
  std::string json_path_;
  std::unique_ptr<faults::Injector> injector_;
  int uncaught_on_entry_ = 0;
  bool finalized_ = false;
  bool ok_ = true;
  double rel_ = 1e-6;
  double abs_ = 1e-9;
  json::Value doc_;
  json::Value tables_;
  json::Value metrics_;
  json::Value tolerances_;
};

}  // namespace wild5g::bench
