// Shared helpers for the benchmark binaries. Each bench regenerates one of
// the paper's tables or figures from the simulated substrate and prints the
// paper's reported values alongside for comparison.
//
// Every bench routes its tables through a MetricsEmitter so that, with
// `--json <path>`, the same run also produces a machine-checkable metrics
// document. Committed baselines live in bench/golden/ and `ctest -R golden.`
// diffs fresh runs against them (see tools/golden_check.cpp).
//
// Since the campaign-engine refactor (src/engine/, DESIGN.md section 12)
// the emitter is also the benches' *supervision layer*: it owns the
// engine::MetricsDocument the campaign accumulates into, installs
// SIGINT/SIGTERM handlers, parses `--deadline-ms`, and exposes keep_going()
// yield points so a stopped bench flushes a valid partial document instead
// of dying mid-write. Everything clock- or signal-shaped lives here, outside
// src/engine — the engine itself is deterministic compute only.
#pragma once

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/error.h"
#include "core/json.h"
#include "core/parallel.h"
#include "core/table.h"
#include "engine/campaign.h"
#include "engine/metrics.h"
#include "engine/runner.h"
#include "faults/injector.h"

namespace wild5g::bench {

/// Fixed seed so every bench run is reproducible bit-for-bit.
inline constexpr std::uint64_t kBenchSeed = 20210823;  // SIGCOMM'21 opening day
static_assert(kBenchSeed == engine::kDefaultSeed,
              "engine-backed benches must reproduce the committed goldens");

inline void banner(const std::string& id, const std::string& title) {
  std::cout << "\n################################################################\n"
            << "# " << id << ": " << title << "\n"
            << "################################################################\n";
}

inline void paper_note(const std::string& text) {
  std::cout << "[paper] " << text << "\n";
}

inline void measured_note(const std::string& text) {
  std::cout << "[repro] " << text << "\n";
}

namespace detail {

/// The one piece of state a signal handler may touch: the number of the
/// delivery, stored with a relaxed atomic (async-signal-safe on every
/// platform the repo targets).
inline std::atomic<int> g_signal{0};

inline void on_signal(int sig) {
  g_signal.store(sig, std::memory_order_relaxed);
}

}  // namespace detail

/// Collects a bench run's figure/table data and, when the binary was invoked
/// with `--json <path>` (or `--json=<path>`), writes it as deterministic
/// JSON. Bench mains end with `return emitter.exit_code();` so a failed
/// metrics write exits non-zero; the destructor is only a safety net (and
/// skips writing entirely when an exception is unwinding the stack, so a
/// bench that throws mid-run cannot leave a half-populated document for the
/// golden gate to diff confusingly).
///
/// Also strips `--threads N` (or `--threads=N`) and configures the parallel
/// campaign runner with it; `1` forces serial execution and the default is
/// WILD5G_THREADS / hardware concurrency (core/parallel.h). The emitted
/// document never mentions the thread count: output is byte-identical
/// regardless of it, and the determinism gate asserts that.
///
/// Also strips `--faults <plan.json>` (or `--faults=<plan.json>`): the plan
/// is loaded, validated, and wrapped in a faults::Injector seeded with
/// kBenchSeed; benches pass `faults()` into their harness configs. Without
/// the flag `faults()` is null, the harnesses run their exact pre-fault
/// code paths, and the emitted document is byte-identical to a build
/// without the fault layer — the golden gate relies on that. With the flag
/// the document records the plan name under "fault_plan", so a faulted run
/// can never be confused with (or diffed against) a default golden.
///
/// Also strips `--deadline-ms N`: a wall-clock budget for the whole run.
/// When it expires, the bench stops at the next keep_going() yield point,
/// flushes the partial document with a `deadline_hit` metric, and exits 0 —
/// a deadline is a supervised outcome, not a failure. Garbage or
/// non-positive budgets are usage errors (exit 2) like every other flag.
///
/// Supervision: the constructor installs SIGINT/SIGTERM handlers. Benches
/// call keep_going() between units of work; once it returns false (signal
/// or deadline) they break out, and exit_code() flushes the partial
/// document — annotated with a top-level `"interrupted": true` key on
/// signal — then exits 128+signo (signal), 0 (deadline), or 1 (write
/// failure). Test hooks: WILD5G_DEADLINE_AFTER_YIELDS=N trips the deadline
/// deterministically at the Nth yield (no clock involved), and
/// WILD5G_TEST_YIELD_DELAY_MS=M dwells M ms per yield to widen the
/// signal-delivery window the regression tests race against.
///
/// Recognized flags are stripped from argv so benches that forward argv to
/// another flag parser (google-benchmark) stay compatible.
class MetricsEmitter {
 public:
  MetricsEmitter(int& argc, char** argv, std::string bench_id)
      : bench_id_(std::move(bench_id)),
        uncaught_on_entry_(std::uncaught_exceptions()) {
    // wild5g-lint: allow(ban-wall-clock) supervision layer: --deadline-ms
    // budgets wall time by definition; src/engine stays clock-free
    start_ = std::chrono::steady_clock::now();
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json") {
        if (i + 1 >= argc) usage_error("--json requires a path argument");
        json_path_ = argv[++i];
      } else if (arg.rfind("--json=", 0) == 0) {
        json_path_ = arg.substr(7);
        if (json_path_.empty()) usage_error("--json= requires a path");
      } else if (arg == "--threads") {
        if (i + 1 >= argc) usage_error("--threads requires a count argument");
        set_threads(argv[++i]);
      } else if (arg.rfind("--threads=", 0) == 0) {
        set_threads(arg.substr(10));
      } else if (arg == "--faults") {
        if (i + 1 >= argc) usage_error("--faults requires a plan path");
        load_faults(argv[++i]);
      } else if (arg.rfind("--faults=", 0) == 0) {
        load_faults(arg.substr(9));
      } else if (arg == "--deadline-ms") {
        if (i + 1 >= argc) usage_error("--deadline-ms requires a budget");
        deadline_ms_ = positive_count("--deadline-ms", argv[++i]);
      } else if (arg.rfind("--deadline-ms=", 0) == 0) {
        deadline_ms_ = positive_count("--deadline-ms", arg.substr(14));
      } else {
        argv[kept++] = argv[i];
      }
    }
    argc = kept;
    doc_.emplace(bench_id_, kBenchSeed,
                 injector_ != nullptr ? injector_->plan().name
                                      : std::string{});
    read_test_hooks();
    std::signal(SIGINT, detail::on_signal);
    std::signal(SIGTERM, detail::on_signal);
  }

  MetricsEmitter(const MetricsEmitter&) = delete;
  MetricsEmitter& operator=(const MetricsEmitter&) = delete;

  ~MetricsEmitter() {
    // Mid-unwind the document is half-populated: leave nothing behind (a
    // missing file makes the golden gate fail loudly, a partial one would
    // diff confusingly) and let the exception terminate the process.
    if (std::uncaught_exceptions() > uncaught_on_entry_) {
      if (!json_path_.empty()) std::remove(json_path_.c_str());
      return;
    }
    if (!finalized_) (void)finalize();
  }

  /// Writes the document (when `--json` was given) and reports whether this
  /// run's metrics made it to disk. A stopped run's document is annotated
  /// first ("interrupted" flag / "deadline_hit" metric), so the flushed
  /// partial is self-describing. Prefer ending mains with
  /// `return emitter.exit_code();`, which folds this in.
  [[nodiscard]] bool finalize() {
    if (finalized_) return ok_;
    finalized_ = true;
    if (interrupted_) doc_->set_flag("interrupted");
    if (deadline_hit_) doc_->metric("deadline_hit", 1.0);
    if (json_path_.empty()) return ok_;
    try {
      write(json_path_);
    } catch (const std::exception& e) {
      // Leave no output file behind: a missing document makes the golden
      // gate fail loudly instead of comparing against a stale artifact.
      std::remove(json_path_.c_str());
      std::cerr << "MetricsEmitter: failed to write '" << json_path_
                << "': " << e.what() << "\n";
      ok_ = false;
    }
    return ok_;
  }

  /// The bench's exit status: finalizes (flushing any partial document),
  /// then reports 1 on write failure, 128+signo when a signal stopped the
  /// run, and 0 otherwise — including the deadline case, which is a
  /// supervised partial result, not an error.
  [[nodiscard]] int exit_code() {
    const bool wrote = finalize();
    if (!wrote) return 1;
    if (interrupted_) return 128 + signal_;
    return 0;
  }

  /// The benches' yield point: call between units of work (grid points,
  /// sweep iterations). Counts the yield, applies the test-hook dwell,
  /// polls the signal flag and the deadline, and returns false — stickily —
  /// once the run should stop. A bench that sees false breaks out of its
  /// loops and returns exit_code().
  [[nodiscard]] bool keep_going() {
    poll_supervision();
    return !stopped_;
  }

  /// True once a SIGINT/SIGTERM stopped the run (set at a yield point).
  [[nodiscard]] bool interrupted() const { return interrupted_; }
  /// True once the --deadline-ms budget expired (set at a yield point).
  [[nodiscard]] bool deadline_hit() const { return deadline_hit_; }

  /// True while no failure has been recorded (write errors set this false).
  [[nodiscard]] bool ok() const { return ok_; }

  /// True when this run was asked for a JSON document; benches with
  /// machine-dependent phases (microbenchmark timing) skip them under this.
  [[nodiscard]] bool json_requested() const { return !json_path_.empty(); }

  /// The fault injector from `--faults <plan.json>`, or null when the run
  /// is fault-free. Benches thread this into their harness configs; null
  /// means every harness takes its exact pre-fault code path.
  [[nodiscard]] const faults::Injector* faults() const {
    return injector_.get();
  }

  /// The validated fault plan from `--faults`, if any — what engine-backed
  /// benches embed into their CampaignRequest.
  [[nodiscard]] std::optional<faults::FaultPlan> fault_plan() const {
    if (injector_ == nullptr) return std::nullopt;
    return injector_->plan();
  }

  /// The metrics document this run accumulates into; engine-backed benches
  /// hand it to their CampaignContext.
  [[nodiscard]] engine::MetricsDocument& doc() { return *doc_; }

  /// Runs an engine campaign under this emitter's supervision (signals and
  /// deadline wired into the runner's yield points, tables printed to
  /// stdout as the batch benches always have) and returns the bench's exit
  /// code. The engine-backed mains reduce to: build request, make_campaign,
  /// `return emitter.run_campaign(*campaign);`.
  [[nodiscard]] int run_campaign(engine::Campaign& campaign) {
    engine::CampaignContext ctx{doc(), &std::cout};
    engine::RunControl control;
    control.interrupted = [this] {
      poll_supervision();
      return interrupted_;
    };
    control.over_deadline = [this] { return deadline_hit_; };
    (void)engine::run_steps(campaign, ctx, control);
    return exit_code();
  }

  /// Public surface for bench-specific flag failures (an unparseable
  /// `--ues`, a fault plan the campaign cannot honor): same clear-message +
  /// exit-2 contract as the emitter's own flag parsing, so every usage
  /// error looks identical to the caller regardless of which layer caught
  /// it.
  [[noreturn]] void fail_usage(const std::string& message) const {
    usage_error(message);
  }

  /// Parses a strictly positive integer flag value (`--ues 100`); anything
  /// else — garbage, trailing junk, zero, negative — is a usage error
  /// (exit 2). Campaign sizes of zero are always a typo, never a request
  /// for an empty measurement.
  [[nodiscard]] int positive_count(const std::string& flag,
                                   const std::string& text) const {
    std::size_t parsed = 0;
    long value = 0;
    try {
      value = std::stol(text, &parsed);
    } catch (const std::exception&) {
      usage_error(flag + ": '" + text + "' is not a count");
    }
    if (parsed != text.size()) {
      usage_error(flag + ": '" + text + "' is not a count");
    }
    if (value <= 0) {
      usage_error(flag + ": count must be >= 1, got '" + text + "'");
    }
    return static_cast<int>(value);
  }

  /// Default tolerance written into the document; golden_check uses the
  /// GOLDEN file's tolerance, so regenerating goldens is how these take
  /// effect.
  void set_tolerance(double rel, double abs) { doc_->set_tolerance(rel, abs); }

  /// Per-metric override, keyed by a metric name or a table title.
  void set_tolerance(const std::string& name, double rel, double abs) {
    doc_->set_tolerance(name, rel, abs);
  }

  /// Prints the table to stdout (as before) and records it in the document.
  void report(const Table& table) {
    table.print(std::cout);
    record(table);
  }

  /// Records a table without printing (for inventory-only documents).
  void record(const Table& table) { doc_->record(table); }

  /// Records a named scalar metric (raw double, not a formatted cell).
  void metric(const std::string& name, double value) {
    doc_->metric(name, value);
  }

  /// Assembles the document in its final shape.
  [[nodiscard]] json::Value document() const { return doc_->document(); }

  /// Writes the document to `path`; throws wild5g::Error on I/O failure.
  void write(const std::string& path) const {
    const std::string text = json::dump(document());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    require(out.good(),
            "MetricsEmitter: cannot open '" + path + "' for writing");
    out << text;
    out.flush();
    require(out.good(), "MetricsEmitter: write to '" + path + "' failed");
  }

 private:
  /// Flag-parse failures are usage errors, not campaign results: print a
  /// clear message and exit non-zero immediately instead of silently
  /// forwarding a half-parsed flag to the rest of argv.
  [[noreturn]] void usage_error(const std::string& message) const {
    std::cerr << bench_id_ << ": " << message << "\n";
    std::exit(2);
  }

  void set_threads(const std::string& text) const {
    if (text.empty()) usage_error("--threads requires a count argument");
    std::size_t parsed = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(text, &parsed);
    } catch (const std::exception&) {
      usage_error("--threads: '" + text + "' is not a thread count");
    }
    if (parsed != text.size()) {
      usage_error("--threads: '" + text + "' is not a thread count");
    }
    if (value == 0) {
      // set_thread_count(0) means "restore auto" as an API, but as a flag
      // `--threads 0` is always a typo for `--threads 1`; silently running
      // at hardware concurrency would mislabel any timing the caller
      // records.
      usage_error("--threads: count must be >= 1 ('auto' is the default; "
                  "0 is not a thread count)");
    }
    parallel::set_thread_count(static_cast<std::size_t>(value));
  }

  void load_faults(const std::string& path) {
    if (path.empty()) usage_error("--faults requires a plan path");
    try {
      injector_ = std::make_unique<faults::Injector>(faults::FaultPlan::load(path),
                                                     kBenchSeed);
    } catch (const std::exception& e) {
      // A bad plan is a usage error, not a measurement: refuse to run
      // rather than silently measuring something other than what was asked.
      usage_error(std::string("--faults: ") + e.what());
    }
  }

  /// Test hooks are WILD5G_-prefixed env vars so the supervision tests can
  /// pin nondeterministic timing without patching the binary. Lenient
  /// parsing: they are test plumbing, not user flags.
  void read_test_hooks() {
    if (const char* text = std::getenv("WILD5G_DEADLINE_AFTER_YIELDS")) {
      deadline_after_yields_ = std::atol(text);
    }
    if (const char* text = std::getenv("WILD5G_TEST_YIELD_DELAY_MS")) {
      yield_delay_ms_ = std::atol(text);
    }
  }

  /// One supervision poll = one yield. Sticky: once stopped, later polls
  /// change nothing, so a signal can never be overwritten by a deadline
  /// (or vice versa) and exit_code() reports the first cause.
  void poll_supervision() {
    if (stopped_) return;
    ++yields_;
    if (yield_delay_ms_ > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(yield_delay_ms_));
    }
    const int sig = detail::g_signal.load(std::memory_order_relaxed);
    if (sig != 0) {
      stopped_ = true;
      interrupted_ = true;
      signal_ = sig;
      return;
    }
    if (deadline_after_yields_ > 0 && yields_ >= deadline_after_yields_) {
      stopped_ = true;
      deadline_hit_ = true;
      return;
    }
    if (deadline_ms_ > 0) {
      // wild5g-lint: allow(ban-wall-clock) the --deadline-ms supervision
      // check; the engine under this layer never reads a clock
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      if (elapsed >= std::chrono::milliseconds(deadline_ms_)) {
        stopped_ = true;
        deadline_hit_ = true;
      }
    }
  }

  std::string bench_id_;
  std::string json_path_;
  std::unique_ptr<faults::Injector> injector_;
  int uncaught_on_entry_ = 0;
  bool finalized_ = false;
  bool ok_ = true;
  std::optional<engine::MetricsDocument> doc_;
  // wild5g-lint: allow(ban-wall-clock) supervision state for --deadline-ms
  std::chrono::steady_clock::time_point start_;
  int deadline_ms_ = 0;
  long deadline_after_yields_ = 0;
  long yield_delay_ms_ = 0;
  long yields_ = 0;
  bool stopped_ = false;
  bool interrupted_ = false;
  bool deadline_hit_ = false;
  int signal_ = 0;
};

}  // namespace wild5g::bench
