// Figure 3: Verizon mmWave downlink throughput vs UE-server distance,
// single vs multiple TCP connections (S20U, 8CC, 95th-pct of 10 tests).
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "geo/geo.h"
#include "net/speedtest.h"
#include "radio/ue.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "fig03_downlink_distance");
  bench::banner("Fig. 3", "[Verizon mmWave] downlink vs UE-server distance");
  bench::paper_note(
      "Multiple connections sustain >3 Gbps across all US servers; a single"
      " connection reaches ~3 Gbps only near the server and decays with"
      " distance (RTT + loss vs CUBIC).");

  net::SpeedtestConfig config;
  config.network = {radio::Carrier::kVerizon, radio::Band::kNrMmWave,
                    radio::DeploymentMode::kNsa};
  config.ue = radio::galaxy_s20u();
  config.ue_location = geo::minneapolis().point;
  config.faults = emitter.faults();
  net::SpeedtestHarness harness(config);

  // Sort servers by distance for a readable series.
  auto servers = net::carrier_server_pool();
  std::sort(servers.begin(), servers.end(), [&](const auto& a, const auto& b) {
    return geo::haversine_km(config.ue_location, a.location) <
           geo::haversine_km(config.ue_location, b.location);
  });

  Table table("Downlink (Mbps, p95 of 10) vs distance");
  table.set_header({"server", "km", "multi-conn", "single-conn", "RTT ms"});
  Rng rng(bench::kBenchSeed);

  // Server sweep: one task per server, two substreams forked up front
  // (multi- and single-connection campaigns); reductions in server order.
  struct ServerResult {
    net::SpeedtestResult multi;
    net::SpeedtestResult single;
  };
  Rng base = rng.split();
  const auto results =
      parallel::parallel_map(servers.size(), [&](std::size_t i) {
        Rng multi_rng = base.fork(2 * i);
        Rng single_rng = base.fork(2 * i + 1);
        return ServerResult{
            harness.peak_of(servers[i], net::ConnectionMode::kMultiple, 10,
                            multi_rng),
            harness.peak_of(servers[i], net::ConnectionMode::kSingle, 10,
                            single_rng)};
      });

  double multi_min = 1e18;
  double single_near = 0.0;
  double single_far = 0.0;
  for (std::size_t i = 0; i < servers.size(); ++i) {
    if (!emitter.keep_going()) return emitter.exit_code();
    const double km =
        geo::haversine_km(config.ue_location, servers[i].location);
    const auto& [multi, single] = results[i];
    table.add_row({servers[i].name, Table::num(km, 0),
                   Table::num(multi.downlink_mbps, 0),
                   Table::num(single.downlink_mbps, 0),
                   Table::num(multi.rtt_ms, 1)});
    multi_min = std::min(multi_min, multi.downlink_mbps);
    if (km < 100.0) single_near = single.downlink_mbps;
    single_far = single.downlink_mbps;  // last (farthest) after sort
  }
  emitter.report(table);

  bench::measured_note("multi-conn minimum across servers = " +
                       Table::num(multi_min, 0) +
                       " Mbps (paper: >3000 Mbps everywhere)");
  bench::measured_note("single-conn near/far = " + Table::num(single_near, 0) +
                       " / " + Table::num(single_far, 0) +
                       " Mbps (paper: ~3 Gbps near, decaying with distance)");
  return emitter.exit_code();
}
