// Figure 3: Verizon mmWave downlink throughput vs UE-server distance,
// single vs multiple TCP connections (S20U, 8CC, 95th-pct of 10 tests).
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "geo/geo.h"
#include "net/speedtest.h"
#include "radio/ue.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "fig03_downlink_distance");
  bench::banner("Fig. 3", "[Verizon mmWave] downlink vs UE-server distance");
  bench::paper_note(
      "Multiple connections sustain >3 Gbps across all US servers; a single"
      " connection reaches ~3 Gbps only near the server and decays with"
      " distance (RTT + loss vs CUBIC).");

  net::SpeedtestConfig config;
  config.network = {radio::Carrier::kVerizon, radio::Band::kNrMmWave,
                    radio::DeploymentMode::kNsa};
  config.ue = radio::galaxy_s20u();
  config.ue_location = geo::minneapolis().point;
  net::SpeedtestHarness harness(config);

  // Sort servers by distance for a readable series.
  auto servers = net::carrier_server_pool();
  std::sort(servers.begin(), servers.end(), [&](const auto& a, const auto& b) {
    return geo::haversine_km(config.ue_location, a.location) <
           geo::haversine_km(config.ue_location, b.location);
  });

  Table table("Downlink (Mbps, p95 of 10) vs distance");
  table.set_header({"server", "km", "multi-conn", "single-conn", "RTT ms"});
  Rng rng(bench::kBenchSeed);

  double multi_min = 1e18;
  double single_near = 0.0;
  double single_far = 0.0;
  for (const auto& server : servers) {
    const double km = geo::haversine_km(config.ue_location, server.location);
    const auto multi =
        harness.peak_of(server, net::ConnectionMode::kMultiple, 10, rng);
    const auto single =
        harness.peak_of(server, net::ConnectionMode::kSingle, 10, rng);
    table.add_row({server.name, Table::num(km, 0),
                   Table::num(multi.downlink_mbps, 0),
                   Table::num(single.downlink_mbps, 0),
                   Table::num(multi.rtt_ms, 1)});
    multi_min = std::min(multi_min, multi.downlink_mbps);
    if (km < 100.0) single_near = single.downlink_mbps;
    single_far = single.downlink_mbps;  // last (farthest) after sort
  }
  emitter.report(table);

  bench::measured_note("multi-conn minimum across servers = " +
                       Table::num(multi_min, 0) +
                       " Mbps (paper: >3000 Mbps everywhere)");
  bench::measured_note("single-conn near/far = " + Table::num(single_near, 0) +
                       " / " + Table::num(single_far, 0) +
                       " Mbps (paper: ~3 Gbps near, decaying with distance)");
  return 0;
}
