# Bench binaries land in build/bench/ (executables only) so that
# `for b in build/bench/*; do $b; done` runs the whole harness.
#
# Every bench is also a golden-metrics regression gate: it emits its
# figure/table data as JSON (`--json <path>`), bench/golden/ holds the
# committed baselines generated at kBenchSeed, and `ctest -R golden.` runs
# each bench -> tools/golden_check cycle. `cmake --build build --target
# regen-goldens` rewrites the baselines after an intentional change.
set(WILD5G_GOLDEN_DIR ${CMAKE_SOURCE_DIR}/bench/golden)
set(WILD5G_GOLDEN_SCRATCH ${CMAKE_BINARY_DIR}/bench-golden-out)

add_custom_target(regen-goldens
  COMMENT "Regenerated golden baselines in bench/golden/")

function(wild5g_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  # wild5g_faults backs the --faults flag every bench accepts, and
  # wild5g_engine the supervision layer (signals, --deadline-ms) every bench
  # inherits through bench_common.h's MetricsEmitter.
  target_link_libraries(${name} PRIVATE ${ARGN} wild5g_faults wild5g_engine)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/bench)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

  if(BUILD_TESTING)
    add_test(NAME golden.${name}
      COMMAND ${CMAKE_COMMAND}
        -DBENCH_BIN=$<TARGET_FILE:${name}>
        -DOUT=${WILD5G_GOLDEN_SCRATCH}/${name}.json
        -DGOLDEN=${WILD5G_GOLDEN_DIR}/${name}.json
        -DGOLDEN_CHECK=$<TARGET_FILE:golden_check>
        -P ${CMAKE_SOURCE_DIR}/bench/golden_run.cmake)
  endif()

  add_custom_target(regen-golden-${name}
    COMMAND ${CMAKE_COMMAND}
      -DBENCH_BIN=$<TARGET_FILE:${name}>
      -DOUT=${WILD5G_GOLDEN_DIR}/${name}.json
      -P ${CMAKE_SOURCE_DIR}/bench/golden_run.cmake
    DEPENDS ${name}
    COMMENT "Regenerating golden baseline for ${name}")
  add_dependencies(regen-goldens regen-golden-${name})
endfunction()

wild5g_bench(bench_table1_campaign wild5g_net wild5g_rrc wild5g_power wild5g_web wild5g_traces)
wild5g_bench(bench_fig01_02_latency_distance wild5g_net)
wild5g_bench(bench_fig03_downlink_distance wild5g_net)
wild5g_bench(bench_fig04_uplink_distance wild5g_net)
wild5g_bench(bench_fig05_07_tmobile_sa_nsa wild5g_net)
wild5g_bench(bench_fig08_transport_tuning wild5g_net)
wild5g_bench(bench_fig09_handoffs wild5g_mobility)
wild5g_bench(bench_fig10_25_rrc_probe wild5g_rrc)
wild5g_bench(bench_table7_rrc_params wild5g_rrc)
wild5g_bench(bench_table2_transition_power wild5g_power)
wild5g_bench(bench_fig11_throughput_power wild5g_power)
wild5g_bench(bench_fig12_energy_efficiency wild5g_power)
wild5g_bench(bench_fig13_14_rsrp_power wild5g_power)
wild5g_bench(bench_fig15_16_power_models wild5g_power)
wild5g_bench(bench_table3_9_sw_monitor wild5g_power)
wild5g_bench(bench_table8_slopes wild5g_power)
wild5g_bench(bench_fig17_abr_qoe wild5g_abr)
wild5g_bench(bench_fig18a_predictors wild5g_abr)
wild5g_bench(bench_fig18b_chunk_length wild5g_abr)
wild5g_bench(bench_fig18c_table4_interface wild5g_abr)
wild5g_bench(bench_fig19_20_web_qoe wild5g_web)
wild5g_bench(bench_fig21_penalty_saving wild5g_web)
wild5g_bench(bench_table6_fig22_selector wild5g_web)
wild5g_bench(bench_fig23_carrier_aggregation wild5g_net)
wild5g_bench(bench_fig24_server_survey wild5g_net)
wild5g_bench(bench_fig26_27_s10_power wild5g_power)
wild5g_bench(bench_micro wild5g_abr wild5g_net wild5g_mobility wild5g_rrc benchmark::benchmark)
wild5g_bench(bench_validation_apps wild5g_abr wild5g_web)
wild5g_bench(bench_baseline_2019 wild5g_net)
wild5g_bench(bench_ablation_handoff wild5g_mobility)
wild5g_bench(bench_ablation_transport wild5g_net)
wild5g_bench(bench_ablation_abr wild5g_abr)
wild5g_bench(bench_ablation_power_model wild5g_power)
wild5g_bench(bench_extension_bbr wild5g_net)
wild5g_bench(bench_extension_pensieve_5g wild5g_abr)
wild5g_bench(bench_extension_drive_energy wild5g_mobility wild5g_rrc)
wild5g_bench(bench_extension_http2 wild5g_web)
wild5g_bench(bench_extension_metro_load wild5g_metro)
wild5g_bench(bench_extension_metro_qoe wild5g_metro)
