// Figures 19 & 20: web page load time and radio energy over mmWave 5G vs
// 4G, binned by object count and total page size, plus CDF percentiles.
#include <iostream>

#include "bench_common.h"
#include "core/quantile_sketch.h"
#include "core/stats.h"
#include "web/selector.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "fig19_20_web_qoe");
  bench::banner("Fig. 19 + Fig. 20", "Web QoE: PLT and energy, 5G vs 4G");
  bench::paper_note(
      "5G always loads faster; 4G always burns less energy; both gaps widen"
      " with object count and page size (Fig. 19). The CDFs (Fig. 20)"
      " separate cleanly in both metrics.");

  Rng rng(bench::kBenchSeed);
  const auto corpus = web::generate_corpus(1500, rng);
  const auto device = power::DevicePowerProfile::s10();
  const auto measurements =
      web::measure_corpus(corpus, 8, device, rng, emitter.faults());

  // Fig. 19a: by object count.
  struct Bin {
    std::string label;
    int lo;
    int hi;
  };
  const std::vector<Bin> object_bins = {
      {"0-10", 0, 10}, {"11-100", 11, 100}, {"100-1000", 100, 1000}};
  Table fig19a("Fig. 19a: impact of # objects (means)");
  fig19a.set_header({"objects", "sites", "4G PLT s", "5G PLT s", "4G J",
                     "5G J"});
  for (const auto& bin : object_bins) {
    double p4 = 0.0, p5 = 0.0, e4 = 0.0, e5 = 0.0;
    int count = 0;
    for (const auto& m : measurements) {
      if (m.site.object_count < bin.lo || m.site.object_count > bin.hi) {
        continue;
      }
      p4 += m.plt_4g_s;
      p5 += m.plt_5g_s;
      e4 += m.energy_4g_j;
      e5 += m.energy_5g_j;
      ++count;
    }
    if (count == 0) continue;
    fig19a.add_row({bin.label, std::to_string(count),
                    Table::num(p4 / count, 2), Table::num(p5 / count, 2),
                    Table::num(e4 / count, 2), Table::num(e5 / count, 2)});
  }
  emitter.report(fig19a);

  // Fig. 19b: by total page size.
  const std::vector<std::pair<std::string, std::pair<double, double>>>
      size_bins = {{"<1 MB", {0.0, 1.0}},
                   {"1-10 MB", {1.0, 10.0}},
                   {">10 MB", {10.0, 1e9}}};
  Table fig19b("Fig. 19b: impact of total page size (means)");
  fig19b.set_header({"page size", "sites", "4G PLT s", "5G PLT s", "4G J",
                     "5G J"});
  for (const auto& [label, range] : size_bins) {
    double p4 = 0.0, p5 = 0.0, e4 = 0.0, e5 = 0.0;
    int count = 0;
    for (const auto& m : measurements) {
      if (m.site.total_page_size_mb < range.first ||
          m.site.total_page_size_mb >= range.second) {
        continue;
      }
      p4 += m.plt_4g_s;
      p5 += m.plt_5g_s;
      e4 += m.energy_4g_j;
      e5 += m.energy_5g_j;
      ++count;
    }
    fig19b.add_row({label, std::to_string(count), Table::num(p4 / count, 2),
                    Table::num(p5 / count, 2), Table::num(e4 / count, 2),
                    Table::num(e5 / count, 2)});
  }
  emitter.report(fig19b);

  // Fig. 20: CDF percentiles.
  stats::SampleAccumulator plt4, plt5, en4, en5;
  for (const auto& m : measurements) {
    plt4.add(m.plt_4g_s);
    plt5.add(m.plt_5g_s);
    en4.add(m.energy_4g_j);
    en5.add(m.energy_5g_j);
  }
  Table fig20("Fig. 20: CDF percentiles");
  fig20.set_header({"percentile", "4G PLT s", "5G PLT s", "4G J", "5G J"});
  for (const double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    fig20.add_row({Table::num(p, 0), Table::num(plt4.percentile(p), 2),
                   Table::num(plt5.percentile(p), 2),
                   Table::num(en4.percentile(p), 2),
                   Table::num(en5.percentile(p), 2)});
  }
  emitter.report(fig20);

  if (emitter.faults() != nullptr) {
    // Faulted runs only: the default document must match the golden.
    int failed_objects = 0;
    for (const auto& m : measurements) failed_objects += m.failed_objects;
    emitter.metric("failed_objects", failed_objects);
    bench::measured_note("object fetches failed under fault plan = " +
                         std::to_string(failed_objects));
  }

  bench::measured_note("median PLT: 5G " +
                       Table::num(plt5.median(), 2) + " s vs 4G " +
                       Table::num(plt4.median(), 2) +
                       " s; median energy: 5G " +
                       Table::num(en5.median(), 2) + " J vs 4G " +
                       Table::num(en4.median(), 2) + " J");
  return emitter.exit_code();
}
