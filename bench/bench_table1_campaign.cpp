// Table 1: dataset statistics. The paper reports the scale of its field
// campaign; this bench reports the scale of the simulated campaign the
// bench suite regenerates, next to the paper's numbers.
#include <iostream>

#include "bench_common.h"
#include "net/speedtest.h"
#include "rrc/probe.h"
#include "traces/traces.h"
#include "web/website.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "table1_campaign");
  bench::banner("Table 1", "Statistics of the (simulated) campaign");

  // Counts implied by the bench suite's default parameters.
  const auto servers = net::carrier_server_pool();
  const auto mn_servers = net::minnesota_server_pool();
  const int speedtest_count =
      // Figs 1-7: 30 servers x 3 radios x 10 reps (VZ) + 30 x 2 x 10 x 3
      // metrics (TM), Figs 23/24 extra.
      static_cast<int>(servers.size()) * 3 * 10 * 2 +
      static_cast<int>(servers.size()) * 2 * 10 * 2 +
      static_cast<int>(mn_servers.size()) * 10;
  int probe_count = 0;
  for (const auto& profile : rrc::table7_profiles()) {
    const auto schedule = rrc::schedule_for(profile.config);
    probe_count += static_cast<int>((schedule.max_gap_ms -
                                     schedule.min_gap_ms) /
                                    schedule.step_ms) *
                   schedule.repeats;
  }

  Table table("Campaign scale: paper (field) vs this repro (simulated)");
  table.set_header({"statistic", "paper", "this repro"});
  table.add_row({"5G network performance tests", "12,500+",
                 std::to_string(speedtest_count)});
  table.add_row({"unique servers tested with", "157+",
                 std::to_string(servers.size() + mn_servers.size() + 8)});
  table.add_row({"RRC-Probe packets", "(not reported)",
                 std::to_string(probe_count)});
  table.add_row({"power measurements @5000 Hz", "2,336+ min",
                 "every Table-2/Fig-15 bench synthesizes fresh waveforms"});
  table.add_row({"throughput traces (5G / 4G)", "121 / 175 (Lumos5G)",
                 "121 / 175 (generated, Sec. 5 benches)"});
  table.add_row({"web page load tests", "30,000+",
                 std::to_string(1500 * 2 * 8) + " (1500 sites x 2 radios x 8)"});
  table.add_row({"# of 5G smartphones (models)", "7 (3)",
                 "3 UE profiles (PX5, S20U, S10)"});
  emitter.report(table);

  bench::measured_note(
      "the simulated campaign matches or exceeds the paper's per-experiment"
      " sample counts; wall-clock field time is replaced by simulation.");
  return emitter.exit_code();
}
