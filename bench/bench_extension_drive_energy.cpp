// Extension: control-plane energy of the Fig. 9 drive.
//
// Sec. 3.3 notes the handoff counts "have implications not just on control
// plane signaling and scheduling overheads, but also over network
// performance", and Sec. 4.2 prices the 4G->5G switch (Table 2). This bench
// combines the two: the radio energy each band setting burns on vertical
// switches and promotion bursts alone during the 10 km drive.
#include <iostream>

#include "bench_common.h"
#include "mobility/drive.h"
#include "mobility/route.h"
#include "rrc/rrc_config.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "extension_drive_energy");
  bench::banner("Extension", "Control-plane energy of the Fig. 9 drive");
  bench::paper_note(
      "Every vertical handoff in NSA pays the 4G->5G switch burst"
      " (Table 2: ~0.7 W for ~1.4 s on T-Mobile low-band). 110 handoffs per"
      " 10 km is not just signaling overhead — it is joules.");

  // Switch cost per vertical handoff, from the RRC profiles.
  const auto& nsa = rrc::profile_by_name("T-Mobile NSA low-band");
  const auto& sa = rrc::profile_by_name("T-Mobile SA low-band");
  const double nsa_switch_j = nsa.power.switch_mw / 1000.0 *
                              (*nsa.config.promotion_5g_ms / 1000.0);
  const double sa_switch_j = sa.power.promotion_mw / 1000.0 *
                             (*sa.config.promotion_5g_ms / 1000.0);
  // Horizontal handoffs are cheap (intra-tech signaling burst ~ 0.3 s).
  const double horizontal_j = 0.35 * 0.3;

  Table table("Per-drive switch energy (mean of 4 drives)");
  table.set_header({"setting", "vertical", "horizontal",
                    "switch energy J", "J per km"});
  for (const auto setting :
       {mobility::BandSetting::kSaOnly, mobility::BandSetting::kNsaPlusLte,
        mobility::BandSetting::kLteOnly, mobility::BandSetting::kSaPlusLte,
        mobility::BandSetting::kAllBands}) {
    if (!emitter.keep_going()) return emitter.exit_code();
    double vertical = 0.0;
    double horizontal = 0.0;
    const int drives = 4;
    for (int d = 0; d < drives; ++d) {
      Rng rng(bench::kBenchSeed + static_cast<std::uint64_t>(d));
      const auto route = mobility::driving_route(rng);
      const auto result = mobility::simulate_drive(setting, route, {}, rng);
      vertical += result.vertical_handoffs();
      horizontal += result.horizontal_handoffs();
    }
    vertical /= drives;
    horizontal /= drives;
    const double per_switch_j =
        setting == mobility::BandSetting::kSaOnly ||
                setting == mobility::BandSetting::kSaPlusLte
            ? sa_switch_j
            : nsa_switch_j;
    const double energy =
        vertical * per_switch_j + horizontal * horizontal_j;
    table.add_row({mobility::to_string(setting), Table::num(vertical, 1),
                   Table::num(horizontal, 1), Table::num(energy, 1),
                   Table::num(energy / 10.0, 2)});
  }
  emitter.report(table);

  bench::measured_note(
      "NSA's vertical-handoff storm costs an order of magnitude more switch"
      " energy per km than SA — quantifying why the paper recommends"
      " avoiding intermittent 4G/5G toggling.");
  return emitter.exit_code();
}
