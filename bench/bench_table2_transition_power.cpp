// Table 2: power during RRC state transitions — tail power and 4G->5G
// switch power, measured from the synthesized Monsoon waveform using the
// paper's single-burst methodology.
#include <iostream>

#include "bench_common.h"
#include "power/waveform.h"
#include "rrc/state_machine.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "table2_transition_power");
  bench::banner("Table 2", "Power during RRC state transitions");
  bench::paper_note(
      "Tail power (mW): Verizon 4G 178, T-Mobile 4G 66, Verizon NSA"
      " low-band 249, Verizon NSA mmWave 1092, T-Mobile NSA low-band 260,"
      " T-Mobile SA low-band 593. 4G->5G switch: 799/1494/699/245 mW.");

  Table table("Measured from single-burst waveform (5 kHz)");
  table.set_header({"network", "tail mW (paper)", "tail mW (measured)",
                    "switch mW (paper)", "switch mW (measured)"});

  for (const auto& profile : rrc::table7_profiles()) {
    const auto& config = profile.config;
    // UE idles 20 s (forced to RRC_IDLE), a server packet promotes it, a
    // short transfer runs, then the monitor captures the full tail.
    const std::vector<rrc::ActivityBurst> bursts = {
        {20000.0, 24000.0, 200.0, 8.0}};
    const double horizon =
        24000.0 + config.anchor_tail_ms.value_or(config.inactivity_timer_ms) +
        config.inactive_hold_ms.value_or(0.0) + 8000.0;
    power::WaveformSynthesizer synth(profile,
                                     power::DevicePowerProfile::s20u());
    Rng rng(bench::kBenchSeed);
    const auto trace = synth.synthesize(
        rrc::build_timeline(config, bursts, horizon), rng);

    const double tail_measured = trace.average_mw(
        24.2, 24.0 + config.inactivity_timer_ms / 1000.0 - 0.2);

    std::string switch_measured = "N/A";
    std::string switch_paper = "N/A";
    if (config.is_nsa_5g() || config.is_sa()) {
      const double promo_s = config.promotion_5g_ms.value_or(
                                 config.promotion_4g_ms.value_or(300.0)) /
                             1000.0;
      switch_measured =
          Table::num(trace.average_mw(20.02, 20.0 + promo_s * 0.95), 0);
      switch_paper = Table::num(profile.power.switch_mw, 0);
    }
    table.add_row({config.name, Table::num(profile.power.tail_mw, 0),
                   Table::num(tail_measured, 0), switch_paper,
                   switch_measured});
  }
  emitter.report(table);
  bench::measured_note(
      "5G tails cost more than 4G (mmWave most of all), and the 4G->5G"
      " switch adds a further burst, matching the paper's conclusion that"
      " intermittent transfer patterns should avoid 5G.");
  return emitter.exit_code();
}
