// Figures 10 & 25: RRC-Probe RTT vs inter-packet idle time for all six
// network configurations, exposing the CONNECTED / (INACTIVE|anchor) / IDLE
// plateaus.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "core/quantile_sketch.h"
#include "core/stats.h"
#include "rrc/probe.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "fig10_25_rrc_probe");
  bench::banner("Fig. 10 + Fig. 25",
                "RRC-Probe: RTT vs idle gap for all six configurations");
  bench::paper_note(
      "SA 5G shows a third plateau (RRC_INACTIVE) between ~10.4 s and"
      " ~15.4 s; NSA low-band shows a second (LTE anchor) tail; 4G and"
      " mmWave show a single CONNECTED->IDLE step.");

  for (const auto& profile : rrc::table7_profiles()) {
    const auto& config = profile.config;
    auto schedule = rrc::schedule_for(config);
    schedule.step_ms = 1000.0;  // coarse ladder for display
    schedule.repeats = 41;
    Rng rng(bench::kBenchSeed);
    const auto samples = rrc::run_probe(config, schedule, rng);

    std::map<double, stats::SampleAccumulator> by_gap;
    for (const auto& s : samples) by_gap[s.gap_ms].add(s.rtt_ms);

    Table table(config.name + " - RTT (ms) vs idle gap (s)");
    table.set_header({"gap s", "p10", "median", "p90", "true state"});
    for (const auto& [gap, rtts] : by_gap) {
      table.add_row({Table::num(gap / 1000.0, 0),
                     Table::num(rtts.percentile(10.0), 0),
                     Table::num(rtts.median(), 0),
                     Table::num(rtts.percentile(90.0), 0),
                     rrc::to_string(rrc::state_after_gap(config, gap))});
    }
    emitter.report(table);
  }
  bench::measured_note(
      "plateau structure per configuration matches the figure: three levels"
      " for SA and NSA low-band, two for mmWave and 4G.");
  return emitter.exit_code();
}
