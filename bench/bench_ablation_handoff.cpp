// Ablation: A3 handoff parameters. Sweeps hysteresis and time-to-trigger
// on the Sec. 3.3 drive and reports handoff + ping-pong counts, exposing
// the control-plane tradeoff behind Fig. 9's per-carrier differences.
#include <iostream>

#include "bench_common.h"
#include "mobility/route.h"
#include "radio/handoff.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "ablation_handoff");
  bench::banner("Ablation", "A3 handoff hysteresis / time-to-trigger sweep");
  bench::paper_note(
      "Fig. 9's LTE layer shows ~30 handoffs incl. ping-pong at cell edges;"
      " carriers trade handoff lag (large hysteresis/TTT) against edge"
      " flapping (small). This sweep quantifies that frontier on the drive"
      " route.");

  Table table("10 km drive, LTE cells every 480 m (mean of 5 drives)");
  table.set_header({"hysteresis dB", "TTT ms", "handoffs", "ping-pongs"});

  // The sweep grid fans out one task per (hysteresis, TTT) operating point;
  // each task's 5 drives stay seeded per run exactly as before, so the
  // emitted rows are independent of thread count by construction.
  const std::vector<double> hysteresis_grid = {0.0, 1.0, 3.0, 6.0};
  const std::vector<double> ttt_grid = {0.0, 160.0, 320.0, 640.0};
  const int runs = 5;
  struct GridCell {
    double mean_handoffs = 0.0;
    double mean_pingpongs = 0.0;
  };
  const auto grid = parallel::parallel_map(
      hysteresis_grid.size() * ttt_grid.size(), [&](std::size_t task) {
        const double hysteresis = hysteresis_grid[task / ttt_grid.size()];
        const double ttt = ttt_grid[task % ttt_grid.size()];
        double handoffs = 0.0;
        double pingpongs = 0.0;
        for (int run = 0; run < runs; ++run) {
          Rng rng(bench::kBenchSeed + static_cast<std::uint64_t>(run));
          const auto route = mobility::driving_route(rng);
          std::vector<radio::CellSite> cells;
          for (int i = 0; i * 480.0 < route.length_m() + 480.0; ++i) {
            cells.push_back({i, i * 480.0, radio::Band::kLte});
          }
          radio::HandoffConfig config;
          config.hysteresis_db = hysteresis;
          config.time_to_trigger_ms = ttt;
          radio::A3HandoffEngine engine(cells, config, rng.fork(9));
          for (double t = 0.1; t <= route.duration_s(); t += 0.1) {
            engine.step(0.1, route.position_m(t));
          }
          handoffs += engine.handoff_count();
          pingpongs += engine.pingpong_count();
        }
        return GridCell{handoffs / runs, pingpongs / runs};
      });
  for (std::size_t task = 0; task < grid.size(); ++task) {
    table.add_row({Table::num(hysteresis_grid[task / ttt_grid.size()], 1),
                   Table::num(ttt_grid[task % ttt_grid.size()], 0),
                   Table::num(grid[task].mean_handoffs, 1),
                   Table::num(grid[task].mean_pingpongs, 1)});
  }
  emitter.report(table);

  bench::measured_note(
      "small hysteresis + zero TTT floods the control plane with edge"
      " ping-pong; the (3 dB, 320 ms) operating point lands near Fig. 9's"
      " LTE count with ping-pong largely suppressed.");
  return emitter.exit_code();
}
