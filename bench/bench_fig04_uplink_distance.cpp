// Figure 4: Verizon mmWave uplink throughput vs UE-server distance.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "geo/geo.h"
#include "net/speedtest.h"
#include "radio/ue.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "fig04_uplink_distance");
  bench::banner("Fig. 4", "[Verizon mmWave] uplink vs UE-server distance");
  bench::paper_note(
      "Both single and multiple connection uplink tests reach ~220 Mbps"
      " (3-4x over the 2019 baseline); distance matters far less than on"
      " the downlink because the rate is radio-limited, not BDP-limited.");

  net::SpeedtestConfig config;
  config.network = {radio::Carrier::kVerizon, radio::Band::kNrMmWave,
                    radio::DeploymentMode::kNsa};
  config.ue = radio::galaxy_s20u();
  config.ue_location = geo::minneapolis().point;
  net::SpeedtestHarness harness(config);

  auto servers = net::carrier_server_pool();
  std::sort(servers.begin(), servers.end(), [&](const auto& a, const auto& b) {
    return geo::haversine_km(config.ue_location, a.location) <
           geo::haversine_km(config.ue_location, b.location);
  });

  Table table("Uplink (Mbps, p95 of 10) vs distance");
  table.set_header({"server", "km", "multi-conn", "single-conn"});
  Rng rng(bench::kBenchSeed);

  double peak = 0.0;
  for (const auto& server : servers) {
    const double km = geo::haversine_km(config.ue_location, server.location);
    const auto multi =
        harness.peak_of(server, net::ConnectionMode::kMultiple, 10, rng);
    const auto single =
        harness.peak_of(server, net::ConnectionMode::kSingle, 10, rng);
    table.add_row({server.name, Table::num(km, 0),
                   Table::num(multi.uplink_mbps, 0),
                   Table::num(single.uplink_mbps, 0)});
    peak = std::max(peak, multi.uplink_mbps);
  }
  emitter.report(table);
  bench::measured_note("peak uplink = " + Table::num(peak, 0) +
                       " Mbps (paper: ~220 Mbps)");
  return 0;
}
