// Figure 4: Verizon mmWave uplink throughput vs UE-server distance.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "geo/geo.h"
#include "net/speedtest.h"
#include "radio/ue.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "fig04_uplink_distance");
  bench::banner("Fig. 4", "[Verizon mmWave] uplink vs UE-server distance");
  bench::paper_note(
      "Both single and multiple connection uplink tests reach ~220 Mbps"
      " (3-4x over the 2019 baseline); distance matters far less than on"
      " the downlink because the rate is radio-limited, not BDP-limited.");

  net::SpeedtestConfig config;
  config.network = {radio::Carrier::kVerizon, radio::Band::kNrMmWave,
                    radio::DeploymentMode::kNsa};
  config.ue = radio::galaxy_s20u();
  config.ue_location = geo::minneapolis().point;
  net::SpeedtestHarness harness(config);

  auto servers = net::carrier_server_pool();
  std::sort(servers.begin(), servers.end(), [&](const auto& a, const auto& b) {
    return geo::haversine_km(config.ue_location, a.location) <
           geo::haversine_km(config.ue_location, b.location);
  });

  Table table("Uplink (Mbps, p95 of 10) vs distance");
  table.set_header({"server", "km", "multi-conn", "single-conn"});
  Rng rng(bench::kBenchSeed);

  // Server sweep: one task per server, per-task substreams forked up front;
  // table rows and the peak scan run in server order on this thread.
  struct ServerResult {
    net::SpeedtestResult multi;
    net::SpeedtestResult single;
  };
  Rng base = rng.split();
  const auto results =
      parallel::parallel_map(servers.size(), [&](std::size_t i) {
        Rng multi_rng = base.fork(2 * i);
        Rng single_rng = base.fork(2 * i + 1);
        return ServerResult{
            harness.peak_of(servers[i], net::ConnectionMode::kMultiple, 10,
                            multi_rng),
            harness.peak_of(servers[i], net::ConnectionMode::kSingle, 10,
                            single_rng)};
      });
  double peak = 0.0;
  for (std::size_t i = 0; i < servers.size(); ++i) {
    if (!emitter.keep_going()) return emitter.exit_code();
    const double km =
        geo::haversine_km(config.ue_location, servers[i].location);
    table.add_row({servers[i].name, Table::num(km, 0),
                   Table::num(results[i].multi.uplink_mbps, 0),
                   Table::num(results[i].single.uplink_mbps, 0)});
    peak = std::max(peak, results[i].multi.uplink_mbps);
  }
  emitter.report(table);
  bench::measured_note("peak uplink = " + Table::num(peak, 0) +
                       " Mbps (paper: ~220 Mbps)");
  return emitter.exit_code();
}
