// Tables 3 & 9: software power-monitor overhead and per-activity relative
// error (SW/HW ratio) at 1 Hz and 10 Hz sampling.
#include <iostream>

#include "bench_common.h"
#include "core/stats.h"
#include "power/monitor.h"
#include "power/waveform.h"
#include "rrc/state_machine.h"

using namespace wild5g;

namespace {

/// Builds an activity-specific waveform on Verizon mmWave.
power::PowerTrace make_waveform(const std::string& activity,
                                std::uint64_t seed) {
  const auto profile = rrc::profile_by_name("Verizon NSA mmWave");
  std::vector<rrc::ActivityBurst> bursts;
  const double horizon = 120000.0;
  if (activity == "Random activities") {
    Rng rng(seed);
    double t = 1000.0;
    while (t < horizon - 6000.0) {
      const double len = rng.uniform(500.0, 4000.0);
      bursts.push_back({t, t + len, rng.uniform(5.0, 120.0), 2.0});
      t += len + rng.uniform(1000.0, 8000.0);
    }
  } else if (activity.rfind("UDP DL", 0) == 0) {
    const double mbps = std::stod(activity.substr(7));
    bursts.push_back({1000.0, horizon - 1000.0, mbps, mbps * 0.02});
  } else if (activity == "Video streaming") {
    for (double t = 1000.0; t < horizon - 8000.0; t += 12000.0) {
      bursts.push_back({t, t + 5000.0, 180.0, 4.0});
    }
  }
  // "Idle" activities: no bursts at all.
  power::WaveformSynthesizer synth(profile, power::DevicePowerProfile::s20u(),
                                   1000.0);
  Rng rng(seed + 1);
  return synth.synthesize(rrc::build_timeline(profile.config, bursts, horizon),
                          rng);
}

}  // namespace

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "table3_9_sw_monitor");
  bench::banner("Table 3 + Table 9", "Software power monitor benchmarking");
  bench::paper_note(
      "Table 3: polling the battery API itself costs power (+654 mW @1 Hz,"
      " +1111 mW @10 Hz over idle). Table 9: the software monitor reads"
      " 81-92% of hardware truth at 1 Hz and 90-95% at 10 Hz.");

  Table table3("Table 3: monitoring overhead (device total, mW)");
  table3.set_header({"activity", "average power (mW)"});
  const double idle = 2014.3;  // paper's idle device power (screen on)
  table3.add_row({"Idle", Table::num(idle, 1)});
  table3.add_row({"Monitor on (1Hz)",
                  Table::num(idle + power::software_monitor_overhead_mw(1.0),
                             1)});
  table3.add_row({"Monitor on (10Hz)",
                  Table::num(idle + power::software_monitor_overhead_mw(10.0),
                             1)});
  emitter.report(table3);

  Table table9("Table 9: relative error = SW / HW");
  table9.set_header({"test case", "@ 1Hz", "@ 10Hz"});
  const std::vector<std::string> activities = {
      "Random activities", "Idle (screen on)", "Idle (screen off)",
      "UDP DL 50Mbps", "UDP DL 400Mbps", "UDP DL 800Mbps",
      "UDP DL 1200Mbps", "Video streaming"};
  std::uint64_t seed = bench::kBenchSeed;
  for (const auto& activity : activities) {
    const auto waveform = make_waveform(activity, seed += 13);
    const auto hw = power::MonsoonMonitor::per_second_mw(waveform);
    std::vector<std::string> row{activity};
    for (const double rate : {1.0, 10.0}) {
      power::SoftwareMonitor sw(power::default_software_monitor(rate));
      Rng rng(seed + static_cast<std::uint64_t>(rate));
      auto readings = sw.per_second_mw(waveform, rng);
      readings.resize(hw.size());
      row.push_back(Table::num(
          100.0 * stats::mean(readings) / stats::mean(hw), 1) + "%");
    }
    table9.add_row(std::move(row));
  }
  emitter.report(table9);

  bench::measured_note(
      "software always under-reads; the 10 Hz column is uniformly closer to"
      " 100%, and the polling overhead grows with rate (Table 3's tradeoff).");
  return emitter.exit_code();
}
