// Extension: per-user throughput under shared-cell contention. The paper
// measures one UE against effectively unloaded cells (Sec. 3); this
// campaign asks the metro-scale question — what each user actually gets
// when a corridor of cells serves a whole population — by sweeping the
// configured background load and the number of sharers per cell.
//
// Flags (beyond the common --json/--threads/--faults):
//   --cells N   corridor length in cells   (default 12)
//   --ues N     UEs per cell               (default 100)
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "metro/metro.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "extension_metro_load");

  int cells = 12;
  int ues_per_cell = 100;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cells") {
      if (i + 1 >= argc) emitter.fail_usage("--cells requires a count");
      cells = emitter.positive_count("--cells", argv[++i]);
    } else if (arg == "--ues") {
      if (i + 1 >= argc) emitter.fail_usage("--ues requires a count");
      ues_per_cell = emitter.positive_count("--ues", argv[++i]);
    } else {
      emitter.fail_usage("unknown flag '" + arg + "'");
    }
  }
  if (emitter.faults() != nullptr) {
    const auto bad = metro::unsupported_fault_kinds(emitter.faults()->plan());
    if (!bad.empty()) {
      emitter.fail_usage(
          std::string("--faults: plan contains '") +
          faults::to_string(bad.front()) +
          "' windows, which the metro campaign does not model (radio kinds "
          "only: mmwave_blockage, nr_to_lte_outage, radio_outage)");
    }
  }

  bench::banner("Extension",
                "Metro-scale shared-cell contention: per-user throughput vs"
                " cell load");
  bench::paper_note(
      "Sec. 3 measures 1-2 UEs on effectively unloaded mid-band cells"
      " (~640 Mbps DL); commercial deployments schedule that capacity across"
      " every attached user, so per-user throughput is governed by cell"
      " load, not peak capacity.");

  metro::MetroConfig base;
  base.cells = cells;
  base.ues_per_cell = ues_per_cell;
  base.faults = emitter.faults();

  Table load_table(std::to_string(cells) + " cells x " +
                   std::to_string(ues_per_cell) +
                   " UEs/cell, 60 s walk, mid-band NSA: background load"
                   " sweep");
  load_table.set_header({"bg load", "mean/UE Mbps", "p50 Mbps", "p95 Mbps",
                         "mean util", "handoffs"});
  const std::vector<double> load_grid = {0.0, 0.2, 0.4, 0.6, 0.8};
  for (std::size_t point = 0; point < load_grid.size(); ++point) {
    const double load = load_grid[point];
    metro::MetroConfig config = base;
    config.background_load = load;
    const auto result = metro::run_campaign(config, Rng(bench::kBenchSeed));
    load_table.add_row({Table::num(load, 1),
                        Table::num(result.per_ue_mean_mbps.mean(), 3),
                        Table::num(result.per_ue_mean_mbps.median(), 3),
                        Table::num(result.per_ue_mean_mbps.p95(), 3),
                        Table::num(result.mean_utilization, 3),
                        Table::num(static_cast<double>(result.handoffs), 0)});
    if (point == 0) {  // the unloaded anchor point
      emitter.metric("unloaded_mean_ue_mbps", result.per_ue_mean_mbps.mean());
      emitter.metric("peak_cell_active",
                     static_cast<double>(result.peak_cell_active));
      emitter.metric("attach_ops", static_cast<double>(result.attach_ops));
    }
  }
  emitter.report(load_table);

  Table sharer_table(
      "Same corridor, background load 0: per-user throughput vs sharers");
  sharer_table.set_header(
      {"UEs/cell", "mean/UE Mbps", "p50 Mbps", "p95 Mbps", "step p5 Mbps"});
  const std::vector<int> sharer_grid = {1, 10, 50, 100};
  for (const int sharers : sharer_grid) {
    metro::MetroConfig config = base;
    config.ues_per_cell = sharers;
    config.background_load = 0.0;
    const auto result = metro::run_campaign(config, Rng(bench::kBenchSeed));
    sharer_table.add_row(
        {Table::num(static_cast<double>(sharers), 0),
         Table::num(result.per_ue_mean_mbps.mean(), 3),
         Table::num(result.per_ue_mean_mbps.median(), 3),
         Table::num(result.per_ue_mean_mbps.p95(), 3),
         Table::num(result.step_throughput_mbps.percentile(5.0), 3)});
  }
  emitter.report(sharer_table);

  bench::measured_note(
      "per-user throughput falls monotonically with both dials: the"
      " background-load sweep shrinks every user's airtime share, and the"
      " sharer sweep splits the same cell capacity ever thinner — the"
      " unloaded single-UE numbers the paper reports are the best case, not"
      " the expectation.");
  return emitter.finalize() ? 0 : 1;
}
