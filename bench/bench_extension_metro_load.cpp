// Extension: per-user throughput under shared-cell contention. The paper
// measures one UE against effectively unloaded cells (Sec. 3); this
// campaign asks the metro-scale question — what each user actually gets
// when a corridor of cells serves a whole population — by sweeping the
// configured background load and the number of sharers per cell.
//
// Engine-backed (src/engine/): the main assembles a CampaignRequest for the
// registered "metro_load" campaign and runs it under the emitter's
// supervision, so the sweep inherits SIGINT/SIGTERM partial flushes and
// --deadline-ms for free. The emitted document is byte-identical to the
// pre-engine monolithic main — the committed golden gates that.
//
// Flags (beyond the common --json/--threads/--faults/--deadline-ms):
//   --cells N   corridor length in cells   (default 12)
//   --ues N     UEs per cell               (default 100)
#include <iostream>
#include <string>

#include "bench_common.h"
#include "engine/campaign.h"
#include "metro/metro.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "extension_metro_load");

  engine::CampaignRequest request;
  request.campaign = "metro_load";
  request.params = json::Value::object();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cells") {
      if (i + 1 >= argc) emitter.fail_usage("--cells requires a count");
      request.params.set("cells",
                         emitter.positive_count("--cells", argv[++i]));
    } else if (arg == "--ues") {
      if (i + 1 >= argc) emitter.fail_usage("--ues requires a count");
      request.params.set("ues", emitter.positive_count("--ues", argv[++i]));
    } else {
      emitter.fail_usage("unknown flag '" + arg + "'");
    }
  }
  if (emitter.faults() != nullptr) {
    const auto bad = metro::unsupported_fault_kinds(emitter.faults()->plan());
    if (!bad.empty()) {
      emitter.fail_usage(
          std::string("--faults: plan contains '") +
          faults::to_string(bad.front()) +
          "' windows, which the metro campaign does not model (radio kinds "
          "only: mmwave_blockage, nr_to_lte_outage, radio_outage)");
    }
    request.fault_plan = emitter.fault_plan();
  }

  bench::banner("Extension",
                "Metro-scale shared-cell contention: per-user throughput vs"
                " cell load");
  bench::paper_note(
      "Sec. 3 measures 1-2 UEs on effectively unloaded mid-band cells"
      " (~640 Mbps DL); commercial deployments schedule that capacity across"
      " every attached user, so per-user throughput is governed by cell"
      " load, not peak capacity.");

  engine::register_builtin_campaigns();
  const auto campaign = engine::make_campaign(request);
  const int code = emitter.run_campaign(*campaign);

  bench::measured_note(
      "per-user throughput falls monotonically with both dials: the"
      " background-load sweep shrinks every user's airtime share, and the"
      " sharer sweep splits the same cell capacity ever thinner — the"
      " unloaded single-UE numbers the paper reports are the best case, not"
      " the expectation.");
  return code;
}
