// Figure 18a: QoE impact of the throughput predictor plugged into fastMPC —
// harmonic mean (hmMPC) vs gradient-boosted trees (MPC_GDBT) vs ground
// truth (truthMPC).
#include <iostream>

#include "bench_common.h"
#include "abr/algorithms.h"
#include "abr/video.h"
#include "traces/traces.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "fig18a_predictors");
  bench::banner("Fig. 18a", "Throughput predictors for MPC over 5G");
  bench::paper_note(
      "MPC_GDBT achieves ~32% higher normalized QoE than the default"
      " harmonic-mean predictor and lands within ~1.3% of the ground-truth"
      " (oracle) predictor.");

  Rng rng(bench::kBenchSeed);
  auto config = traces::lumos5g_mmwave_config();
  const auto eval_traces = traces::generate_traces(config, rng);
  // Train GBDT on an independent population (the paper trains on the
  // Lumos5G dataset and evaluates on held-out traces).
  Rng rng2(bench::kBenchSeed + 1);
  config.count = 80;
  const auto train_traces = traces::generate_traces(config, rng2);

  abr::SessionOptions options;
  options.chunk_count = 60;
  const auto video = abr::video_ladder_5g();

  abr::HarmonicMeanPredictor hm;
  abr::GbdtPredictor gbdt(5, video.chunk_s);
  Rng train_rng(bench::kBenchSeed + 2);
  gbdt.train(train_traces, train_rng);
  abr::OraclePredictor oracle(video.chunk_s);

  Table table("fastMPC QoE by predictor (normalized, mean over traces)");
  table.set_header({"predictor", "norm. QoE", "norm. bitrate", "stall %"});
  double qoe_hm = 0.0;
  double qoe_gbdt = 0.0;
  double qoe_truth = 0.0;
  for (auto* predictor : std::initializer_list<abr::ThroughputPredictor*>{
           &hm, &gbdt, &oracle}) {
    abr::ModelPredictiveAbr mpc(abr::ModelPredictiveAbr::Variant::kFast,
                                *predictor);
    const auto q = abr::evaluate_on_traces(video, eval_traces, mpc, options);
    table.add_row({"MPC + " + predictor->name(),
                   Table::num(q.mean_normalized_qoe, 3),
                   Table::num(q.mean_normalized_bitrate, 2),
                   Table::num(q.mean_stall_percent, 2)});
    if (predictor == &hm) qoe_hm = q.mean_normalized_qoe;
    if (predictor == &gbdt) qoe_gbdt = q.mean_normalized_qoe;
    if (predictor == &oracle) qoe_truth = q.mean_normalized_qoe;
  }
  emitter.report(table);

  // The paper's Fig. 18a normalizes QoE so truthMPC ~ 1; its +31.98% gain
  // with only 1.3% left to the oracle means GDBT closes ~96% of the
  // hm -> oracle gap. Report the same gap-closure statistic.
  const double gap = qoe_truth - qoe_hm;
  const double closed = gap > 1e-9 ? 100.0 * (qoe_gbdt - qoe_hm) / gap : 0.0;
  bench::measured_note("GDBT closes " + Table::num(closed, 0) +
                       "% of the harmonic-mean -> oracle QoE gap"
                       " (paper: ~96%)");
  bench::measured_note("ordering hm < gbdt < truth: " +
                       std::string(qoe_hm < qoe_gbdt && qoe_gbdt < qoe_truth
                                       ? "reproduced"
                                       : "NOT reproduced"));
  return emitter.exit_code();
}
