// Figure 21: 4G's PLT penalty vs energy saving over 5G — how much energy
// choosing 4G saves, binned by how much extra page-load time it costs.
#include <iostream>

#include "bench_common.h"
#include "core/stats.h"
#include "web/selector.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "fig21_penalty_saving");
  bench::banner("Fig. 21", "4G's PLT penalty vs energy saving over 5G");
  bench::paper_note(
      "Even a 10% PLT penalty buys ~70% energy saving; the saving declines"
      " as the penalty bin grows but stays above ~50% out to 50-60%.");

  Rng rng(bench::kBenchSeed);
  const auto corpus = web::generate_corpus(1500, rng);
  const auto device = power::DevicePowerProfile::s10();
  const auto measurements = web::measure_corpus(corpus, 4, device, rng);

  Table table("Energy saving (%) by PLT-penalty bin");
  table.set_header({"penalty of additional PLT", "sites",
                    "mean energy saving %"});
  for (double lo = 0.0; lo < 60.0; lo += 10.0) {
    std::vector<double> savings;
    for (const auto& m : measurements) {
      const double penalty =
          100.0 * (m.plt_4g_s - m.plt_5g_s) / m.plt_5g_s;
      if (penalty < lo || penalty >= lo + 10.0) continue;
      savings.push_back(100.0 * (m.energy_5g_j - m.energy_4g_j) /
                        m.energy_5g_j);
    }
    if (savings.size() < 5) continue;
    table.add_row({Table::num(lo, 0) + "-" + Table::num(lo + 10.0, 0) + "%",
                   std::to_string(savings.size()),
                   Table::num(stats::mean(savings), 1)});
  }
  emitter.report(table);

  bench::measured_note(
      "the saving is largest in the lowest-penalty bin and declines with"
      " the penalty, matching the figure's takeaway that the slightest"
      " permissible PLT penalty yields large energy savings.");
  return emitter.exit_code();
}
