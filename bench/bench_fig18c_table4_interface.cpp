// Figure 18c + Table 4: 5G-aware interface selection for video streaming —
// video stall / bitrate impact and radio energy, vs always-5G and vs the
// no-switch-overhead idealization.
#include <iostream>

#include "bench_common.h"
#include "abr/interface_selection.h"
#include "abr/video.h"
#include "traces/traces.h"

using namespace wild5g;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "fig18c_table4_interface");
  bench::banner("Fig. 18c + Table 4",
                "5G-aware interface selection for ABR streaming");
  bench::paper_note(
      "5G-aware MPC cuts video stalls by 26.9% vs 5G-only and saves 4.2%"
      " energy (Table 4: 495.0 J -> 474.4 J); removing the switch overhead"
      " changes stalls by only ~4%.");

  Rng rng(bench::kBenchSeed);
  auto c5 = traces::lumos5g_mmwave_config();
  const auto traces_5g = traces::generate_traces(c5, rng);
  Rng rng2(bench::kBenchSeed + 1);
  auto c4 = traces::lumos5g_lte_config();
  const auto traces_4g = traces::generate_traces(c4, rng2);

  const auto video = abr::video_ladder_5g();
  abr::SessionOptions options;
  options.chunk_count = 60;
  // The 5G-aware scheme monitors download progress (segment abandonment);
  // all three schemes run the same engine for a fair comparison.
  options.allow_abandonment = true;
  const auto device = power::DevicePowerProfile::s20u();

  struct Totals {
    double stall_s = 0.0;
    double bitrate = 0.0;
    double energy_j = 0.0;
    int switches = 0;
  };
  Totals only, aware, no_overhead;
  const auto n = traces_5g.size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& t5 = traces_5g[i];
    const auto& t4 = traces_4g[i % traces_4g.size()];

    abr::InterfaceSelectionConfig selection;
    const auto r_only =
        abr::stream_5g_only(video, t5, options, selection, device);
    const auto r_aware =
        abr::stream_5g_aware(video, t5, t4, options, selection, device);
    selection.model_switch_overhead = false;
    const auto r_no =
        abr::stream_5g_aware(video, t5, t4, options, selection, device);

    auto acc = [&](Totals& t, const abr::InterfaceRunResult& r) {
      t.stall_s += r.session.total_stall_s;
      t.bitrate += r.session.normalized_bitrate(video);
      t.energy_j += r.energy_j;
      t.switches += r.switch_count;
    };
    acc(only, r_only);
    acc(aware, r_aware);
    acc(no_overhead, r_no);
  }

  Table table("Per-session means over the 121-trace population");
  table.set_header({"scheme", "stall s", "norm. bitrate", "energy J",
                    "switches"});
  auto row = [&](const std::string& name, const Totals& t) {
    const auto d = static_cast<double>(n);
    table.add_row({name, Table::num(t.stall_s / d, 2),
                   Table::num(t.bitrate / d, 3),
                   Table::num(t.energy_j / d, 1),
                   Table::num(static_cast<double>(t.switches) / d, 1)});
  };
  row("5G-only MPC", only);
  row("5G-aware MPC", aware);
  row("5G-aware MPC NO*", no_overhead);
  emitter.report(table);
  std::cout << "(*NO = no switch overhead)\n";

  bench::measured_note("stall reduction vs 5G-only = " +
                       Table::num(100.0 * (only.stall_s - aware.stall_s) /
                                      only.stall_s, 1) +
                       "% (paper: 26.9%)");
  bench::measured_note("energy saving vs 5G-only = " +
                       Table::num(100.0 * (only.energy_j - aware.energy_j) /
                                      only.energy_j, 1) +
                       "% (paper: 4.2%)");
  bench::measured_note("extra stall vs no-overhead ideal = " +
                       Table::num(100.0 * (aware.stall_s -
                                           no_overhead.stall_s) /
                                      std::max(1.0, no_overhead.stall_s), 1) +
                       "% (paper: 4.0%)");
  return emitter.exit_code();
}
