// Table 8: slopes of the throughput-power curves, recovered by running the
// paper's controlled iPerf3-style rate sweep against the simulated device
// and fitting a line — compared to the paper's reported slopes.
#include <iostream>

#include "bench_common.h"
#include "core/rng.h"
#include "core/stats.h"
#include "power/power_model.h"

using namespace wild5g;
using power::DevicePowerProfile;
using power::RailKey;
using radio::Direction;

int main(int argc, char** argv) {
  bench::MetricsEmitter emitter(argc, argv, "table8_slopes");
  bench::banner("Table 8", "Throughput-power slopes (mW per Mbps)");
  bench::paper_note(
      "S10: 4G 13.38/57.99 (DL/UL), mmWave 2.06/5.27. S20U: 4G 14.55/80.21,"
      " low-band 13.52/29.15, mmWave 1.81/9.42. Uplink slopes are 2.2-5.9x"
      " the downlink slopes on every radio.");

  struct Row {
    std::string device;
    std::string network;
    const DevicePowerProfile profile;
    RailKey key;
    double paper_dl;
    double paper_ul;
    double max_dl;
    double max_ul;
  };
  const std::vector<Row> rows = {
      {"S10", "4G", DevicePowerProfile::s10(), RailKey::k4g, 13.38, 57.99,
       180.0, 60.0},
      {"S10", "5G (mmWave)", DevicePowerProfile::s10(), RailKey::kNsaMmWave,
       2.06, 5.27, 1800.0, 120.0},
      {"S20U", "4G", DevicePowerProfile::s20u(), RailKey::k4g, 14.55, 80.21,
       180.0, 70.0},
      {"S20U", "5G (low-band)", DevicePowerProfile::s20u(),
       RailKey::kNsaLowBand, 13.52, 29.15, 200.0, 100.0},
      {"S20U", "5G (mmWave)", DevicePowerProfile::s20u(),
       RailKey::kNsaMmWave, 1.81, 9.42, 2000.0, 220.0},
  };

  Table table("Fitted from a 12-point controlled rate sweep (3% meter noise)");
  table.set_header({"device", "network", "DL fit", "DL paper", "UL fit",
                    "UL paper", "UL/DL ratio"});

  Rng rng(bench::kBenchSeed);
  for (const auto& row : rows) {
    auto fit_slope = [&](Direction direction, double max_mbps) {
      std::vector<double> throughput;
      std::vector<double> powers;
      for (int i = 1; i <= 12; ++i) {
        const double t = max_mbps * i / 12.0;
        const double dl = direction == Direction::kDownlink ? t : 0.0;
        const double ul = direction == Direction::kUplink ? t : 0.0;
        const double p = row.profile.transfer_power_mw(
                             row.key, dl, ul,
                             row.profile.good_rsrp_dbm(row.key)) *
                         (1.0 + rng.normal(0.0, 0.03));
        throughput.push_back(t);
        powers.push_back(p);
      }
      return stats::linear_fit(throughput, powers).slope;
    };
    const double dl = fit_slope(Direction::kDownlink, row.max_dl);
    const double ul = fit_slope(Direction::kUplink, row.max_ul);
    table.add_row({row.device, row.network, Table::num(dl, 2),
                   Table::num(row.paper_dl, 2), Table::num(ul, 2),
                   Table::num(row.paper_ul, 2), Table::num(ul / dl, 1)});
  }
  emitter.report(table);
  bench::measured_note(
      "fitted slopes recover the configured (paper) values within meter"
      " noise; every UL/DL ratio falls in the paper's 2.2-5.9x band.");
  return emitter.exit_code();
}
