// wild5g-lint: source-level enforcement of the repo's determinism contract.
//
// The golden-metrics harness (bench/golden/, tools/golden_check) only proves
// reproducibility if nothing in the tree can smuggle nondeterminism past the
// seeded wild5g::Rng streams. This linter makes that contract machine-checked:
// a hand-rolled tokenizer (no libclang dependency) runs a small rule engine
// over src/, bench/, tools/, and examples/ and fails the build on violations.
//
// Rules (see --list-rules):
//   ban-random-device    std::random_device anywhere
//   ban-c-rand           rand()/srand()/drand48() family
//   ban-wall-clock       system_clock/steady_clock/time(nullptr)/gettimeofday
//   ban-raw-engine       raw <random> engines or *_distribution construction
//                        outside src/core/rng.h
//   unordered-iteration  iterating an unordered_{map,set} in a file that
//                        includes core/json.h or bench_common.h (hash order
//                        would leak into emitted metrics)
//   float-equality       ==/!= against a floating-point literal
//   printf-float         printf-family %f/%g/%e formatting (bypasses the
//                        deterministic JSON number writer)
//   catch-swallow        catch (...) blocks that neither rethrow nor report
//                        the exception — silent failures can mask broken
//                        fault handling (see src/faults/)
//
// Suppression: a finding is waived by a directive comment — on the same line
// as the finding, or on its own line(s) directly above it — of the form
//     wild5g-lint: allow(<rule>) <non-empty justification>
// (in a // or /* */ comment). The directive covers its own line and the next
// line that contains code, so a multi-line justification comment still
// attaches to the statement below it. A directive without a justification,
// or naming an unknown rule, is itself reported (allow-needs-justification /
// unknown-rule); placeholder text that is not a well-formed rule identifier
// is ignored so documentation can mention the syntax.
//
// Output: one `file:line: rule: message` per finding (stable order), or a
// machine-readable document with --json. Exit 0 on a clean tree, 1 when any
// finding survives suppression, 2 on usage or I/O errors.
#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/json.h"

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Rule registry.

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

constexpr std::array<RuleInfo, 10> kRules = {{
    {"ban-random-device",
     "std::random_device is nondeterministic; seed a wild5g::Rng instead"},
    {"ban-c-rand", "C PRNG family bypasses the seeded wild5g::Rng"},
    {"ban-wall-clock",
     "wall-clock reads break bit-for-bit reproducibility; thread simulated "
     "time explicitly"},
    {"ban-raw-engine",
     "raw <random> engines/distributions are implementation-defined outside "
     "src/core/rng.h; use the typed Rng API"},
    {"unordered-iteration",
     "unordered container iteration order can leak into emitted metrics; "
     "iterate a sorted copy"},
    {"float-equality",
     "exact ==/!= against a floating-point literal; compare with a "
     "tolerance"},
    {"printf-float",
     "printf-style float formatting bypasses json::format_number's "
     "deterministic rendering"},
    {"catch-swallow",
     "catch (...) without rethrow/report hides failures; rethrow, store "
     "std::current_exception(), or log before recovering"},
    {"allow-needs-justification",
     "wild5g-lint: allow(<rule>) requires a justification after the ')'"},
    {"unknown-rule", "allow(...) names a rule this linter does not define"},
}};

bool is_known_rule(std::string_view id) {
  return std::any_of(kRules.begin(), kRules.end(),
                     [&](const RuleInfo& r) { return r.id == id; });
}

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

// ---------------------------------------------------------------------------
// Tokenizer. Strings and comments never produce identifier tokens, so rule
// keywords inside literals or prose cannot trip rules; comments are kept
// (per line) for suppression directives, string literals are kept as tokens
// so printf-float can inspect format strings.

struct Token {
  enum class Kind { kIdent, kNumber, kString, kChar, kPunct };
  Kind kind;
  std::string text;
  int line;
};

struct LexedFile {
  std::vector<Token> tokens;
  std::map<int, std::string> comments;  // line -> concatenated comment text
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

LexedFile lex(const std::string& src) {
  LexedFile out;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;

  auto note_comment = [&](int first_line, int last_line,
                          const std::string& text) {
    for (int l = first_line; l <= last_line; ++l) out.comments[l] += text;
  };

  auto lex_quoted = [&](char quote) {
    // Plain (non-raw) string or char literal with backslash escapes.
    std::string text;
    ++i;  // opening quote
    while (i < n && src[i] != quote) {
      if (src[i] == '\\' && i + 1 < n) {
        text += src[i];
        text += src[i + 1];
        if (src[i + 1] == '\n') ++line;
        i += 2;
        continue;
      }
      if (src[i] == '\n') ++line;  // unterminated literal; keep line counts
      text += src[i++];
    }
    if (i < n) ++i;  // closing quote
    return text;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      note_comment(line, line, src.substr(start, i - start));
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int first_line = line;
      const std::size_t start = i;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      note_comment(first_line, line, src.substr(start, i - start));
      continue;
    }
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(src[i])) ++i;
      std::string word = src.substr(start, i - start);
      // String-literal prefixes: R"...(raw)...", u8"...", L'...', etc.
      const bool raw = !word.empty() && word.back() == 'R';
      const bool prefix =
          word == "R" || word == "u8" || word == "u" || word == "L" ||
          word == "u8R" || word == "uR" || word == "LR" || word == "UR" ||
          word == "U";
      if (prefix && i < n && (src[i] == '"' || src[i] == '\'')) {
        if (raw && src[i] == '"') {
          ++i;  // opening quote
          std::string delim;
          while (i < n && src[i] != '(') delim += src[i++];
          const std::string closer = ")" + delim + "\"";
          const std::size_t body = (i < n) ? i + 1 : n;
          const std::size_t end = src.find(closer, body);
          std::string text = src.substr(body, (end == std::string::npos)
                                                  ? n - body
                                                  : end - body);
          line += static_cast<int>(
              std::count(text.begin(), text.end(), '\n'));
          i = (end == std::string::npos) ? n : end + closer.size();
          out.tokens.push_back({Token::Kind::kString, std::move(text), line});
        } else {
          const char quote = src[i];
          const int at = line;
          std::string text = lex_quoted(quote);
          out.tokens.push_back({quote == '"' ? Token::Kind::kString
                                             : Token::Kind::kChar,
                                std::move(text), at});
        }
        continue;
      }
      out.tokens.push_back({Token::Kind::kIdent, std::move(word), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])) != 0)) {
      const std::size_t start = i;
      while (i < n) {
        const char d = src[i];
        if (ident_char(d) || d == '.' || d == '\'') {
          // Exponent signs belong to the literal: 1e-3, 0x1p+4.
          if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') && i + 1 < n &&
              (src[i + 1] == '+' || src[i + 1] == '-')) {
            i += 2;
            continue;
          }
          ++i;
          continue;
        }
        break;
      }
      out.tokens.push_back(
          {Token::Kind::kNumber, src.substr(start, i - start), line});
      continue;
    }
    if (c == '"' || c == '\'') {
      const int at = line;
      std::string text = lex_quoted(c);
      out.tokens.push_back(
          {c == '"' ? Token::Kind::kString : Token::Kind::kChar,
           std::move(text), at});
      continue;
    }
    // Punctuation; fuse the two-char operators the rules care about. '<' and
    // '>' stay single-char so template-argument balancing sees each bracket.
    static constexpr std::array<std::string_view, 12> kTwoChar = {
        "::", "->", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=",
        "/="};
    std::string text(1, c);
    if (i + 1 < n) {
      const std::string two{src[i], src[i + 1]};
      if (std::find(kTwoChar.begin(), kTwoChar.end(), two) != kTwoChar.end()) {
        text = two;
      }
    }
    i += text.size();
    out.tokens.push_back({Token::Kind::kPunct, std::move(text), line});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Suppression directives.

struct Allow {
  int line;
  std::string rule;
};

void collect_allows(const LexedFile& lexed, const std::string& file,
                    std::vector<Allow>& allows, std::vector<Finding>& meta) {
  std::set<std::pair<int, std::string>> seen;  // block comments span lines
  for (const auto& [line, text] : lexed.comments) {
    static const std::string kTag = "wild5g-lint: allow(";
    std::size_t pos = 0;
    while ((pos = text.find(kTag, pos)) != std::string::npos) {
      pos += kTag.size();
      const std::size_t close = text.find(')', pos);
      if (close == std::string::npos) break;
      const std::string rule = text.substr(pos, close - pos);
      // Only well-formed rule identifiers count as directive attempts;
      // placeholders in prose ("allow(<rule>)") are not directives.
      const bool plausible =
          !rule.empty() &&
          std::islower(static_cast<unsigned char>(rule.front())) != 0 &&
          std::all_of(rule.begin(), rule.end(), [](char ch) {
            return std::islower(static_cast<unsigned char>(ch)) != 0 ||
                   std::isdigit(static_cast<unsigned char>(ch)) != 0 ||
                   ch == '-';
          });
      if (!plausible) {
        pos = close;
        continue;
      }
      std::string rest = text.substr(close + 1);
      const auto last = rest.find_last_not_of(" \t*/-:");
      const auto first = rest.find_first_not_of(" \t*/-:");
      rest = (first == std::string::npos)
                 ? std::string{}
                 : rest.substr(first, last - first + 1);
      if (!seen.insert({line, rule + "|" + rest}).second) {
        pos = close;
        continue;
      }
      if (!is_known_rule(rule)) {
        meta.push_back({file, line, "unknown-rule",
                        "allow(" + rule + ") names a rule wild5g-lint does "
                        "not define (see --list-rules)"});
      } else if (rest.empty()) {
        meta.push_back({file, line, "allow-needs-justification",
                        "allow(" + rule + ") must be followed by a "
                        "justification explaining why the construct is safe"});
      } else {
        allows.push_back({line, rule});
      }
      pos = close;
    }
  }
}

/// A directive covers its own line (trailing-comment style) and the first
/// line at or after it that contains code, so a multi-line justification
/// comment still attaches to the statement below it.
bool suppressed(const std::vector<Allow>& allows,
                const std::set<int>& token_lines, const Finding& f) {
  return std::any_of(allows.begin(), allows.end(), [&](const Allow& a) {
    if (a.rule != f.rule) return false;
    if (a.line == f.line) return true;
    const auto next_code = token_lines.upper_bound(a.line);
    return next_code != token_lines.end() && *next_code == f.line;
  });
}

// ---------------------------------------------------------------------------
// Rule implementations over the token stream.

bool is_float_literal(const std::string& t) {
  if (t.size() > 1 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) {
    return t.find('p') != std::string::npos || t.find('P') != std::string::npos;
  }
  if (t.find('.') != std::string::npos) return true;
  if (t.find('e') != std::string::npos || t.find('E') != std::string::npos) {
    return true;
  }
  const char suffix = t.empty() ? '\0' : t.back();
  return suffix == 'f' || suffix == 'F';
}

/// True when token i is a free-function-style use: not a member access, and
/// not qualified by a namespace other than std.
bool free_call_context(const std::vector<Token>& toks, std::size_t i) {
  if (i == 0) return true;
  const std::string& prev = toks[i - 1].text;
  if (prev == "." || prev == "->") return false;
  if (prev == "::" && i >= 2 && toks[i - 2].text != "std") return false;
  return true;
}

bool next_is(const std::vector<Token>& toks, std::size_t i,
             std::string_view text) {
  return i + 1 < toks.size() && toks[i + 1].text == text;
}

struct FileContext {
  std::string display_path;  // as reported in findings
  bool is_rng_header = false;
  bool feeds_metrics = false;  // includes core/json.h or bench_common.h
  bool swallow_allowed = false;  // file is on the catch-swallow allow-list
};

void check_banned_idents(const std::vector<Token>& toks,
                         const FileContext& ctx,
                         std::vector<Finding>& out) {
  static const std::set<std::string> kCRand = {"rand", "srand", "rand_r",
                                              "drand48", "srand48", "lrand48"};
  static const std::set<std::string> kClockIdents = {
      "system_clock",   "steady_clock", "high_resolution_clock",
      "gettimeofday",   "clock_gettime", "timespec_get",
      "localtime",      "gmtime",        "mktime"};
  static const std::set<std::string> kClockCalls = {"time", "clock"};
  static const std::set<std::string> kEngines = {
      "mt19937",        "mt19937_64",    "minstd_rand",
      "minstd_rand0",   "ranlux24",      "ranlux24_base",
      "ranlux48",       "ranlux48_base", "knuth_b",
      "default_random_engine", "random_shuffle"};

  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    const std::string& id = toks[i].text;
    const int line = toks[i].line;

    if (id == "random_device") {
      out.push_back({ctx.display_path, line, "ban-random-device",
                     "std::random_device is nondeterministic; seed a "
                     "wild5g::Rng and fork() child streams instead"});
      continue;
    }
    if (kCRand.count(id) != 0 && next_is(toks, i, "(") &&
        free_call_context(toks, i)) {
      out.push_back({ctx.display_path, line, "ban-c-rand",
                     "'" + id + "' bypasses the seeded wild5g::Rng; draw "
                     "from an explicitly threaded Rng instead"});
      continue;
    }
    if (kClockIdents.count(id) != 0 ||
        (kClockCalls.count(id) != 0 && next_is(toks, i, "(") &&
         free_call_context(toks, i))) {
      out.push_back({ctx.display_path, line, "ban-wall-clock",
                     "wall-clock source '" + id + "' breaks bit-for-bit "
                     "reproducibility; thread simulated time explicitly"});
      continue;
    }
    const bool distribution_like =
        id.size() > 13 &&
        id.compare(id.size() - 13, 13, "_distribution") == 0;
    if (!ctx.is_rng_header && (kEngines.count(id) != 0 || distribution_like)) {
      out.push_back({ctx.display_path, line, "ban-raw-engine",
                     "'" + id + "' constructs a raw <random> " +
                         (distribution_like ? "distribution" : "engine") +
                         " outside src/core/rng.h; its output is "
                         "implementation-defined — use the typed "
                         "wild5g::Rng API"});
    }
  }
}

void check_float_equality(const std::vector<Token>& toks,
                          const FileContext& ctx,
                          std::vector<Finding>& out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kPunct ||
        (toks[i].text != "==" && toks[i].text != "!=")) {
      continue;
    }
    const Token* lit = nullptr;
    if (i > 0 && toks[i - 1].kind == Token::Kind::kNumber &&
        is_float_literal(toks[i - 1].text)) {
      lit = &toks[i - 1];
    }
    if (lit == nullptr && i + 1 < toks.size() &&
        toks[i + 1].kind == Token::Kind::kNumber &&
        is_float_literal(toks[i + 1].text)) {
      lit = &toks[i + 1];
    }
    if (lit != nullptr) {
      out.push_back({ctx.display_path, toks[i].line, "float-equality",
                     "exact '" + toks[i].text + "' against floating-point "
                     "literal " + lit->text + "; compare with an explicit "
                     "tolerance (or justify via allow)"});
    }
  }
}

void check_printf_float(const std::vector<Token>& toks, const FileContext& ctx,
                        std::vector<Finding>& out) {
  static const std::set<std::string> kPrintf = {
      "printf",  "fprintf",  "sprintf",  "snprintf",
      "vprintf", "vfprintf", "vsprintf", "vsnprintf", "dprintf"};

  auto has_float_conversion = [](const std::string& fmt) {
    for (std::size_t p = 0; p + 1 < fmt.size(); ++p) {
      if (fmt[p] != '%') continue;
      std::size_t q = p + 1;
      if (q < fmt.size() && fmt[q] == '%') {  // literal percent
        p = q;
        continue;
      }
      while (q < fmt.size() &&
             (std::isdigit(static_cast<unsigned char>(fmt[q])) != 0 ||
              fmt[q] == '#' || fmt[q] == '0' || fmt[q] == '-' ||
              fmt[q] == '+' || fmt[q] == ' ' || fmt[q] == '.' ||
              fmt[q] == '*' || fmt[q] == '\'' || fmt[q] == 'l' ||
              fmt[q] == 'h' || fmt[q] == 'L' || fmt[q] == 'z' ||
              fmt[q] == 'j' || fmt[q] == 't')) {
        ++q;
      }
      if (q < fmt.size()) {
        const char conv = fmt[q];
        if (conv == 'f' || conv == 'F' || conv == 'e' || conv == 'E' ||
            conv == 'g' || conv == 'G' || conv == 'a' || conv == 'A') {
          return true;
        }
      }
      p = q;
    }
    return false;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent ||
        kPrintf.count(toks[i].text) == 0 || !next_is(toks, i, "(") ||
        !free_call_context(toks, i)) {
      continue;
    }
    int depth = 0;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].kind == Token::Kind::kPunct) {
        if (toks[j].text == "(") ++depth;
        if (toks[j].text == ")" && --depth == 0) break;
      }
      if (toks[j].kind == Token::Kind::kString &&
          has_float_conversion(toks[j].text)) {
        out.push_back({ctx.display_path, toks[i].line, "printf-float",
                       "'" + toks[i].text + "' formats a float directly; "
                       "route numbers through json::format_number / the "
                       "Table formatter so rendering stays deterministic"});
        break;
      }
    }
  }
}

void check_catch_swallow(const std::vector<Token>& toks,
                         const FileContext& ctx,
                         std::vector<Finding>& out) {
  if (ctx.swallow_allowed) return;
  // Identifiers that count as handling the exception inside the catch body:
  // rethrowing it, capturing it as an exception_ptr, terminating, or writing
  // a diagnostic somewhere a caller or human will see.
  static const std::set<std::string> kHandles = {
      "throw",          "current_exception", "rethrow_exception",
      "rethrow_if_nested", "cerr",           "clog",
      "perror",         "fprintf",           "printf",
      "syslog",         "exit",              "_Exit",
      "quick_exit",     "abort",             "terminate"};
  for (std::size_t i = 0; i + 6 < toks.size(); ++i) {
    // The lexer emits the ellipsis parameter as three '.' punct tokens.
    if (toks[i].kind != Token::Kind::kIdent || toks[i].text != "catch" ||
        toks[i + 1].text != "(" || toks[i + 2].text != "." ||
        toks[i + 3].text != "." || toks[i + 4].text != "." ||
        toks[i + 5].text != ")" || toks[i + 6].text != "{") {
      continue;
    }
    int depth = 0;
    bool handled = false;
    for (std::size_t j = i + 6; j < toks.size(); ++j) {
      if (toks[j].kind == Token::Kind::kPunct) {
        if (toks[j].text == "{") ++depth;
        if (toks[j].text == "}" && --depth == 0) break;
      }
      if (toks[j].kind == Token::Kind::kIdent &&
          kHandles.count(toks[j].text) != 0) {
        handled = true;
        break;
      }
    }
    if (!handled) {
      out.push_back({ctx.display_path, toks[i].line, "catch-swallow",
                     "catch (...) swallows the exception without rethrowing, "
                     "storing std::current_exception(), or reporting it; a "
                     "silent failure here can mask a broken fault path — "
                     "handle it or justify via allow"});
    }
  }
}

void check_unordered_iteration(const std::vector<Token>& toks,
                               const FileContext& ctx,
                               std::vector<Finding>& out) {
  if (!ctx.feeds_metrics) return;
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};

  // Pass 1: names declared with an unordered type in this file.
  std::set<std::string> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent ||
        kUnordered.count(toks[i].text) == 0) {
      continue;
    }
    std::size_t j = i + 1;
    if (j < toks.size() && toks[j].text == "<") {
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (toks[j].text == "<") ++depth;
        if (toks[j].text == ">" && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            toks[j].text == "const")) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == Token::Kind::kIdent) {
      names.insert(toks[j].text);
    }
  }
  if (names.empty()) return;

  // Pass 2a: range-for whose range expression mentions a tracked name.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || toks[i].text != "for" ||
        !next_is(toks, i, "(")) {
      continue;
    }
    int depth = 0;
    std::size_t colon = 0;
    std::size_t close = 0;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].kind != Token::Kind::kPunct) continue;
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")" && --depth == 0) {
        close = j;
        break;
      }
      if (toks[j].text == ":" && depth == 1 && colon == 0) colon = j;
    }
    if (colon == 0 || close == 0) continue;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (toks[j].kind == Token::Kind::kIdent &&
          names.count(toks[j].text) != 0) {
        out.push_back({ctx.display_path, toks[i].line, "unordered-iteration",
                       "range-for over unordered container '" + toks[j].text +
                           "' in a file that emits metrics; hash order is "
                           "nondeterministic across standard libraries — "
                           "iterate a sorted copy of the keys"});
        break;
      }
    }
  }

  // Pass 2b: explicit iterator walks (x.begin() / x->cbegin() ...).
  static const std::set<std::string> kBegin = {"begin", "cbegin", "rbegin",
                                              "crbegin"};
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (toks[i].kind == Token::Kind::kIdent &&
        names.count(toks[i].text) != 0 &&
        (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
        kBegin.count(toks[i + 2].text) != 0 && toks[i + 3].text == "(") {
      out.push_back({ctx.display_path, toks[i].line, "unordered-iteration",
                     "iterator walk over unordered container '" +
                         toks[i].text + "' in a file that emits metrics; "
                         "hash order is nondeterministic — iterate a sorted "
                         "copy of the keys"});
    }
  }
}

// ---------------------------------------------------------------------------
// Driver.

bool path_ends_with(const fs::path& path, std::string_view suffix) {
  const std::string generic = path.generic_string();
  return generic.size() >= suffix.size() &&
         generic.compare(generic.size() - suffix.size(), suffix.size(),
                         suffix) == 0;
}

std::vector<Finding> lint_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return {{path.generic_string(), 0, "io-error", "cannot open file"}};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string src = buffer.str();

  FileContext ctx;
  ctx.display_path = path.lexically_normal().generic_string();
  ctx.is_rng_header = path_ends_with(path, "src/core/rng.h");
  ctx.feeds_metrics =
      src.find("#include \"core/json.h\"") != std::string::npos ||
      src.find("#include \"bench_common.h\"") != std::string::npos ||
      path_ends_with(path, "bench/bench_common.h") ||
      path_ends_with(path, "src/core/json.h");
  // Path suffixes where a silent catch (...) is deliberate. Empty today —
  // every swallow in the tree must rethrow, store, or report; add a suffix
  // here (with a comment saying why) before exempting a whole file.
  static constexpr std::array<std::string_view, 0> kSwallowAllowed = {};
  ctx.swallow_allowed = std::any_of(
      kSwallowAllowed.begin(), kSwallowAllowed.end(),
      [&](std::string_view suffix) { return path_ends_with(path, suffix); });

  const LexedFile lexed = lex(src);
  std::set<int> token_lines;
  for (const auto& tok : lexed.tokens) token_lines.insert(tok.line);

  std::vector<Allow> allows;
  std::vector<Finding> findings;
  collect_allows(lexed, ctx.display_path, allows, findings);

  std::vector<Finding> raw;
  check_banned_idents(lexed.tokens, ctx, raw);
  check_float_equality(lexed.tokens, ctx, raw);
  check_printf_float(lexed.tokens, ctx, raw);
  check_catch_swallow(lexed.tokens, ctx, raw);
  check_unordered_iteration(lexed.tokens, ctx, raw);

  for (auto& f : raw) {
    if (!suppressed(allows, token_lines, f)) findings.push_back(std::move(f));
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
            });
  return findings;
}

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc" ||
         ext == ".cxx";
}

int usage() {
  std::cerr << "usage: wild5g_lint [--json] [--list-rules] <file-or-dir>...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool as_json = false;
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      as_json = true;
    } else if (arg == "--list-rules") {
      for (const auto& rule : kRules) {
        std::cout << rule.id << ": " << rule.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "wild5g_lint: unknown flag '" << arg << "'\n";
      return usage();
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) return usage();

  std::vector<fs::path> files;
  for (const auto& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (auto it = fs::recursive_directory_iterator(root, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && lintable(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      std::cerr << "wild5g_lint: no such file or directory: "
                << root.generic_string() << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const auto& file : files) {
    auto file_findings = lint_file(file);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }

  if (as_json) {
    namespace json = wild5g::json;
    json::Value doc = json::Value::object();
    json::Value list = json::Value::array();
    for (const auto& f : findings) {
      json::Value entry = json::Value::object();
      entry.set("file", f.file);
      entry.set("line", f.line);
      entry.set("rule", f.rule);
      entry.set("message", f.message);
      list.push_back(std::move(entry));
    }
    doc.set("files_scanned", static_cast<std::int64_t>(files.size()));
    doc.set("count", static_cast<std::int64_t>(findings.size()));
    doc.set("findings", std::move(list));
    std::cout << json::dump(doc);
  } else {
    for (const auto& f : findings) {
      std::cout << f.file << ":" << f.line << ": " << f.rule << ": "
                << f.message << "\n";
    }
    std::cerr << "wild5g_lint: " << files.size() << " file(s), "
              << findings.size() << " finding(s)\n";
  }
  return findings.empty() ? 0 : 1;
}
