// wild5g-lint / wild5g-analyze: source-level enforcement of the repo's
// determinism, unit-hygiene, and layering contracts.
//
// The golden-metrics harness (bench/golden/, tools/golden_check) only proves
// reproducibility if nothing in the tree can smuggle nondeterminism past the
// seeded wild5g::Rng streams — and only proves *correctness* if the doubles
// flowing into each figure carry the physical unit their name claims. This
// tool makes both contracts machine-checked: a hand-rolled tokenizer (no
// libclang dependency) feeds a semantic layer — a preprocessor-lite include
// graph, per-file symbol scans, and a cross-file function-signature index —
// and a rule engine runs over src/, bench/, tools/, and examples/, failing
// the build on violations.
//
// Rule families (see --list-rules, --rules-doc, docs/LINT_RULES.md):
//   determinism  ban-random-device, ban-c-rand, ban-wall-clock,
//                ban-raw-engine, unordered-iteration — nothing may bypass
//                the seeded wild5g::Rng streams or leak hash order into
//                emitted metrics.
//   units        unit-mismatch-assign, unit-mismatch-call,
//                unit-double-conversion — identifier suffixes from
//                src/core/units.h (_ms, _s, _mbps, _mw, ...) are treated as
//                static unit annotations: assignments and call-argument
//                bindings whose suffixes disagree must route through a
//                units.h conversion helper, and redundant conversions are
//                flagged.
//   parallel     parallel-rng-capture, parallel-rng-stream — the static twin
//                of the runtime byte-identity gate: Rng objects captured by
//                reference into parallel_map/parallel_for task lambdas, and
//                draws inside task bodies on streams not derived from
//                fork(i)/split(), are flagged (see src/core/parallel.h).
//   layering     layering, include-cycle — the include DAG flows strictly
//                downward (src/core depends on nothing outside core, src/sim
//                sits below radio/net/abr/web, bench/ headers are never
//                included from src/) and cycles are findings.
//   hygiene      float-equality, printf-float, catch-swallow.
//   meta         allow-needs-justification, unknown-rule.
//
// Suppression: a finding is waived by a directive comment — on the same line
// as the finding, or on its own line(s) directly above it — of the form
//     wild5g-lint: allow(<rule>) <non-empty justification>
// (in a // or /* */ comment). The directive covers its own line and the next
// line that contains code, so a multi-line justification comment still
// attaches to the statement below it. A directive without a justification,
// or naming an unknown rule, is itself reported (allow-needs-justification /
// unknown-rule); placeholder text that is not a well-formed rule identifier
// is ignored so documentation can mention the syntax.
//
// Output: one `file:line: rule: message` per finding (stable order; fix-it
// hints, where mechanical, follow on an indented line), a machine-readable
// document with --json, and/or a SARIF 2.1.0 log with --sarif <path> for
// GitHub code scanning. Exit 0 on a clean tree, 1 when any finding survives
// suppression, 2 on usage or I/O errors.
#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/json.h"

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Rule registry.

struct RuleInfo {
  std::string_view id;
  std::string_view family;
  std::string_view summary;
  std::string_view fixit;  // generic mechanical-fix hint; empty if contextual
  std::string_view effects = {};  // effect bits the rule keys on ("" = none)
};

constexpr std::array<RuleInfo, 31> kRules = {{
    {"ban-random-device", "determinism",
     "std::random_device is nondeterministic; seed a wild5g::Rng instead",
     ""},
    {"ban-c-rand", "determinism",
     "C PRNG family bypasses the seeded wild5g::Rng", ""},
    {"ban-wall-clock", "determinism",
     "wall-clock reads break bit-for-bit reproducibility; thread simulated "
     "time explicitly",
     ""},
    {"ban-raw-engine", "determinism",
     "raw <random> engines/distributions are implementation-defined outside "
     "src/core/rng.h; use the typed Rng API",
     ""},
    {"unordered-iteration", "determinism",
     "unordered container iteration order can leak into emitted metrics; "
     "iterate a sorted copy",
     ""},
    {"float-equality", "hygiene",
     "exact ==/!= against a floating-point literal; compare with a "
     "tolerance",
     ""},
    {"printf-float", "hygiene",
     "printf-style float formatting bypasses json::format_number's "
     "deterministic rendering",
     ""},
    {"catch-swallow", "hygiene",
     "catch (...) without rethrow/report hides failures; rethrow, store "
     "std::current_exception(), or log before recovering",
     ""},
    {"bench-sample-hoard", "hygiene",
     "bench code hoards every sample in a vector just to call "
     "stats::percentile/median/p95 at the end; campaigns must stream "
     "samples through stats::SampleAccumulator",
     "accumulate into a stats::SampleAccumulator and query its "
     "percentile()/median()/p95() instead of sorting a hoarded vector"},
    {"engine-blocking-call", "hygiene",
     "blocking filesystem or sleep call inside src/engine compute-thread "
     "code; campaigns run on the service compute thread, so a blocking call "
     "stalls every queued campaign and defeats the watchdog — "
     "engine/snapshot.{h,cpp} is the sole sanctioned checkpoint writer",
     "move the I/O into engine/snapshot.cpp or hoist it to the supervising "
     "layer (bench_common.h, tools/wild5g_serve.cpp)"},
    {"unit-mismatch-assign", "units",
     "assignment or initialization whose unit suffixes disagree; route the "
     "value through a units.h conversion helper",
     "wrap the right-hand side in the wild5g:: conversion helper named in "
     "the finding"},
    {"unit-mismatch-call", "units",
     "call argument's unit suffix disagrees with the parameter's declared "
     "suffix; convert at the call site",
     "wrap the argument in the wild5g:: conversion helper named in the "
     "finding"},
    {"unit-double-conversion", "units",
     "redundant units.h conversion: the argument is already in the target "
     "unit, or an inverse pair cancels out",
     "drop the redundant conversion call(s)"},
    {"parallel-rng-capture", "parallel",
     "Rng captured by reference into a parallel_map/parallel_for task "
     "lambda; concurrent draws race and break byte-identical goldens",
     "split() a base stream outside the loop and draw from base.fork(i) "
     "inside the task"},
    {"parallel-rng-stream", "parallel",
     "draw inside a parallel task body on a stream not derived from "
     "fork(i)/split(); per-task streams keep goldens thread-count invariant",
     "derive a per-task stream with base.fork(i) (or construct an Rng from "
     "a per-task seed) before drawing"},
    {"parallel-effect-write", "effects",
     "a parallel_map/parallel_for task body calls a function whose "
     "transitive effects include a write to namespace-scope or static-local "
     "mutable state; concurrent shared writes race and break byte-identical "
     "goldens",
     "hoist the state into per-task results collected index-ordered and "
     "reduced on the caller's thread, or const-qualify it",
     "writes_global"},
    {"parallel-effect-rng", "effects",
     "a parallel task body calls a function that transitively draws from an "
     "Rng stream not derived per task (a member/global stream, or a "
     "captured outer stream passed by reference)",
     "pass the callee a task-local stream derived via base.fork(i) (or "
     "construct the drawing object inside the task body)",
     "draws_rng"},
    {"parallel-effect-alias", "effects",
     "a parallel task body passes an object captured from the enclosing "
     "scope — shared across tasks — to a function that mutates its "
     "parameter; concurrent mutation races",
     "give each task its own copy and merge index-ordered results after "
     "the barrier",
     "mutates_param"},
    {"parallel-effect-unknown", "effects",
     "a parallel task body calls a function whose effects the engine "
     "cannot resolve (same-name definitions with conflicting effect sets "
     "are poisoned conservatively); the call needs a human audit",
     "disambiguate the overload set (rename, or align the overloads' "
     "effects) or justify via allow",
     "unknown"},
    {"global-mutable-state", "effects",
     "non-const namespace-scope or static-local variable in src/; every "
     "piece of shared mutable state is an entry in the inventory the "
     "multi-UE scheduler refactor must drain",
     "const-qualify it, confine it with thread_local or a sync primitive "
     "(std::mutex & friends are allow-listed), or justify via allow",
     "writes_global"},
    {"arena-escape", "effects",
     "a pointer obtained from a core/arena.h allocation is stored into "
     "storage that outlives the handler scope (member, global, long-lived "
     "container) or returned; arena recycling makes this a latent "
     "use-after-free",
     "keep arena pointers handler-local; hand out EventIds or copy the "
     "payload out instead",
     "allocates"},
    {"guarded-by-violation", "concurrency",
     "a shared variable whose accesses are dominated by one mutex (inferred "
     "guarded-by fact) is touched outside that lock; the unguarded access "
     "races with every guarded writer — the witness chain names the call "
     "path that loses the lock",
     "take the inferred mutex around the access, or justify via allow if a "
     "happens-before edge outside the lock makes it safe"},
    {"lock-order-cycle", "concurrency",
     "two mutexes are acquired in both orders somewhere in the program "
     "(directly or through calls); the acquired-while-held graph has a "
     "cycle, so two threads can deadlock taking the locks in opposite "
     "orders",
     "pick one global acquisition order and release the first lock before "
     "taking the second on the inverted path"},
    {"cv-wait-no-predicate", "concurrency",
     "condition_variable wait(lock) without a predicate overload; spurious "
     "wakeups and missed notifies make bare waits hang or spin",
     "use wait(lock, [&]{ return condition; }) so the wakeup condition is "
     "re-checked under the lock"},
    {"lock-held-blocking-call", "concurrency",
     "a blocking call (filesystem, sleep, subprocess — the engine-blocking-"
     "call identifier set) runs while a mutex is held, directly or through "
     "a callee; every other thread contending that mutex stalls for the "
     "full blocking duration",
     "release the lock before blocking: copy what the call needs out under "
     "the lock, unlock, then block"},
    {"signal-unsafe-call", "concurrency",
     "a function installed as a signal handler (sigaction/std::signal) "
     "transitively reaches a call outside the async-signal-safe allowlist "
     "(POSIX 2017 plus lock-free atomics); heap, locks, and throws inside "
     "a handler deadlock or corrupt state when the signal lands mid-"
     "operation",
     "restrict the handler to setting a lock-free atomic flag (and "
     "optionally write()/_exit()); do the real work on a thread that polls "
     "the flag"},
    {"checkpoint-restore-symmetry", "hygiene",
     "a state key serialized in checkpoint_state has no counterpart in the "
     "paired restore_state (or vice versa); asymmetric checkpoint I/O "
     "silently breaks the resume byte-identity contract",
     "read every key you write and write every key you read, using the "
     "same string literal in both bodies"},
    {"layering", "layering",
     "include edge violates the layer DAG (core at the bottom, sim below "
     "radio/net/abr/web, bench/ never included from src/)",
     ""},
    {"include-cycle", "layering",
     "include graph contains a cycle; the layer DAG must be acyclic", ""},
    {"allow-needs-justification", "meta",
     "wild5g-lint: allow(<rule>) requires a justification after the ')'", ""},
    {"unknown-rule", "meta",
     "allow(...) names a rule this linter does not define", ""},
}};

// Family display order for --rules-doc and --list-rules grouping.
constexpr std::array<std::string_view, 8> kFamilies = {
    "determinism", "units",    "parallel", "effects",
    "concurrency", "layering", "hygiene",  "meta"};

bool is_known_rule(std::string_view id) {
  return std::any_of(kRules.begin(), kRules.end(),
                     [&](const RuleInfo& r) { return r.id == id; });
}

int rule_index(std::string_view id) {
  for (std::size_t i = 0; i < kRules.size(); ++i) {
    if (kRules[i].id == id) return static_cast<int>(i);
  }
  return -1;
}

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  std::string fixit;  // empty when no mechanical fix applies
  // Stable identity for --baseline ratcheting: rule|virtual-path|normalized
  // source line. Filled in run_checks once the owning file is known.
  std::string fingerprint = {};
};

// ---------------------------------------------------------------------------
// Preprocessing: phase-2 translation (line-splice removal). A backslash
// immediately followed by a newline joins physical lines *before* lexing, so
// a splice can neither hide a banned identifier from the token stream nor
// split a comment out of suppression scope. A per-character table maps each
// surviving character back to its original physical line for reporting.

struct Source {
  std::string text;       // spliced text
  std::vector<int> line;  // line[i] = 1-based physical line of text[i]
};

Source splice(const std::string& raw) {
  Source out;
  out.text.reserve(raw.size());
  out.line.reserve(raw.size());
  int line = 1;
  for (std::size_t i = 0; i < raw.size();) {
    if (raw[i] == '\\') {
      std::size_t j = i + 1;
      if (j < raw.size() && raw[j] == '\r') ++j;
      if (j < raw.size() && raw[j] == '\n') {
        ++line;
        i = j + 1;
        continue;
      }
    }
    out.text.push_back(raw[i]);
    out.line.push_back(line);
    if (raw[i] == '\n') ++line;
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tokenizer. Strings and comments never produce identifier tokens, so rule
// keywords inside literals or prose cannot trip rules; comments are kept
// (per line) for suppression directives, string literals are kept as tokens
// so printf-float can inspect format strings. Operates on the spliced text
// and reads line numbers from the Source table.

struct Token {
  enum class Kind { kIdent, kNumber, kString, kChar, kPunct };
  Kind kind;
  std::string text;
  int line;
};

struct LexedFile {
  std::vector<Token> tokens;
  std::map<int, std::string> comments;  // line -> concatenated comment text
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

LexedFile lex(const Source& sf) {
  LexedFile out;
  const std::string& src = sf.text;
  const std::size_t n = src.size();
  auto line_at = [&](std::size_t pos) {
    if (n == 0) return 1;
    return sf.line[pos < n ? pos : n - 1];
  };
  std::size_t i = 0;

  auto note_comment = [&](std::size_t begin, std::size_t end) {
    const std::string text = src.substr(begin, end - begin);
    const int last = line_at(end > begin ? end - 1 : begin);
    for (int l = line_at(begin); l <= last; ++l) out.comments[l] += text;
  };

  auto lex_quoted = [&](char quote) {
    // Plain (non-raw) string or char literal with backslash escapes. Note
    // that splice() never joins "\\\n" inside a literal differently: a
    // backslash-newline in source is a splice everywhere, which matches the
    // standard's phase ordering.
    std::string text;
    ++i;  // opening quote
    while (i < n && src[i] != quote) {
      if (src[i] == '\\' && i + 1 < n) {
        text += src[i];
        text += src[i + 1];
        i += 2;
        continue;
      }
      text += src[i++];
    }
    if (i < n) ++i;  // closing quote
    return text;
  };

  while (i < n) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      note_comment(start, i);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t start = i;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) ++i;
      i = (i + 1 < n) ? i + 2 : n;
      note_comment(start, i);
      continue;
    }
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(src[i])) ++i;
      std::string word = src.substr(start, i - start);
      // String-literal prefixes: R"...(raw)...", u8"...", L'...', etc.
      const bool raw = !word.empty() && word.back() == 'R';
      const bool prefix =
          word == "R" || word == "u8" || word == "u" || word == "L" ||
          word == "u8R" || word == "uR" || word == "LR" || word == "UR" ||
          word == "U";
      if (prefix && i < n && (src[i] == '"' || src[i] == '\'')) {
        const int at = line_at(start);
        if (raw && src[i] == '"') {
          ++i;  // opening quote
          std::string delim;
          while (i < n && src[i] != '(') delim += src[i++];
          const std::string closer = ")" + delim + "\"";
          const std::size_t body = (i < n) ? i + 1 : n;
          const std::size_t end = src.find(closer, body);
          std::string text = src.substr(
              body, (end == std::string::npos) ? n - body : end - body);
          i = (end == std::string::npos) ? n : end + closer.size();
          out.tokens.push_back({Token::Kind::kString, std::move(text), at});
        } else {
          const char quote = src[i];
          std::string text = lex_quoted(quote);
          out.tokens.push_back({quote == '"' ? Token::Kind::kString
                                             : Token::Kind::kChar,
                                std::move(text), at});
        }
        continue;
      }
      out.tokens.push_back(
          {Token::Kind::kIdent, std::move(word), line_at(start)});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])) != 0)) {
      const std::size_t start = i;
      while (i < n) {
        const char d = src[i];
        if (ident_char(d) || d == '.' || d == '\'') {
          // Exponent signs belong to the literal: 1e-3, 0x1p+4. Digit
          // separators (1'000) are consumed here, never as char literals.
          if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') && i + 1 < n &&
              (src[i + 1] == '+' || src[i + 1] == '-')) {
            i += 2;
            continue;
          }
          ++i;
          continue;
        }
        break;
      }
      out.tokens.push_back(
          {Token::Kind::kNumber, src.substr(start, i - start), line_at(start)});
      continue;
    }
    if (c == '"' || c == '\'') {
      const int at = line_at(i);
      std::string text = lex_quoted(c);
      out.tokens.push_back(
          {c == '"' ? Token::Kind::kString : Token::Kind::kChar,
           std::move(text), at});
      continue;
    }
    // Punctuation; fuse the two-char operators the rules care about. '<' and
    // '>' stay single-char so template-argument balancing sees each bracket.
    static constexpr std::array<std::string_view, 12> kTwoChar = {
        "::", "->", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=",
        "/="};
    std::string text(1, c);
    if (i + 1 < n) {
      const std::string two{src[i], src[i + 1]};
      if (std::find(kTwoChar.begin(), kTwoChar.end(), two) != kTwoChar.end()) {
        text = two;
      }
    }
    const int at = line_at(i);
    i += text.size();
    out.tokens.push_back({Token::Kind::kPunct, std::move(text), at});
  }
  return out;
}

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// Index of the token matching the opener at open_idx ("(", "[", "{", "<"),
/// scanning no further than end. kNpos when unbalanced.
std::size_t find_match(const std::vector<Token>& toks, std::size_t open_idx,
                       std::string_view open, std::string_view close,
                       std::size_t end) {
  int depth = 0;
  const std::size_t stop = std::min(end, toks.size());
  for (std::size_t j = open_idx; j < stop; ++j) {
    if (toks[j].kind != Token::Kind::kPunct) continue;
    if (toks[j].text == open) {
      ++depth;
    } else if (toks[j].text == close && --depth == 0) {
      return j;
    }
  }
  return kNpos;
}

bool next_is(const std::vector<Token>& toks, std::size_t i,
             std::string_view text) {
  return i + 1 < toks.size() && toks[i + 1].text == text;
}

// ---------------------------------------------------------------------------
// Suppression directives.

struct Allow {
  int line;
  std::string rule;
};

void collect_allows(const LexedFile& lexed, const std::string& file,
                    std::vector<Allow>& allows, std::vector<Finding>& meta) {
  std::set<std::pair<int, std::string>> seen;  // block comments span lines
  for (const auto& [line, text] : lexed.comments) {
    static const std::string kTag = "wild5g-lint: allow(";
    std::size_t pos = 0;
    while ((pos = text.find(kTag, pos)) != std::string::npos) {
      pos += kTag.size();
      const std::size_t close = text.find(')', pos);
      if (close == std::string::npos) break;
      const std::string rule = text.substr(pos, close - pos);
      // Only well-formed rule identifiers count as directive attempts;
      // placeholders in prose ("allow(<rule>)") are not directives.
      const bool plausible =
          !rule.empty() &&
          std::islower(static_cast<unsigned char>(rule.front())) != 0 &&
          std::all_of(rule.begin(), rule.end(), [](char ch) {
            return std::islower(static_cast<unsigned char>(ch)) != 0 ||
                   std::isdigit(static_cast<unsigned char>(ch)) != 0 ||
                   ch == '-';
          });
      if (!plausible) {
        pos = close;
        continue;
      }
      std::string rest = text.substr(close + 1);
      const auto last = rest.find_last_not_of(" \t*/-:");
      const auto first = rest.find_first_not_of(" \t*/-:");
      rest = (first == std::string::npos)
                 ? std::string{}
                 : rest.substr(first, last - first + 1);
      if (!seen.insert({line, rule + "|" + rest}).second) {
        pos = close;
        continue;
      }
      if (!is_known_rule(rule)) {
        meta.push_back({file, line, "unknown-rule",
                        "allow(" + rule + ") names a rule wild5g-lint does "
                        "not define (see --list-rules)",
                        {}});
      } else if (rest.empty()) {
        meta.push_back({file, line, "allow-needs-justification",
                        "allow(" + rule + ") must be followed by a "
                        "justification explaining why the construct is safe",
                        {}});
      } else {
        allows.push_back({line, rule});
      }
      pos = close;
    }
  }
}

/// A directive covers its own line (trailing-comment style) and the first
/// line at or after it that contains code, so a multi-line justification
/// comment still attaches to the statement below it.
bool suppressed(const std::vector<Allow>& allows,
                const std::set<int>& token_lines, const Finding& f) {
  return std::any_of(allows.begin(), allows.end(), [&](const Allow& a) {
    if (a.rule != f.rule) return false;
    if (a.line == f.line) return true;
    const auto next_code = token_lines.upper_bound(a.line);
    return next_code != token_lines.end() && *next_code == f.line;
  });
}

// ---------------------------------------------------------------------------
// Token-level rule implementations (the original wild5g-lint families).

bool is_float_literal(const std::string& t) {
  if (t.size() > 1 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) {
    return t.find('p') != std::string::npos || t.find('P') != std::string::npos;
  }
  if (t.find('.') != std::string::npos) return true;
  if (t.find('e') != std::string::npos || t.find('E') != std::string::npos) {
    return true;
  }
  const char suffix = t.empty() ? '\0' : t.back();
  return suffix == 'f' || suffix == 'F';
}

/// True when token i is a free-function-style use: not a member access, and
/// not qualified by a namespace other than std.
bool free_call_context(const std::vector<Token>& toks, std::size_t i) {
  if (i == 0) return true;
  const std::string& prev = toks[i - 1].text;
  if (prev == "." || prev == "->") return false;
  if (prev == "::" && i >= 2 && toks[i - 2].text != "std") return false;
  return true;
}

struct FileContext {
  std::string display_path;  // as reported in findings
  bool is_rng_header = false;
  bool feeds_metrics = false;  // includes core/json.h or bench_common.h
  bool swallow_allowed = false;  // file is on the catch-swallow allow-list
  bool in_bench = false;       // virtual path lives under bench/
};

void check_banned_idents(const std::vector<Token>& toks,
                         const FileContext& ctx,
                         std::vector<Finding>& out) {
  static const std::set<std::string> kCRand = {"rand", "srand", "rand_r",
                                              "drand48", "srand48", "lrand48"};
  static const std::set<std::string> kClockIdents = {
      "system_clock",   "steady_clock", "high_resolution_clock",
      "gettimeofday",   "clock_gettime", "timespec_get",
      "localtime",      "gmtime",        "mktime"};
  static const std::set<std::string> kClockCalls = {"time", "clock"};
  static const std::set<std::string> kEngines = {
      "mt19937",        "mt19937_64",    "minstd_rand",
      "minstd_rand0",   "ranlux24",      "ranlux24_base",
      "ranlux48",       "ranlux48_base", "knuth_b",
      "default_random_engine", "random_shuffle"};

  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    const std::string& id = toks[i].text;
    const int line = toks[i].line;

    if (id == "random_device") {
      out.push_back({ctx.display_path, line, "ban-random-device",
                     "std::random_device is nondeterministic; seed a "
                     "wild5g::Rng and fork() child streams instead",
                     {}});
      continue;
    }
    if (kCRand.count(id) != 0 && next_is(toks, i, "(") &&
        free_call_context(toks, i)) {
      out.push_back({ctx.display_path, line, "ban-c-rand",
                     "'" + id + "' bypasses the seeded wild5g::Rng; draw "
                     "from an explicitly threaded Rng instead",
                     {}});
      continue;
    }
    if (kClockIdents.count(id) != 0 ||
        (kClockCalls.count(id) != 0 && next_is(toks, i, "(") &&
         free_call_context(toks, i))) {
      out.push_back({ctx.display_path, line, "ban-wall-clock",
                     "wall-clock source '" + id + "' breaks bit-for-bit "
                     "reproducibility; thread simulated time explicitly",
                     {}});
      continue;
    }
    const bool distribution_like =
        id.size() > 13 &&
        id.compare(id.size() - 13, 13, "_distribution") == 0;
    if (!ctx.is_rng_header && (kEngines.count(id) != 0 || distribution_like)) {
      out.push_back({ctx.display_path, line, "ban-raw-engine",
                     "'" + id + "' constructs a raw <random> " +
                         (distribution_like ? "distribution" : "engine") +
                         " outside src/core/rng.h; its output is "
                         "implementation-defined — use the typed "
                         "wild5g::Rng API",
                     {}});
    }
  }
}

void check_float_equality(const std::vector<Token>& toks,
                          const FileContext& ctx,
                          std::vector<Finding>& out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kPunct ||
        (toks[i].text != "==" && toks[i].text != "!=")) {
      continue;
    }
    const Token* lit = nullptr;
    if (i > 0 && toks[i - 1].kind == Token::Kind::kNumber &&
        is_float_literal(toks[i - 1].text)) {
      lit = &toks[i - 1];
    }
    if (lit == nullptr && i + 1 < toks.size() &&
        toks[i + 1].kind == Token::Kind::kNumber &&
        is_float_literal(toks[i + 1].text)) {
      lit = &toks[i + 1];
    }
    if (lit != nullptr) {
      out.push_back({ctx.display_path, toks[i].line, "float-equality",
                     "exact '" + toks[i].text + "' against floating-point "
                     "literal " + lit->text + "; compare with an explicit "
                     "tolerance (or justify via allow)",
                     {}});
    }
  }
}

void check_printf_float(const std::vector<Token>& toks, const FileContext& ctx,
                        std::vector<Finding>& out) {
  static const std::set<std::string> kPrintf = {
      "printf",  "fprintf",  "sprintf",  "snprintf",
      "vprintf", "vfprintf", "vsprintf", "vsnprintf", "dprintf"};

  auto has_float_conversion = [](const std::string& fmt) {
    for (std::size_t p = 0; p + 1 < fmt.size(); ++p) {
      if (fmt[p] != '%') continue;
      std::size_t q = p + 1;
      if (q < fmt.size() && fmt[q] == '%') {  // literal percent
        p = q;
        continue;
      }
      while (q < fmt.size() &&
             (std::isdigit(static_cast<unsigned char>(fmt[q])) != 0 ||
              fmt[q] == '#' || fmt[q] == '0' || fmt[q] == '-' ||
              fmt[q] == '+' || fmt[q] == ' ' || fmt[q] == '.' ||
              fmt[q] == '*' || fmt[q] == '\'' || fmt[q] == 'l' ||
              fmt[q] == 'h' || fmt[q] == 'L' || fmt[q] == 'z' ||
              fmt[q] == 'j' || fmt[q] == 't')) {
        ++q;
      }
      if (q < fmt.size()) {
        const char conv = fmt[q];
        if (conv == 'f' || conv == 'F' || conv == 'e' || conv == 'E' ||
            conv == 'g' || conv == 'G' || conv == 'a' || conv == 'A') {
          return true;
        }
      }
      p = q;
    }
    return false;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent ||
        kPrintf.count(toks[i].text) == 0 || !next_is(toks, i, "(") ||
        !free_call_context(toks, i)) {
      continue;
    }
    int depth = 0;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].kind == Token::Kind::kPunct) {
        if (toks[j].text == "(") ++depth;
        if (toks[j].text == ")" && --depth == 0) break;
      }
      if (toks[j].kind == Token::Kind::kString &&
          has_float_conversion(toks[j].text)) {
        out.push_back({ctx.display_path, toks[i].line, "printf-float",
                       "'" + toks[i].text + "' formats a float directly; "
                       "route numbers through json::format_number / the "
                       "Table formatter so rendering stays deterministic",
                       {}});
        break;
      }
    }
  }
}

void check_catch_swallow(const std::vector<Token>& toks,
                         const FileContext& ctx,
                         std::vector<Finding>& out) {
  if (ctx.swallow_allowed) return;
  // Identifiers that count as handling the exception inside the catch body:
  // rethrowing it, capturing it as an exception_ptr, terminating, or writing
  // a diagnostic somewhere a caller or human will see.
  static const std::set<std::string> kHandles = {
      "throw",          "current_exception", "rethrow_exception",
      "rethrow_if_nested", "cerr",           "clog",
      "perror",         "fprintf",           "printf",
      "syslog",         "exit",              "_Exit",
      "quick_exit",     "abort",             "terminate"};
  for (std::size_t i = 0; i + 6 < toks.size(); ++i) {
    // The lexer emits the ellipsis parameter as three '.' punct tokens.
    if (toks[i].kind != Token::Kind::kIdent || toks[i].text != "catch" ||
        toks[i + 1].text != "(" || toks[i + 2].text != "." ||
        toks[i + 3].text != "." || toks[i + 4].text != "." ||
        toks[i + 5].text != ")" || toks[i + 6].text != "{") {
      continue;
    }
    int depth = 0;
    bool handled = false;
    for (std::size_t j = i + 6; j < toks.size(); ++j) {
      if (toks[j].kind == Token::Kind::kPunct) {
        if (toks[j].text == "{") ++depth;
        if (toks[j].text == "}" && --depth == 0) break;
      }
      if (toks[j].kind == Token::Kind::kIdent &&
          kHandles.count(toks[j].text) != 0) {
        handled = true;
        break;
      }
    }
    if (!handled) {
      out.push_back({ctx.display_path, toks[i].line, "catch-swallow",
                     "catch (...) swallows the exception without rethrowing, "
                     "storing std::current_exception(), or reporting it; a "
                     "silent failure here can mask a broken fault path — "
                     "handle it or justify via allow",
                     {}});
    }
  }
}

/// bench-sample-hoard: in bench/ files, calling the sort-on-query stats
/// helpers (stats::percentile / stats::median / stats::p95) means the
/// campaign hoarded every sample in a vector first. That pattern is O(n)
/// memory per metric and is exactly what stats::SampleAccumulator replaces;
/// flag the query site so new campaigns stream instead. Member calls
/// (acc.percentile(...)) are the sanctioned API and never match.
void check_sample_hoard(const std::vector<Token>& toks,
                        const FileContext& ctx,
                        std::vector<Finding>& out) {
  if (!ctx.in_bench) return;
  static const std::set<std::string> kSortOnQuery = {"percentile", "median",
                                                     "p95"};
  for (std::size_t i = 2; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent ||
        kSortOnQuery.count(toks[i].text) == 0) {
      continue;
    }
    if (toks[i - 1].text != "::" || toks[i - 2].text != "stats") continue;
    if (!next_is(toks, i, "(")) continue;
    out.push_back({ctx.display_path, toks[i].line, "bench-sample-hoard",
                   "'stats::" + toks[i].text + "' in bench code implies a "
                   "hoarded std::vector<double> of samples; stream them "
                   "through a stats::SampleAccumulator and query its " +
                       toks[i].text + "() instead",
                   {}});
  }
}

/// engine-blocking-call: src/engine/ code executes on the service compute
/// thread (wild5g_serve) or under a bench's supervision loop; a blocking
/// filesystem or sleep call there stalls every queued campaign and breaks
/// the watchdog's liveness assumptions. engine/snapshot.{h,cpp} is the one
/// sanctioned checkpoint writer; supervision sleeps and wall-clock waits
/// belong to the layer driving the engine (bench_common.h, wild5g_serve).
/// Clock reads are already covered by ban-wall-clock, so this rule only
/// names the filesystem and sleep families.
/// Identifier set shared by engine-blocking-call and (via the concurrency
/// analysis) lock-held-blocking-call: names whose presence marks a call that
/// can block the calling thread for an unbounded or scheduler-scale time.
const std::set<std::string>& blocking_idents() {
  static const std::set<std::string> kBlocking = {
      "ifstream",  "ofstream",    "fstream", "fopen",     "freopen",
      "tmpfile",   "fread",       "fwrite",  "system",    "popen",
      "sleep_for", "sleep_until", "usleep",  "nanosleep"};
  return kBlocking;
}

void check_engine_blocking(const std::vector<Token>& toks,
                           const FileContext& ctx, const std::string& vpath,
                           std::vector<Finding>& out) {
  if (vpath.rfind("src/engine/", 0) != 0) return;
  if (vpath == "src/engine/snapshot.h" ||
      vpath == "src/engine/snapshot.cpp") {
    return;
  }
  for (const auto& tok : toks) {
    if (tok.kind != Token::Kind::kIdent ||
        blocking_idents().count(tok.text) == 0) {
      continue;
    }
    out.push_back(
        {ctx.display_path, tok.line, "engine-blocking-call",
         "'" + tok.text + "' blocks the engine compute thread; src/engine "
         "must stay pure — checkpoint I/O belongs in engine/snapshot.cpp "
         "and supervision waits in the driving layer (bench_common.h, "
         "tools/wild5g_serve.cpp)",
         {}});
  }
}

void check_unordered_iteration(const std::vector<Token>& toks,
                               const FileContext& ctx,
                               std::vector<Finding>& out) {
  if (!ctx.feeds_metrics) return;
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};

  // Pass 1: names declared with an unordered type in this file.
  std::set<std::string> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent ||
        kUnordered.count(toks[i].text) == 0) {
      continue;
    }
    std::size_t j = i + 1;
    if (j < toks.size() && toks[j].text == "<") {
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (toks[j].text == "<") ++depth;
        if (toks[j].text == ">" && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            toks[j].text == "const")) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == Token::Kind::kIdent) {
      names.insert(toks[j].text);
    }
  }
  if (names.empty()) return;

  // Pass 2a: range-for whose range expression mentions a tracked name.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || toks[i].text != "for" ||
        !next_is(toks, i, "(")) {
      continue;
    }
    int depth = 0;
    std::size_t colon = 0;
    std::size_t close = 0;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].kind != Token::Kind::kPunct) continue;
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")" && --depth == 0) {
        close = j;
        break;
      }
      if (toks[j].text == ":" && depth == 1 && colon == 0) colon = j;
    }
    if (colon == 0 || close == 0) continue;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (toks[j].kind == Token::Kind::kIdent &&
          names.count(toks[j].text) != 0) {
        out.push_back({ctx.display_path, toks[i].line, "unordered-iteration",
                       "range-for over unordered container '" + toks[j].text +
                           "' in a file that emits metrics; hash order is "
                           "nondeterministic across standard libraries — "
                           "iterate a sorted copy of the keys",
                       {}});
        break;
      }
    }
  }

  // Pass 2b: explicit iterator walks (x.begin() / x->cbegin() ...).
  static const std::set<std::string> kBegin = {"begin", "cbegin", "rbegin",
                                              "crbegin"};
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (toks[i].kind == Token::Kind::kIdent &&
        names.count(toks[i].text) != 0 &&
        (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
        kBegin.count(toks[i + 2].text) != 0 && toks[i + 3].text == "(") {
      out.push_back({ctx.display_path, toks[i].line, "unordered-iteration",
                     "iterator walk over unordered container '" +
                         toks[i].text + "' in a file that emits metrics; "
                         "hash order is nondeterministic — iterate a sorted "
                         "copy of the keys",
                     {}});
    }
  }
}

// ---------------------------------------------------------------------------
// Unit vocabulary. The suffixes and conversion helpers mirror
// src/core/units.h — a name's trailing `_<unit>` is treated as a static unit
// annotation, and the helpers are the only sanctioned way to move a value
// between units.

const std::set<std::string>& unit_suffixes() {
  static const std::set<std::string> kUnits = {
      "mbps", "bps", "ms", "s", "km", "m", "mw", "w", "j", "uj", "dbm",
      "mhz"};
  return kUnits;
}

struct Conversion {
  std::string from;
  std::string to;
};

const std::map<std::string, Conversion>& conversions() {
  static const std::map<std::string, Conversion> kConv = {
      {"mbps_to_bps", {"mbps", "bps"}}, {"bps_to_mbps", {"bps", "mbps"}},
      {"ms_to_s", {"ms", "s"}},         {"s_to_ms", {"s", "ms"}},
      {"km_to_m", {"km", "m"}},         {"m_to_km", {"m", "km"}},
      {"mw_to_w", {"mw", "w"}},         {"w_to_mw", {"w", "mw"}}};
  return kConv;
}

std::string conversion_between(const std::string& from,
                               const std::string& to) {
  for (const auto& [name, conv] : conversions()) {
    if (conv.from == from && conv.to == to) return name;
  }
  return {};
}

/// The unit a name carries, or "" when it carries none. The suffix after the
/// last underscore always counts (`rtt_ms` -> ms); a bare name counts only
/// when it is a multi-character unit word (`ms`, `km`, `mbps` — the units.h
/// helpers name their parameter after the unit), because single letters like
/// s/m/w/j are far too common as ordinary identifiers.
std::string unit_of(const std::string& name) {
  if (conversions().count(name) != 0) return {};
  const auto& units = unit_suffixes();
  const auto us = name.rfind('_');
  if (us != std::string::npos) {
    const std::string suffix = name.substr(us + 1);
    return units.count(suffix) != 0 ? suffix : std::string{};
  }
  if (name.size() >= 2 && units.count(name) != 0) return name;
  return {};
}

/// When [b, e) is `wild5g::<helper>(...)` or `<helper>(...)` spanning the
/// whole range, reports the helper name and argument span. Used both by unit
/// inference and by the double-conversion check.
bool is_conversion_call(const std::vector<Token>& toks, std::size_t b,
                        std::size_t e, std::string* name, std::size_t* arg_b,
                        std::size_t* arg_e) {
  std::size_t i = b;
  if (i + 1 < e && toks[i].text == "wild5g" && toks[i + 1].text == "::") {
    i += 2;
  }
  if (i >= e || toks[i].kind != Token::Kind::kIdent ||
      conversions().count(toks[i].text) == 0) {
    return false;
  }
  if (i + 1 >= e || toks[i + 1].text != "(") return false;
  const std::size_t close = find_match(toks, i + 1, "(", ")", e);
  if (close != e - 1) return false;
  *name = toks[i].text;
  *arg_b = i + 2;
  *arg_e = close;
  return true;
}

/// Conservative unit inference over an expression span [b, e). Only shapes
/// whose unit is unambiguous are resolved: a units.h conversion call yields
/// its target unit, static_cast is transparent, and a simple access chain
/// (x, obj.field_ms, arr[i].rtt_ms, ns::var_s) yields the unit of its last
/// component. Arithmetic, other calls, and anything else yield "" — silence
/// beats a false positive in a lint gate that fails the build.
std::string infer_unit(const std::vector<Token>& toks, std::size_t b,
                       std::size_t e) {
  while (b < e && toks[b].kind == Token::Kind::kPunct &&
         toks[b].text == "(" && find_match(toks, b, "(", ")", e) == e - 1) {
    ++b;
    --e;
  }
  if (b >= e) return {};
  if (toks[b].kind == Token::Kind::kIdent && toks[b].text == "static_cast" &&
      b + 1 < e && toks[b + 1].text == "<") {
    const std::size_t gt = find_match(toks, b + 1, "<", ">", e);
    if (gt != kNpos && gt + 1 < e && toks[gt + 1].text == "(") {
      const std::size_t close = find_match(toks, gt + 1, "(", ")", e);
      if (close == e - 1) return infer_unit(toks, gt + 2, close);
    }
    return {};
  }
  std::string conv;
  std::size_t ab = 0;
  std::size_t ae = 0;
  if (is_conversion_call(toks, b, e, &conv, &ab, &ae)) {
    return conversions().at(conv).to;
  }
  std::string last_ident;
  int bracket = 0;
  for (std::size_t j = b; j < e; ++j) {
    const Token& t = toks[j];
    if (t.kind == Token::Kind::kPunct) {
      if (t.text == "[") {
        ++bracket;
        continue;
      }
      if (t.text == "]") {
        --bracket;
        continue;
      }
      if (t.text == "." || t.text == "->" || t.text == "::") continue;
      return {};
    }
    if (t.kind == Token::Kind::kNumber) continue;
    if (t.kind != Token::Kind::kIdent) return {};
    if (bracket > 0) continue;
    // Two adjacent identifiers (a declaration, `const x`, ...) break the
    // access-chain shape.
    if (j > b && toks[j - 1].kind == Token::Kind::kIdent) return {};
    last_ident = t.text;
  }
  return last_ident.empty() ? std::string{} : unit_of(last_ident);
}

/// unit-mismatch-assign: `lhs_ms = rhs_s` (also +=, -=, and declaration
/// initializers, default arguments, designated initializers). Both sides
/// must resolve to a known unit for a finding; unknown shapes are skipped.
void check_unit_assign(const std::vector<Token>& toks, const FileContext& ctx,
                       std::vector<Finding>& out) {
  for (std::size_t i = 1; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kPunct) continue;
    const std::string& op = toks[i].text;
    if (op != "=" && op != "+=" && op != "-=") continue;
    // LHS: identifier (possibly behind a balanced subscript) before the op.
    std::size_t l = i - 1;
    if (toks[l].kind == Token::Kind::kPunct && toks[l].text == "]") {
      int depth = 0;
      std::size_t j = l;
      bool matched = false;
      while (true) {
        if (toks[j].kind == Token::Kind::kPunct) {
          if (toks[j].text == "]") ++depth;
          if (toks[j].text == "[" && --depth == 0) {
            matched = true;
            break;
          }
        }
        if (j == 0) break;
        --j;
      }
      if (!matched || j == 0) continue;
      l = j - 1;
    }
    if (toks[l].kind != Token::Kind::kIdent) continue;
    const std::string lhs_unit = unit_of(toks[l].text);
    if (lhs_unit.empty()) continue;
    // RHS: up to the end of this initializer/statement at depth 0. The scan
    // is bounded — a unit either surfaces in a short span or not at all.
    std::size_t re = kNpos;
    const std::size_t cap = std::min(toks.size(), i + 1 + 64);
    int depth = 0;
    for (std::size_t j = i + 1; j < cap; ++j) {
      if (toks[j].kind != Token::Kind::kPunct) continue;
      const std::string& t = toks[j].text;
      if (t == "(" || t == "[" || t == "{") {
        ++depth;
      } else if (t == ")" || t == "]" || t == "}") {
        if (depth == 0) {
          re = j;
          break;
        }
        --depth;
      } else if (depth == 0 && (t == ";" || t == ",")) {
        re = j;
        break;
      }
    }
    if (re == kNpos || re == i + 1) continue;
    const std::string rhs_unit = infer_unit(toks, i + 1, re);
    if (rhs_unit.empty() || rhs_unit == lhs_unit) continue;
    Finding f{ctx.display_path, toks[i].line, "unit-mismatch-assign",
              "'" + toks[l].text + "' carries unit '" + lhs_unit +
                  "' but the right-hand side is in '" + rhs_unit + "'",
              {}};
    const std::string helper = conversion_between(rhs_unit, lhs_unit);
    if (!helper.empty()) {
      f.fixit = "wrap the right-hand side in wild5g::" + helper + "(...)";
    } else {
      f.message += "; no units.h helper converts " + rhs_unit + " to " +
                   lhs_unit + " — this looks like a dimensional error";
    }
    out.push_back(std::move(f));
  }
}

/// unit-double-conversion / unit-mismatch-call for the units.h helpers
/// themselves: `ms_to_s(x_s)` (already converted), `s_to_ms(ms_to_s(x))`
/// (round trip), `ms_to_s(x_km)` (wrong family).
void check_unit_conversion_calls(const std::vector<Token>& toks,
                                 const FileContext& ctx,
                                 std::vector<Finding>& out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent ||
        conversions().count(toks[i].text) == 0 || !next_is(toks, i, "(")) {
      continue;
    }
    const std::size_t close = find_match(toks, i + 1, "(", ")", toks.size());
    if (close == kNpos || close == i + 2) continue;
    const Conversion& conv = conversions().at(toks[i].text);
    const std::size_t ab = i + 2;
    const std::size_t ae = close;
    std::string inner;
    std::size_t ib = 0;
    std::size_t ie = 0;
    if (is_conversion_call(toks, ab, ae, &inner, &ib, &ie)) {
      const Conversion& ic = conversions().at(inner);
      if (ic.from == conv.to && ic.to == conv.from) {
        out.push_back(
            {ctx.display_path, toks[i].line, "unit-double-conversion",
             "'" + toks[i].text + "(" + inner + "(...))' converts " +
                 conv.from + "->" + conv.to + " right after " + ic.from +
                 "->" + ic.to + "; the round trip is an identity",
             "drop both conversion calls and use the inner argument "
             "directly"});
        continue;
      }
    }
    const std::string arg_unit = infer_unit(toks, ab, ae);
    if (arg_unit.empty()) continue;
    if (arg_unit == conv.to) {
      out.push_back(
          {ctx.display_path, toks[i].line, "unit-double-conversion",
           "argument of '" + toks[i].text + "' already carries the target "
               "unit '" + conv.to + "'; converting it again scales the "
               "value twice",
           "drop the " + toks[i].text + "(...) wrapper"});
    } else if (arg_unit != conv.from) {
      Finding f{ctx.display_path, toks[i].line, "unit-mismatch-call",
                "'" + toks[i].text + "' expects a value in '" + conv.from +
                    "' but the argument carries '" + arg_unit + "'",
                {}};
      const std::string helper = conversion_between(arg_unit, conv.from);
      if (!helper.empty()) {
        f.fixit = "convert the argument first: wild5g::" + helper + "(...)";
      }
      out.push_back(std::move(f));
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-file function-signature index: declarations whose parameters carry
// unit suffixes, keyed by (name, arity). Call sites anywhere in the scanned
// tree are then checked argument-by-argument against the declared units.
// Identification is deliberately conservative — a candidate must look like a
// declaration from three independent angles (token before the name, token
// after the parameter list, and every parameter chunk declaration-shaped) —
// because indexing a *call* as a signature would invert the check.

struct Signature {
  std::vector<std::string> units;  // one per parameter; "" = no unit
  std::vector<std::string> names;  // parameter names ("" when unnamed)
  bool poisoned = false;           // conflicting declarations share name+arity
};

// name -> arity -> signature
using SignatureIndex = std::map<std::string, std::map<int, Signature>>;

const std::set<std::string>& non_type_keywords() {
  static const std::set<std::string> kWords = {
      "return", "if",     "while",    "for",       "switch",  "case",
      "new",    "delete", "do",       "else",      "throw",   "goto",
      "sizeof", "co_await", "co_return", "co_yield", "and",   "or",
      "not",    "catch",  "decltype", "alignof",   "noexcept", "operator",
      "static_assert", "define", "include", "until"};
  return kWords;
}

/// Parses one parameter chunk [b, e). Declaration-shaped chunks look like
/// `type name`, `const type& name`, `std::vector<double> name`, `type` (no
/// name), or `...`; anything with arithmetic, strings, or numbers outside
/// template arguments disqualifies the whole candidate. On success reports
/// the parameter name ("" for type-only chunks — which therefore contribute
/// no unit, so a call like `f(x)` can never be indexed as a signature).
bool decl_chunk(const std::vector<Token>& toks, std::size_t b, std::size_t e,
                std::string* name, std::string* unit) {
  name->clear();
  unit->clear();
  // Cut a default-argument tail; its value is checked by unit-mismatch-assign.
  int angle = 0;
  std::size_t stop = e;
  for (std::size_t j = b; j < e; ++j) {
    if (toks[j].kind != Token::Kind::kPunct) continue;
    if (toks[j].text == "<") ++angle;
    if (toks[j].text == ">") --angle;
    if (toks[j].text == "=" && angle == 0) {
      stop = j;
      break;
    }
  }
  std::string last;
  std::size_t count = 0;
  angle = 0;
  for (std::size_t j = b; j < stop; ++j) {
    const Token& t = toks[j];
    ++count;
    if (t.kind == Token::Kind::kIdent) {
      if (angle == 0) last = t.text;
      continue;
    }
    if (t.kind == Token::Kind::kNumber) {
      if (angle == 0) return false;
      continue;
    }
    if (t.kind != Token::Kind::kPunct) return false;
    if (t.text == "<") {
      ++angle;
      continue;
    }
    if (t.text == ">") {
      --angle;
      continue;
    }
    if (t.text == "::" || t.text == "&" || t.text == "*" || t.text == "[" ||
        t.text == "]" || t.text == "&&" || t.text == ",") {
      continue;  // "," only occurs inside <...> after chunk splitting
    }
    if ((t.text == "(" || t.text == ")") && angle > 0) {
      // Function-type template argument (std::function<void(int)>): still
      // declaration-shaped. At angle 0 a paren means a call expression.
      continue;
    }
    if (t.text == ".") {
      // Only the variadic ellipsis is declaration-shaped; a member access
      // chain (config.timeout_s) marks the candidate as a call.
      if (stop - b == 3 && toks[b].text == "." && toks[b + 1].text == "." &&
          toks[b + 2].text == ".") {
        continue;
      }
      return false;
    }
    return false;
  }
  if (count >= 2 && !last.empty() &&
      non_type_keywords().count(last) == 0) {
    *name = last;
    *unit = unit_of(last);
  }
  return true;
}

/// Splits [b, e) at depth-0 commas (tracking (), [], {} — template commas in
/// parameter lists are rare and simply fail the arity match downstream).
std::vector<std::pair<std::size_t, std::size_t>> split_args(
    const std::vector<Token>& toks, std::size_t b, std::size_t e) {
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  if (b >= e) return chunks;
  int depth = 0;
  int angle = 0;
  std::size_t start = b;
  for (std::size_t j = b; j < e; ++j) {
    if (toks[j].kind != Token::Kind::kPunct) continue;
    const std::string& t = toks[j].text;
    if (t == "(" || t == "[" || t == "{") ++depth;
    if (t == ")" || t == "]" || t == "}") --depth;
    if (t == "<") ++angle;
    if (t == ">") angle = std::max(0, angle - 1);
    if (t == "," && depth == 0 && angle == 0) {
      chunks.emplace_back(start, j);
      start = j + 1;
    }
  }
  chunks.emplace_back(start, e);
  return chunks;
}

/// Scans a file for function declarations/definitions with >= 1 unit-suffixed
/// parameter and merges them into the index. Records the token index of each
/// signature name in decl_sites so the call check can skip the declaration
/// itself. The units.h conversion helpers are excluded — they get a dedicated
/// check with tighter semantics (double-conversion detection).
void collect_signatures(const std::vector<Token>& toks, SignatureIndex& index,
                        std::set<std::size_t>& decl_sites) {
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || toks[i + 1].text != "(") {
      continue;
    }
    const std::string& name = toks[i].text;
    if (non_type_keywords().count(name) != 0 ||
        conversions().count(name) != 0) {
      continue;
    }
    // Angle 1: the token before the name must be able to end a return type.
    // std::-qualified names are always library calls, never tree signatures.
    const Token& prev = toks[i - 1];
    const bool prev_ok =
        (prev.kind == Token::Kind::kIdent &&
         non_type_keywords().count(prev.text) == 0) ||
        (prev.kind == Token::Kind::kPunct &&
         (prev.text == "&" || prev.text == "*" || prev.text == ">" ||
          prev.text == "::"));
    if (!prev_ok) continue;
    if (prev.text == "::" && i >= 2 && toks[i - 2].text == "std") continue;
    const std::size_t close = find_match(toks, i + 1, "(", ")", toks.size());
    if (close == kNpos) continue;
    // Angle 2: the token after the parameter list must be declaration
    // punctuation, not an operator continuing an expression.
    if (close + 1 >= toks.size()) continue;
    const std::string& after = toks[close + 1].text;
    if (after != ";" && after != "{" && after != "const" &&
        after != "noexcept" && after != "override" && after != "final" &&
        after != "->" && after != "=") {
      continue;
    }
    // Angle 3: every parameter chunk must be declaration-shaped.
    Signature sig;
    bool shaped = true;
    bool any_unit = false;
    if (close > i + 2) {
      for (const auto& [cb, ce] : split_args(toks, i + 2, close)) {
        std::string pname;
        std::string punit;
        if (cb >= ce || !decl_chunk(toks, cb, ce, &pname, &punit)) {
          shaped = false;
          break;
        }
        sig.names.push_back(pname);
        sig.units.push_back(punit);
        any_unit = any_unit || !punit.empty();
      }
    }
    if (!shaped) continue;
    decl_sites.insert(i);
    if (!any_unit) continue;  // nothing to enforce; keep index small
    const int arity = static_cast<int>(sig.units.size());
    auto& slot = index[name];
    const auto it = slot.find(arity);
    if (it == slot.end()) {
      slot.emplace(arity, std::move(sig));
    } else if (it->second.units != sig.units) {
      it->second.poisoned = true;  // ambiguous overload set: stand down
    }
  }
}

/// unit-mismatch-call: arguments at every call site are checked against the
/// indexed parameter units. Only exact (name, arity) matches are enforced,
/// poisoned entries and declaration sites are skipped, and an argument only
/// counts when its own unit resolves.
void check_unit_calls(const std::vector<Token>& toks, const FileContext& ctx,
                      const SignatureIndex& index,
                      const std::set<std::size_t>& decl_sites,
                      std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || toks[i + 1].text != "(" ||
        decl_sites.count(i) != 0) {
      continue;
    }
    const auto slot = index.find(toks[i].text);
    if (slot == index.end()) continue;
    const std::size_t close = find_match(toks, i + 1, "(", ")", toks.size());
    if (close == kNpos) continue;
    const auto chunks =
        close > i + 2
            ? split_args(toks, i + 2, close)
            : std::vector<std::pair<std::size_t, std::size_t>>{};
    const auto sig_it = slot->second.find(static_cast<int>(chunks.size()));
    if (sig_it == slot->second.end() || sig_it->second.poisoned) continue;
    const Signature& sig = sig_it->second;
    for (std::size_t k = 0; k < chunks.size(); ++k) {
      if (sig.units[k].empty()) continue;
      const std::string arg_unit =
          infer_unit(toks, chunks[k].first, chunks[k].second);
      if (arg_unit.empty() || arg_unit == sig.units[k]) continue;
      Finding f{ctx.display_path, toks[i].line, "unit-mismatch-call",
                "argument " + std::to_string(k + 1) + " of '" + toks[i].text +
                    "' carries '" + arg_unit + "' but parameter '" +
                    sig.names[k] + "' expects '" + sig.units[k] + "'",
                {}};
      const std::string helper = conversion_between(arg_unit, sig.units[k]);
      if (!helper.empty()) {
        f.fixit = "wrap the argument in wild5g::" + helper + "(...)";
      } else {
        f.message += "; no units.h helper converts " + arg_unit + " to " +
                     sig.units[k] + " — this looks like a dimensional error";
      }
      out.push_back(std::move(f));
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel-Rng discipline (the static twin of the runtime byte-identity
// gate; see src/core/parallel.h). Two rules over parallel_map/parallel_for
// call sites:
//   parallel-rng-capture  an Rng explicitly captured by reference into the
//                         task lambda — concurrent draws race, and even a
//                         mutex would make results schedule-dependent.
//   parallel-rng-stream   a draw inside the task body on an outer Rng (any
//                         stream not derived per-task via fork(i)/split()
//                         or constructed locally from a per-task seed).
// A default [&] capture alone is not a finding — the tree-wide idiom is
// `[&]` with every draw routed through a lambda-local fork(i) child, which
// the stream rule verifies.

/// Names in this file declared as wild5g::Rng (or bound via
/// `auto x = ....fork(...)/....split()`). File scope is a sound
/// over-approximation: tracking extra names can only matter if they are
/// drawn from inside a task body without a local declaration.
std::set<std::string> collect_rng_vars(const std::vector<Token>& toks) {
  std::set<std::string> vars;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    if (toks[i].text == "Rng") {
      std::size_t j = i + 1;
      while (j < toks.size() &&
             (toks[j].text == "&" || toks[j].text == "*" ||
              toks[j].text == "const")) {
        ++j;
      }
      if (j < toks.size() && toks[j].kind == Token::Kind::kIdent) {
        vars.insert(toks[j].text);
      }
      continue;
    }
    if (toks[i].text == "auto" && i + 2 < toks.size() &&
        toks[i + 1].kind == Token::Kind::kIdent && toks[i + 2].text == "=") {
      const std::size_t stop = std::min(toks.size(), i + 20);
      for (std::size_t j = i + 3; j < stop && toks[j].text != ";"; ++j) {
        if (toks[j].kind == Token::Kind::kIdent &&
            (toks[j].text == "fork" || toks[j].text == "split")) {
          vars.insert(toks[i + 1].text);
          break;
        }
      }
    }
  }
  return vars;
}

void check_parallel_rng(const std::vector<Token>& toks, const FileContext& ctx,
                        const std::set<std::string>& rng_vars,
                        std::vector<Finding>& out) {
  // Mutating draw methods of wild5g::Rng. fork() is const and seed-derived,
  // so calling it inside a task body is exactly the sanctioned idiom.
  static const std::set<std::string> kDraws = {
      "uniform", "uniform_int", "normal",  "lognormal", "exponential",
      "bernoulli", "pick",      "shuffle", "split"};
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent ||
        (toks[i].text != "parallel_map" && toks[i].text != "parallel_for") ||
        toks[i + 1].text != "(") {
      continue;
    }
    const std::size_t call_close =
        find_match(toks, i + 1, "(", ")", toks.size());
    if (call_close == kNpos) continue;
    // The first '[' inside the call opens the task lambda's capture list.
    std::size_t cap_open = kNpos;
    for (std::size_t j = i + 2; j < call_close; ++j) {
      if (toks[j].kind == Token::Kind::kPunct && toks[j].text == "[") {
        cap_open = j;
        break;
      }
    }
    if (cap_open == kNpos) continue;
    const std::size_t cap_close =
        find_match(toks, cap_open, "[", "]", call_close);
    if (cap_close == kNpos) continue;

    // Rule 1: explicit by-reference captures of a known Rng.
    for (std::size_t j = cap_open + 1; j < cap_close; ++j) {
      if (toks[j].kind != Token::Kind::kPunct || toks[j].text != "&" ||
          j + 1 >= cap_close || toks[j + 1].kind != Token::Kind::kIdent) {
        continue;
      }
      std::string target;
      if (j + 2 < cap_close && toks[j + 2].text == "=") {
        // Init capture `&alias = expr`: flag only when expr is exactly a
        // tracked Rng variable.
        if (j + 3 < cap_close && toks[j + 3].kind == Token::Kind::kIdent &&
            rng_vars.count(toks[j + 3].text) != 0 &&
            (j + 4 >= cap_close || toks[j + 4].text == ",")) {
          target = toks[j + 3].text;
        }
      } else if (rng_vars.count(toks[j + 1].text) != 0) {
        target = toks[j + 1].text;
      }
      if (target.empty()) continue;
      out.push_back(
          {ctx.display_path, toks[j].line, "parallel-rng-capture",
           "Rng '" + target + "' is captured by reference into a " +
               toks[i].text + " task lambda; concurrent draws race and "
               "break byte-identical goldens at any thread count",
           "split() a base stream before the loop (Rng base = " + target +
               ".split();) and draw from base.fork(i) inside the task"});
    }

    // Rule 2: draws inside the task body on non-local Rng streams.
    std::set<std::string> locals;
    std::size_t j = cap_close + 1;
    if (j < call_close && toks[j].text == "(") {
      const std::size_t params_close =
          find_match(toks, j, "(", ")", call_close);
      if (params_close == kNpos) continue;
      // Every identifier in the parameter list shadows an outer name (the
      // over-approximation also swallows type names, which is harmless).
      for (std::size_t k = j + 1; k < params_close; ++k) {
        if (toks[k].kind == Token::Kind::kIdent) locals.insert(toks[k].text);
      }
      j = params_close + 1;
    }
    while (j < call_close && toks[j].kind == Token::Kind::kIdent) {
      ++j;  // mutable, noexcept
    }
    if (j >= call_close || toks[j].text != "{") continue;
    const std::size_t body_open = j;
    const std::size_t body_close =
        find_match(toks, body_open, "{", "}", call_close + 1);
    if (body_close == kNpos) continue;
    for (std::size_t k = body_open + 1; k + 1 < body_close; ++k) {
      if (toks[k].kind != Token::Kind::kIdent ||
          non_type_keywords().count(toks[k].text) != 0) {
        continue;
      }
      // `Type name`, `Type& name`, `auto name`: a declaration inside the
      // body makes `name` task-local (bench_fig09's `Rng rng(seed + d)`
      // idiom is deterministic — the stream derives from the task index).
      std::size_t m = k + 1;
      while (m < body_close &&
             (toks[m].text == "&" || toks[m].text == "*" ||
              toks[m].text == "const")) {
        ++m;
      }
      if (m < body_close && toks[m].kind == Token::Kind::kIdent &&
          m + 1 < body_close &&
          (toks[m + 1].text == "=" || toks[m + 1].text == "(" ||
           toks[m + 1].text == "{" || toks[m + 1].text == ";")) {
        locals.insert(toks[m].text);
      }
    }
    for (std::size_t k = body_open + 1; k + 3 < body_close; ++k) {
      if (toks[k].kind == Token::Kind::kIdent &&
          rng_vars.count(toks[k].text) != 0 &&
          locals.count(toks[k].text) == 0 &&
          (toks[k + 1].text == "." || toks[k + 1].text == "->") &&
          toks[k + 2].kind == Token::Kind::kIdent &&
          kDraws.count(toks[k + 2].text) != 0 && toks[k + 3].text == "(") {
        out.push_back(
            {ctx.display_path, toks[k].line, "parallel-rng-stream",
             "'" + toks[k].text + "." + toks[k + 2].text + "(...)' inside a " +
                 toks[i].text + " task body draws from a stream that is not "
                 "derived per task; results depend on scheduling and break "
                 "thread-count invariance",
             "derive a task-local stream first (auto child = base.fork(i);) "
             "and draw from it"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Effect inference (the interprocedural layer behind the `effects` family).
//
// The parallel rules above only see draws *lexically inside* a task lambda; a
// task that calls a helper which mutates a file-static accumulator, or draws
// from a member Rng three frames down, passed clean. This section closes that
// hole: every function definition in the scanned set gets a conservative
// effect signature over a small powerset lattice, effects propagate bottom-up
// over the call graph to a fixpoint (cycles iterate until stable; the lattice
// is finite so termination is structural), and three rule families consume
// the database:
//   parallel-effect-*     a task body reaching shared-state writes, foreign
//                         Rng draws, shared-capture mutation, or a poisoned
//                         callee through any call chain — the chain itself is
//                         printed as the fix-it context.
//   global-mutable-state  the inventory those rules (and the coming multi-UE
//                         scheduler refactor) work from: every non-const
//                         namespace-scope or static-local variable in src/
//                         must be const, thread-confined (thread_local / sync
//                         primitives), or justified via allow. A justified
//                         declaration is treated as audited and drops out of
//                         the writes_global tracking set, so sanctioned state
//                         (e.g. the parallel.cpp pool singleton) does not
//                         poison every caller.
//   arena-escape          arena-backed pointers stored past handler scope.

// Effect lattice bits. draws_rng splits in two because the sanctioned idiom —
// pass the helper a task-local fork(i) child — is only distinguishable from
// the racy one by *where the stream came from*: a draw on a parameter is
// conditional on the call site's argument, a draw on member/global state is
// unconditional.
enum : unsigned {
  kEffWritesGlobal = 1u << 0,   // assigns namespace-scope/static-local state
  kEffMutatesParam = 1u << 1,   // writes through a non-const ref/ptr param
  kEffDrawsRngState = 1u << 2,  // draws on a member/global/non-local stream
  kEffDrawsRngParam = 1u << 3,  // draws on a caller-supplied stream param
  kEffAllocates = 1u << 4,      // new/malloc outside core/arena.h
  kEffSchedules = 1u << 5,      // Simulator::schedule_at/_in, Injector::arm
  kEffUnknown = 1u << 6,        // poisoned: conflicting same-name defs
};

/// std sync primitives whose namespace-scope instances are coordination, not
/// observable state: a mutex cannot leak scheduling order into metrics.
const std::set<std::string>& sync_type_names() {
  static const std::set<std::string> kSync = {
      "mutex",          "recursive_mutex",
      "shared_mutex",   "timed_mutex",
      "recursive_timed_mutex", "condition_variable",
      "condition_variable_any", "once_flag",
      "atomic_flag"};
  return kSync;
}

struct GlobalDecl {
  std::string name;
  int line = 0;
  bool static_local = false;  // function-local static vs namespace scope
  bool audited = false;       // declaration carries a justified allow()
  bool confined = false;      // guard inference proved mutex confinement
};

/// Collects mutable (non-const, non-thread-confined) namespace-scope and
/// static-local variable definitions. A hand-rolled scope tracker classifies
/// each `{`: namespace bodies stay at namespace scope, class/enum bodies are
/// member scope (data members are per-object state, not globals), everything
/// else — function bodies, initializers — is block scope, where only
/// `static` declarations are of interest. Ambiguous shapes (most-vexing
/// parse, function pointers, macro invocations) resolve to silence: this
/// feeds a build-failing gate, so false negatives beat false positives.
void collect_globals(const std::vector<Token>& toks,
                     std::vector<GlobalDecl>& out) {
  enum class Scope { kNamespace, kClass, kEnum, kBlock };
  std::vector<Scope> stack;
  const auto at_namespace = [&] {
    return stack.empty() || stack.back() == Scope::kNamespace;
  };

  static const std::set<std::string> kNotADecl = {
      "using",  "typedef", "namespace", "friend",   "template",
      "static_assert",     "extern",    "goto",     "return",
      "if",     "while",   "for",       "do",       "switch",
      "case",   "break",   "continue",  "throw",    "delete",
      "operator", "public", "private",  "protected", "class",
      "struct", "union",   "enum",      "asm",      "new"};

  // Analyzes the statement chunk [b, e) as a potential variable definition
  // and appends a GlobalDecl when it declares mutable non-exempt state.
  const auto analyze = [&](std::size_t b, std::size_t e, bool static_local) {
    while (b < e && toks[b].kind == Token::Kind::kIdent &&
           (toks[b].text == "static" || toks[b].text == "inline")) {
      ++b;
    }
    if (b >= e || toks[b].kind != Token::Kind::kIdent) return;
    if (kNotADecl.count(toks[b].text) != 0) return;
    // Cut the initializer: the declaration part ends at the first '=' that
    // is outside parentheses/brackets (template '<' is not tracked — a '='
    // inside template arguments would only make the check quieter).
    int depth = 0;
    std::size_t stop = e;
    for (std::size_t j = b; j < e; ++j) {
      if (toks[j].kind != Token::Kind::kPunct) continue;
      const std::string& t = toks[j].text;
      if (t == "(" || t == "[" || t == "{") ++depth;
      if (t == ")" || t == "]" || t == "}") --depth;
      if (t == "=" && depth == 0) {
        stop = j;
        break;
      }
    }
    if (stop - b < 2) return;  // a lone identifier is never a definition
    // Exemptions: const-qualified, thread-confined, or a sync primitive.
    for (std::size_t j = b; j < stop; ++j) {
      if (toks[j].kind != Token::Kind::kIdent) continue;
      const std::string& t = toks[j].text;
      if (t == "const" || t == "constexpr" || t == "thread_local" ||
          sync_type_names().count(t) != 0) {
        return;
      }
      if (t == "operator") return;
    }
    // Name resolution: with a parameter-ish '(' the candidate is either a
    // function declaration (all chunks declaration-shaped — skip) or a
    // constructor-initialized variable (expression-shaped args — flag).
    std::size_t paren = kNpos;
    depth = 0;
    for (std::size_t j = b; j < stop; ++j) {
      if (toks[j].kind != Token::Kind::kPunct) continue;
      const std::string& t = toks[j].text;
      if (t == "(" && depth == 0) {
        paren = j;
        break;
      }
      if (t == "[" || t == "{") ++depth;
      if (t == "]" || t == "}") --depth;
    }
    std::size_t name_idx = kNpos;
    if (paren != kNpos) {
      if (paren == b || toks[paren - 1].kind != Token::Kind::kIdent) return;
      name_idx = paren - 1;
      const std::size_t close = find_match(toks, paren, "(", ")", stop + 1);
      bool all_decl_shaped = true;
      if (close != kNpos && close > paren + 1) {
        for (const auto& [cb, ce] : split_args(toks, paren + 1, close)) {
          std::string pname;
          std::string punit;
          if (cb >= ce || !decl_chunk(toks, cb, ce, &pname, &punit)) {
            all_decl_shaped = false;
            break;
          }
        }
      }
      if (all_decl_shaped) return;  // function declaration, not a variable
    } else {
      for (std::size_t j = stop; j > b;) {
        --j;
        if (toks[j].kind == Token::Kind::kIdent) {
          name_idx = j;
          break;
        }
        if (toks[j].kind == Token::Kind::kPunct &&
            (toks[j].text == "]" || toks[j].text == "[")) {
          continue;  // array extents sit after the name
        }
        if (toks[j].kind != Token::Kind::kNumber) return;
      }
    }
    if (name_idx == kNpos) return;
    const std::string& name = toks[name_idx].text;
    if (kNotADecl.count(name) != 0 || non_type_keywords().count(name) != 0) {
      return;
    }
    out.push_back({name, toks[name_idx].line, static_local, false});
  };

  std::size_t stmt = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == Token::Kind::kPunct && t.text == "#") {
      // Preprocessor directive: consume the physical line.
      const int line = t.line;
      while (i + 1 < toks.size() && toks[i + 1].line == line) ++i;
      stmt = i + 1;
      continue;
    }
    if (t.kind == Token::Kind::kIdent && t.text == "static" &&
        !stack.empty() && stack.back() == Scope::kBlock) {
      // Static local. Scan to the statement's ';' (balanced through any
      // braced initializer) and analyze; the cap bounds pathological input.
      int depth = 0;
      std::size_t semi = kNpos;
      const std::size_t cap = std::min(toks.size(), i + 96);
      for (std::size_t j = i + 1; j < cap; ++j) {
        if (toks[j].kind != Token::Kind::kPunct) continue;
        const std::string& p = toks[j].text;
        if (p == "(" || p == "[" || p == "{") ++depth;
        if (p == ")" || p == "]" || p == "}") --depth;
        if (p == ";" && depth == 0) {
          semi = j;
          break;
        }
      }
      if (semi != kNpos) {
        analyze(i + 1, semi, /*static_local=*/true);
        i = semi;
        stmt = i + 1;
      }
      continue;
    }
    if (t.kind != Token::Kind::kPunct) continue;
    if (t.text == "{") {
      // Classify the brace from its header chunk [stmt, i).
      bool is_init = false;
      int depth = 0;
      for (std::size_t j = stmt; j < i; ++j) {
        if (toks[j].kind != Token::Kind::kPunct) continue;
        const std::string& p = toks[j].text;
        if (p == "(" || p == "[") ++depth;
        if (p == ")" || p == "]") --depth;
        if (p == "=" && depth == 0) is_init = true;
      }
      if (is_init) {
        // Braced initializer: skip it; the statement continues to ';'.
        const std::size_t close = find_match(toks, i, "{", "}", toks.size());
        if (close == kNpos) return;
        i = close;
        continue;
      }
      Scope kind = Scope::kBlock;
      bool has_paren = false;
      for (std::size_t j = stmt; j < i; ++j) {
        if (toks[j].kind == Token::Kind::kPunct && toks[j].text == "(") {
          has_paren = true;
        }
      }
      for (std::size_t j = stmt; j < i && !has_paren; ++j) {
        if (toks[j].kind != Token::Kind::kIdent) continue;
        const std::string& w = toks[j].text;
        if (w == "namespace") {
          kind = Scope::kNamespace;
          break;
        }
        if (w == "class" || w == "struct" || w == "union") {
          kind = Scope::kClass;
          break;
        }
        if (w == "enum") {
          kind = Scope::kEnum;
          break;
        }
      }
      stack.push_back(kind);
      stmt = i + 1;
      continue;
    }
    if (t.text == "}") {
      if (!stack.empty()) stack.pop_back();
      stmt = i + 1;
      continue;
    }
    if (t.text == ";") {
      if (at_namespace()) analyze(stmt, i, /*static_local=*/false);
      stmt = i + 1;
    }
  }
}

// ---------------------------------------------------------------------------
// Function-definition index with effect signatures.

/// Draw methods of wild5g::Rng that advance stream state (fork() is const
/// and seed-derived, so it is deliberately absent — calling it anywhere is
/// the sanctioned idiom).
const std::set<std::string>& rng_draw_methods() {
  static const std::set<std::string> kDraws = {
      "uniform",   "uniform_int", "normal", "lognormal", "exponential",
      "bernoulli", "pick",        "shuffle", "split"};
  return kDraws;
}

/// Container/member operations that mutate their receiver; used to spot
/// writes through reference parameters and into global containers.
const std::set<std::string>& mutating_methods() {
  static const std::set<std::string> kMut = {
      "push_back", "emplace_back", "insert", "emplace", "erase",
      "clear",     "resize",       "assign", "pop_back", "reset",
      "store"};
  return kMut;
}

// Receiver classification at a call site, relative to the calling scope.
enum : int {
  kRecvNone = 0,   // free function call
  kRecvLocal = 1,  // receiver declared in the calling scope
  kRecvParam = 2,  // receiver is a parameter of the enclosing function
  kRecvOuter = 3,  // member, global, or captured object
};

// Classification of one call argument relative to the calling scope. The
// engine is parameter-position-aware: a callee that draws from parameter 3
// only taints call sites whose *third* argument is a shared stream — a
// captured config object in another slot is irrelevant.
enum : int {
  kArgComplex = 0,  // any expression that is not a bare (possibly &) name
  kArgLocal = 1,    // declared in the calling scope
  kArgParam = 2,    // a parameter of the enclosing function
  kArgOuter = 3,    // captured / member / file-scope name
  kArgGlobal = 4,   // ... and a tracked mutable global
};

struct EffCallArg {
  int cls = kArgComplex;
  std::string name;    // the bare identifier, when cls != kArgComplex
  int param_pos = -1;  // caller parameter index, when cls == kArgParam
};

struct EffCallSite {
  std::string callee;
  int argc = 0;
  int line = 0;
  int recv = kRecvNone;
  int recv_param_pos = -1;  // caller parameter index when recv == kRecvParam
  std::vector<EffCallArg> args;
};

struct FuncDef {
  std::string name;
  std::string file;
  int line = 0;
  std::size_t body_open = 0;
  std::size_t body_close = 0;
  int arity = 0;
  std::size_t name_tok = 0;  // token index of the name (for Cls:: lookback)
  unsigned direct = 0;   // effects of this body alone
  unsigned effects = 0;  // after bottom-up propagation
  std::vector<EffCallSite> calls;
  std::set<std::string> params;
  std::map<std::string, int> param_pos;  // name -> declaration position
  std::set<std::string> mutable_ref_params;
  std::set<std::string> locals;  // params + body-declared names
  // Positional effect detail backing the MutatesParam / DrawsRngParam bits:
  // which parameter slots are written through / drawn from (directly or
  // through callees). Grow-only, so the fixpoint stays monotone.
  std::set<int> mutated_params;
  std::set<int> rng_params;
  // Chain reconstruction: how each effect bit got here — either a direct
  // witness in this body, or the callee (and its bit) it was inherited from.
  struct Witness {
    const FuncDef* via = nullptr;
    unsigned via_bit = 0;
    std::string direct_text;
  };
  std::map<unsigned, Witness> witness;
};

/// Names declared inside a block [open, close): `Type name =|(|{|;|:` after
/// optional cv/ref tokens. The over-approximation (type names occasionally
/// land in the set) only ever silences checks, never fires them.
std::set<std::string> collect_block_locals(const std::vector<Token>& toks,
                                           std::size_t open,
                                           std::size_t close) {
  std::set<std::string> locals;
  for (std::size_t k = open + 1; k + 1 < close; ++k) {
    if (toks[k].kind != Token::Kind::kIdent ||
        non_type_keywords().count(toks[k].text) != 0) {
      continue;
    }
    std::size_t m = k + 1;
    while (m < close && (toks[m].text == "&" || toks[m].text == "*" ||
                         toks[m].text == "const")) {
      ++m;
    }
    if (m < close && toks[m].kind == Token::Kind::kIdent && m + 1 < close &&
        (toks[m + 1].text == "=" || toks[m + 1].text == "(" ||
         toks[m + 1].text == "{" || toks[m + 1].text == ";" ||
         toks[m + 1].text == ":")) {
      locals.insert(toks[m].text);
    }
  }
  return locals;
}

/// Function definitions: `name(params) [const|noexcept|...]* [-> type] {`.
/// The same triple gating as the signature index (declaration-shaped
/// parameters, plausible return-type context) keeps call sites out.
void collect_function_defs(const std::vector<Token>& toks,
                           const FileContext& ctx,
                           std::vector<FuncDef>& out) {
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || toks[i + 1].text != "(") {
      continue;
    }
    const std::string& name = toks[i].text;
    if (non_type_keywords().count(name) != 0) continue;
    const Token& prev = toks[i - 1];
    const bool prev_ok =
        (prev.kind == Token::Kind::kIdent &&
         non_type_keywords().count(prev.text) == 0) ||
        (prev.kind == Token::Kind::kPunct &&
         (prev.text == "&" || prev.text == "*" || prev.text == ">" ||
          prev.text == "::"));
    if (!prev_ok) continue;
    if (prev.text == "::" && i >= 2 && toks[i - 2].text == "std") continue;
    const std::size_t close = find_match(toks, i + 1, "(", ")", toks.size());
    if (close == kNpos || close + 1 >= toks.size()) continue;

    FuncDef def;
    bool shaped = true;
    if (close > i + 2) {
      for (const auto& [cb, ce] : split_args(toks, i + 2, close)) {
        std::string pname;
        std::string punit;
        if (cb >= ce || !decl_chunk(toks, cb, ce, &pname, &punit)) {
          shaped = false;
          break;
        }
        ++def.arity;
        if (pname.empty()) continue;
        def.params.insert(pname);
        def.param_pos[pname] = def.arity - 1;
        bool by_ref = false;
        bool is_const = false;
        for (std::size_t j = cb; j < ce; ++j) {
          if (toks[j].kind == Token::Kind::kPunct &&
              (toks[j].text == "&" || toks[j].text == "*" ||
               toks[j].text == "&&")) {
            by_ref = true;
          }
          if (toks[j].kind == Token::Kind::kIdent && toks[j].text == "const") {
            is_const = true;
          }
        }
        if (by_ref && !is_const) def.mutable_ref_params.insert(pname);
      }
    }
    if (!shaped) continue;
    // Walk past trailing specifiers to the body brace; a ';' means this was
    // only a declaration.
    std::size_t j = close + 1;
    while (j < toks.size() && toks[j].kind == Token::Kind::kIdent &&
           (toks[j].text == "const" || toks[j].text == "noexcept" ||
            toks[j].text == "override" || toks[j].text == "final" ||
            toks[j].text == "mutable")) {
      ++j;
    }
    if (j < toks.size() && toks[j].text == "->") {
      const std::size_t cap = std::min(toks.size(), j + 24);
      while (j < cap && toks[j].text != "{" && toks[j].text != ";") ++j;
    }
    if (j >= toks.size() || toks[j].text != "{") continue;
    def.body_open = j;
    def.body_close = find_match(toks, j, "{", "}", toks.size());
    if (def.body_close == kNpos) continue;
    def.name = name;
    def.name_tok = i;
    def.file = ctx.display_path;
    def.line = toks[i].line;
    def.locals = collect_block_locals(toks, def.body_open, def.body_close);
    def.locals.insert(def.params.begin(), def.params.end());
    out.push_back(std::move(def));
  }
}

/// Direct (intraprocedural) effects of one body, plus its call sites.
void compute_direct_effects(const std::vector<Token>& toks,
                            const FileContext& ctx, bool arena_owner,
                            const std::set<std::string>& mutable_globals,
                            FuncDef& def) {
  static const std::set<std::string> kAllocCalls = {"malloc", "calloc",
                                                    "realloc", "free"};
  static const std::set<std::string> kScheduleCalls = {"schedule_at",
                                                       "schedule_in", "arm"};
  static const std::set<std::string> kAssignOps = {"=", "+=", "-=", "*=",
                                                   "/="};
  const auto classify = [&](const std::string& ident) {
    if (def.params.count(ident) != 0) return kRecvParam;
    if (def.locals.count(ident) != 0) return kRecvLocal;
    return kRecvOuter;
  };
  const auto note_direct = [&](unsigned bit, std::string why) {
    def.direct |= bit;
    if (def.witness.count(bit) == 0) {
      def.witness[bit] = {nullptr, 0, std::move(why)};
    }
  };
  const auto loc = [&](int line) {
    return ctx.display_path + ":" + std::to_string(line);
  };

  for (std::size_t k = def.body_open + 1; k < def.body_close; ++k) {
    const Token& t = toks[k];
    if (t.kind != Token::Kind::kIdent) continue;
    const std::string& id = t.text;
    const bool member_ctx =
        k > 0 && (toks[k - 1].text == "." || toks[k - 1].text == "->");

    if (id == "new" && !arena_owner) {
      note_direct(kEffAllocates, "allocates with 'new' at " + loc(t.line));
      continue;
    }
    if (kAllocCalls.count(id) != 0 && next_is(toks, k, "(") &&
        free_call_context(toks, k) && !arena_owner) {
      note_direct(kEffAllocates, "calls '" + id + "' at " + loc(t.line));
      continue;
    }
    if (kScheduleCalls.count(id) != 0 && next_is(toks, k, "(")) {
      note_direct(kEffSchedules,
                  "schedules via '" + id + "' at " + loc(t.line));
      continue;
    }

    // Draw on an Rng-like receiver: `recv.uniform(...)`.
    if (!member_ctx && k + 3 < def.body_close &&
        (toks[k + 1].text == "." || toks[k + 1].text == "->") &&
        toks[k + 2].kind == Token::Kind::kIdent &&
        rng_draw_methods().count(toks[k + 2].text) != 0 &&
        toks[k + 3].text == "(") {
      const int cls = classify(id);
      const std::string why = "draws via '" + id + "." + toks[k + 2].text +
                              "(...)' at " + loc(t.line);
      if (cls == kRecvParam) {
        note_direct(kEffDrawsRngParam, why);
        const auto pos = def.param_pos.find(id);
        if (pos != def.param_pos.end()) def.rng_params.insert(pos->second);
      } else if (cls != kRecvLocal) {
        note_direct(kEffDrawsRngState, why);
      }
      continue;
    }

    // Mutation patterns after an identifier: assignment operators,
    // increment/decrement, mutating member calls, member-field assignment,
    // subscript assignment.
    if (!member_ctx && k + 1 < def.body_close) {
      bool mutated = false;
      const std::string& nxt = toks[k + 1].text;
      if (toks[k + 1].kind == Token::Kind::kPunct) {
        if (kAssignOps.count(nxt) != 0) mutated = true;
        if ((nxt == "+" && k + 2 < def.body_close &&
             toks[k + 2].text == "+") ||
            (nxt == "-" && k + 2 < def.body_close &&
             toks[k + 2].text == "-")) {
          mutated = true;  // postfix ++/--
        }
        if ((nxt == "." || nxt == "->") && k + 3 < def.body_close &&
            toks[k + 2].kind == Token::Kind::kIdent) {
          if (mutating_methods().count(toks[k + 2].text) != 0 &&
              toks[k + 3].text == "(") {
            mutated = true;
          } else if (toks[k + 3].kind == Token::Kind::kPunct &&
                     kAssignOps.count(toks[k + 3].text) != 0) {
            mutated = true;  // recv.field = ...
          }
        }
        if (nxt == "[") {
          const std::size_t rb =
              find_match(toks, k + 1, "[", "]", def.body_close);
          if (rb != kNpos && rb + 1 < def.body_close &&
              toks[rb + 1].kind == Token::Kind::kPunct &&
              kAssignOps.count(toks[rb + 1].text) != 0) {
            mutated = true;
          }
        }
      }
      const bool prefix_incr =
          k >= 2 && toks[k - 1].kind == Token::Kind::kPunct &&
          toks[k - 2].kind == Token::Kind::kPunct &&
          ((toks[k - 1].text == "+" && toks[k - 2].text == "+") ||
           (toks[k - 1].text == "-" && toks[k - 2].text == "-"));
      if (mutated || prefix_incr) {
        if (def.mutable_ref_params.count(id) != 0) {
          note_direct(kEffMutatesParam, "mutates parameter '" + id +
                                            "' at " + loc(t.line));
          const auto pos = def.param_pos.find(id);
          if (pos != def.param_pos.end()) {
            def.mutated_params.insert(pos->second);
          }
        } else if (def.locals.count(id) == 0 &&
                   mutable_globals.count(id) != 0) {
          note_direct(kEffWritesGlobal,
                      "writes '" + id + "' at " + loc(t.line));
        }
      }
    }

    // Call site (free or member), for bottom-up propagation.
    if (next_is(toks, k, "(") && non_type_keywords().count(id) == 0 &&
        kAllocCalls.count(id) == 0 && kScheduleCalls.count(id) == 0) {
      if (member_ctx && rng_draw_methods().count(id) != 0) continue;
      if (k >= 2 && toks[k - 1].text == "::" && toks[k - 2].text == "std") {
        continue;  // std:: calls cannot touch wild5g state
      }
      EffCallSite site;
      site.callee = id;
      site.line = t.line;
      if (member_ctx) {
        site.recv = kRecvOuter;
        if (k >= 2 && toks[k - 2].kind == Token::Kind::kIdent) {
          site.recv = classify(toks[k - 2].text);
          if (site.recv == kRecvNone) site.recv = kRecvOuter;
          if (site.recv == kRecvParam) {
            const auto pos = def.param_pos.find(toks[k - 2].text);
            if (pos != def.param_pos.end()) site.recv_param_pos = pos->second;
          }
        }
      }
      const std::size_t close =
          find_match(toks, k + 1, "(", ")", def.body_close + 1);
      if (close != kNpos && close > k + 2) {
        for (const auto& [ab, ae] : split_args(toks, k + 2, close)) {
          std::size_t b = ab;
          if (b < ae && toks[b].kind == Token::Kind::kPunct &&
              toks[b].text == "&") {
            ++b;
          }
          EffCallArg arg;
          if (ae == b + 1 && toks[b].kind == Token::Kind::kIdent) {
            arg.name = toks[b].text;
            if (def.params.count(arg.name) != 0) {
              arg.cls = kArgParam;
              const auto pos = def.param_pos.find(arg.name);
              if (pos != def.param_pos.end()) arg.param_pos = pos->second;
            } else if (def.locals.count(arg.name) != 0) {
              arg.cls = kArgLocal;
            } else if (mutable_globals.count(arg.name) != 0) {
              arg.cls = kArgGlobal;
            } else {
              arg.cls = kArgOuter;
            }
          }
          site.args.push_back(std::move(arg));
        }
        site.argc = static_cast<int>(site.args.size());
      }
      def.calls.push_back(std::move(site));
    }
  }
  def.effects = def.direct;
}

// name -> arity -> definitions. Same-name-same-arity definitions with
// conflicting *direct* effect masks poison resolution with kEffUnknown: the
// engine cannot tell which one a call binds to, so it refuses to claim
// specific effects and demands an audit instead.
using FuncIndex = std::map<std::string, std::map<int, std::vector<FuncDef*>>>;

std::vector<FuncDef*> resolve_callee(const FuncIndex& index,
                                     const std::string& name, int argc) {
  const auto slot = index.find(name);
  if (slot == index.end()) return {};
  const auto exact = slot->second.find(argc);
  if (exact != slot->second.end()) return exact->second;
  std::vector<FuncDef*> all;  // arity mismatch (default args): merge all
  for (const auto& [arity, defs] : slot->second) {
    (void)arity;
    all.insert(all.end(), defs.begin(), defs.end());
  }
  return all;
}

/// True when an exact-arity overload set disagrees on direct effect masks —
/// the engine cannot tell which definition a call binds to, so resolution
/// is poisoned with kEffUnknown instead of guessing a union.
bool conflicting(const std::vector<FuncDef*>& defs, bool exact) {
  if (!exact) return false;
  for (const FuncDef* d : defs) {
    if (d->direct != defs.front()->direct) return true;
  }
  return false;
}

unsigned union_effects(const std::vector<FuncDef*>& defs) {
  unsigned merged = 0;
  for (const FuncDef* d : defs) merged |= d->effects;
  return merged;
}

std::set<int> rng_positions(const std::vector<FuncDef*>& defs) {
  std::set<int> out;
  for (const FuncDef* d : defs) {
    out.insert(d->rng_params.begin(), d->rng_params.end());
  }
  return out;
}

std::set<int> mutated_positions(const std::vector<FuncDef*>& defs) {
  std::set<int> out;
  for (const FuncDef* d : defs) {
    out.insert(d->mutated_params.begin(), d->mutated_params.end());
  }
  return out;
}

const FuncDef* witness_for(const std::vector<FuncDef*>& defs, unsigned bit) {
  for (const FuncDef* d : defs) {
    if ((d->effects & bit) != 0) return d;
  }
  return defs.front();
}

/// Bottom-up propagation to a fixpoint. Effect bits and the positional
/// mutated/rng sets only ever grow over finite domains, so the loop
/// terminates — mutual recursion simply iterates until the cycle stabilizes.
/// Inheritance through a site is receiver- and position-conditioned (the
/// sanctioned idiom inherits nothing):
///   writes_global / allocates / schedules / unknown  pass through verbatim
///   draws_rng (state)   recv local -> dropped; recv param -> caller's
///                       receiver slot becomes an rng param; else kept
///   draws_rng_param[j]  arg j local/complex -> dropped; arg j param p ->
///                       caller slot p becomes an rng param; arg j outer or
///                       global -> a shared stream feeds the draw: state
///   mutates_param[j]    arg j global -> writes_global; arg j param p ->
///                       caller slot p becomes mutated; else dropped (the
///                       task-site alias rule handles captured objects)
void propagate_effects(std::vector<FuncDef*>& funcs, const FuncIndex& index) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (FuncDef* f : funcs) {
      for (const EffCallSite& site : f->calls) {
        const auto slot = index.find(site.callee);
        if (slot == index.end()) continue;
        const bool exact = slot->second.count(site.argc) != 0;
        const std::vector<FuncDef*> defs =
            resolve_callee(index, site.callee, site.argc);
        if (defs.empty()) continue;

        const auto note = [&](unsigned bit, const FuncDef* via,
                              unsigned via_bit) {
          if ((f->effects & bit) == 0) {
            f->effects |= bit;
            changed = true;
          }
          if (f->witness.count(bit) == 0) {
            f->witness[bit] = {via, via_bit, ""};
          }
        };

        if (conflicting(defs, exact)) {
          if ((f->effects & kEffUnknown) == 0) {
            f->effects |= kEffUnknown;
            changed = true;
            f->witness[kEffUnknown] = {
                nullptr, 0,
                "calls '" + site.callee + "', which has " +
                    std::to_string(defs.size()) +
                    " same-arity definitions with conflicting effects "
                    "(first at " + defs.front()->file + ":" +
                    std::to_string(defs.front()->line) + ")"};
          }
          continue;
        }
        const unsigned callee = union_effects(defs);

        for (const unsigned bit : {kEffWritesGlobal, kEffAllocates,
                                   kEffSchedules, kEffUnknown}) {
          if ((callee & bit) != 0 && (f->effects & bit) == 0) {
            note(bit, witness_for(defs, bit), bit);
          }
        }
        if ((callee & kEffDrawsRngState) != 0) {
          if (site.recv == kRecvParam) {
            if (site.recv_param_pos >= 0 &&
                f->rng_params.insert(site.recv_param_pos).second) {
              changed = true;
            }
            note(kEffDrawsRngParam, witness_for(defs, kEffDrawsRngState),
                 kEffDrawsRngState);
          } else if (site.recv != kRecvLocal) {
            note(kEffDrawsRngState, witness_for(defs, kEffDrawsRngState),
                 kEffDrawsRngState);
          }
        }
        for (const int j : rng_positions(defs)) {
          if (j < 0 || static_cast<std::size_t>(j) >= site.args.size()) {
            continue;
          }
          const EffCallArg& arg = site.args[static_cast<std::size_t>(j)];
          if (arg.cls == kArgOuter || arg.cls == kArgGlobal) {
            note(kEffDrawsRngState, witness_for(defs, kEffDrawsRngParam),
                 kEffDrawsRngParam);
          } else if (arg.cls == kArgParam && arg.param_pos >= 0) {
            if (f->rng_params.insert(arg.param_pos).second) changed = true;
            note(kEffDrawsRngParam, witness_for(defs, kEffDrawsRngParam),
                 kEffDrawsRngParam);
          }
        }
        for (const int j : mutated_positions(defs)) {
          if (j < 0 || static_cast<std::size_t>(j) >= site.args.size()) {
            continue;
          }
          const EffCallArg& arg = site.args[static_cast<std::size_t>(j)];
          if (arg.cls == kArgGlobal) {
            note(kEffWritesGlobal, witness_for(defs, kEffMutatesParam),
                 kEffMutatesParam);
          } else if (arg.cls == kArgParam && arg.param_pos >= 0) {
            if (f->mutated_params.insert(arg.param_pos).second) {
              changed = true;
            }
            note(kEffMutatesParam, witness_for(defs, kEffMutatesParam),
                 kEffMutatesParam);
          }
        }
      }
    }
  }
}

/// Renders the offending call chain for an effect bit:
/// `helper (file:12) -> bump (file:6) -> writes 'g_total' at file:3`.
std::string effect_chain(const FuncDef* def, unsigned bit) {
  std::string chain =
      def->name + " (" + def->file + ":" + std::to_string(def->line) + ")";
  std::set<const FuncDef*> seen;
  const FuncDef* cur = def;
  while (cur != nullptr && seen.insert(cur).second) {
    const auto it = cur->witness.find(bit);
    if (it == cur->witness.end()) break;
    if (!it->second.direct_text.empty()) {
      chain += " -> " + it->second.direct_text;
      break;
    }
    const FuncDef* via = it->second.via;
    if (via == nullptr) break;
    chain += " -> " + via->name + " (" + via->file + ":" +
             std::to_string(via->line) + ")";
    bit = it->second.via_bit;
    cur = via;
  }
  return chain;
}

// ---------------------------------------------------------------------------
// Checks consuming the effect database.

/// global-mutable-state: the inventory findings. Scoped to src/ virtual
/// paths — bench/tools mains are single-threaded drivers whose file-level
/// state cannot be reached from a task without tripping the parallel rules.
void check_global_state(const FileContext& ctx, const std::string& vpath,
                        const std::vector<GlobalDecl>& globals,
                        std::vector<Finding>& out) {
  if (vpath.rfind("src/", 0) != 0) return;
  for (const auto& g : globals) {
    // Guard inference proved every access holds one mutex: confinement is
    // machine-verified, no inventory entry (and no allow()) needed.
    if (g.confined) continue;
    const std::string kind =
        g.static_local ? "function-local static" : "namespace-scope";
    out.push_back(
        {ctx.display_path, g.line, "global-mutable-state",
         kind + " mutable variable '" + g.name + "' is shared state the "
         "multi-UE scheduler refactor cannot reason about; any parallel task "
         "reaching it through a call chain races",
         "const-qualify it, confine it with thread_local, or justify with "
         "// wild5g-lint: allow(global-mutable-state) <why>"});
  }
}

/// A located parallel_map/parallel_for task lambda: the body token range
/// plus every name that is task-local (lambda parameters and body
/// declarations), mirroring check_parallel_rng's location logic.
struct ParallelTask {
  std::string_view entry;  // "parallel_map" or "parallel_for"
  std::size_t body_open = 0;
  std::size_t body_close = 0;
  std::set<std::string> locals;
};

std::vector<ParallelTask> collect_parallel_tasks(
    const std::vector<Token>& toks) {
  std::vector<ParallelTask> tasks;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent ||
        (toks[i].text != "parallel_map" && toks[i].text != "parallel_for") ||
        toks[i + 1].text != "(") {
      continue;
    }
    const std::size_t call_close =
        find_match(toks, i + 1, "(", ")", toks.size());
    if (call_close == kNpos) continue;
    std::size_t cap_open = kNpos;
    for (std::size_t j = i + 2; j < call_close; ++j) {
      if (toks[j].kind == Token::Kind::kPunct && toks[j].text == "[") {
        cap_open = j;
        break;
      }
    }
    if (cap_open == kNpos) continue;
    const std::size_t cap_close =
        find_match(toks, cap_open, "[", "]", call_close);
    if (cap_close == kNpos) continue;
    ParallelTask task;
    task.entry = toks[i].text == "parallel_map" ? "parallel_map"
                                                : "parallel_for";
    std::size_t j = cap_close + 1;
    if (j < call_close && toks[j].text == "(") {
      const std::size_t params_close =
          find_match(toks, j, "(", ")", call_close);
      if (params_close == kNpos) continue;
      for (std::size_t k = j + 1; k < params_close; ++k) {
        if (toks[k].kind == Token::Kind::kIdent) {
          task.locals.insert(toks[k].text);
        }
      }
      j = params_close + 1;
    }
    while (j < call_close && toks[j].kind == Token::Kind::kIdent) {
      ++j;  // mutable, noexcept
    }
    if (j >= call_close || toks[j].text != "{") continue;
    task.body_open = j;
    task.body_close = find_match(toks, j, "{", "}", call_close + 1);
    if (task.body_close == kNpos) continue;
    const std::set<std::string> body_locals =
        collect_block_locals(toks, task.body_open, task.body_close);
    task.locals.insert(body_locals.begin(), body_locals.end());
    tasks.push_back(std::move(task));
  }
  return tasks;
}

/// parallel-effect-{write,rng,alias,unknown}: every indexed call inside a
/// task body is checked against the callee's propagated effects, mapped
/// through the call site exactly like function-to-function inheritance.
void check_parallel_effects(const std::vector<Token>& toks,
                            const FileContext& ctx, const FuncIndex& index,
                            const std::set<std::string>& mutable_globals,
                            std::vector<Finding>& out) {
  for (const ParallelTask& task : collect_parallel_tasks(toks)) {
    for (std::size_t k = task.body_open + 1; k < task.body_close; ++k) {
      if (toks[k].kind != Token::Kind::kIdent || !next_is(toks, k, "(")) {
        continue;
      }
      const std::string& name = toks[k].text;
      if (non_type_keywords().count(name) != 0) continue;
      const bool member_ctx =
          toks[k - 1].text == "." || toks[k - 1].text == "->";
      if (member_ctx && rng_draw_methods().count(name) != 0) {
        continue;  // parallel-rng-stream's domain
      }
      if (k >= 2 && toks[k - 1].text == "::" && toks[k - 2].text == "std") {
        continue;
      }
      const auto slot = index.find(name);
      if (slot == index.end()) continue;

      EffCallSite site;
      site.callee = name;
      site.line = toks[k].line;
      if (member_ctx) {
        site.recv = kRecvOuter;
        if (k >= 2 && toks[k - 2].kind == Token::Kind::kIdent &&
            task.locals.count(toks[k - 2].text) != 0) {
          site.recv = kRecvLocal;
        }
      }
      const std::size_t close =
          find_match(toks, k + 1, "(", ")", task.body_close + 1);
      if (close == kNpos) continue;
      if (close > k + 2) {
        for (const auto& [ab, ae] : split_args(toks, k + 2, close)) {
          std::size_t b = ab;
          if (b < ae && toks[b].kind == Token::Kind::kPunct &&
              toks[b].text == "&") {
            ++b;
          }
          EffCallArg arg;
          if (ae == b + 1 && toks[b].kind == Token::Kind::kIdent) {
            const std::string& id = toks[b].text;
            if (task.locals.count(id) != 0) {
              arg.cls = kArgLocal;
            } else if (mutable_globals.count(id) != 0) {
              arg.cls = kArgGlobal;
            } else {
              arg.cls = kArgOuter;
              arg.name = id;
            }
          }
          site.args.push_back(std::move(arg));
        }
        site.argc = static_cast<int>(site.args.size());
      }
      const bool exact = slot->second.count(site.argc) != 0;
      const std::vector<FuncDef*> defs =
          resolve_callee(index, name, site.argc);
      if (defs.empty()) continue;
      const std::string entry(task.entry);
      if (conflicting(defs, exact)) {
        out.push_back(
            {ctx.display_path, site.line, "parallel-effect-unknown",
             entry + " task body calls '" + name + "', whose effects cannot "
             "be resolved (" + std::to_string(defs.size()) + " same-arity "
             "definitions with conflicting effect signatures); the engine "
             "assumes the worst",
             "rename the conflicting overloads apart, or justify with "
             "// wild5g-lint: allow(parallel-effect-unknown) <why>"});
        continue;
      }
      const unsigned callee = union_effects(defs);
      const std::set<int> rng_pos = rng_positions(defs);
      const std::set<int> mut_pos = mutated_positions(defs);
      const auto arg_at = [&](int j) -> const EffCallArg* {
        if (j < 0 || static_cast<std::size_t>(j) >= site.args.size()) {
          return nullptr;
        }
        return &site.args[static_cast<std::size_t>(j)];
      };

      bool write_bad = (callee & kEffWritesGlobal) != 0;
      unsigned write_sb = kEffWritesGlobal;
      bool rng_bad =
          (callee & kEffDrawsRngState) != 0 && site.recv != kRecvLocal;
      unsigned rng_sb = kEffDrawsRngState;
      std::string alias_arg;
      for (const int j : mut_pos) {
        const EffCallArg* arg = arg_at(j);
        if (arg == nullptr) continue;
        if (arg->cls == kArgGlobal && !write_bad) {
          write_bad = true;
          write_sb = kEffMutatesParam;
        } else if (arg->cls == kArgOuter && alias_arg.empty()) {
          alias_arg = arg->name;
        }
      }
      for (const int j : rng_pos) {
        const EffCallArg* arg = arg_at(j);
        if (arg == nullptr) continue;
        if ((arg->cls == kArgOuter || arg->cls == kArgGlobal) && !rng_bad) {
          rng_bad = true;
          rng_sb = kEffDrawsRngParam;
        }
      }

      if (write_bad) {
        out.push_back(
            {ctx.display_path, site.line, "parallel-effect-write",
             entry + " task body calls '" + name + "', which transitively "
             "writes shared mutable state; concurrent tasks race and break "
             "byte-identical goldens: " +
                 effect_chain(witness_for(defs, write_sb), write_sb),
             "return a per-task value and reduce on the caller's thread, or "
             "const-qualify the state"});
      }
      if (rng_bad) {
        out.push_back(
            {ctx.display_path, site.line, "parallel-effect-rng",
             entry + " task body calls '" + name + "', which transitively "
             "draws from an Rng stream that is not derived per task; draw "
             "order depends on scheduling: " +
                 effect_chain(witness_for(defs, rng_sb), rng_sb),
             "pass the helper a task-local child stream (auto child = "
             "base.fork(i);) instead of shared state"});
      }
      if (!alias_arg.empty()) {
        out.push_back(
            {ctx.display_path, site.line, "parallel-effect-alias",
             entry + " task body passes captured '" + alias_arg + "' to '" +
                 name + "', which mutates a reference parameter; every task "
                 "aliases the same object: " +
                 effect_chain(witness_for(defs, kEffMutatesParam),
                              kEffMutatesParam),
             "accumulate into a task-local value and merge after the "
             "parallel region"});
      }
      if ((callee & kEffUnknown) != 0) {
        out.push_back(
            {ctx.display_path, site.line, "parallel-effect-unknown",
             entry + " task body calls '" + name + "', whose transitive "
             "effects cannot be resolved; the engine assumes the worst: " +
                 effect_chain(witness_for(defs, kEffUnknown), kEffUnknown),
             "rename the conflicting overloads apart, or justify with "
             "// wild5g-lint: allow(parallel-effect-unknown) <why>"});
      }
    }
  }
}

/// arena-escape: a pointer produced by `<arena>.allocate(...)` stored into
/// anything that outlives the enclosing function scope — member, global, or
/// non-local container — or returned. Arena recycling makes every such
/// store a latent use-after-free that ASan only catches when a test happens
/// to land on the recycled slot.
void check_arena_escape(const std::vector<Token>& toks,
                        const FileContext& ctx, const std::string& vpath,
                        const std::vector<FuncDef>& funcs,
                        const std::set<std::string>& mutable_globals,
                        std::vector<Finding>& out) {
  // Sanctioned owners: the arena itself and the simulator event loop, which
  // recycles nodes in lockstep with dispatch and is audited by test_sim's
  // lifetime tests.
  static constexpr std::array<std::string_view, 3> kArenaOwners = {
      "src/core/arena.h", "src/sim/simulator.h", "src/sim/simulator.cpp"};
  for (const auto owner : kArenaOwners) {
    if (vpath == owner) return;
  }
  // Receivers that look like arenas: declared `Arena x` / `core::Arena x`
  // in this file, or any identifier mentioning "arena".
  std::set<std::string> arena_objs;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind == Token::Kind::kIdent && toks[i].text == "Arena" &&
        toks[i + 1].kind == Token::Kind::kIdent) {
      arena_objs.insert(toks[i + 1].text);
    }
  }
  const auto is_arena = [&](const std::string& id) {
    return arena_objs.count(id) != 0 ||
           id.find("arena") != std::string::npos ||
           id.find("Arena") != std::string::npos;
  };
  const std::string_view fixit =
      "keep arena-backed pointers handler-scoped; copy the payload out or "
      "use an owned allocation for anything that outlives dispatch";
  for (const FuncDef& def : funcs) {
    // Pointers bound to an allocate() result in this body: walk back from
    // the receiver, past casts, to the '=' and the name left of it.
    std::set<std::string> tracked;
    for (std::size_t k = def.body_open + 1; k + 1 < def.body_close; ++k) {
      if (toks[k].kind != Token::Kind::kIdent ||
          toks[k].text != "allocate" || !next_is(toks, k, "(") || k < 2 ||
          (toks[k - 1].text != "." && toks[k - 1].text != "->") ||
          toks[k - 2].kind != Token::Kind::kIdent ||
          !is_arena(toks[k - 2].text)) {
        continue;
      }
      const std::size_t floor =
          k - 2 > def.body_open + 26 ? k - 2 - 26 : def.body_open;
      for (std::size_t j = k - 2; j > floor;) {
        --j;
        if (toks[j].kind != Token::Kind::kPunct) continue;
        if (toks[j].text == ";") break;
        if (toks[j].text == "=") {
          if (j > 0 && toks[j - 1].kind == Token::Kind::kIdent) {
            tracked.insert(toks[j - 1].text);
          }
          break;
        }
      }
    }
    if (tracked.empty()) continue;
    for (std::size_t k = def.body_open + 1; k + 1 < def.body_close; ++k) {
      const Token& t = toks[k];
      // return p;
      if (t.kind == Token::Kind::kIdent && t.text == "return" &&
          toks[k + 1].kind == Token::Kind::kIdent &&
          tracked.count(toks[k + 1].text) != 0 && k + 2 < def.body_close &&
          toks[k + 2].text == ";") {
        out.push_back(
            {ctx.display_path, t.line, "arena-escape",
             "'" + toks[k + 1].text + "' points into arena storage and is "
             "returned from '" + def.name + "'; the arena recycles the slot "
             "and the pointer dangles",
             std::string(fixit)});
        continue;
      }
      // <lvalue> = p ;  where the lvalue's base name is not function-local.
      if (t.kind == Token::Kind::kPunct && t.text == "=" && k >= 1 &&
          toks[k + 1].kind == Token::Kind::kIdent &&
          tracked.count(toks[k + 1].text) != 0 &&
          (k + 2 >= def.body_close || toks[k + 2].text == ";") &&
          toks[k - 1].kind == Token::Kind::kIdent) {
        std::size_t root = k - 1;
        while (root >= def.body_open + 3 &&
               (toks[root - 1].text == "." || toks[root - 1].text == "->") &&
               toks[root - 2].kind == Token::Kind::kIdent) {
          root -= 2;
        }
        const std::string& base = toks[root].text;
        if (def.locals.count(base) != 0 && base != "this") continue;
        const bool global = mutable_globals.count(base) != 0;
        out.push_back(
            {ctx.display_path, t.line, "arena-escape",
             "'" + toks[k + 1].text + "' points into arena storage and is "
             "stored into " +
                 (global ? "global '" + base + "'"
                         : "'" + toks[k - 1].text +
                               "', which outlives this handler scope") +
                 "; the arena recycles the slot and the pointer dangles",
             std::string(fixit)});
        continue;
      }
      // container.push_back(p) etc. on a non-local receiver.
      if (t.kind == Token::Kind::kIdent &&
          mutating_methods().count(t.text) != 0 && next_is(toks, k, "(") &&
          k >= 2 && (toks[k - 1].text == "." || toks[k - 1].text == "->") &&
          toks[k - 2].kind == Token::Kind::kIdent &&
          def.locals.count(toks[k - 2].text) == 0) {
        const std::size_t close =
            find_match(toks, k + 1, "(", ")", def.body_close + 1);
        if (close == kNpos || close <= k + 2) continue;
        for (const auto& [ab, ae] : split_args(toks, k + 2, close)) {
          std::size_t b = ab;
          if (b < ae && toks[b].text == "&") ++b;
          if (ae != b + 1 || toks[b].kind != Token::Kind::kIdent ||
              tracked.count(toks[b].text) == 0) {
            continue;
          }
          out.push_back(
              {ctx.display_path, t.line, "arena-escape",
               "'" + toks[b].text + "' points into arena storage and is "
               "inserted into '" + toks[k - 2].text + "', which outlives "
               "this handler scope; the arena recycles the slot and the "
               "pointer dangles",
               std::string(fixit)});
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Layering. The include DAG over src/ modules must flow strictly downward:
// a module may include core, itself, and any module of strictly lower rank.
// The ranks encode the ISSUE constraints (core at the bottom, sim below
// radio/net/abr/web, bench/ never included from src/) and the current
// dependency structure of the tree; adding an edge that violates them is a
// design decision that belongs in DESIGN.md, not an accident.

const std::map<std::string, int>& layer_ranks() {
  static const std::map<std::string, int> kRanks = {
      {"core", 0},     {"geo", 1},       {"sim", 1},
      {"radio", 2},    {"ml", 2},        {"mobility", 2},
      {"transport", 2}, {"rrc", 3},      {"faults", 3},
      {"net", 4},      {"power", 4},     {"metro", 4},
      {"traces", 5},   {"engine", 5},    {"abr", 6},
      {"web", 6}};
  return kRanks;
}

struct IncludeRef {
  std::string target;  // the quoted include text, verbatim
  int line;
};

std::vector<IncludeRef> collect_includes(const std::vector<Token>& toks) {
  std::vector<IncludeRef> out;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind == Token::Kind::kPunct && toks[i].text == "#" &&
        toks[i + 1].kind == Token::Kind::kIdent &&
        toks[i + 1].text == "include" &&
        toks[i + 2].kind == Token::Kind::kString &&
        toks[i + 2].line == toks[i].line) {
      out.push_back({toks[i + 2].text, toks[i].line});
    }
  }
  return out;
}

/// Repo-relative "virtual path" starting at the last src/bench/tools/
/// examples path component, so fixtures under tests/lint_fixtures/src/...
/// are laid out exactly like tree files. Empty when the file lives under
/// none of the lintable roots (layering does not apply there).
std::string virtual_path(const fs::path& path) {
  std::vector<std::string> parts;
  for (const auto& comp : path) parts.push_back(comp.generic_string());
  std::size_t start = parts.size();
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i] == "src" || parts[i] == "bench" || parts[i] == "tools" ||
        parts[i] == "examples") {
      start = i;
    }
  }
  if (start == parts.size()) return {};
  std::string out;
  for (std::size_t i = start; i < parts.size(); ++i) {
    if (!out.empty()) out += '/';
    out += parts[i];
  }
  return out;
}

/// The src/ module of a virtual path ("core", "radio", ...) or "" for
/// bench/tools/examples files and unknown layouts.
std::string src_module_of(const std::string& vpath) {
  if (vpath.rfind("src/", 0) != 0) return {};
  const std::size_t slash = vpath.find('/', 4);
  if (slash == std::string::npos) return {};
  return vpath.substr(4, slash - 4);
}

// ---------------------------------------------------------------------------
// Driver: two passes over the tree. Pass 1 loads and lexes every file and
// gathers per-file facts (includes, Rng names, signatures). Pass 2 runs the
// per-file checks against the global signature index, then the include graph
// is checked for layering violations and cycles, and finally suppression
// directives are applied per file.

struct FileUnit {
  fs::path path;
  FileContext ctx;
  LexedFile lexed;
  std::set<int> token_lines;
  std::vector<Allow> allows;
  std::vector<Finding> meta;  // directive problems; never suppressible
  std::vector<Finding> raw;   // rule findings, pre-suppression
  std::string vpath;          // repo-relative layout ("" when unknown)
  std::string src_module;     // "core", "radio", ... ("" outside src/)
  std::vector<IncludeRef> includes;
  std::set<std::string> rng_vars;
  std::set<std::size_t> decl_sites;
  std::vector<std::string> lines;    // raw physical lines, for fingerprints
  std::vector<GlobalDecl> globals;   // mutable global/static inventory
  std::vector<FuncDef> funcs;        // effect-inference database
  bool io_error = false;
};

bool path_ends_with(const fs::path& path, std::string_view suffix) {
  const std::string generic = path.generic_string();
  return generic.size() >= suffix.size() &&
         generic.compare(generic.size() - suffix.size(), suffix.size(),
                         suffix) == 0;
}

// Lex-cache telemetry, surfaced in --json so the analyzer-scale test can
// assert shared files are lexed once per path even when scan roots overlap.
int g_files_lexed = 0;
int g_lex_cache_hits = 0;

FileUnit load_file(const fs::path& path) {
  // Everything in a FileUnit at load time is a pure function of the file
  // path and contents (funcs/raw/meta are filled later, per run), so a
  // display-path-keyed copy cache is exact. Overlapping scan roots hit it;
  // the counters feed --json.
  static std::map<std::string, FileUnit> cache;
  const std::string cache_key = path.lexically_normal().generic_string();
  const auto hit = cache.find(cache_key);
  if (hit != cache.end()) {
    ++g_lex_cache_hits;
    return hit->second;
  }
  ++g_files_lexed;
  FileUnit unit;
  unit.path = path;
  unit.ctx.display_path = path.lexically_normal().generic_string();
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    unit.io_error = true;
    unit.meta.push_back(
        {unit.ctx.display_path, 0, "io-error", "cannot open file", {}});
    return unit;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string raw_text = buffer.str();

  unit.ctx.is_rng_header = path_ends_with(path, "src/core/rng.h");
  unit.ctx.feeds_metrics =
      raw_text.find("#include \"core/json.h\"") != std::string::npos ||
      raw_text.find("#include \"bench_common.h\"") != std::string::npos ||
      path_ends_with(path, "bench/bench_common.h") ||
      path_ends_with(path, "src/core/json.h");
  // Path suffixes where a silent catch (...) is deliberate. Empty today —
  // every swallow in the tree must rethrow, store, or report; add a suffix
  // here (with a comment saying why) before exempting a whole file.
  static constexpr std::array<std::string_view, 0> kSwallowAllowed = {};
  unit.ctx.swallow_allowed = std::any_of(
      kSwallowAllowed.begin(), kSwallowAllowed.end(),
      [&](std::string_view suffix) { return path_ends_with(path, suffix); });

  const Source spliced = splice(raw_text);
  unit.lexed = lex(spliced);
  for (const auto& tok : unit.lexed.tokens) unit.token_lines.insert(tok.line);
  collect_allows(unit.lexed, unit.ctx.display_path, unit.allows, unit.meta);
  unit.vpath = virtual_path(path);
  unit.src_module = src_module_of(unit.vpath);
  unit.ctx.in_bench = unit.vpath.rfind("bench/", 0) == 0;
  unit.includes = collect_includes(unit.lexed.tokens);
  unit.rng_vars = collect_rng_vars(unit.lexed.tokens);
  collect_globals(unit.lexed.tokens, unit.globals);
  // Raw physical lines back the --baseline fingerprints: a finding keeps its
  // identity across pure line-number drift (code added above it) but not
  // across edits to the flagged line itself.
  std::string line;
  std::istringstream line_in(raw_text);
  while (std::getline(line_in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    unit.lines.push_back(line);
  }
  cache.emplace(cache_key, unit);
  return unit;
}

/// Stable finding identity for --baseline: rule | virtual path (falling back
/// to the bare filename outside the lintable roots) | the flagged source
/// line with every whitespace byte removed.
std::string fingerprint_of(const FileUnit& unit, const Finding& f) {
  const std::string vkey =
      unit.vpath.empty() ? unit.path.filename().generic_string() : unit.vpath;
  std::string norm;
  if (f.line >= 1 && static_cast<std::size_t>(f.line) <= unit.lines.size()) {
    for (const char c : unit.lines[static_cast<std::size_t>(f.line) - 1]) {
      if (c != ' ' && c != '\t' && c != '\r' && c != '\f' && c != '\v') {
        norm += c;
      }
    }
  }
  return f.rule + "|" + vkey + "|" + norm;
}

// ---------------------------------------------------------------------------
// Concurrency analysis: guarded-by inference, lock-order cycles, cv-wait
// hygiene, lock-held blocking calls, async-signal-safety, and the
// checkpoint/restore symmetry micro-rule. The analysis reuses the effect
// engine's function database (FuncDef bodies + the FuncIndex call resolver)
// but walks bodies itself, because it needs what the effect engine discards:
// token positions, so every call and access can be placed inside or outside
// a lexical lock segment. DESIGN.md section 8 documents the lattice and the
// known over-approximations.

/// Guard RAII wrapper type names; a declaration of one of these opens a lock
/// segment that runs to the end of the enclosing block (or to a same-depth
/// .unlock() toggle).
const std::set<std::string>& guard_type_names() {
  static const std::set<std::string> kGuards = {
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock"};
  return kGuards;
}

const std::set<std::string>& mutex_type_names() {
  static const std::set<std::string> kMutex = {
      "mutex", "recursive_mutex", "shared_mutex", "timed_mutex",
      "recursive_timed_mutex"};
  return kMutex;
}

const std::set<std::string>& atomic_type_names() {
  static const std::set<std::string> kAtomic = {
      "atomic",      "atomic_flag", "atomic_bool",  "atomic_int",
      "atomic_uint", "atomic_long", "atomic_llong", "atomic_size_t",
      "sig_atomic_t"};
  return kAtomic;
}

/// POSIX.1-2017 async-signal-safe functions the tree plausibly calls, plus
/// the handful of signal-management calls that are themselves safe. Lock-free
/// atomic member calls are allow-listed separately by method name.
const std::set<std::string>& signal_safe_calls() {
  static const std::set<std::string> kSafe = {
      "write",       "_exit",       "_Exit",    "abort",      "raise",
      "kill",        "sigaction",   "signal",   "sigemptyset", "sigaddset",
      "sigfillset",  "sigdelset",   "sigprocmask", "pthread_sigmask",
      "alarm",       "getpid",      "close",    "read",       "open",
      "dup",         "dup2",        "fsync"};
  return kSafe;
}

const std::set<std::string>& atomic_safe_methods() {
  static const std::set<std::string> kSafe = {
      "store",        "load",          "exchange",
      "fetch_add",    "fetch_sub",     "fetch_or",
      "fetch_and",    "test_and_set",  "clear",
      "compare_exchange_weak",         "compare_exchange_strong"};
  return kSafe;
}

/// One class (or struct) definition with its sync-relevant members. Same-name
/// classes are merged across files so a header declaration and out-of-line
/// method definitions agree on the member sets — a deliberate
/// over-approximation for same-name classes in different namespaces.
struct ConcClass {
  std::string name;
  std::size_t open = 0;   // body '{' token index
  std::size_t close = 0;  // matching '}'
  std::set<std::string> mutexes;  // members with a mutex-family type
  std::set<std::string> cvs;      // condition_variable members
  std::set<std::string> atomics;  // atomic members: exempt from inference
  std::set<std::string> members;  // plain data members: inference candidates
};

struct ConcFileFacts {
  std::vector<ConcClass> classes;        // in token order, nested included
  std::set<std::string> global_mutexes;  // namespace-scope mutex names
  std::set<std::string> global_cvs;      // namespace-scope cv names
  std::set<std::string> atomic_names;    // any-scope atomic variable names
};

/// Classifies one class-scope declaration chunk [b, e) and files the member
/// into the right ConcClass bucket. Function declarations, constants, and
/// nested type definitions resolve to silence.
void classify_member_chunk(const std::vector<Token>& toks, std::size_t b,
                           std::size_t e, ConcClass& cls) {
  if (b >= e) return;
  // Cut the initializer: declaration part ends at the first top-level '='
  // or '{' (paren/bracket nesting skipped; '<' untracked, as elsewhere).
  int depth = 0;
  std::size_t cut = e;
  for (std::size_t j = b; j < e; ++j) {
    if (toks[j].kind != Token::Kind::kPunct) continue;
    const std::string& t = toks[j].text;
    if (t == "(" || t == "[") ++depth;
    if (t == ")" || t == "]") --depth;
    if ((t == "=" || t == "{") && depth == 0) {
      cut = j;
      break;
    }
  }
  if (cut < b + 2) return;  // need at least `Type name`
  bool is_mutex = false;
  bool is_cv = false;
  bool is_atomic = false;
  bool saw_const = false;
  bool has_star = false;
  for (std::size_t j = b; j < cut; ++j) {
    if (toks[j].kind == Token::Kind::kPunct && toks[j].text == "*") {
      has_star = true;
    }
    if (toks[j].kind != Token::Kind::kIdent) continue;
    const std::string& t = toks[j].text;
    if (t == "constexpr" || t == "static" || t == "using" ||
        t == "typedef" || t == "friend" || t == "template" ||
        t == "operator" || t == "enum" || t == "class" || t == "struct" ||
        t == "union" || t == "once_flag") {
      return;
    }
    if (t == "const") saw_const = true;
    if (mutex_type_names().count(t) != 0) is_mutex = true;
    if (t == "condition_variable" || t == "condition_variable_any") {
      is_cv = true;
    }
    if (atomic_type_names().count(t) != 0) is_atomic = true;
  }
  // `const T x` is immutable — not shared-state. `const T* p` is a mutable
  // pointer to const payload: the pointer itself is an inference candidate.
  if (saw_const && !has_star) return;
  const Token& name = toks[cut - 1];
  // `)` before the terminator means a member function declaration; `]`
  // means an array member — both stay out of the inference domain.
  if (name.kind != Token::Kind::kIdent ||
      non_type_keywords().count(name.text) != 0) {
    return;
  }
  if (is_mutex) {
    cls.mutexes.insert(name.text);
  } else if (is_cv) {
    cls.cvs.insert(name.text);
  } else if (is_atomic) {
    cls.atomics.insert(name.text);
  } else {
    cls.members.insert(name.text);
  }
}

/// Collects the member buckets of one class body [open, close] at its
/// immediate depth; nested braces (member function bodies, nested types,
/// default member initializers) are skipped wholesale.
void collect_class_members(const std::vector<Token>& toks, ConcClass& cls) {
  std::size_t j = cls.open + 1;
  std::size_t start = j;
  while (j < cls.close && j < toks.size()) {
    const Token& t = toks[j];
    if (t.kind == Token::Kind::kIdent &&
        (t.text == "public" || t.text == "private" ||
         t.text == "protected") &&
        next_is(toks, j, ":")) {
      j += 2;
      start = j;
      continue;
    }
    if (t.kind == Token::Kind::kPunct &&
        (t.text == "(" || t.text == "{" || t.text == "[")) {
      const std::string close_tok =
          t.text == "(" ? ")" : (t.text == "{" ? "}" : "]");
      const std::size_t m = find_match(toks, j, t.text, close_tok, cls.close);
      if (m == kNpos) return;
      // A '{' at member scope is a function body or nested type; the chunk
      // it terminates is never a data member, so drop it.
      if (t.text == "{") {
        j = m + 1;
        start = j;
        continue;
      }
      // Keep parens *inside* the chunk (classify_member_chunk rejects
      // `...)`-terminated declarations itself, and `std::function<void(int)>`
      // members survive the cut).
      j = m + 1;
      continue;
    }
    if (t.kind == Token::Kind::kPunct && t.text == ";") {
      classify_member_chunk(toks, start, j, cls);
      ++j;
      start = j;
      continue;
    }
    ++j;
  }
}

/// One pass over a file: class ranges (with member buckets), namespace-scope
/// mutex/cv names, and atomic variable names at any scope. The brace
/// classifier mirrors collect_globals so the two scans agree on what is
/// namespace scope.
void scan_concurrency_decls(const std::vector<Token>& toks,
                            ConcFileFacts& facts) {
  enum class Scope { kNamespace, kClass, kEnum, kBlock };
  std::vector<Scope> stack;
  const auto at_namespace = [&] {
    return stack.empty() || stack.back() == Scope::kNamespace;
  };

  // Atomic names, linear pass: `atomic[<...>] [&*]* name` at any scope. The
  // set only ever exempts variables from inference, so over-collection is
  // harmless.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent ||
        atomic_type_names().count(toks[i].text) == 0) {
      continue;
    }
    std::size_t k = i + 1;
    if (k < toks.size() && toks[k].text == "<") {
      const std::size_t m = find_match(toks, k, "<", ">", k + 24);
      if (m == kNpos) continue;
      k = m + 1;
    }
    while (k < toks.size() && (toks[k].text == "&" || toks[k].text == "*")) {
      ++k;
    }
    if (k + 1 < toks.size() && toks[k].kind == Token::Kind::kIdent &&
        (toks[k + 1].text == ";" || toks[k + 1].text == "{" ||
         toks[k + 1].text == "=" || toks[k + 1].text == "(" ||
         toks[k + 1].text == ",")) {
      facts.atomic_names.insert(toks[k].text);
    }
  }

  std::size_t stmt = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == Token::Kind::kPunct && t.text == "#") {
      const int line = t.line;
      while (i + 1 < toks.size() && toks[i + 1].line == line) ++i;
      stmt = i + 1;
      continue;
    }
    if (t.kind != Token::Kind::kPunct) continue;
    if (t.text == "{") {
      bool is_init = false;
      int depth = 0;
      for (std::size_t j = stmt; j < i; ++j) {
        if (toks[j].kind != Token::Kind::kPunct) continue;
        const std::string& p = toks[j].text;
        if (p == "(" || p == "[") ++depth;
        if (p == ")" || p == "]") --depth;
        if (p == "=" && depth == 0) is_init = true;
      }
      if (is_init) {
        const std::size_t close = find_match(toks, i, "{", "}", toks.size());
        if (close == kNpos) return;
        i = close;
        continue;
      }
      Scope kind = Scope::kBlock;
      bool has_paren = false;
      for (std::size_t j = stmt; j < i; ++j) {
        if (toks[j].kind == Token::Kind::kPunct && toks[j].text == "(") {
          has_paren = true;
        }
      }
      std::size_t kw = kNpos;
      for (std::size_t j = stmt; j < i && !has_paren; ++j) {
        if (toks[j].kind != Token::Kind::kIdent) continue;
        const std::string& w = toks[j].text;
        if (w == "namespace") {
          kind = Scope::kNamespace;
          break;
        }
        if (w == "class" || w == "struct" || w == "union") {
          kind = Scope::kClass;
          kw = j;
          break;
        }
        if (w == "enum") {
          kind = Scope::kEnum;
          break;
        }
      }
      if (kind == Scope::kClass && kw != kNpos) {
        std::size_t n = kw + 1;
        while (n < i && toks[n].kind != Token::Kind::kIdent) ++n;
        if (n < i) {
          ConcClass cls;
          cls.name = toks[n].text;
          cls.open = i;
          cls.close = find_match(toks, i, "{", "}", toks.size());
          if (cls.close != kNpos) {
            collect_class_members(toks, cls);
            facts.classes.push_back(std::move(cls));
          }
        }
      }
      stack.push_back(kind);
      stmt = i + 1;
      continue;
    }
    if (t.text == "}") {
      if (!stack.empty()) stack.pop_back();
      stmt = i + 1;
      continue;
    }
    if (t.text == ";") {
      if (at_namespace()) {
        ConcClass probe;  // reuse the member classifier's buckets
        classify_member_chunk(toks, stmt, i, probe);
        for (const auto& n : probe.mutexes) facts.global_mutexes.insert(n);
        for (const auto& n : probe.cvs) facts.global_cvs.insert(n);
      }
      stmt = i + 1;
    }
  }
}

// Mutex identity: "Cls#member" for class members (merged across files),
// "::name" for namespace-scope mutexes, "vpath:func#name" for locals and
// unresolved receivers (never shared across functions, so they cannot seed
// false cross-function facts).
std::string mutex_display(const std::string& key) {
  const std::size_t hash = key.find('#');
  if (key.rfind("::", 0) == 0) return key.substr(2);
  if (hash == std::string::npos) return key;
  const std::size_t colon = key.find(':');
  if (colon != std::string::npos && colon < hash) {
    return key.substr(hash + 1) + " (function-local)";
  }
  return key.substr(0, hash) + "::" + key.substr(hash + 1);
}

struct ConcAcq {
  std::string key;
  int line = 0;
  std::set<std::string> held_before;  // lexically held at the acquire point
};

struct ConcSite {
  std::string callee;
  int argc = 0;
  int line = 0;
  std::set<std::string> held;
};

struct ConcMemberCall {
  std::string recv;
  std::string method;
  int argc = 0;
  int line = 0;
  std::set<std::string> held;
};

struct ConcAccess {
  std::string name;
  int line = 0;
  std::set<std::string> held;
};

/// Per-function concurrency facts plus the interprocedural fixpoint state.
struct ConcFunc {
  FuncDef* def = nullptr;
  FileUnit* unit = nullptr;
  std::string cls;  // owning class name, "" for free functions
  std::vector<ConcAcq> acqs;
  std::vector<ConcSite> sites;
  std::vector<ConcMemberCall> member_calls;
  std::vector<ConcAccess> accesses;       // candidate-variable touches
  std::vector<ConcSite> blockers;         // blocking idents (callee = ident)
  std::set<std::string> local_cvs;
  // H(f): mutexes held at *every* call site (greatest fixpoint, intersection
  // over callers of lexical-held-at-site union the caller's own H). h_top
  // models the "no caller seen yet" top element.
  bool h_top = true;
  std::set<std::string> h;
  // Lock-order closure: every mutex this function may acquire, directly or
  // through calls, with a witness for chain rendering.
  std::set<std::string> acquired;
  struct AcqWit {
    int line = 0;
    const ConcFunc* via = nullptr;  // null = acquired directly at `line`
  };
  std::map<std::string, AcqWit> acq_wit;
  // Blocking closure: does this function (transitively) hit a blocking call?
  bool blocks = false;
  struct BlkWit {
    std::string direct;             // blocking ident, when direct
    int line = 0;
    const ConcFunc* via = nullptr;
  };
  BlkWit blk_wit;
};

const std::set<std::string>& conc_h(const ConcFunc& f) {
  static const std::set<std::string> kEmpty;
  return f.h_top ? kEmpty : f.h;
}

/// Walks one function body tracking lexical lock segments. A RAII guard
/// holds from its declaration to the end of the enclosing block; explicit
/// .unlock()/.lock() toggle it; toggles inside a *nested* block are undone
/// when that block closes (the early-return unlock idiom), while toggles at
/// the guard's own depth persist. Bare mutex .lock()/.unlock() calls create
/// a pseudo-guard with the same rules.
void walk_conc_body(const std::vector<Token>& toks, ConcFunc& cf,
                    const std::map<std::string, ConcClass>& merged,
                    const ConcFileFacts& facts,
                    const std::set<std::string>& global_candidates) {
  FuncDef& def = *cf.def;
  const ConcClass* cls = nullptr;
  const auto mc = merged.find(cf.cls);
  if (mc != merged.end()) cls = &mc->second;
  const std::string local_prefix = cf.unit->vpath.empty()
                                       ? cf.unit->ctx.display_path
                                       : cf.unit->vpath;

  // Resolves the mutex named by chunk [b, e) to its identity key.
  const auto mutex_key = [&](std::size_t b, std::size_t e) -> std::string {
    std::string name;
    std::string joined;
    bool qualified = false;
    for (std::size_t j = b; j < e; ++j) {
      joined += toks[j].text;
      if (toks[j].kind == Token::Kind::kIdent) name = toks[j].text;
      if (toks[j].text == "." || toks[j].text == "->") qualified = true;
    }
    if (name.empty()) return {};
    const bool this_qualified =
        qualified && toks[b].kind == Token::Kind::kIdent &&
        toks[b].text == "this";
    if ((!qualified || this_qualified) && cls != nullptr &&
        cls->mutexes.count(name) != 0 && def.locals.count(name) == 0) {
      return cf.cls + "#" + name;
    }
    if (!qualified && facts.global_mutexes.count(name) != 0 &&
        def.locals.count(name) == 0) {
      return "::" + name;
    }
    return local_prefix + ":" + def.name + "#" + (qualified ? joined : name);
  };

  struct Guard {
    std::vector<std::string> keys;
    bool active = false;
    int depth = 0;
  };
  std::map<std::string, Guard> guards;
  std::vector<std::map<std::string, bool>> snaps;
  int depth = 0;
  const auto held_now = [&] {
    std::set<std::string> held;
    for (const auto& [gname, g] : guards) {
      (void)gname;
      if (g.active) held.insert(g.keys.begin(), g.keys.end());
    }
    return held;
  };

  const std::size_t end = std::min(def.body_close + 1, toks.size());
  for (std::size_t j = def.body_open; j < end; ++j) {
    const Token& t = toks[j];
    if (t.kind == Token::Kind::kPunct) {
      if (t.text == "{") {
        ++depth;
        std::map<std::string, bool> snap;
        for (const auto& [gname, g] : guards) snap[gname] = g.active;
        snaps.push_back(std::move(snap));
      } else if (t.text == "}") {
        if (!snaps.empty()) {
          const auto snap = std::move(snaps.back());
          snaps.pop_back();
          for (auto it = guards.begin(); it != guards.end();) {
            if (it->second.depth >= depth) {
              it = guards.erase(it);
            } else {
              const auto f = snap.find(it->first);
              if (f != snap.end()) it->second.active = f->second;
              ++it;
            }
          }
        }
        --depth;
      }
      continue;
    }
    if (t.kind != Token::Kind::kIdent) continue;

    // Guard declaration: `lock_guard<...> name(mutex[, ...])`.
    if (guard_type_names().count(t.text) != 0) {
      std::size_t p = j + 1;
      if (p < end && toks[p].text == "<") {
        const std::size_t m = find_match(toks, p, "<", ">", p + 24);
        if (m == kNpos) continue;
        p = m + 1;
      }
      if (p + 1 >= end || toks[p].kind != Token::Kind::kIdent ||
          (toks[p + 1].text != "(" && toks[p + 1].text != "{")) {
        continue;
      }
      const std::string open = toks[p + 1].text;
      const std::string close_tok = open == "(" ? ")" : "}";
      const std::size_t close = find_match(toks, p + 1, open, close_tok, end);
      if (close == kNpos) continue;
      Guard g;
      g.depth = depth;
      bool defer = false;
      for (const auto& [cb, ce] : split_args(toks, p + 2, close)) {
        std::string last;
        for (std::size_t k = cb; k < ce; ++k) {
          if (toks[k].kind == Token::Kind::kIdent) last = toks[k].text;
        }
        if (last == "defer_lock" || last == "adopt_lock" ||
            last == "try_to_lock") {
          if (last == "defer_lock") defer = true;
          continue;
        }
        const std::string key = mutex_key(cb, ce);
        if (!key.empty()) g.keys.push_back(key);
      }
      g.active = !defer && !g.keys.empty();
      if (g.active) {
        const auto before = held_now();
        for (const auto& key : g.keys) {
          cf.acqs.push_back({key, toks[p].line, before});
        }
      }
      guards[toks[p].text] = std::move(g);
      j = close;
      continue;
    }

    // Member call `recv.method(...)` — guard toggles, bare mutex locks,
    // cv waits, atomic methods.
    if (j + 3 < end && (toks[j + 1].text == "." || toks[j + 1].text == "->") &&
        toks[j + 2].kind == Token::Kind::kIdent && toks[j + 3].text == "(") {
      const std::string& recv = t.text;
      const std::string& method = toks[j + 2].text;
      const std::size_t close = find_match(toks, j + 3, "(", ")", end);
      int argc = 0;
      if (close != kNpos && close > j + 4) {
        argc = static_cast<int>(split_args(toks, j + 4, close).size());
      }
      const auto gi = guards.find(recv);
      if (gi != guards.end() &&
          (method == "lock" || method == "unlock" || method == "try_lock")) {
        if (method == "unlock") {
          gi->second.active = false;
        } else if (!gi->second.active) {
          const auto before = held_now();
          gi->second.active = true;
          for (const auto& key : gi->second.keys) {
            cf.acqs.push_back({key, t.line, before});
          }
        }
      } else if (method == "lock" || method == "try_lock" ||
                 method == "lock_shared" || method == "unlock" ||
                 method == "unlock_shared") {
        // Bare mutex lock: pseudo-guard keyed off the receiver name.
        const bool is_mutex_recv =
            (cls != nullptr && cls->mutexes.count(recv) != 0) ||
            facts.global_mutexes.count(recv) != 0;
        if (is_mutex_recv) {
          const std::string pseudo = "\x01" + recv;
          if (method == "unlock" || method == "unlock_shared") {
            const auto pg = guards.find(pseudo);
            if (pg != guards.end()) pg->second.active = false;
          } else {
            auto& g = guards[pseudo];
            if (!g.active) {
              const auto before = held_now();
              g.keys = {mutex_key(j, j + 1)};
              g.active = true;
              g.depth = depth;
              cf.acqs.push_back({g.keys.front(), t.line, before});
            }
          }
        }
      }
      cf.member_calls.push_back({recv, method, argc, t.line, held_now()});
      continue;
    }

    // Local condition_variable declarations (for the cv-wait rule).
    if ((t.text == "condition_variable" ||
         t.text == "condition_variable_any") &&
        j + 1 < end && toks[j + 1].kind == Token::Kind::kIdent) {
      cf.local_cvs.insert(toks[j + 1].text);
      continue;
    }

    // Blocking identifiers (the engine-blocking-call set).
    if (blocking_idents().count(t.text) != 0) {
      cf.blockers.push_back({t.text, 0, t.line, held_now()});
    }

    // Free call sites: `callee(...)` with no `.`/`->` receiver.
    if (j > 0 && next_is(toks, j, "(") &&
        toks[j - 1].text != "." && toks[j - 1].text != "->" &&
        non_type_keywords().count(t.text) == 0 &&
        guard_type_names().count(t.text) == 0 && j != def.name_tok) {
      const std::size_t close = find_match(toks, j + 1, "(", ")", end);
      if (close != kNpos) {
        int argc = 0;
        if (close > j + 2) {
          argc = static_cast<int>(split_args(toks, j + 2, close).size());
        }
        cf.sites.push_back({t.text, argc, t.line, held_now()});
      }
    }

    // Candidate-variable accesses (bare identifier, not shadowed locally).
    const bool bare =
        j == 0 || (toks[j - 1].text != "." && toks[j - 1].text != "->");
    if (bare && def.locals.count(t.text) == 0) {
      const bool member_cand = cls != nullptr &&
                               cls->members.count(t.text) != 0 &&
                               facts.atomic_names.count(t.text) == 0;
      // A member name shadows a same-name global inside methods: the access
      // is attributed to the member (or to nothing, for atomic members).
      const bool shadowed_by_member =
          cls != nullptr && (cls->members.count(t.text) != 0 ||
                             cls->atomics.count(t.text) != 0 ||
                             cls->mutexes.count(t.text) != 0);
      const bool global_cand = !member_cand && !shadowed_by_member &&
                               global_candidates.count(t.text) != 0;
      if (member_cand || global_cand) {
        cf.accesses.push_back({t.text, t.line, held_now()});
      }
    }
  }
}

/// Renders `f (file:line) -> g (file:line) -> acquires 'K' at file:line`
/// through the acquired-set witness links.
std::string acquire_chain(const ConcFunc* cf, const std::string& key) {
  std::string chain;
  std::set<const ConcFunc*> seen;
  while (cf != nullptr && seen.insert(cf).second) {
    const auto it = cf->acq_wit.find(key);
    if (it == cf->acq_wit.end()) break;
    if (!chain.empty()) chain += " -> ";
    chain += cf->def->name + " (" + cf->def->file + ":" +
             std::to_string(cf->def->line) + ")";
    if (it->second.via == nullptr) {
      chain += " -> acquires '" + mutex_display(key) + "' at " +
               cf->def->file + ":" + std::to_string(it->second.line);
      return chain;
    }
    cf = it->second.via;
  }
  return chain;
}

/// The tentpole driver: builds per-function concurrency facts over the
/// already-collected FuncDef database, runs the H(f) and lock-order
/// fixpoints, and appends findings for the five concurrency rules plus
/// checkpoint-restore-symmetry. Mutex-confined globals are erased from
/// mutable_globals (and flagged confined on their GlobalDecl) so both
/// check_global_state and the effect engine treat the proof as equivalent
/// to an audit.
void run_concurrency_checks(std::vector<FileUnit>& units,
                            const FuncIndex& findex,
                            std::set<std::string>& mutable_globals) {
  // --- Per-file declaration facts, merged class map. ---
  std::vector<ConcFileFacts> facts(units.size());
  std::map<std::string, ConcClass> merged;
  ConcFileFacts all;  // union of global mutex/cv/atomic names
  for (std::size_t u = 0; u < units.size(); ++u) {
    if (units[u].io_error) continue;
    scan_concurrency_decls(units[u].lexed.tokens, facts[u]);
    for (const auto& cls : facts[u].classes) {
      ConcClass& m = merged[cls.name];
      m.name = cls.name;
      m.mutexes.insert(cls.mutexes.begin(), cls.mutexes.end());
      m.cvs.insert(cls.cvs.begin(), cls.cvs.end());
      m.atomics.insert(cls.atomics.begin(), cls.atomics.end());
      m.members.insert(cls.members.begin(), cls.members.end());
    }
    all.global_mutexes.insert(facts[u].global_mutexes.begin(),
                              facts[u].global_mutexes.end());
    all.global_cvs.insert(facts[u].global_cvs.begin(),
                          facts[u].global_cvs.end());
    all.atomic_names.insert(facts[u].atomic_names.begin(),
                            facts[u].atomic_names.end());
  }
  // Atomic members never participate in inference, member or global side.
  for (const auto& [name, cls] : merged) {
    (void)name;
    all.atomic_names.insert(cls.atomics.begin(), cls.atomics.end());
  }

  std::set<std::string> global_candidates;
  for (const auto& n : mutable_globals) {
    if (all.atomic_names.count(n) == 0 && all.global_mutexes.count(n) == 0 &&
        all.global_cvs.count(n) == 0) {
      global_candidates.insert(n);
    }
  }

  // --- Function attribution + body walks. ---
  std::size_t total = 0;
  for (const auto& unit : units) total += unit.funcs.size();
  std::vector<ConcFunc> funcs;
  funcs.reserve(total);
  std::map<const FuncDef*, ConcFunc*> by_def;
  for (std::size_t u = 0; u < units.size(); ++u) {
    FileUnit& unit = units[u];
    for (auto& def : unit.funcs) {
      ConcFunc cf;
      cf.def = &def;
      cf.unit = &unit;
      // Innermost enclosing class range wins; out-of-line `Cls::method`
      // definitions fall back to the name-token lookback.
      std::size_t best_span = kNpos;
      for (const auto& cls : facts[u].classes) {
        if (cls.open < def.body_open && def.body_close < cls.close &&
            cls.close - cls.open < best_span) {
          best_span = cls.close - cls.open;
          cf.cls = cls.name;
        }
      }
      if (cf.cls.empty() && def.name_tok >= 2) {
        const auto& toks = unit.lexed.tokens;
        if (toks[def.name_tok - 1].text == "::" &&
            merged.count(toks[def.name_tok - 2].text) != 0) {
          cf.cls = toks[def.name_tok - 2].text;
        }
      }
      funcs.push_back(std::move(cf));
    }
  }
  for (std::size_t u = 0, fi = 0; u < units.size(); ++u) {
    for (std::size_t d = 0; d < units[u].funcs.size(); ++d, ++fi) {
      ConcFunc& cf = funcs[fi];
      walk_conc_body(units[u].lexed.tokens, cf, merged, all,
                     global_candidates);
      by_def[cf.def] = &cf;
      for (const auto& acq : cf.acqs) {
        cf.acquired.insert(acq.key);
        if (cf.acq_wit.count(acq.key) == 0) {
          cf.acq_wit[acq.key] = {acq.line, nullptr};
        }
      }
      for (const auto& b : cf.blockers) {
        if (!cf.blocks) {
          cf.blocks = true;
          cf.blk_wit = {b.callee, b.line, nullptr};
        }
      }
    }
  }

  // Call-site resolution, shared by every fixpoint below.
  const auto resolve_conc = [&](const ConcSite& site) {
    std::vector<ConcFunc*> out;
    for (FuncDef* d : resolve_callee(findex, site.callee, site.argc)) {
      const auto it = by_def.find(d);
      if (it != by_def.end()) out.push_back(it->second);
    }
    return out;
  };

  // Reverse call edges (for guarded-by witness chains) and in-degree.
  std::map<const ConcFunc*, std::vector<std::pair<ConcFunc*, const ConcSite*>>>
      rev;
  for (ConcFunc& cf : funcs) {
    for (const ConcSite& site : cf.sites) {
      for (ConcFunc* callee : resolve_conc(site)) {
        rev[callee].push_back({&cf, &site});
      }
    }
  }

  // --- H(f): greatest fixpoint. Roots (no callers) hold nothing. ---
  for (ConcFunc& cf : funcs) {
    if (rev.count(&cf) == 0) cf.h_top = false;  // h stays empty
  }
  for (int round = 0; round < 2; ++round) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (ConcFunc& cf : funcs) {
        if (cf.h_top) continue;  // no contribution until constrained
        for (const ConcSite& site : cf.sites) {
          for (ConcFunc* callee : resolve_conc(site)) {
            std::set<std::string> contrib = site.held;
            contrib.insert(cf.h.begin(), cf.h.end());
            if (callee->h_top) {
              callee->h_top = false;
              callee->h = std::move(contrib);
              changed = true;
            } else {
              std::set<std::string> inter;
              std::set_intersection(callee->h.begin(), callee->h.end(),
                                    contrib.begin(), contrib.end(),
                                    std::inserter(inter, inter.begin()));
              if (inter != callee->h) {
                callee->h = std::move(inter);
                changed = true;
              }
            }
          }
        }
      }
    }
    // Call cycles with no outside caller never left top; ground them and
    // propagate once more.
    bool any_top = false;
    for (ConcFunc& cf : funcs) {
      if (cf.h_top) {
        cf.h_top = false;
        any_top = true;
      }
    }
    if (!any_top) break;
  }

  // --- Acquired-set and blocking closures (forward fixpoints). ---
  {
    bool changed = true;
    while (changed) {
      changed = false;
      for (ConcFunc& cf : funcs) {
        for (const ConcSite& site : cf.sites) {
          for (ConcFunc* callee : resolve_conc(site)) {
            for (const auto& key : callee->acquired) {
              if (cf.acquired.insert(key).second) {
                cf.acq_wit[key] = {site.line, callee};
                changed = true;
              }
            }
            if (callee->blocks && !cf.blocks) {
              cf.blocks = true;
              cf.blk_wit = {"", site.line, callee};
              changed = true;
            }
          }
        }
      }
    }
  }

  // --- Rule (a): guarded-by inference. ---
  struct AccRec {
    const ConcFunc* cf;
    int line;
    std::set<std::string> held_full;
  };
  std::map<std::string, std::vector<AccRec>> tally;  // candidate id -> recs
  const auto member_id = [](const std::string& cls, const std::string& n) {
    return cls + "#" + n;
  };
  for (const ConcFunc& cf : funcs) {
    const auto mc = merged.find(cf.cls);
    const ConcClass* cls = mc == merged.end() ? nullptr : &mc->second;
    for (const ConcAccess& acc : cf.accesses) {
      std::string id;
      if (cls != nullptr && cls->members.count(acc.name) != 0) {
        id = member_id(cf.cls, acc.name);
      } else if (global_candidates.count(acc.name) != 0) {
        id = "::" + acc.name;
      } else {
        continue;
      }
      AccRec rec{&cf, acc.line, acc.held};
      const auto& h = conc_h(cf);
      rec.held_full.insert(h.begin(), h.end());
      tally[id].push_back(std::move(rec));
    }
  }
  for (const auto& [id, recs] : tally) {
    std::map<std::string, std::size_t> cover;
    for (const auto& rec : recs) {
      for (const auto& m : rec.held_full) ++cover[m];
    }
    std::string best;
    std::size_t best_count = 0;
    for (const auto& [m, c] : cover) {
      if (c > best_count) {
        best = m;
        best_count = c;
      }
    }
    if (best_count == 0) continue;
    const std::string var_display = mutex_display(id);
    if (best_count == recs.size()) {
      // Confined: every access holds `best`. Globals graduate out of the
      // mutable-state inventory — the machine-checked equivalent of the
      // old hand-written allow() audits.
      if (id.rfind("::", 0) == 0) {
        const std::string name = id.substr(2);
        mutable_globals.erase(name);
        for (auto& unit : units) {
          for (auto& g : unit.globals) {
            if (g.name == name) g.confined = true;
          }
        }
      }
      continue;
    }
    if (best_count < 2 || 2 * best_count <= recs.size()) continue;
    for (const auto& rec : recs) {
      if (rec.held_full.count(best) != 0) continue;
      // Witness: walk caller edges that lose the guard, up to a short cap.
      std::string chain = rec.cf->def->name + " (" + rec.cf->def->file + ":" +
                          std::to_string(rec.cf->def->line) + ")";
      const ConcFunc* cur = rec.cf;
      std::set<const ConcFunc*> seen{cur};
      for (int hop = 0; hop < 8; ++hop) {
        const auto edges = rev.find(cur);
        if (edges == rev.end()) break;
        const ConcFunc* next = nullptr;
        const ConcSite* via = nullptr;
        for (const auto& [caller, site] : edges->second) {
          if (seen.count(caller) != 0) continue;
          std::set<std::string> held = site->held;
          const auto& h = conc_h(*caller);
          held.insert(h.begin(), h.end());
          if (held.count(best) == 0) {
            next = caller;
            via = site;
            break;
          }
        }
        if (next == nullptr) break;
        seen.insert(next);
        chain = next->def->name + " (" + next->def->file + ":" +
                std::to_string(via->line) + ") -> " + chain;
        cur = next;
      }
      rec.cf->unit->raw.push_back(
          {rec.cf->unit->ctx.display_path, rec.line, "guarded-by-violation",
           "'" + var_display + "' is guarded by '" + mutex_display(best) +
               "' (" + std::to_string(best_count) + " of " +
               std::to_string(recs.size()) +
               " accesses hold it) but this access runs without the lock; "
               "unguarded path: " + chain,
           "take '" + mutex_display(best) +
               "' around this access, or justify via allow if a "
               "happens-before edge orders it"});
    }
  }

  // --- Rule (b): lock-order cycles. ---
  struct EdgeWit {
    const ConcFunc* f;
    int line;
    bool via_call;  // acquisition reached through a call site
  };
  std::map<std::string, std::map<std::string, EdgeWit>> graph;
  const auto add_edge = [&](const std::string& h, const std::string& k,
                            const ConcFunc* f, int line, bool via_call) {
    if (h == k) return;
    auto& slot = graph[h];
    if (slot.count(k) == 0) slot[k] = {f, line, via_call};
  };
  for (const ConcFunc& cf : funcs) {
    const auto& h_set = conc_h(cf);
    for (const ConcAcq& acq : cf.acqs) {
      for (const auto& h : acq.held_before) {
        add_edge(h, acq.key, &cf, acq.line, false);
      }
      for (const auto& h : h_set) add_edge(h, acq.key, &cf, acq.line, false);
    }
    for (const ConcSite& site : cf.sites) {
      std::set<std::string> held = site.held;
      held.insert(h_set.begin(), h_set.end());
      if (held.empty()) continue;
      for (ConcFunc* callee : resolve_conc(site)) {
        for (const auto& k : callee->acquired) {
          for (const auto& h : held) add_edge(h, k, &cf, site.line, true);
        }
      }
    }
  }
  {
    std::set<std::set<std::string>> reported;
    std::map<std::string, int> color;
    std::vector<std::string> stack;
    const std::function<void(const std::string&)> dfs =
        [&](const std::string& node) {
          color[node] = 1;
          stack.push_back(node);
          const auto edges = graph.find(node);
          if (edges != graph.end()) {
            for (const auto& [to, wit] : edges->second) {
              (void)wit;
              if (color[to] == 1) {
                const auto at = std::find(stack.begin(), stack.end(), to);
                std::vector<std::string> cycle(at, stack.end());
                std::set<std::string> sig(cycle.begin(), cycle.end());
                if (!reported.insert(sig).second) continue;
                // Canonical rotation: start at the smallest key.
                const auto mn =
                    std::min_element(cycle.begin(), cycle.end());
                std::rotate(cycle.begin(), mn, cycle.end());
                std::string names;
                std::string edges_text;
                for (std::size_t i = 0; i < cycle.size(); ++i) {
                  const std::string& a = cycle[i];
                  const std::string& b = cycle[(i + 1) % cycle.size()];
                  names += mutex_display(a) + " -> ";
                  const EdgeWit& ew = graph[a][b];
                  edges_text += "; '" + mutex_display(b) +
                                "' acquired while holding '" +
                                mutex_display(a) + "': ";
                  if (ew.via_call) {
                    std::string via_chain = acquire_chain(ew.f, b);
                    edges_text += via_chain.empty()
                                      ? ew.f->def->name + " (" +
                                            ew.f->def->file + ":" +
                                            std::to_string(ew.line) + ")"
                                      : via_chain;
                  } else {
                    edges_text += ew.f->def->name + " (" + ew.f->def->file +
                                  ":" + std::to_string(ew.line) + ")";
                  }
                }
                names += mutex_display(cycle.front());
                const EdgeWit& first = graph[cycle.front()][
                    cycle.size() > 1 ? cycle[1] : cycle.front()];
                first.f->unit->raw.push_back(
                    {first.f->unit->ctx.display_path, first.line,
                     "lock-order-cycle",
                     "lock-order cycle: " + names + edges_text,
                     "pick one global acquisition order; release '" +
                         mutex_display(cycle.front()) +
                         "' before taking the next lock on the inverted "
                         "path"});
              } else if (color[to] == 0) {
                dfs(to);
              }
            }
          }
          stack.pop_back();
          color[node] = 2;
        };
    std::vector<std::string> nodes;
    for (const auto& [n, e] : graph) {
      (void)e;
      nodes.push_back(n);
    }
    for (const auto& n : nodes) {
      if (color[n] == 0) dfs(n);
    }
  }

  // --- Rule (b'): cv wait without predicate; (b''): lock-held blocking. ---
  for (const ConcFunc& cf : funcs) {
    const auto mc = merged.find(cf.cls);
    const ConcClass* cls = mc == merged.end() ? nullptr : &mc->second;
    for (const ConcMemberCall& call : cf.member_calls) {
      if (call.method != "wait" || call.argc != 1) continue;
      const bool is_cv = (cls != nullptr && cls->cvs.count(call.recv) != 0) ||
                         all.global_cvs.count(call.recv) != 0 ||
                         cf.local_cvs.count(call.recv) != 0;
      if (!is_cv) continue;
      cf.unit->raw.push_back(
          {cf.unit->ctx.display_path, call.line, "cv-wait-no-predicate",
           "'" + call.recv + ".wait(lock)' has no predicate; spurious "
           "wakeups and missed notifies make bare waits hang or spin",
           "re-check the wakeup condition under the lock: " + call.recv +
               ".wait(lock, [&]{ return <condition>; })"});
    }
    for (const ConcSite& b : cf.blockers) {
      if (b.held.empty()) continue;
      cf.unit->raw.push_back(
          {cf.unit->ctx.display_path, b.line, "lock-held-blocking-call",
           "blocking call '" + b.callee + "' runs while '" +
               mutex_display(*b.held.begin()) +
               "' is held; every thread contending the lock stalls for the "
               "full blocking duration",
           "copy what the call needs out under the lock, unlock, then "
           "block"});
    }
    const auto& h_set = conc_h(cf);
    for (const ConcSite& site : cf.sites) {
      std::set<std::string> held = site.held;
      held.insert(h_set.begin(), h_set.end());
      if (held.empty()) continue;
      for (ConcFunc* callee : resolve_conc(site)) {
        if (!callee->blocks) continue;
        // Chain to the direct blocking identifier.
        std::string chain = cf.def->name + " (" + cf.def->file + ":" +
                            std::to_string(site.line) + ")";
        const ConcFunc* cur = callee;
        std::set<const ConcFunc*> seen;
        while (cur != nullptr && seen.insert(cur).second) {
          chain += " -> " + cur->def->name + " (" + cur->def->file + ":" +
                   std::to_string(cur->def->line) + ")";
          if (cur->blk_wit.via == nullptr) {
            chain += " -> blocks on '" + cur->blk_wit.direct + "' at " +
                     cur->def->file + ":" + std::to_string(cur->blk_wit.line);
            break;
          }
          cur = cur->blk_wit.via;
        }
        cf.unit->raw.push_back(
            {cf.unit->ctx.display_path, site.line, "lock-held-blocking-call",
             "call to '" + site.callee + "' blocks while '" +
                 mutex_display(*held.begin()) + "' is held: " + chain,
             "release the lock before the call, or hoist the blocking work "
             "out of the callee"});
        break;  // one finding per site
      }
    }
  }

  // --- Rule (c): async-signal-safety. ---
  struct HandlerRoot {
    std::string name;
    std::string file;
    int line = 0;
  };
  std::vector<HandlerRoot> roots;
  for (auto& unit : units) {
    const auto& toks = unit.lexed.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].kind != Token::Kind::kIdent) continue;
      if ((toks[i].text == "sa_handler" || toks[i].text == "sa_sigaction") &&
          toks[i + 1].text == "=") {
        std::string last;
        for (std::size_t j = i + 2; j < toks.size() && toks[j].text != ";";
             ++j) {
          if (toks[j].kind == Token::Kind::kIdent) last = toks[j].text;
        }
        if (!last.empty() && last != "SIG_IGN" && last != "SIG_DFL" &&
            last != "nullptr" && last != "NULL") {
          roots.push_back({last, unit.ctx.display_path, toks[i].line});
        }
      }
      if (toks[i].text == "signal" && toks[i + 1].text == "(") {
        const std::size_t close =
            find_match(toks, i + 1, "(", ")", toks.size());
        if (close == kNpos || close <= i + 2) continue;
        const auto args = split_args(toks, i + 2, close);
        if (args.size() != 2) continue;
        std::string last;
        for (std::size_t j = args[1].first; j < args[1].second; ++j) {
          if (toks[j].kind == Token::Kind::kIdent) last = toks[j].text;
        }
        if (!last.empty() && last != "SIG_IGN" && last != "SIG_DFL" &&
            last != "nullptr" && last != "NULL") {
          roots.push_back({last, unit.ctx.display_path, toks[i].line});
        }
      }
    }
  }
  for (const HandlerRoot& root : roots) {
    const auto slot = findex.find(root.name);
    if (slot == findex.end()) continue;
    // BFS from every definition matching the handler name; parents back the
    // witness chain, one finding per offending line.
    std::vector<ConcFunc*> queue;
    std::map<const ConcFunc*, std::pair<const ConcFunc*, int>> parent;
    for (const auto& [arity, defs] : slot->second) {
      (void)arity;
      for (FuncDef* d : defs) {
        const auto it = by_def.find(d);
        if (it != by_def.end() && parent.count(it->second) == 0) {
          parent[it->second] = {nullptr, 0};
          queue.push_back(it->second);
        }
      }
    }
    const auto chain_to = [&](const ConcFunc* cf) {
      std::vector<std::string> hops;
      const ConcFunc* cur = cf;
      while (cur != nullptr) {
        hops.push_back(cur->def->name + " (" + cur->def->file + ":" +
                       std::to_string(cur->def->line) + ")");
        cur = parent.at(cur).first;
      }
      std::string out = "handler '" + root.name + "' (installed at " +
                        root.file + ":" + std::to_string(root.line) + ")";
      for (auto it = hops.rbegin(); it != hops.rend(); ++it) {
        out += " -> " + *it;
      }
      return out;
    };
    std::set<std::pair<std::string, int>> flagged;
    const auto flag = [&](const ConcFunc* cf, int line,
                          const std::string& what) {
      if (!flagged.insert({cf->unit->ctx.display_path, line}).second) return;
      cf->unit->raw.push_back(
          {cf->unit->ctx.display_path, line, "signal-unsafe-call",
           what + " inside the signal-handler call tree: " + chain_to(cf) +
               " — only async-signal-safe calls (write, _exit, lock-free "
               "atomics, ...) are legal when the signal lands mid-operation",
           "restrict the handler tree to setting a lock-free atomic flag; "
           "do the real work on a thread that polls it"});
    };
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      ConcFunc* cf = queue[qi];
      const auto& toks = cf->unit->lexed.tokens;
      for (std::size_t j = cf->def->body_open; j < cf->def->body_close; ++j) {
        if (toks[j].kind != Token::Kind::kIdent) continue;
        const std::string& w = toks[j].text;
        if (w == "new" || w == "malloc" || w == "calloc" || w == "realloc" ||
            w == "free" || w == "throw") {
          flag(cf, toks[j].line, "'" + w + "'");
        }
      }
      for (const ConcAcq& acq : cf->acqs) {
        flag(cf, acq.line, "lock acquisition of '" +
                               mutex_display(acq.key) + "'");
      }
      for (const ConcSite& b : cf->blockers) {
        flag(cf, b.line, "blocking call '" + b.callee + "'");
      }
      for (const ConcSite& site : cf->sites) {
        const auto callees = resolve_conc(site);
        if (callees.empty()) {
          if (signal_safe_calls().count(site.callee) == 0 &&
              site.callee != "new" && site.callee != "free") {
            flag(cf, site.line,
                 "call to '" + site.callee +
                     "', which is not on the async-signal-safe allowlist");
          }
          continue;
        }
        for (ConcFunc* callee : callees) {
          if (parent.count(callee) == 0) {
            parent[callee] = {cf, site.line};
            queue.push_back(callee);
          }
        }
      }
      for (const ConcMemberCall& call : cf->member_calls) {
        if (atomic_safe_methods().count(call.method) != 0) continue;
        const auto defs = resolve_callee(findex, call.method, call.argc);
        bool any = false;
        for (FuncDef* d : defs) {
          const auto it = by_def.find(d);
          if (it == by_def.end()) continue;
          any = true;
          if (parent.count(it->second) == 0) {
            parent[it->second] = {cf, call.line};
            queue.push_back(it->second);
          }
        }
        if (!any) {
          flag(cf, call.line,
               "call to method '" + call.method + "' on '" + call.recv +
                   "', which is not a lock-free atomic operation");
        }
      }
    }
  }

  // --- checkpoint-restore-symmetry. ---
  for (auto& unit : units) {
    if (unit.io_error) continue;
    const auto& toks = unit.lexed.tokens;
    std::vector<FuncDef*> ckpts;
    std::vector<FuncDef*> rsts;
    for (auto& def : unit.funcs) {
      if (def.name == "checkpoint_state" && def.arity == 0) {
        ckpts.push_back(&def);
      }
      if (def.name == "restore_state" && def.arity == 1) {
        rsts.push_back(&def);
      }
    }
    const auto by_tok = [](const FuncDef* a, const FuncDef* b) {
      return a->name_tok < b->name_tok;
    };
    std::sort(ckpts.begin(), ckpts.end(), by_tok);
    std::sort(rsts.begin(), rsts.end(), by_tok);
    const std::size_t pairs = std::min(ckpts.size(), rsts.size());
    for (std::size_t p = 0; p < pairs; ++p) {
      const FuncDef& c = *ckpts[p];
      const FuncDef& r = *rsts[p];
      // Keys written: first string argument of every `.set("key", ...)`.
      std::vector<std::pair<std::string, int>> ckpt_keys;
      for (std::size_t j = c.body_open; j + 3 < c.body_close; ++j) {
        if ((toks[j].text == "." || toks[j].text == "->") &&
            toks[j + 1].text == "set" && toks[j + 2].text == "(" &&
            toks[j + 3].kind == Token::Kind::kString) {
          ckpt_keys.push_back({toks[j + 3].text, toks[j + 1].line});
        }
      }
      // Keys read: first string argument inside find/state_field/state_count
      // call parens (skipping non-string leading args like the state ref).
      std::vector<std::pair<std::string, int>> rst_keys;
      for (std::size_t j = r.body_open; j + 1 < r.body_close; ++j) {
        if (toks[j].kind != Token::Kind::kIdent ||
            (toks[j].text != "find" && toks[j].text != "state_field" &&
             toks[j].text != "state_count") ||
            toks[j + 1].text != "(") {
          continue;
        }
        const std::size_t close =
            find_match(toks, j + 1, "(", ")", r.body_close + 1);
        if (close == kNpos) continue;
        for (std::size_t k = j + 2; k < close; ++k) {
          if (toks[k].kind == Token::Kind::kString) {
            rst_keys.push_back({toks[k].text, toks[j].line});
            break;
          }
        }
      }
      std::set<std::string> ckpt_strings;
      for (std::size_t j = c.body_open; j < c.body_close; ++j) {
        if (toks[j].kind == Token::Kind::kString) {
          ckpt_strings.insert(toks[j].text);
        }
      }
      std::set<std::string> rst_strings;
      for (std::size_t j = r.body_open; j < r.body_close; ++j) {
        if (toks[j].kind == Token::Kind::kString) {
          rst_strings.insert(toks[j].text);
        }
      }
      std::set<std::string> seen;
      for (const auto& [key, line] : ckpt_keys) {
        if (rst_strings.count(key) == 0 && seen.insert(key).second) {
          unit.raw.push_back(
              {unit.ctx.display_path, line, "checkpoint-restore-symmetry",
               "checkpoint_state serializes '" + key +
                   "' but the paired restore_state (" + unit.ctx.display_path +
                   ":" + std::to_string(r.line) +
                   ") never reads it; resume silently drops the field",
               "read '" + key + "' in restore_state (same string literal)"});
        }
      }
      for (const auto& [key, line] : rst_keys) {
        if (ckpt_strings.count(key) == 0 && seen.insert(key).second) {
          unit.raw.push_back(
              {unit.ctx.display_path, line, "checkpoint-restore-symmetry",
               "restore_state reads '" + key +
                   "' but the paired checkpoint_state (" +
                   unit.ctx.display_path + ":" + std::to_string(c.line) +
                   ") never writes it; the read sees a default, not state",
               "write '" + key + "' in checkpoint_state (same string "
               "literal)"});
        }
      }
    }
  }
}

/// layering: per-file check of include edges against the module ranks. The
/// target module is read off the include text itself (first path component),
/// so the rule works even when the included file is outside the scan set.
void check_layering(FileUnit& unit) {
  if (unit.src_module.empty()) return;
  const auto& ranks = layer_ranks();
  const auto from = ranks.find(unit.src_module);
  if (from == ranks.end()) return;
  for (const auto& inc : unit.includes) {
    if (inc.target == "bench_common.h" ||
        inc.target.rfind("bench/", 0) == 0) {
      unit.raw.push_back(
          {unit.ctx.display_path, inc.line, "layering",
           "src/" + unit.src_module + " includes bench/ header \"" +
               inc.target + "\"; bench/ sits above every src/ layer and is "
               "never included from src/",
           {}});
      continue;
    }
    const std::size_t slash = inc.target.find('/');
    if (slash == std::string::npos) continue;
    const std::string head = inc.target.substr(0, slash);
    const auto to = ranks.find(head);
    if (to == ranks.end()) continue;
    if (head == unit.src_module || to->second < from->second) continue;
    std::string message = "src/" + unit.src_module + " (layer " +
                          std::to_string(from->second) + ") includes src/" +
                          head + " (layer " + std::to_string(to->second) +
                          "); the include DAG flows strictly downward";
    if (unit.src_module == "core") {
      message += " — src/core depends on nothing outside core";
    } else {
      message += "; move the shared code into a lower layer or invert the "
                 "dependency";
    }
    unit.raw.push_back(
        {unit.ctx.display_path, inc.line, "layering", std::move(message), {}});
  }
}

/// include-cycle: DFS over the include graph restricted to scanned files.
/// Includes are resolved against virtual paths (repo-root-relative first,
/// then bench/, then verbatim, then sibling), so the graph matches what the
/// compiler sees under the tree's -I roots. Each back edge is one finding,
/// attached to the #include line that closes the cycle.
void check_cycles(std::vector<FileUnit>& units) {
  std::map<std::string, FileUnit*> by_vpath;
  for (auto& unit : units) {
    if (!unit.vpath.empty()) by_vpath.emplace(unit.vpath, &unit);
  }
  struct Edge {
    std::string to;
    int line;
  };
  std::map<std::string, std::vector<Edge>> graph;
  for (const auto& [vpath, unit] : by_vpath) {
    const std::string dir = vpath.substr(0, vpath.rfind('/'));
    for (const auto& inc : unit->includes) {
      const std::array<std::string, 4> candidates = {
          "src/" + inc.target, "bench/" + inc.target, inc.target,
          dir + "/" + inc.target};
      for (const auto& candidate : candidates) {
        if (by_vpath.count(candidate) != 0) {
          graph[vpath].push_back({candidate, inc.line});
          break;
        }
      }
    }
  }
  std::map<std::string, int> color;  // 0 = new, 1 = on stack, 2 = done
  std::vector<std::string> stack;
  const std::function<void(const std::string&)> dfs =
      [&](const std::string& vpath) {
        color[vpath] = 1;
        stack.push_back(vpath);
        for (const auto& edge : graph[vpath]) {
          if (color[edge.to] == 1) {
            std::string cycle;
            const auto at = std::find(stack.begin(), stack.end(), edge.to);
            for (auto it = at; it != stack.end(); ++it) {
              cycle += *it + " -> ";
            }
            cycle += edge.to;
            FileUnit* unit = by_vpath[vpath];
            unit->raw.push_back(
                {unit->ctx.display_path, edge.line, "include-cycle",
                 "#include \"" + edge.to.substr(edge.to.find('/') + 1) +
                     "\" closes an include cycle: " + cycle,
                 {}});
          } else if (color[edge.to] == 0) {
            dfs(edge.to);
          }
        }
        stack.pop_back();
        color[vpath] = 2;
      };
  for (const auto& [vpath, unit] : by_vpath) {
    (void)unit;
    if (color[vpath] == 0) dfs(vpath);
  }
}

std::vector<Finding> run_checks(std::vector<FileUnit>& units) {
  SignatureIndex index;
  for (auto& unit : units) {
    collect_signatures(unit.lexed.tokens, index, unit.decl_sites);
  }

  // Effect phase 0: the tracked writes_global set. A declaration whose
  // global-mutable-state finding carries a justified allow() is audited,
  // sanctioned state and stays out of the set; below, the concurrency
  // analysis additionally erases every global whose mutex confinement it
  // can *prove* (e.g. the parallel.cpp pool singletons), so neither the
  // inventory rule nor the effect engine sees machine-verified state.
  std::set<std::string> mutable_globals;
  for (auto& unit : units) {
    for (auto& g : unit.globals) {
      Finding probe;
      probe.file = unit.ctx.display_path;
      probe.line = g.line;
      probe.rule = "global-mutable-state";
      g.audited = suppressed(unit.allows, unit.token_lines, probe);
      if (!g.audited) mutable_globals.insert(g.name);
    }
  }

  // Phase A: the function database. Pointers into unit.funcs are stable
  // from here on — nothing appends to the vectors after collection.
  FuncIndex findex;
  std::vector<FuncDef*> all_funcs;
  for (auto& unit : units) {
    if (unit.io_error) continue;
    collect_function_defs(unit.lexed.tokens, unit.ctx, unit.funcs);
  }
  for (auto& unit : units) {
    for (auto& def : unit.funcs) {
      findex[def.name][def.arity].push_back(&def);
      all_funcs.push_back(&def);
    }
  }

  // Phase B: concurrency analysis. Runs before the effect fixpoint because
  // its guard inference shrinks mutable_globals (confined state must not
  // poison writes_global chains).
  run_concurrency_checks(units, findex, mutable_globals);

  // Phase C: per-body direct effects, then the bottom-up call-graph
  // fixpoint.
  for (auto& unit : units) {
    if (unit.io_error) continue;
    const bool arena_owner = unit.vpath == "src/core/arena.h";
    for (auto& def : unit.funcs) {
      compute_direct_effects(unit.lexed.tokens, unit.ctx, arena_owner,
                             mutable_globals, def);
    }
  }
  propagate_effects(all_funcs, findex);

  for (auto& unit : units) {
    if (unit.io_error) continue;
    const auto& toks = unit.lexed.tokens;
    check_banned_idents(toks, unit.ctx, unit.raw);
    check_float_equality(toks, unit.ctx, unit.raw);
    check_printf_float(toks, unit.ctx, unit.raw);
    check_catch_swallow(toks, unit.ctx, unit.raw);
    check_sample_hoard(toks, unit.ctx, unit.raw);
    check_engine_blocking(toks, unit.ctx, unit.vpath, unit.raw);
    check_unordered_iteration(toks, unit.ctx, unit.raw);
    check_unit_assign(toks, unit.ctx, unit.raw);
    check_unit_conversion_calls(toks, unit.ctx, unit.raw);
    check_unit_calls(toks, unit.ctx, index, unit.decl_sites, unit.raw);
    check_parallel_rng(toks, unit.ctx, unit.rng_vars, unit.raw);
    check_global_state(unit.ctx, unit.vpath, unit.globals, unit.raw);
    check_parallel_effects(toks, unit.ctx, findex, mutable_globals,
                           unit.raw);
    check_arena_escape(toks, unit.ctx, unit.vpath, unit.funcs,
                       mutable_globals, unit.raw);
    check_layering(unit);
  }
  check_cycles(units);

  std::vector<Finding> findings;
  for (auto& unit : units) {
    std::vector<Finding> kept = std::move(unit.meta);
    for (auto& f : unit.raw) {
      if (!suppressed(unit.allows, unit.token_lines, f)) {
        kept.push_back(std::move(f));
      }
    }
    for (auto& f : kept) f.fingerprint = fingerprint_of(unit, f);
    std::sort(kept.begin(), kept.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
              });
    findings.insert(findings.end(), std::make_move_iterator(kept.begin()),
                    std::make_move_iterator(kept.end()));
  }
  return findings;
}

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc" ||
         ext == ".cxx";
}

// ---------------------------------------------------------------------------
// Output formats.

namespace json = wild5g::json;

json::Value findings_json(const std::vector<Finding>& findings,
                          std::size_t files_scanned) {
  json::Value doc = json::Value::object();
  json::Value list = json::Value::array();
  for (const auto& f : findings) {
    json::Value entry = json::Value::object();
    entry.set("file", f.file);
    entry.set("line", static_cast<std::int64_t>(f.line));
    entry.set("rule", f.rule);
    entry.set("message", f.message);
    if (!f.fixit.empty()) entry.set("fixit", f.fixit);
    list.push_back(std::move(entry));
  }
  doc.set("files_scanned", static_cast<std::int64_t>(files_scanned));
  doc.set("files_lexed", static_cast<std::int64_t>(g_files_lexed));
  doc.set("lex_cache_hits", static_cast<std::int64_t>(g_lex_cache_hits));
  doc.set("count", static_cast<std::int64_t>(findings.size()));
  doc.set("findings", std::move(list));
  return doc;
}

/// SARIF 2.1.0 in the shape GitHub code scanning consumes: one run, the full
/// rule registry under tool.driver.rules, one result per finding with
/// ruleId/ruleIndex/level/message/physicalLocation. Unregistered diagnostics
/// (io-error) carry a ruleId but no ruleIndex.
json::Value sarif_json(const std::vector<Finding>& findings) {
  json::Value rules = json::Value::array();
  for (const auto& rule : kRules) {
    json::Value entry = json::Value::object();
    entry.set("id", std::string(rule.id));
    json::Value short_desc = json::Value::object();
    short_desc.set("text", std::string(rule.summary));
    entry.set("shortDescription", std::move(short_desc));
    json::Value config = json::Value::object();
    config.set("level", "error");
    entry.set("defaultConfiguration", std::move(config));
    json::Value props = json::Value::object();
    props.set("family", std::string(rule.family));
    if (!rule.effects.empty()) props.set("effects", std::string(rule.effects));
    entry.set("properties", std::move(props));
    rules.push_back(std::move(entry));
  }
  json::Value driver = json::Value::object();
  driver.set("name", "wild5g-lint");
  driver.set("version", "2.0.0");
  driver.set("rules", std::move(rules));
  json::Value tool = json::Value::object();
  tool.set("driver", std::move(driver));

  json::Value results = json::Value::array();
  for (const auto& f : findings) {
    json::Value result = json::Value::object();
    result.set("ruleId", f.rule);
    const int index = rule_index(f.rule);
    if (index >= 0) result.set("ruleIndex", static_cast<std::int64_t>(index));
    result.set("level", "error");
    json::Value message = json::Value::object();
    message.set("text", f.fixit.empty() ? f.message
                                        : f.message + " (fix: " + f.fixit +
                                              ")");
    result.set("message", std::move(message));
    json::Value artifact = json::Value::object();
    artifact.set("uri", f.file);
    json::Value region = json::Value::object();
    region.set("startLine", static_cast<std::int64_t>(std::max(f.line, 1)));
    json::Value physical = json::Value::object();
    physical.set("artifactLocation", std::move(artifact));
    physical.set("region", std::move(region));
    json::Value location = json::Value::object();
    location.set("physicalLocation", std::move(physical));
    json::Value locations = json::Value::array();
    locations.push_back(std::move(location));
    result.set("locations", std::move(locations));
    if (!f.fingerprint.empty()) {
      json::Value prints = json::Value::object();
      prints.set("wild5gFingerprint/v1", f.fingerprint);
      result.set("partialFingerprints", std::move(prints));
    }
    results.push_back(std::move(result));
  }

  json::Value run = json::Value::object();
  run.set("tool", std::move(tool));
  run.set("results", std::move(results));
  json::Value runs = json::Value::array();
  runs.push_back(std::move(run));
  json::Value doc = json::Value::object();
  doc.set("$schema", "https://json.schemastore.org/sarif-2.1.0.json");
  doc.set("version", "2.1.0");
  doc.set("runs", std::move(runs));
  return doc;
}

json::Value rules_json() {
  json::Value list = json::Value::array();
  for (const auto& rule : kRules) {
    json::Value entry = json::Value::object();
    entry.set("id", std::string(rule.id));
    entry.set("family", std::string(rule.family));
    entry.set("summary", std::string(rule.summary));
    if (!rule.fixit.empty()) entry.set("fixit", std::string(rule.fixit));
    if (!rule.effects.empty()) entry.set("effects", std::string(rule.effects));
    list.push_back(std::move(entry));
  }
  json::Value doc = json::Value::object();
  doc.set("count", static_cast<std::int64_t>(kRules.size()));
  doc.set("rules", std::move(list));
  return doc;
}

/// The markdown behind docs/LINT_RULES.md. Generated so the doc can never
/// drift from the registry: ctest (lint.rules_doc_is_fresh) compares the
/// committed file against this output byte for byte.
std::string rules_doc_markdown() {
  std::ostringstream os;
  os << "<!-- GENERATED FILE - do not edit by hand.\n"
        "     Regenerate with:  ./build/tools/wild5g_lint --rules-doc > "
        "docs/LINT_RULES.md\n"
        "     The lint.rules_doc_is_fresh test fails while this file is "
        "stale. -->\n\n";
  os << "# wild5g-lint rule reference\n\n";
  os << "wild5g-lint (tools/wild5g_lint.cpp) statically enforces the repo's "
        "determinism,\nunit-hygiene, and layering contracts over `src/`, "
        "`bench/`, `tools/`, and\n`examples/`. It exits 0 on a clean tree, 1 "
        "when any finding survives\nsuppression, and 2 on usage or I/O "
        "errors.\n\n";
  os << "Suppress a finding with a justified directive comment on the same "
        "line or the\nline(s) directly above it:\n\n"
        "```cpp\n"
        "// wild5g-lint: allow(<rule>) <why this construct is safe here>\n"
        "```\n\n";
  os << "Machine-readable forms: `--list-rules --json` (this table as "
        "JSON),\n`--json` (findings), `--sarif <path>` (SARIF 2.1.0 for "
        "GitHub code scanning).\nRatchet mode: `--baseline <sarif>` fails "
        "only on findings whose fingerprint\n(rule | virtual path | "
        "whitespace-stripped source line) is absent from the\ncommitted "
        "baseline.\n";
  for (const auto& family : kFamilies) {
    os << "\n## " << family << "\n\n";
    if (family == "effects") {
      os << "These rules consume an interprocedural effect database: every "
            "function\ndefinition gets a conservative signature over the "
            "lattice `{writes_global,\nmutates_param, draws_rng, "
            "draws_rng_param, allocates, schedules, unknown}`,\npropagated "
            "bottom-up over the call graph to a fixpoint (call cycles "
            "iterate\nuntil stable). Same-name same-arity definitions with "
            "conflicting direct\neffects poison resolution with `unknown` "
            "instead of guessing, so every\nsuppression stays auditable. "
            "Findings print the offending call chain down\nto the concrete "
            "write/draw as fix-it context.\n\n";
    }
    if (family == "concurrency") {
      os << "These rules reuse the effect engine's function database for a "
            "lock-aware\nanalysis (DESIGN.md section 8). Guarded-by facts are "
            "*inferred*: a shared\nvariable whose accesses are dominated by "
            "one mutex (lexical `lock_guard`/\n`unique_lock`/`scoped_lock` "
            "segments, plus the held-at-every-call-site set\nH(f) computed "
            "as a greatest fixpoint over the call graph) is treated as\n"
            "guarded by it; a proven-confined global graduates out of the "
            "`global-mutable-\nstate` inventory, while a majority-but-not-"
            "total guard flags each unguarded\naccess with its witness call "
            "path. The lock-order graph records every mutex\nacquired while "
            "another is held, through calls, and reports cycles with "
            "per-edge\ninterprocedural chains. Signal-handler roots "
            "(`sigaction`/`std::signal`\ninstalls) bound a reachability "
            "sweep checked against the POSIX async-signal-\nsafe allowlist "
            "plus lock-free atomic methods.\n\n";
    }
    os << "| rule | summary | fix-it |\n";
    os << "| --- | --- | --- |\n";
    for (const auto& rule : kRules) {
      if (rule.family != family) continue;
      os << "| `" << rule.id << "` | " << rule.summary;
      if (!rule.effects.empty()) {
        os << " *(effect: `" << rule.effects << "`)*";
      }
      os << " | " << (rule.fixit.empty() ? std::string_view{"-"} : rule.fixit)
         << " |\n";
    }
  }
  return os.str();
}

int usage() {
  std::cerr << "usage: wild5g_lint [--json] [--sarif <path>] "
               "[--baseline <sarif>]\n"
               "                   [--list-rules] [--rules-doc] "
               "<file-or-dir>...\n";
  return 2;
}

/// Loads the fingerprint multiset from a committed baseline SARIF log (one
/// produced by --sarif). Results without a wild5gFingerprint/v1 entry are
/// ignored — they can never match, so they simply do not ratchet.
bool load_baseline(const std::string& path,
                   std::map<std::string, int>& fingerprints) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  json::Value doc;
  try {
    doc = json::parse(buffer.str());
  } catch (const std::exception&) {
    return false;
  }
  const json::Value* runs = doc.find("runs");
  if (runs == nullptr || !runs->is_array()) return false;
  for (const json::Value& run : runs->as_array()) {
    const json::Value* results = run.find("results");
    if (results == nullptr || !results->is_array()) continue;
    for (const json::Value& result : results->as_array()) {
      const json::Value* prints = result.find("partialFingerprints");
      if (prints == nullptr) continue;
      const json::Value* fp = prints->find("wild5gFingerprint/v1");
      if (fp != nullptr && fp->is_string()) ++fingerprints[fp->as_string()];
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool as_json = false;
  bool list_rules = false;
  bool rules_doc = false;
  std::string sarif_path;
  std::string baseline_path;
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      as_json = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--rules-doc") {
      rules_doc = true;
    } else if (arg == "--sarif") {
      if (i + 1 >= argc) {
        std::cerr << "wild5g_lint: --sarif requires a path\n";
        return usage();
      }
      sarif_path = argv[++i];
    } else if (arg == "--baseline") {
      if (i + 1 >= argc) {
        std::cerr << "wild5g_lint: --baseline requires a SARIF path\n";
        return usage();
      }
      baseline_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "wild5g_lint: unknown flag '" << arg << "'\n";
      return usage();
    } else {
      roots.emplace_back(arg);
    }
  }
  if (rules_doc) {
    std::cout << rules_doc_markdown();
    return 0;
  }
  if (list_rules) {
    if (as_json) {
      std::cout << json::dump(rules_json());
    } else {
      for (const auto& rule : kRules) {
        std::cout << rule.id << " [" << rule.family << "]: " << rule.summary
                  << "\n";
      }
    }
    return 0;
  }
  if (roots.empty()) return usage();

  std::vector<fs::path> files;
  for (const auto& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (auto it = fs::recursive_directory_iterator(root, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && lintable(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      std::cerr << "wild5g_lint: no such file or directory: "
                << root.generic_string() << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<FileUnit> units;
  units.reserve(files.size());
  for (const auto& file : files) units.push_back(load_file(file));
  std::vector<Finding> findings = run_checks(units);

  // Ratchet mode: drop findings already recorded in the committed baseline
  // (multiset semantics — a third copy of a twice-baselined finding is still
  // new). The SARIF log, when also requested, keeps the full pre-filter set
  // so regenerating the baseline from it never loses entries.
  if (!baseline_path.empty()) {
    std::map<std::string, int> baseline;
    if (!load_baseline(baseline_path, baseline)) {
      std::cerr << "wild5g_lint: cannot read baseline SARIF: "
                << baseline_path << "\n";
      return 2;
    }
    if (!sarif_path.empty()) {
      std::ofstream out(sarif_path, std::ios::binary);
      if (!out.good()) {
        std::cerr << "wild5g_lint: cannot write SARIF log: " << sarif_path
                  << "\n";
        return 2;
      }
      out << json::dump(sarif_json(findings)) << "\n";
      sarif_path.clear();
    }
    std::size_t matched = 0;
    std::vector<Finding> fresh;
    for (auto& f : findings) {
      const auto it = baseline.find(f.fingerprint);
      if (it != baseline.end() && it->second > 0) {
        --it->second;
        ++matched;
      } else {
        fresh.push_back(std::move(f));
      }
    }
    findings = std::move(fresh);
    if (matched != 0) {
      std::cerr << "wild5g_lint: " << matched
                << " finding(s) matched the baseline and were suppressed\n";
    }
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out.good()) {
      std::cerr << "wild5g_lint: cannot write SARIF log: " << sarif_path
                << "\n";
      return 2;
    }
    out << json::dump(sarif_json(findings)) << "\n";
  }
  if (as_json) {
    std::cout << json::dump(findings_json(findings, files.size()));
  } else {
    for (const auto& f : findings) {
      std::cout << f.file << ":" << f.line << ": " << f.rule << ": "
                << f.message << "\n";
      if (!f.fixit.empty()) std::cout << "    fix-it: " << f.fixit << "\n";
    }
    std::cerr << "wild5g_lint: " << files.size() << " file(s), "
              << findings.size() << " finding(s)\n";
  }
  return findings.empty() ? 0 : 1;
}
