// golden_check: diffs a fresh bench metrics document against its committed
// golden baseline with per-metric tolerances.
//
// Usage: golden_check <golden.json> <fresh.json>
//
// Exit 0 when every field is within tolerance; exit 1 with a per-field drift
// report otherwise; exit 2 on unreadable/malformed input. Tolerances come
// from the golden document (root "tolerance" default, root "tolerances"
// per-metric/table overrides) — see src/core/golden.h.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/error.h"
#include "core/golden.h"
#include "core/json.h"

namespace {

wild5g::json::Value load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  wild5g::require(in.good(), "cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return wild5g::json::parse(buffer.str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::cerr << "usage: golden_check <golden.json> <fresh.json>\n";
    return 2;
  }
  const std::string golden_path = argv[1];
  const std::string fresh_path = argv[2];
  try {
    const auto golden = load(golden_path);
    const auto fresh = load(fresh_path);
    const auto drifts = wild5g::golden::compare(golden, fresh);
    const auto tol = wild5g::golden::document_tolerance(golden);
    if (drifts.empty()) {
      std::cout << "golden_check: OK (" << golden_path << ", rel tol "
                << wild5g::json::format_number(tol.rel) << ", abs tol "
                << wild5g::json::format_number(tol.abs) << ")\n";
      return 0;
    }
    std::cout << "golden_check: " << drifts.size() << " field(s) drifted ("
              << golden_path << " vs " << fresh_path << "):\n"
              << wild5g::golden::format_report(drifts)
              << "If the change is intentional, regenerate baselines with"
                 " `cmake --build build --target regen-goldens`.\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "golden_check: " << e.what() << "\n";
    return 2;
  }
}
