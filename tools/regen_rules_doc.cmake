# Helper for the lint-rules-doc target: runs `wild5g_lint --rules-doc` and
# writes the output to docs/LINT_RULES.md. A cmake -P script instead of
# `sh -c "... > ..."` because make's fast-path exec hands the backslash
# escapes to the inner shell verbatim, which turns the redirect target into
# a filename with a leading space.
execute_process(
  COMMAND "${LINT_BIN}" --rules-doc
  OUTPUT_FILE "${OUT}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "wild5g_lint --rules-doc failed (exit ${rc})")
endif()
