// wild5g_serve: the long-running campaign service (DESIGN.md section 12).
//
// Speaks a line-oriented JSON protocol (version 1) on stdin/stdout: the
// client submits campaigns by registry name, the service streams one frame
// per executed step, and every campaign ends in exactly one of the states
// {completed, cancelled, deadline_partial} — the uptime invariant the chaos
// soak suite (tests/test_soak.cpp) gates.
//
// Threads:
//   - protocol (main): reads request lines, enqueues jobs, answers
//     status/cancel, and owns the drain sequence;
//   - compute: pops jobs FIFO and drives engine::run_steps; all frames,
//     checkpoints, done, and result events for a job are emitted here, in
//     step order, so a job's event stream is deterministic;
//   - watchdog: cancels the running job when no yield point has been
//     reached for --watchdog-ms (a stuck step cannot be interrupted, but
//     the job is reaped at its next yield and the service stays up).
//
// Requests (one JSON object per line):
//   {"op":"submit","id":"j1","campaign":"drive_soak","seed":"1","params":{},
//    "fault_plan":{...},"checkpoint_path":"/tmp/j1.ckpt",
//    "deadline_steps":4,"deadline_ms":60000}
//   {"op":"resume","id":"j2","snapshot_path":"/tmp/j1.ckpt"}
//   {"op":"status"}            (or with "id" for one job)
//   {"op":"cancel","id":"j1"}
//   {"op":"shutdown"}          (same drain as EOF / SIGINT / SIGTERM)
//
// Events: hello, accepted, frame, ckpt, watchdog, done, result, status,
// error, bye. Determinism contract: for a given (campaign, seed, params,
// fault_plan, deadline_steps), the sequence of frame/ckpt/done/result
// events is byte-identical at any --threads count, and a run resumed from
// a checkpoint continues the frame stream exactly where the original left
// off.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <deque>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/error.h"
#include "core/json.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "engine/campaign.h"
#include "engine/metrics.h"
#include "engine/runner.h"
#include "engine/snapshot.h"

namespace wild5g {
namespace {

constexpr int kProtocolVersion = 1;

std::atomic<int> g_signal{0};

void on_signal(int sig) { g_signal.store(sig, std::memory_order_relaxed); }

/// Milliseconds since an arbitrary epoch, for watchdog heartbeats only —
/// never enters a campaign or an emitted document.
std::int64_t now_ms() {
  // wild5g-lint: allow(ban-wall-clock) watchdog heartbeat; supervision
  // layer only, the engine under it stays clock-free
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
}

/// All stdout writes go through one mutex so concurrently emitted events
/// never interleave mid-line; every event is exactly one flushed line.
class EventWriter {
 public:
  void emit(const json::Value& event) {
    const std::string line = json::dump_compact(event);
    const std::lock_guard<std::mutex> lock(mutex_);
    std::cout << line << '\n' << std::flush;
  }

 private:
  std::mutex mutex_;
};

json::Value make_event(const std::string& name) {
  json::Value event = json::Value::object();
  event.set("event", name);
  return event;
}

/// One submitted campaign. Protocol thread creates it; compute thread runs
/// it; watchdog may set `cancel`. `state` transitions queued -> running ->
/// {completed, cancelled, deadline_partial} under the service mutex.
struct Job {
  std::string id;
  engine::CampaignRequest request;
  std::unique_ptr<engine::Campaign> campaign;
  std::string checkpoint_path;  // empty: no checkpoints
  std::size_t deadline_steps = 0;
  std::int64_t deadline_ms = 0;
  std::size_t start_step = 0;           // > 0 for resumed jobs
  json::Value document_state;           // restored document, resumed jobs
  bool resumed = false;
  std::size_t total_steps = 0;
  std::atomic<bool> cancel{false};
  std::string state = "queued";
  std::size_t next_step = 0;
};

/// The service: job table, FIFO queue, and the three threads' shared state.
class Service {
 public:
  Service(EventWriter& out, std::int64_t watchdog_ms)
      : out_(out), watchdog_ms_(watchdog_ms) {}

  void handle_line(const std::string& line) {
    json::Value request;
    try {
      request = json::parse(line);
    } catch (const std::exception& e) {
      emit_error("", std::string("bad request line: ") + e.what());
      return;
    }
    const json::Value* op = request.find("op");
    if (op == nullptr || !op->is_string()) {
      emit_error("", "request has no string 'op'");
      return;
    }
    try {
      dispatch(op->as_string(), request);
    } catch (const std::exception& e) {
      const json::Value* id = request.find("id");
      emit_error(id != nullptr && id->is_string() ? id->as_string() : "",
                 e.what());
    }
  }

  [[nodiscard]] bool draining() const { return draining_.load(); }

  void start() {
    compute_ = std::thread([this] { compute_loop(); });
    // The watchdog thread always runs: besides the --watchdog-ms stall
    // check it escalates a signal that lands during a graceful drain
    // (when the protocol thread is already blocked joining) into a
    // cancel-everything fast drain, so SIGTERM always terminates.
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }

  /// Stops accepting new jobs. `cancel_jobs` false (EOF / shutdown op) lets
  /// the running and queued campaigns finish — a batch client can submit,
  /// close stdin, and read every result; true (SIGINT/SIGTERM) cancels the
  /// running job at its next yield and fails the queue fast.
  void drain(bool cancel_jobs) {
    std::vector<std::shared_ptr<Job>> cancelled;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      draining_.store(true);
      if (cancel_jobs) {
        for (const auto& job : queue_) {
          job->state = "cancelled";
          cancelled.push_back(job);
        }
        queue_.clear();
        if (running_ != nullptr) running_->cancel.store(true);
      }
    }
    for (const auto& job : cancelled) {
      emit_done(*job, "cancelled", 0, job->start_step);
    }
    cv_.notify_all();
  }

  /// Joins the workers (the compute thread first finishes whatever drain()
  /// left runnable) and reports every job's final state.
  void join_and_bye() {
    if (compute_.joinable()) compute_.join();
    if (watchdog_.joinable()) watchdog_.join();
    json::Value bye = make_event("bye");
    json::Value jobs = json::Value::array();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& [id, job] : jobs_) {
        json::Value entry = json::Value::object();
        entry.set("id", id);
        entry.set("state", job->state);
        jobs.push_back(std::move(entry));
      }
    }
    bye.set("jobs", std::move(jobs));
    out_.emit(bye);
  }

 private:
  void dispatch(const std::string& op, const json::Value& request) {
    if (op == "submit") {
      submit(request, /*resume=*/false);
    } else if (op == "resume") {
      submit(request, /*resume=*/true);
    } else if (op == "status") {
      status(request);
    } else if (op == "cancel") {
      cancel(request);
    } else if (op == "shutdown") {
      draining_.store(true);
      cv_.notify_all();
    } else {
      throw Error("unknown op '" + op + "'");
    }
  }

  std::string require_id(const json::Value& request) {
    const json::Value* id = request.find("id");
    require(id != nullptr && id->is_string() && !id->as_string().empty(),
            "request needs a non-empty string 'id'");
    return id->as_string();
  }

  static std::int64_t optional_count(const json::Value& request,
                                     const std::string& key) {
    const json::Value* value = request.find(key);
    if (value == nullptr) return 0;
    require(value->is_number(), "'" + key + "' must be a number");
    const double raw = value->as_number();
    require(raw >= 0 && raw == static_cast<double>(static_cast<std::int64_t>(
                                   raw)),
            "'" + key + "' must be a non-negative integer");
    return static_cast<std::int64_t>(raw);
  }

  void submit(const json::Value& request, bool resume) {
    const std::string id = require_id(request);
    auto job = std::make_shared<Job>();
    job->id = id;
    if (resume) {
      const json::Value* path = request.find("snapshot_path");
      require(path != nullptr && path->is_string(),
              "resume needs a string 'snapshot_path'");
      const engine::Snapshot snapshot =
          engine::load_snapshot(path->as_string());
      job->request = snapshot.request;
      job->campaign = engine::make_campaign(job->request);
      job->campaign->restore_state(snapshot.campaign_state);
      job->document_state = snapshot.document_state;
      job->start_step = snapshot.next_step;
      job->next_step = snapshot.next_step;
      job->resumed = true;
    } else {
      // The submit message itself carries the request fields
      // (campaign/seed/params/fault_plan); extra protocol keys are ignored
      // by request_from_json.
      job->request = engine::request_from_json(request);
      job->campaign = engine::make_campaign(job->request);
    }
    if (const json::Value* path = request.find("checkpoint_path")) {
      require(path->is_string(), "'checkpoint_path' must be a string");
      job->checkpoint_path = path->as_string();
    }
    job->deadline_steps = static_cast<std::size_t>(
        optional_count(request, "deadline_steps"));
    job->deadline_ms = optional_count(request, "deadline_ms");
    job->total_steps = job->campaign->total_steps();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      require(!draining_.load(), "service is draining");
      require(jobs_.count(id) == 0, "duplicate job id '" + id + "'");
      jobs_[id] = job;
    }
    // Emit accepted before the job becomes runnable so a client always sees
    // accepted strictly before the job's first frame.
    json::Value event = make_event("accepted");
    event.set("id", id);
    event.set("campaign", job->request.campaign);
    event.set("total_steps", static_cast<std::uint64_t>(job->total_steps));
    event.set("start_step", static_cast<std::uint64_t>(job->start_step));
    out_.emit(event);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      // An immediate cancel can land between registration and queueing; a
      // job no longer "queued" must not be queued twice.
      if (job->state == "queued") queue_.push_back(job);
    }
    cv_.notify_all();
  }

  void status(const json::Value& request) {
    json::Value event = make_event("status");
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const json::Value* id = request.find("id")) {
      require(id->is_string(), "'id' must be a string");
      const auto it = jobs_.find(id->as_string());
      require(it != jobs_.end(), "unknown job id '" + id->as_string() + "'");
      event.set("id", it->first);
      event.set("state", it->second->state);
      event.set("next_step",
                static_cast<std::uint64_t>(it->second->next_step));
      event.set("total_steps",
                static_cast<std::uint64_t>(it->second->total_steps));
    } else {
      json::Value jobs = json::Value::array();
      for (const auto& [id_key, job] : jobs_) {
        json::Value entry = json::Value::object();
        entry.set("id", id_key);
        entry.set("state", job->state);
        entry.set("next_step", static_cast<std::uint64_t>(job->next_step));
        jobs.push_back(std::move(entry));
      }
      event.set("jobs", std::move(jobs));
    }
    out_.emit(event);
  }

  void cancel(const json::Value& request) {
    const std::string id = require_id(request);
    std::shared_ptr<Job> to_finish;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const auto it = jobs_.find(id);
      require(it != jobs_.end(), "unknown job id '" + id + "'");
      it->second->cancel.store(true);
      // A queued job never reaches the compute thread once cancelled;
      // finish it here so its done event is not deferred behind the queue.
      if (it->second->state == "queued") {
        it->second->state = "cancelled";
        for (auto queued = queue_.begin(); queued != queue_.end(); ++queued) {
          if ((*queued)->id == id) {
            queue_.erase(queued);
            break;
          }
        }
        to_finish = it->second;
      }
    }
    if (to_finish != nullptr) {
      emit_done(*to_finish, "cancelled", 0, to_finish->start_step);
    }
  }

  void emit_error(const std::string& id, const std::string& message) {
    json::Value event = make_event("error");
    if (!id.empty()) event.set("id", id);
    event.set("message", message);
    out_.emit(event);
  }

  void emit_done(const Job& job, const std::string& state,
                 std::size_t steps_executed, std::size_t next_step) {
    json::Value event = make_event("done");
    event.set("id", job.id);
    event.set("status", state);
    event.set("steps_executed", static_cast<std::uint64_t>(steps_executed));
    event.set("next_step", static_cast<std::uint64_t>(next_step));
    out_.emit(event);
  }

  // --- compute thread -------------------------------------------------------

  void compute_loop() {
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return !queue_.empty() || draining_.load(); });
        if (queue_.empty()) return;  // draining and nothing left to run
        job = queue_.front();
        queue_.pop_front();
        job->state = "running";
        running_ = job.get();
        heartbeat_ms_.store(now_ms());
      }
      run_job(*job);
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        running_ = nullptr;
      }
    }
  }

  void run_job(Job& job) {
    engine::MetricsDocument doc(
        job.request.campaign, job.request.seed,
        job.request.fault_plan.has_value() ? job.request.fault_plan->name
                                           : std::string{});
    if (job.resumed) doc.restore_state(job.document_state);
    engine::CampaignContext ctx{doc, nullptr};

    engine::RunControl control;
    control.start_step = job.start_step;
    control.deadline_steps = job.deadline_steps;
    control.cancelled = [&job] { return job.cancel.load(); };
    if (job.deadline_ms > 0) {
      const std::int64_t deadline = now_ms() + job.deadline_ms;
      control.over_deadline = [deadline] { return now_ms() >= deadline; };
    }
    control.on_frame = [this, &job](std::size_t step,
                                    const json::Value& frame) {
      json::Value event = make_event("frame");
      event.set("id", job.id);
      event.set("step", static_cast<std::uint64_t>(step));
      event.set("payload", frame);
      out_.emit(event);
    };
    control.on_yield = [this, &job, &doc](std::size_t next_step) {
      heartbeat_ms_.store(now_ms());
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        job.next_step = next_step;
      }
      if (job.checkpoint_path.empty()) return;
      engine::Snapshot snapshot;
      snapshot.request = job.request;
      snapshot.next_step = next_step;
      snapshot.campaign_state = job.campaign->checkpoint_state();
      snapshot.document_state = doc.checkpoint_state();
      engine::save_snapshot(snapshot, job.checkpoint_path);
      json::Value event = make_event("ckpt");
      event.set("id", job.id);
      event.set("next_step", static_cast<std::uint64_t>(next_step));
      out_.emit(event);
    };

    std::string state = "cancelled";
    engine::RunOutcome outcome;
    try {
      outcome = engine::run_steps(*job.campaign, ctx, control);
      state = engine::to_string(outcome.status);
      // The service maps every interruption to a cancellation; the runner's
      // kInterrupted never fires here (no interrupted predicate is wired).
      if (outcome.status == engine::RunStatus::kDeadline) {
        state = "deadline_partial";
      }
    } catch (const std::exception& e) {
      // A throwing step is a campaign bug, but one job's bug must not take
      // the service down: report it and mark the job cancelled so the
      // uptime invariant still holds.
      emit_error(job.id, std::string("campaign step threw: ") + e.what());
      state = "cancelled";
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      job.state = state;
      job.next_step = outcome.next_step;
    }
    emit_done(job, state, outcome.steps_executed, outcome.next_step);
    if (state == "completed" || state == "deadline_partial") {
      json::Value event = make_event("result");
      event.set("id", job.id);
      event.set("document", doc.document());
      out_.emit(event);
    }
  }

  // --- watchdog thread ------------------------------------------------------

  void watchdog_loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      cv_.wait_for(lock, std::chrono::milliseconds(25));
      // A signal during a graceful drain (protocol thread already joining)
      // escalates to a fast drain so the process still exits promptly.
      if (g_signal.load(std::memory_order_relaxed) != 0) {
        lock.unlock();
        drain(/*cancel_jobs=*/true);
        lock.lock();
      }
      if (draining_.load()) {
        const bool idle = running_ == nullptr && queue_.empty();
        if (idle) return;
      }
      if (watchdog_ms_ <= 0 || running_ == nullptr ||
          running_->cancel.load()) {
        continue;
      }
      const std::int64_t stalled = now_ms() - heartbeat_ms_.load();
      if (stalled < watchdog_ms_) continue;
      running_->cancel.store(true);
      json::Value event = make_event("watchdog");
      event.set("id", running_->id);
      event.set("stalled_ms", static_cast<std::uint64_t>(stalled));
      lock.unlock();
      out_.emit(event);
      lock.lock();
    }
  }

  EventWriter& out_;
  const std::int64_t watchdog_ms_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::string, std::shared_ptr<Job>> jobs_;
  std::deque<std::shared_ptr<Job>> queue_;
  Job* running_ = nullptr;
  std::atomic<std::int64_t> heartbeat_ms_{0};
  std::atomic<bool> draining_{false};
  std::thread compute_;
  std::thread watchdog_;
};

// --- sleeper: the soak suite's controllable test campaign -------------------

/// A campaign whose only job is to be supervised: each step optionally
/// dwells `sleep_ms` of wall time (to widen cancellation windows and to
/// simulate a stuck step for the watchdog) and draws one value from a
/// checkpointed Rng stream, so its frame stream still has real state to
/// prove resume byte-identity with. Registered only by wild5g_serve.
class SleeperCampaign : public engine::Campaign {
 public:
  SleeperCampaign(const engine::CampaignRequest& request, int steps,
                  std::int64_t sleep_ms)
      : rng_(request.seed), steps_(steps), sleep_ms_(sleep_ms) {}

  [[nodiscard]] std::size_t total_steps() const override {
    return static_cast<std::size_t>(steps_);
  }

  [[nodiscard]] json::Value execute_step(std::size_t index,
                                         engine::CampaignContext& ctx)
      override {
    if (sleep_ms_ > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms_));
    }
    const double draw = rng_.uniform(0.0, 1.0);
    sum_ += draw;
    if (index + 1 == total_steps()) {
      ctx.doc.metric("sleeper_sum", sum_);
    }
    json::Value frame = json::Value::object();
    frame.set("draw", draw);
    return frame;
  }

  [[nodiscard]] json::Value checkpoint_state() const override {
    json::Value state = json::Value::object();
    state.set("rng", rng_.serialize_state());
    state.set("sum", sum_);
    return state;
  }

  void restore_state(const json::Value& state) override {
    const json::Value* rng = state.find("rng");
    const json::Value* sum = state.find("sum");
    require(rng != nullptr && rng->is_string() && sum != nullptr &&
                sum->is_number(),
            "sleeper state: need string 'rng' and number 'sum'");
    rng_ = Rng::deserialize_state(rng->as_string());
    sum_ = sum->as_number();
  }

 private:
  Rng rng_;
  int steps_;
  std::int64_t sleep_ms_;
  double sum_ = 0.0;
};

std::unique_ptr<engine::Campaign> make_sleeper(
    const engine::CampaignRequest& request) {
  engine::reject_unknown_params(request.params, {"steps", "sleep_ms"});
  const int steps = engine::param_positive_int(request.params, "steps", 5);
  std::int64_t sleep_ms = 0;
  if (!request.params.is_null()) {
    if (const json::Value* value = request.params.find("sleep_ms")) {
      require(value->is_number() && value->as_number() >= 0,
              "sleeper params: 'sleep_ms' must be a non-negative number");
      sleep_ms = static_cast<std::int64_t>(value->as_number());
    }
  }
  return std::make_unique<SleeperCampaign>(request, steps, sleep_ms);
}

int serve_main(int argc, char** argv) {
  std::int64_t watchdog_ms = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto long_flag = [&](const std::string& name,
                         std::int64_t& target) -> bool {
      if (arg == name) {
        if (i + 1 >= argc) {
          std::cerr << "wild5g_serve: " << name << " requires a value\n";
          std::exit(2);
        }
        target = std::atoll(argv[++i]);
        return true;
      }
      if (arg.rfind(name + "=", 0) == 0) {
        target = std::atoll(arg.substr(name.size() + 1).c_str());
        return true;
      }
      return false;
    };
    std::int64_t threads = 0;
    if (long_flag("--watchdog-ms", watchdog_ms)) {
      if (watchdog_ms <= 0) {
        std::cerr << "wild5g_serve: --watchdog-ms must be positive\n";
        std::exit(2);
      }
    } else if (long_flag("--threads", threads)) {
      if (threads <= 0) {
        std::cerr << "wild5g_serve: --threads must be positive\n";
        std::exit(2);
      }
      parallel::set_thread_count(static_cast<std::size_t>(threads));
    } else {
      std::cerr << "wild5g_serve: unknown flag '" << arg << "'\n";
      std::exit(2);
    }
  }

  engine::register_builtin_campaigns();
  engine::register_campaign("sleeper", make_sleeper);

  // sigaction without SA_RESTART: the signal must interrupt the protocol
  // thread's blocking read() (EINTR) so the drain starts immediately —
  // std::signal() on glibc installs SA_RESTART and would resume the read,
  // leaving the process alive until the client happens to hang up.
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = on_signal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  // A client that goes away mid-stream must read as EOF, not kill us.
  std::signal(SIGPIPE, SIG_IGN);

  EventWriter out;
  Service service(out, watchdog_ms);
  // The kernel delivers a process-directed signal to an arbitrary thread
  // with it unblocked; mask it while spawning the workers (they inherit the
  // mask) so delivery always interrupts the protocol thread's read().
  sigset_t supervised;
  sigemptyset(&supervised);
  sigaddset(&supervised, SIGINT);
  sigaddset(&supervised, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &supervised, nullptr);
  service.start();
  pthread_sigmask(SIG_UNBLOCK, &supervised, nullptr);

  json::Value hello = make_event("hello");
  hello.set("service", "wild5g_serve");
  hello.set("protocol", kProtocolVersion);
  json::Value names = json::Value::array();
  for (const auto& name : engine::campaign_names()) names.push_back(name);
  hello.set("campaigns", std::move(names));
  out.emit(hello);

  // Protocol loop: raw read() so a SIGINT/SIGTERM interrupting the blocking
  // read surfaces as EINTR and starts the drain instead of being lost.
  std::string buffer;
  char chunk[4096];
  for (;;) {
    if (g_signal.load(std::memory_order_relaxed) != 0 || service.draining()) {
      break;
    }
    const ssize_t n = ::read(0, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;  // signal checked at loop top
      break;
    }
    if (n == 0) break;  // EOF: client hung up, drain
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t newline = buffer.find('\n', start);
      if (newline == std::string::npos) break;
      const std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty()) service.handle_line(line);
    }
    buffer.erase(0, start);
  }

  service.drain(
      /*cancel_jobs=*/g_signal.load(std::memory_order_relaxed) != 0);
  service.join_and_bye();
  return 0;
}

}  // namespace
}  // namespace wild5g

int main(int argc, char** argv) { return wild5g::serve_main(argc, argv); }
