#!/usr/bin/env python3
"""Perf-baseline driver: measure the tracked hot paths and write/check BENCH_*.json.

Runs the google-benchmark microbenchmark binary plus three representative
campaign benches from a Release build tree and either

  * writes a baseline document (default), e.g. the committed
    BENCH_2026-08-07.json, or
  * checks the current build against a committed baseline (--check) and
    exits 1 if any tracked number regressed by more than --threshold
    (default 20%).

The committed document also freezes the pre-change numbers measured on the
same machine immediately before the speed pass landed (PRE_CHANGE below), so
the speedup each rewrite bought stays auditable without digging through git
history. Wall-clock numbers are machine-dependent; the committed file records
the container this repo is developed in, and the --check gate compares a
fresh run against a baseline from the *same* runner, not across machines.

Usage:
  python3 tools/bench_baseline.py --build-dir build-rel --out BENCH_2026-08-07.json
  python3 tools/bench_baseline.py --build-dir build-rel --check BENCH_2026-08-07.json
"""

import argparse
import datetime
import json
import os
import subprocess
import sys
import tempfile
import time

# Microbenchmark kernels tracked by the gate. Names are google-benchmark
# names; values land in micro_ns as real_time nanoseconds.
TRACKED_MICRO = [
    "BM_SimulatorEventChurn/1000",
    "BM_SimulatorEventChurn/10000",
    "BM_WaveformSynthesis/1000",
    "BM_WaveformSynthesis/5000",
    "BM_PercentileStoreAll/100000",
    "BM_PercentileStoreAll/1000000",
    "BM_PercentileSketch/100000",
    "BM_PercentileSketch/1000000",
]

# Representative campaign benches (binary name -> short key). Values land in
# campaign_s as end-to-end wall-clock seconds for one --json emission run.
TRACKED_CAMPAIGNS = {
    "bench_fig24_server_survey": "fig24_server_survey",
    "bench_fig15_16_power_models": "fig15_16_power_models",
    "bench_fig19_20_web_qoe": "fig19_20_web_qoe",
    "bench_extension_metro_load": "extension_metro_load",
    "bench_extension_metro_qoe": "extension_metro_qoe",
}

# Pre-change numbers: Release (-O3 -DNDEBUG) on the development container,
# built from the tree state immediately before the speed pass and measured
# *interleaved* with the post-change build (two alternating passes, min of
# the per-pass medians) so host-level contention hits both sides equally.
# The store-all percentile pattern had no pre-change kernel -- it is kept in
# bench_micro as BM_PercentileStoreAll, so its current numbers double as the
# baseline BM_PercentileSketch is compared to, back-to-back in one process.
PRE_CHANGE = {
    "micro_ns": {
        "BM_SimulatorEventChurn/1000": 172144,
        "BM_SimulatorEventChurn/10000": 2671604,
        "BM_WaveformSynthesis/1000": 5766914,
        "BM_WaveformSynthesis/5000": 30086545,
    },
    "campaign_s": {
        "fig24_server_survey": 0.679,
        "fig15_16_power_models": 0.377,
        "fig19_20_web_qoe": 0.361,
    },
}

SCHEMA = "wild5g-bench-baseline-v1"


def run_micro(build_dir):
    """Run bench_micro and return {benchmark name: real_time ns}."""
    binary = os.path.join(build_dir, "bench", "bench_micro")
    if not os.path.exists(binary):
        sys.exit(f"bench_baseline: missing {binary}; build the bench targets first")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        out_path = handle.name
    try:
        filt = "|".join(
            sorted({name.split("/")[0] for name in TRACKED_MICRO})
        )
        subprocess.run(
            [
                binary,
                f"--benchmark_filter=^({filt})/",
                f"--benchmark_out={out_path}",
                "--benchmark_out_format=json",
                "--benchmark_min_time=0.2",
                # Scheduler noise on shared machines easily exceeds 20% on a
                # single run; the median of three repetitions is what the
                # gate compares, for both --out and --check.
                "--benchmark_repetitions=3",
                "--benchmark_report_aggregates_only=true",
            ],
            check=True,
            stdout=subprocess.DEVNULL,
        )
        with open(out_path, encoding="utf-8") as handle:
            doc = json.load(handle)
    finally:
        os.unlink(out_path)
    times = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("aggregate_name") != "median":
            continue
        name = bench["name"].removesuffix("_median")
        times[name] = round(float(bench["real_time"]))
    missing = [name for name in TRACKED_MICRO if name not in times]
    if missing:
        sys.exit(f"bench_baseline: bench_micro did not report {missing}")
    return {name: times[name] for name in TRACKED_MICRO}


def run_campaigns(build_dir):
    """Run each campaign bench once (--json emission) and time it end to end."""
    results = {}
    for binary_name, key in TRACKED_CAMPAIGNS.items():
        binary = os.path.join(build_dir, "bench", binary_name)
        if not os.path.exists(binary):
            sys.exit(f"bench_baseline: missing {binary}; build the bench targets first")
        with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
            out_path = handle.name
        try:
            # Best-of-3: end-to-end wall-clock includes process startup and
            # filesystem effects, and the minimum is the least noisy
            # estimator of the compute actually required.
            runs = []
            for _ in range(3):
                start = time.perf_counter()
                subprocess.run(
                    [binary, "--json", out_path],
                    check=True,
                    stdout=subprocess.DEVNULL,
                )
                runs.append(time.perf_counter() - start)
            results[key] = round(min(runs), 3)
        finally:
            os.unlink(out_path)
    return results


def measure(build_dir):
    micro = run_micro(build_dir)
    campaigns = run_campaigns(build_dir)
    speedup = {}
    for name, before in PRE_CHANGE["micro_ns"].items():
        if name in micro and micro[name] > 0:
            speedup[name] = round(before / micro[name], 2)
    for key, before in PRE_CHANGE["campaign_s"].items():
        if campaigns.get(key, 0) > 0:
            speedup[key] = round(before / campaigns[key], 2)
    # The sketch kernel's baseline is the store-all kernel at the same n.
    for n in ("100000", "1000000"):
        store = micro.get(f"BM_PercentileStoreAll/{n}", 0)
        sketch = micro.get(f"BM_PercentileSketch/{n}", 0)
        if store and sketch:
            speedup[f"BM_PercentileSketch/{n} vs store-all"] = round(
                store / sketch, 2
            )
    return {
        "schema": SCHEMA,
        "date": datetime.date.today().isoformat(),
        "build": {"type": "Release", "flags": "-O3 -DNDEBUG"},
        "pre_change": PRE_CHANGE,
        "micro_ns": micro,
        "campaign_s": campaigns,
        "speedup_vs_pre_change": speedup,
    }


def check(baseline_path, current, threshold):
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    if baseline.get("schema") != SCHEMA:
        sys.exit(f"bench_baseline: {baseline_path} has unexpected schema")
    failures = []
    for section in ("micro_ns", "campaign_s"):
        for name, committed in baseline.get(section, {}).items():
            now = current[section].get(name)
            if now is None:
                failures.append(f"{name}: tracked bench disappeared")
                continue
            limit = committed * (1.0 + threshold)
            status = "FAIL" if now > limit else "ok"
            print(
                f"  [{status}] {name}: {now} vs committed {committed} "
                f"(limit {limit:g})"
            )
            if now > limit:
                failures.append(
                    f"{name}: {now} exceeds committed {committed} "
                    f"by more than {threshold:.0%}"
                )
    if failures:
        print("bench_baseline: REGRESSION", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("bench_baseline: all tracked benches within threshold")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build-rel")
    parser.add_argument("--out", help="write a fresh baseline document here")
    parser.add_argument(
        "--check", help="compare against this committed baseline; exit 1 on regression"
    )
    parser.add_argument("--threshold", type=float, default=0.20)
    args = parser.parse_args()
    if not args.out and not args.check:
        parser.error("pass --out to write a baseline or --check to gate against one")

    current = measure(args.build_dir)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(current, handle, indent=2, sort_keys=False)
            handle.write("\n")
        print(f"bench_baseline: wrote {args.out}")
    if args.check:
        sys.exit(check(args.check, current, args.threshold))


if __name__ == "__main__":
    main()
