// wild5g_study: regenerate the study's datasets as CSV files, in the spirit
// of the paper's released artifact (per-experiment folders of data).
//
//   ./build/tools/wild5g_study <output-dir> [seed]
//
// Writes:
//   speedtest_verizon.csv    Figs. 1-4: per-server RTT/downlink/uplink
//   speedtest_tmobile.csv    Figs. 5-7: SA vs NSA low-band
//   handoffs.csv             Fig. 9: per-setting handoff counts
//   rrc_probe.csv            Figs. 10/25: gap -> RTT samples, all configs
//   traces_5g.csv            Sec. 5: the 121-trace mmWave population
//   traces_4g.csv            Sec. 5: the 175-trace LTE population
//   walking_campaign.csv     Sec. 4.4: throughput/RSRP/power log
//   web_measurements.csv     Sec. 6: per-site PLT and energy on both radios
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/table.h"
#include "geo/geo.h"
#include "mobility/drive.h"
#include "mobility/route.h"
#include "net/speedtest.h"
#include "power/campaign.h"
#include "radio/ue.h"
#include "rrc/probe.h"
#include "traces/trace_io.h"
#include "web/selector.h"

using namespace wild5g;

namespace {

void write_table(const std::filesystem::path& path, const Table& table) {
  std::ofstream out(path);
  require(out.good(), "wild5g_study: cannot write " + path.string());
  table.write_csv(out);
  std::cout << "  wrote " << path.string() << " (" << table.row_count()
            << " rows)\n";
}

Table speedtest_table(const radio::Carrier carrier,
                      std::span<const radio::NetworkConfig> networks,
                      std::uint64_t seed) {
  Table table(radio::to_string(carrier));
  table.set_header({"server", "distance_km", "network", "mode", "rtt_ms",
                    "downlink_mbps", "uplink_mbps"});
  const auto ue_location = geo::minneapolis().point;
  Rng rng(seed);
  for (const auto& network : networks) {
    net::SpeedtestConfig config;
    config.network = network;
    config.ue = radio::galaxy_s20u();
    config.ue_location = ue_location;
    if (network.band != radio::Band::kNrMmWave) {
      config.session_rsrp_mean_dbm = -84.0;
    }
    net::SpeedtestHarness harness(config);
    for (const auto& server : net::carrier_server_pool()) {
      const double km = geo::haversine_km(ue_location, server.location);
      for (const auto mode : {net::ConnectionMode::kMultiple,
                              net::ConnectionMode::kSingle}) {
        const auto result = harness.peak_of(server, mode, 10, rng);
        table.add_row({server.name, Table::num(km, 1),
                       radio::to_string(network),
                       mode == net::ConnectionMode::kMultiple ? "multi"
                                                              : "single",
                       Table::num(result.rtt_ms, 2),
                       Table::num(result.downlink_mbps, 1),
                       Table::num(result.uplink_mbps, 1)});
      }
    }
  }
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: wild5g_study <output-dir> [seed]\n";
    return 2;
  }
  const std::filesystem::path out_dir = argv[1];
  const std::uint64_t seed = argc > 2 ? std::stoull(argv[2]) : 20210823;
  std::filesystem::create_directories(out_dir);
  std::cout << "Regenerating the study datasets into " << out_dir
            << " (seed " << seed << ")\n";

  // --- Sec. 3: speedtest campaigns. ---
  {
    using radio::Band;
    using radio::Carrier;
    using radio::DeploymentMode;
    const std::vector<radio::NetworkConfig> verizon = {
        {Carrier::kVerizon, Band::kNrMmWave, DeploymentMode::kNsa},
        {Carrier::kVerizon, Band::kNrLowBand, DeploymentMode::kNsa},
        {Carrier::kVerizon, Band::kLte, DeploymentMode::kNsa}};
    write_table(out_dir / "speedtest_verizon.csv",
                speedtest_table(Carrier::kVerizon, verizon, seed));
    const std::vector<radio::NetworkConfig> tmobile = {
        {Carrier::kTMobile, Band::kNrLowBand, DeploymentMode::kNsa},
        {Carrier::kTMobile, Band::kNrLowBand, DeploymentMode::kSa}};
    write_table(out_dir / "speedtest_tmobile.csv",
                speedtest_table(Carrier::kTMobile, tmobile, seed + 1));
  }

  // --- Sec. 3.3: drive handoffs. ---
  {
    Table table("handoffs");
    table.set_header({"setting", "drive", "total", "horizontal", "vertical"});
    for (const auto setting :
         {mobility::BandSetting::kSaOnly, mobility::BandSetting::kNsaPlusLte,
          mobility::BandSetting::kLteOnly, mobility::BandSetting::kSaPlusLte,
          mobility::BandSetting::kAllBands}) {
      for (int drive = 0; drive < 4; ++drive) {
        Rng rng(seed + static_cast<std::uint64_t>(drive));
        const auto route = mobility::driving_route(rng);
        const auto result = mobility::simulate_drive(setting, route, {}, rng);
        table.add_row({mobility::to_string(setting), std::to_string(drive),
                       std::to_string(result.total_handoffs()),
                       std::to_string(result.horizontal_handoffs()),
                       std::to_string(result.vertical_handoffs())});
      }
    }
    write_table(out_dir / "handoffs.csv", table);
  }

  // --- Sec. 4: RRC probe samples. ---
  {
    Table table("rrc_probe");
    table.set_header({"network", "gap_ms", "rtt_ms", "true_state"});
    for (const auto& profile : rrc::table7_profiles()) {
      auto schedule = rrc::schedule_for(profile.config);
      schedule.repeats = 21;
      Rng rng(seed);
      for (const auto& sample :
           rrc::run_probe(profile.config, schedule, rng)) {
        table.add_row({profile.config.name, Table::num(sample.gap_ms, 0),
                       Table::num(sample.rtt_ms, 2),
                       rrc::to_string(sample.true_state)});
      }
    }
    write_table(out_dir / "rrc_probe.csv", table);
  }

  // --- Sec. 5: trace populations. ---
  {
    Rng rng(seed);
    const auto mm =
        traces::generate_traces(traces::lumos5g_mmwave_config(), rng);
    traces::save_traces_csv((out_dir / "traces_5g.csv").string(), mm);
    std::cout << "  wrote " << (out_dir / "traces_5g.csv").string() << " ("
              << mm.size() << " traces)\n";
    Rng rng2(seed + 1);
    const auto lte =
        traces::generate_traces(traces::lumos5g_lte_config(), rng2);
    traces::save_traces_csv((out_dir / "traces_4g.csv").string(), lte);
    std::cout << "  wrote " << (out_dir / "traces_4g.csv").string() << " ("
              << lte.size() << " traces)\n";
  }

  // --- Sec. 4.4: walking campaign. ---
  {
    power::WalkingCampaignConfig campaign;
    campaign.network = {radio::Carrier::kVerizon, radio::Band::kNrMmWave,
                        radio::DeploymentMode::kNsa};
    campaign.ue = radio::galaxy_s20u();
    Rng rng(seed);
    const auto samples = power::run_walking_campaign(
        campaign, power::DevicePowerProfile::s20u(), rng);
    std::ofstream out(out_dir / "walking_campaign.csv");
    require(out.good(), "wild5g_study: cannot write walking_campaign.csv");
    traces::write_campaign_csv(out, samples);
    std::cout << "  wrote " << (out_dir / "walking_campaign.csv").string()
              << " (" << samples.size() << " samples)\n";
  }

  // --- Sec. 6: web measurements. ---
  {
    Rng rng(seed);
    const auto corpus = web::generate_corpus(400, rng);
    const auto measurements = web::measure_corpus(
        corpus, 4, power::DevicePowerProfile::s10(), rng);
    Table table("web");
    table.set_header({"domain", "objects", "page_mb", "dynamic_fraction",
                      "plt_4g_s", "plt_5g_s", "energy_4g_j", "energy_5g_j"});
    for (const auto& m : measurements) {
      table.add_row({m.site.domain, std::to_string(m.site.object_count),
                     Table::num(m.site.total_page_size_mb, 2),
                     Table::num(m.site.dynamic_object_fraction(), 3),
                     Table::num(m.plt_4g_s, 3), Table::num(m.plt_5g_s, 3),
                     Table::num(m.energy_4g_j, 3),
                     Table::num(m.energy_5g_j, 3)});
    }
    write_table(out_dir / "web_measurements.csv", table);
  }

  std::cout << "Done.\n";
  return 0;
}
