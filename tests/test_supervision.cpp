// Supervision suite (`ctest -R supervision`): the batch benches' signal and
// deadline behavior, exercised end to end on real bench binaries.
//
// Contracts under test (bench/bench_common.h):
//   - SIGTERM/SIGINT mid-run: the bench stops at its next keep_going()
//     yield, flushes a *valid* partial metrics document annotated with a
//     top-level "interrupted": true, and exits 128+signo;
//   - --deadline-ms: wall-clock budget; expiry stops the run at a yield,
//     the partial document carries a "deadline_hit" metric, exit code 0.
//     The WILD5G_DEADLINE_AFTER_YIELDS env hook trips the same path after
//     a fixed yield count, making the partial document deterministic;
//   - garbage / non-positive --deadline-ms values exit 2 (usage error).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/json.h"

extern char** environ;

namespace {

using namespace wild5g;

std::string bench_path(const std::string& bench) {
  return std::string(WILD5G_BENCH_DIR) + "/" + bench;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct RunResult {
  int exit_code = -1;
  std::string document;  // contents of the --json file ("" if missing)
};

/// Spawns a bench with --json and optional env hooks; when `kill_after_ms`
/// is positive, delivers `signo` after that delay. Reaps and returns the
/// raw exit status semantics: exit code, or 128+signo if the process died
/// to an unhandled signal (it should not — the handler converts it).
RunResult run_bench(const std::string& bench,
                    const std::vector<std::string>& extra_args,
                    const std::vector<std::string>& extra_env,
                    int kill_after_ms = 0, int signo = SIGTERM) {
  const std::string out_path = ::testing::TempDir() + "wild5g_supervision_" +
                               bench + "_" + std::to_string(::getpid()) +
                               ".json";
  std::remove(out_path.c_str());

  std::vector<std::string> args = {bench_path(bench), "--json", out_path};
  args.insert(args.end(), extra_args.begin(), extra_args.end());
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (auto& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  std::vector<std::string> env;
  for (char** e = environ; *e != nullptr; ++e) env.emplace_back(*e);
  env.insert(env.end(), extra_env.begin(), extra_env.end());
  std::vector<char*> envp;
  envp.reserve(env.size() + 1);
  for (auto& entry : env) envp.push_back(entry.data());
  envp.push_back(nullptr);

  // Silence the bench's stdout so test logs stay readable.
  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_init(&actions);
  posix_spawn_file_actions_addopen(&actions, 1, "/dev/null", O_WRONLY, 0);

  pid_t pid = -1;
  const int rc = ::posix_spawn(&pid, argv[0], &actions, nullptr, argv.data(),
                               envp.data());
  posix_spawn_file_actions_destroy(&actions);
  EXPECT_EQ(rc, 0) << "posix_spawn failed for " << argv[0];
  RunResult result;
  if (rc != 0) return result;

  if (kill_after_ms > 0) {
    ::usleep(static_cast<useconds_t>(kill_after_ms) * 1000);
    ::kill(pid, signo);
  }
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.exit_code = 128 + WTERMSIG(status);
    ADD_FAILURE() << bench << " died to unhandled signal "
                  << WTERMSIG(status);
  }
  result.document = read_file(out_path);
  std::remove(out_path.c_str());
  return result;
}

// The regression target: a bench with many yield points and a long enough
// runtime that a mid-run signal lands between them.
constexpr const char* kSweepBench = "bench_fig24_server_survey";

TEST(supervision, sigterm_flushes_valid_partial_with_interrupted_key) {
  // The dwell hook stretches each yield to 40 ms so a 200 ms kill lands
  // mid-sweep deterministically enough to matter, while the handler-based
  // design keeps any landing spot valid.
  const RunResult run =
      run_bench(kSweepBench, {}, {"WILD5G_TEST_YIELD_DELAY_MS=40"},
                /*kill_after_ms=*/200, SIGTERM);
  EXPECT_EQ(run.exit_code, 128 + SIGTERM);
  ASSERT_FALSE(run.document.empty())
      << "interrupted bench left no partial document";
  const json::Value doc = json::parse(run.document);  // valid JSON or throw
  const json::Value* interrupted = doc.find("interrupted");
  ASSERT_NE(interrupted, nullptr) << run.document.substr(0, 200);
  EXPECT_TRUE(interrupted->as_bool());
  // Identity fields must survive the partial flush.
  ASSERT_NE(doc.find("bench"), nullptr);
  EXPECT_EQ(doc.find("bench")->as_string(), "fig24_server_survey");
}

TEST(supervision, sigint_behaves_like_sigterm_with_its_own_code) {
  const RunResult run =
      run_bench(kSweepBench, {}, {"WILD5G_TEST_YIELD_DELAY_MS=40"},
                /*kill_after_ms=*/200, SIGINT);
  EXPECT_EQ(run.exit_code, 128 + SIGINT);
  ASSERT_FALSE(run.document.empty());
  const json::Value doc = json::parse(run.document);
  ASSERT_NE(doc.find("interrupted"), nullptr);
}

TEST(supervision, deadline_yield_hook_is_deterministic_and_exits_zero) {
  // Trip the deadline path after exactly 3 yields — no clock involved, so
  // two runs must produce byte-identical partial documents.
  const RunResult first = run_bench(
      kSweepBench, {"--deadline-ms", "3600000"},
      {"WILD5G_DEADLINE_AFTER_YIELDS=3"});
  const RunResult second = run_bench(
      kSweepBench, {"--deadline-ms", "3600000"},
      {"WILD5G_DEADLINE_AFTER_YIELDS=3"});
  EXPECT_EQ(first.exit_code, 0) << "a deadline is a supervised outcome";
  ASSERT_FALSE(first.document.empty());
  EXPECT_EQ(first.document, second.document)
      << "deterministic deadline partials diverged";
  const json::Value doc = json::parse(first.document);
  const json::Value* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  const json::Value* deadline = metrics->find("deadline_hit");
  ASSERT_NE(deadline, nullptr) << first.document.substr(0, 200);
  EXPECT_EQ(deadline->as_number(), 1.0);
  EXPECT_EQ(doc.find("interrupted"), nullptr)
      << "deadline and interruption are distinct outcomes";
}

TEST(supervision, wall_clock_deadline_stops_a_long_run) {
  // A real (clock-based) deadline: 1 ms budget plus a 20 ms dwell per
  // yield guarantees expiry at the first yield checked after the budget.
  const RunResult run = run_bench(kSweepBench, {"--deadline-ms", "1"},
                                  {"WILD5G_TEST_YIELD_DELAY_MS=20"});
  EXPECT_EQ(run.exit_code, 0);
  ASSERT_FALSE(run.document.empty());
  const json::Value doc = json::parse(run.document);
  const json::Value* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_NE(metrics->find("deadline_hit"), nullptr);
}

TEST(supervision, garbage_deadline_values_are_usage_errors) {
  for (const auto& args :
       {std::vector<std::string>{"--deadline-ms", "soon"},
        std::vector<std::string>{"--deadline-ms", "0"},
        std::vector<std::string>{"--deadline-ms", "-5"},
        std::vector<std::string>{"--deadline-ms", "10x"}}) {
    const RunResult run = run_bench(kSweepBench, args, {});
    EXPECT_EQ(run.exit_code, 2) << args[1];
    EXPECT_TRUE(run.document.empty())
        << "usage errors must not leave a document behind";
  }
}

TEST(supervision, clean_run_document_mentions_no_supervision_keys) {
  // Golden byte-identity depends on supervision being invisible when no
  // supervision event fired.
  const RunResult run = run_bench(kSweepBench, {}, {});
  EXPECT_EQ(run.exit_code, 0);
  ASSERT_FALSE(run.document.empty());
  EXPECT_EQ(run.document.find("interrupted"), std::string::npos);
  EXPECT_EQ(run.document.find("deadline_hit"), std::string::npos);
}

TEST(supervision, engine_backed_bench_honors_deadline_hook) {
  // The metro shells route supervision through engine::run_steps rather
  // than a hand-written loop; the same deterministic-deadline contract
  // must hold there.
  const RunResult first = run_bench(
      "bench_extension_metro_load", {"--cells", "4", "--ues", "10"},
      {"WILD5G_DEADLINE_AFTER_YIELDS=2"});
  const RunResult second = run_bench(
      "bench_extension_metro_load", {"--cells", "4", "--ues", "10"},
      {"WILD5G_DEADLINE_AFTER_YIELDS=2"});
  EXPECT_EQ(first.exit_code, 0);
  ASSERT_FALSE(first.document.empty());
  EXPECT_EQ(first.document, second.document);
  const json::Value doc = json::parse(first.document);
  const json::Value* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_NE(metrics->find("deadline_hit"), nullptr);
}

}  // namespace
