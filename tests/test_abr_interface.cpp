// Tests for 5G-aware interface selection (Sec. 5.4, Fig. 18c, Table 4).
#include "abr/interface_selection.h"

#include <gtest/gtest.h>

#include "abr/video.h"
#include "core/rng.h"

namespace wa = wild5g::abr;
namespace wt = wild5g::traces;
using wild5g::Rng;

namespace {

struct Fixture {
  std::vector<wt::Trace> traces_5g;
  std::vector<wt::Trace> traces_4g;
  wa::SessionOptions options;
  wa::InterfaceSelectionConfig selection;
  wild5g::power::DevicePowerProfile device =
      wild5g::power::DevicePowerProfile::s20u();

  Fixture() {
    Rng rng(11);
    auto c5 = wt::lumos5g_mmwave_config();
    c5.count = 25;
    traces_5g = wt::generate_traces(c5, rng);
    Rng rng2(12);
    auto c4 = wt::lumos5g_lte_config();
    c4.count = 25;
    traces_4g = wt::generate_traces(c4, rng2);
    options.chunk_count = 50;
    // The 5G-aware scheme runs with progress monitoring enabled (Sec. 5.4).
    options.allow_abandonment = true;
  }
};

}  // namespace

TEST(SwitchableSource, BlackoutDuringSwitch) {
  wt::Trace t5;
  t5.mbps.assign(100, 200.0);
  wt::Trace t4;
  t4.mbps.assign(100, 20.0);
  wa::SwitchableSource source(t5, t4);
  EXPECT_DOUBLE_EQ(source.mbps_at(1.0), 200.0);
  source.request_switch(wa::Interface::k4g, 5.0, 1.5);
  EXPECT_DOUBLE_EQ(source.mbps_at(5.5), 0.0);   // mid-blackout
  EXPECT_DOUBLE_EQ(source.mbps_at(7.0), 20.0);  // now on 4G
  EXPECT_EQ(source.switch_count(), 1);
}

TEST(SwitchableSource, SwitchToSameInterfaceIsNoop) {
  wt::Trace t5;
  t5.mbps.assign(10, 100.0);
  wt::Trace t4;
  t4.mbps.assign(10, 10.0);
  wa::SwitchableSource source(t5, t4);
  source.request_switch(wa::Interface::k5g, 1.0, 1.5);
  EXPECT_EQ(source.switch_count(), 0);
  EXPECT_DOUBLE_EQ(source.mbps_at(1.2), 100.0);
}

TEST(SwitchableSource, InterfaceAtReconstructsTimeline) {
  wt::Trace t5;
  t5.mbps.assign(100, 100.0);
  wt::Trace t4;
  t4.mbps.assign(100, 10.0);
  wa::SwitchableSource source(t5, t4);
  source.request_switch(wa::Interface::k4g, 10.0, 1.0);
  source.request_switch(wa::Interface::k5g, 30.0, 1.0);
  EXPECT_EQ(source.interface_at(5.0), wa::Interface::k5g);
  EXPECT_EQ(source.interface_at(15.0), wa::Interface::k4g);
  EXPECT_EQ(source.interface_at(35.0), wa::Interface::k5g);
}

TEST(InterfaceSelection, ReducesStallsOnBlockyTraces) {
  // Fig. 18c: 5G-aware MPC cuts stall time vs 5G-only (paper: ~27%).
  Fixture f;
  double stall_only = 0.0;
  double stall_aware = 0.0;
  for (std::size_t i = 0; i < f.traces_5g.size(); ++i) {
    const auto& t4 = f.traces_4g[i % f.traces_4g.size()];
    stall_only += wa::stream_5g_only(wa::video_ladder_5g(), f.traces_5g[i],
                                     f.options, f.selection, f.device)
                      .session.total_stall_s;
    stall_aware +=
        wa::stream_5g_aware(wa::video_ladder_5g(), f.traces_5g[i], t4,
                            f.options, f.selection, f.device)
            .session.total_stall_s;
  }
  EXPECT_LT(stall_aware, stall_only);
}

TEST(InterfaceSelection, SavesEnergy) {
  // Table 4: the 5G-aware scheme consumes less energy than 5G-only.
  Fixture f;
  double energy_only = 0.0;
  double energy_aware = 0.0;
  for (std::size_t i = 0; i < f.traces_5g.size(); ++i) {
    const auto& t4 = f.traces_4g[i % f.traces_4g.size()];
    energy_only += wa::stream_5g_only(wa::video_ladder_5g(), f.traces_5g[i],
                                      f.options, f.selection, f.device)
                       .energy_j;
    energy_aware +=
        wa::stream_5g_aware(wa::video_ladder_5g(), f.traces_5g[i], t4,
                            f.options, f.selection, f.device)
            .energy_j;
  }
  EXPECT_LT(energy_aware, energy_only);
  // Saving is moderate (single-digit percent in the paper), not a collapse.
  EXPECT_GT(energy_aware, 0.7 * energy_only);
}

TEST(InterfaceSelection, NoOverheadVariantNeverWorseOnStalls) {
  Fixture f;
  auto no_overhead = f.selection;
  no_overhead.model_switch_overhead = false;
  double stall_with = 0.0;
  double stall_without = 0.0;
  for (std::size_t i = 0; i < 10; ++i) {
    const auto& t4 = f.traces_4g[i];
    stall_with += wa::stream_5g_aware(wa::video_ladder_5g(), f.traces_5g[i],
                                      t4, f.options, f.selection, f.device)
                      .session.total_stall_s;
    stall_without +=
        wa::stream_5g_aware(wa::video_ladder_5g(), f.traces_5g[i], t4,
                            f.options, no_overhead, f.device)
            .session.total_stall_s;
  }
  EXPECT_LE(stall_without, stall_with * 1.05);
}

TEST(InterfaceSelection, SessionEnergyAllFiveGMatchesHelper) {
  Fixture f;
  const auto run = wa::stream_5g_only(wa::video_ladder_5g(), f.traces_5g[0],
                                      f.options, f.selection, f.device);
  const double recomputed =
      wa::session_energy_j(run.session, {}, f.selection, f.device);
  EXPECT_NEAR(run.energy_j, recomputed, 1e-9);
}

TEST(InterfaceSelection, SwitchesActuallyHappen) {
  Fixture f;
  int total_switches = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    total_switches +=
        wa::stream_5g_aware(wa::video_ladder_5g(), f.traces_5g[i],
                            f.traces_4g[i], f.options, f.selection, f.device)
            .switch_count;
  }
  EXPECT_GT(total_switches, 0);
}

TEST(InterfaceSelection, MixedInterfaceEnergyBetweenPureCases) {
  // Energy with a 4G/5G mix must sit between the all-4G and all-5G costs
  // for the same throughput series.
  Fixture f;
  const auto run = wa::stream_5g_only(wa::video_ladder_5g(), f.traces_5g[1],
                                      f.options, f.selection, f.device);
  const std::size_t seconds = run.session.per_second_dl_mbps.size();
  const std::vector<wa::Interface> all_5g(seconds, wa::Interface::k5g);
  const std::vector<wa::Interface> all_4g(seconds, wa::Interface::k4g);
  std::vector<wa::Interface> mixed(seconds);
  for (std::size_t s = 0; s < seconds; ++s) {
    mixed[s] = s % 2 == 0 ? wa::Interface::k5g : wa::Interface::k4g;
  }
  const double e5 =
      wa::session_energy_j(run.session, all_5g, f.selection, f.device);
  const double e4 =
      wa::session_energy_j(run.session, all_4g, f.selection, f.device);
  const double em =
      wa::session_energy_j(run.session, mixed, f.selection, f.device);
  // 4G is cheap at low rates but its uplink/downlink slopes are steep; for
  // a video workload the 5G base dominates, so all-5G costs most.
  EXPECT_GT(e5, em);
  EXPECT_GT(em, e4 * 0.5);
}

TEST(InterfaceSelection, DeterministicEndToEnd) {
  Fixture f;
  const auto a = wa::stream_5g_aware(wa::video_ladder_5g(), f.traces_5g[2],
                                     f.traces_4g[2], f.options, f.selection,
                                     f.device);
  const auto b = wa::stream_5g_aware(wa::video_ladder_5g(), f.traces_5g[2],
                                     f.traces_4g[2], f.options, f.selection,
                                     f.device);
  EXPECT_DOUBLE_EQ(a.session.total_stall_s, b.session.total_stall_s);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.switch_count, b.switch_count);
}
