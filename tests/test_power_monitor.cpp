// Tests for the hardware/software power monitors and DTR calibration
// (Sec. 4.6, Fig. 16, Tables 3 and 9).
#include "power/monitor.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/rng.h"
#include "core/stats.h"
#include "power/waveform.h"
#include "rrc/state_machine.h"

namespace wp = wild5g::power;
namespace wr = wild5g::rrc;
using wild5g::Rng;

namespace {

/// A busy waveform: alternating transfer bursts and tails, 2 minutes.
wp::PowerTrace busy_waveform(std::uint64_t seed) {
  const auto profile = wr::profile_by_name("Verizon NSA mmWave");
  std::vector<wr::ActivityBurst> bursts;
  for (double t = 2000.0; t < 110000.0; t += 18000.0) {
    bursts.push_back({t, t + 6000.0, 400.0 + t / 1000.0, 12.0});
  }
  wp::WaveformSynthesizer synth(profile, wp::DevicePowerProfile::s20u());
  Rng rng(seed);
  return synth.synthesize(wr::build_timeline(profile.config, bursts, 120000.0),
                          rng);
}

}  // namespace

TEST(Monsoon, PerSecondAveragesWholeTrace) {
  const auto waveform = busy_waveform(1);
  const auto seconds = wp::MonsoonMonitor::per_second_mw(waveform);
  EXPECT_EQ(seconds.size(), 120u);
  // The per-second series must integrate to the trace energy.
  double sum = 0.0;
  for (double p : seconds) sum += p;
  EXPECT_NEAR(sum / 1000.0, waveform.energy_j(), 0.01 * waveform.energy_j());
}

TEST(Software, UnderestimatesTruth) {
  // Table 9: the software monitor reads ~81-95% of hardware truth.
  const auto waveform = busy_waveform(2);
  const auto hw = wp::MonsoonMonitor::per_second_mw(waveform);
  for (const double rate : {1.0, 10.0}) {
    Rng rng(3);
    wp::SoftwareMonitor sw(wp::default_software_monitor(rate));
    const auto readings = sw.per_second_mw(waveform, rng);
    const double hw_mean = wild5g::stats::mean(hw);
    const double sw_mean = wild5g::stats::mean(
        std::span<const double>(readings.data(),
                                std::min(readings.size(), hw.size())));
    const double ratio = sw_mean / hw_mean;
    EXPECT_GT(ratio, 0.70) << rate;
    EXPECT_LT(ratio, 1.0) << rate;
  }
}

TEST(Software, TenHzBiasSmallerThanOneHz) {
  const auto config_1 = wp::default_software_monitor(1.0);
  const auto config_10 = wp::default_software_monitor(10.0);
  EXPECT_GT(config_10.bias, config_1.bias);
}

TEST(Software, OverheadGrowsWithRate) {
  // Table 3: +654 mW @1 Hz, +1111 mW @10 Hz.
  EXPECT_NEAR(wp::software_monitor_overhead_mw(1.0), 654.2, 1.0);
  EXPECT_NEAR(wp::software_monitor_overhead_mw(10.0), 1111.4, 1.0);
  EXPECT_GT(wp::software_monitor_overhead_mw(10.0),
            wp::software_monitor_overhead_mw(1.0));
  EXPECT_DOUBLE_EQ(wp::software_monitor_overhead_mw(0.0), 0.0);
}

TEST(Calibration, RecoversHardwareScale) {
  const auto waveform = busy_waveform(4);
  const auto hw = wp::MonsoonMonitor::per_second_mw(waveform);
  Rng rng(5);
  wp::SoftwareMonitor sw(wp::default_software_monitor(10.0));
  auto readings = sw.per_second_mw(waveform, rng);
  readings.resize(hw.size());

  wp::SoftwareCalibration calibration;
  calibration.fit(readings, hw);

  // Calibrated readings on a fresh waveform should have small MAPE.
  const auto waveform2 = busy_waveform(6);
  const auto hw2 = wp::MonsoonMonitor::per_second_mw(waveform2);
  Rng rng2(7);
  auto readings2 = sw.per_second_mw(waveform2, rng2);
  readings2.resize(hw2.size());
  const auto calibrated = calibration.calibrate_all(readings2);

  const double mape_raw = wild5g::stats::mape_percent(hw2, readings2);
  const double mape_cal = wild5g::stats::mape_percent(hw2, calibrated);
  EXPECT_LT(mape_cal, mape_raw);
  // Absolute bound is seed-sensitive (12.2 under the portable distributions);
  // the load-bearing assertion is that calibration beats raw readings.
  EXPECT_LT(mape_cal, 13.0);
}

TEST(Calibration, HigherRateCalibratesBetter) {
  // Fig. 16: SW-10Hz beats SW-1Hz after calibration (less aliasing).
  const auto waveform = busy_waveform(8);
  const auto hw = wp::MonsoonMonitor::per_second_mw(waveform);
  auto mape_at = [&](double rate, std::uint64_t seed) {
    Rng rng(seed);
    wp::SoftwareMonitor sw(wp::default_software_monitor(rate));
    auto readings = sw.per_second_mw(waveform, rng);
    readings.resize(hw.size());
    wp::SoftwareCalibration calibration;
    calibration.fit(readings, hw);
    // Evaluate on a second pass over another waveform.
    const auto waveform2 = busy_waveform(seed + 50);
    const auto hw2 = wp::MonsoonMonitor::per_second_mw(waveform2);
    Rng rng2(seed + 1);
    auto readings2 = sw.per_second_mw(waveform2, rng2);
    readings2.resize(hw2.size());
    return wild5g::stats::mape_percent(hw2,
                                       calibration.calibrate_all(readings2));
  };
  // Average over a few seeds for stability.
  double mape_1 = 0.0;
  double mape_10 = 0.0;
  for (std::uint64_t s : {10ull, 20ull, 30ull}) {
    mape_1 += mape_at(1.0, s);
    mape_10 += mape_at(10.0, s);
  }
  EXPECT_LT(mape_10, mape_1);
}

TEST(Calibration, RejectsTinyOrMismatchedInput) {
  wp::SoftwareCalibration calibration;
  const std::vector<double> five(5, 1.0);
  EXPECT_THROW(calibration.fit(five, five), wild5g::Error);
  const std::vector<double> a(30, 1.0);
  const std::vector<double> b(29, 1.0);
  EXPECT_THROW(calibration.fit(a, b), wild5g::Error);
  EXPECT_THROW((void)calibration.calibrate(1.0), wild5g::Error);
}
